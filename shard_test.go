package geosocial

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geosocial/internal/trace"
)

// saveSingleFile writes the study's primary dataset as one binary file
// and returns the serial reference result for it.
func saveSingleFile(t *testing.T) (string, *StreamResult) {
	t.Helper()
	s := getStudy(t)
	path := filepath.Join(t.TempDir(), "primary.bin.gz")
	if err := s.Primary.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ref, err := ValidateFileWorkers(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	return path, ref
}

// TestValidateShardSetMatchesSingleFile is the PR's acceptance
// contract: validating a sharded corpus produces a StreamResult whose
// aggregate is byte-identical to validating the equivalent single file,
// for shard counts {1, 3, 8} x worker counts {1, 8}, compressed or not.
func TestValidateShardSetMatchesSingleFile(t *testing.T) {
	_, ref := saveSingleFile(t)
	s := getStudy(t)
	for _, shards := range []int{1, 3, 8} {
		dir := t.TempDir()
		manifest, err := s.Primary.SaveShards(dir, trace.ShardOptions{
			Shards:   shards,
			Compress: shards == 3, // exercise both shard encodings
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 8} {
			for _, input := range []string{manifest, dir} { // manifest path and directory form
				got, err := ValidateFileOpts(input, StreamOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Shards) != shards {
					t.Fatalf("shards=%d workers=%d: result describes %d shards", shards, workers, len(got.Shards))
				}
				perShard := 0
				for _, st := range got.Shards {
					perShard += st.Users
				}
				if perShard != got.Users {
					t.Fatalf("shards=%d workers=%d: per-shard users sum to %d, total %d", shards, workers, perShard, got.Users)
				}
				got.Shards = nil // provenance detail; the aggregate must match exactly
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("shards=%d workers=%d input=%s: result %+v, want %+v",
						shards, workers, filepath.Base(input), got, ref)
				}
			}
		}
	}
}

// TestValidatePathsMatchesSingleFile feeds the shard files to
// ValidatePaths directly (each shard is a standalone dataset file) and
// checks the same byte-identity, plus duplicate-user rejection when a
// path repeats.
func TestValidatePathsMatchesSingleFile(t *testing.T) {
	single, ref := saveSingleFile(t)
	s := getStudy(t)
	dir := t.TempDir()
	if _, err := s.Primary.SaveShards(dir, trace.ShardOptions{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		paths = append(paths, filepath.Join(dir, "primary-000"+string(rune('0'+i))+".bin"))
	}
	for _, workers := range []int{1, 8} {
		got, err := ValidatePaths(paths, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got.Shards = nil
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: ValidatePaths result differs from single file", workers)
		}
	}
	if _, err := ValidatePaths(nil, StreamOptions{}); err == nil {
		t.Error("empty path list accepted")
	}
	if _, err := ValidatePaths([]string{single, single}, StreamOptions{}); err == nil ||
		!strings.Contains(err.Error(), "duplicate user ID") {
		t.Errorf("repeated path accepted: %v", err)
	}
}

// TestValidatePathsRejectsMismatchedCorpora covers the set-consistency
// checks: different dataset names and different POI tables.
func TestValidatePathsRejectsMismatchedCorpora(t *testing.T) {
	s := getStudy(t)
	dir := t.TempDir()
	primary := filepath.Join(dir, "primary.bin")
	if err := s.Primary.SaveFile(primary); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.bin")
	if err := s.Baseline.SaveFile(baseline); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePaths([]string{primary, baseline}, StreamOptions{}); err == nil {
		t.Error("mixed primary/baseline corpus accepted")
	}
	// Same name, tampered POI table: rejected by checksum before any
	// user is validated.
	mod := *s.Primary
	mod.POIs = append(mod.POIs[:0:0], mod.POIs...)
	mod.POIs[0].Popularity++
	modPath := filepath.Join(dir, "tampered.bin")
	if err := mod.SaveFile(modPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidatePaths([]string{primary, modPath}, StreamOptions{}); err == nil ||
		!strings.Contains(err.Error(), "POI table") {
		t.Errorf("mismatched POI tables accepted: %v", err)
	}
}

// TestValidateFileShardSetErrors covers facade-level rejection of
// broken shard sets: tampered manifests and missing shard files.
func TestValidateFileShardSetErrors(t *testing.T) {
	s := getStudy(t)
	newSet := func(t *testing.T) (string, trace.Manifest) {
		t.Helper()
		dir := t.TempDir()
		manifest, err := s.Primary.SaveShards(dir, trace.ShardOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(manifest)
		if err != nil {
			t.Fatal(err)
		}
		var m trace.Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		return manifest, m
	}

	t.Run("missing shard", func(t *testing.T) {
		manifest, m := newSet(t)
		if err := os.Remove(filepath.Join(filepath.Dir(manifest), m.Shards[0].File)); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateFile(manifest); err == nil {
			t.Error("shard set with missing file accepted")
		}
	})

	t.Run("tampered user count", func(t *testing.T) {
		manifest, m := newSet(t)
		m.Shards[0].Users++
		m.Shards[1].Users--
		raw, err := json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(manifest, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateFile(manifest); err == nil {
			t.Error("shard set with tampered user counts accepted")
		}
	})

	t.Run("directory without manifest", func(t *testing.T) {
		if _, err := ValidateFile(t.TempDir()); err == nil {
			t.Error("manifest-less directory accepted")
		}
	})
}
