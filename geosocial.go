// Package geosocial validates geosocial mobility traces against
// ground-truth GPS mobility, reproducing "On the Validity of Geosocial
// Mobility Traces" (Zhang et al., HotNets 2013).
//
// The package is a facade over the full pipeline:
//
//   - generate (or load) a study dataset of paired GPS + checkin traces,
//   - detect visits (stay points) in the GPS traces,
//   - match checkins to visits (α = 500 m, β = 30 min) and partition
//     events into honest / extraneous / missing,
//   - classify extraneous checkins (superfluous / remote / driveby),
//   - analyze incentive correlations, prevalence and burstiness,
//   - fit Levy-walk mobility models and measure the application-level
//     impact on a simulated mobile ad hoc network (AODV).
//
// Quick start:
//
//	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.2, Seed: 42})
//	...
//	res, err := study.Validate()
//	fmt.Println(res.Partition)          // Figure 1
//	fmt.Println(res.Breakdown())        // §5.1 taxonomy
//
// The full experiment suite (every table and figure in the paper) is
// available through Experiments / RunExperiment.
package geosocial

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"geosocial/internal/checkpoint"
	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/detect"
	"geosocial/internal/eval"
	"geosocial/internal/levy"
	"geosocial/internal/manet"
	"geosocial/internal/obs"
	"geosocial/internal/outcome"
	"geosocial/internal/par"
	"geosocial/internal/poi"
	recoverpkg "geosocial/internal/recover"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
	"geosocial/internal/visits"
)

// StudyConfig configures synthetic study generation.
type StudyConfig struct {
	// Scale is the population scale relative to the paper's study
	// (1.0 = 244 primary + 47 baseline users). Values in (0, 1] trade
	// fidelity for speed; 0 defaults to 1.0.
	Scale float64
	// Seed makes the whole study reproducible.
	Seed uint64
	// Parallelism is the number of workers used by every per-user
	// pipeline stage (generation, visit detection + matching,
	// classification). <= 0 selects runtime.GOMAXPROCS(0); 1 runs the
	// serial path. Results are byte-identical for any value and any
	// GOMAXPROCS: per-user random streams are split serially before work
	// fans out, and outcomes land in index-addressed slots.
	Parallelism int
}

// Study is a generated (or loaded) pair of datasets.
type Study struct {
	Primary  *trace.Dataset
	Baseline *trace.Dataset
	cfg      StudyConfig
}

// GenerateStudy produces the synthetic Primary and Baseline datasets
// (the substitution for the paper's user study; see DESIGN.md).
func GenerateStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("geosocial: negative scale %g", cfg.Scale)
	}
	root := rng.New(cfg.Seed)
	// The per-cohort budget is split so an explicit Parallelism cap bounds
	// the total worker count across the nested fan-out.
	primaryCfg := synth.PrimaryConfig().Scale(cfg.Scale)
	primaryCfg.Parallelism = par.SplitBudget(cfg.Parallelism, 2)
	baselineCfg := synth.BaselineConfig().Scale(cfg.Scale)
	baselineCfg.Parallelism = primaryCfg.Parallelism
	// Split both streams serially so the root stream advances exactly as
	// the serial path does, then generate the two cohorts concurrently.
	cfgs := []synth.Config{primaryCfg, baselineCfg}
	streams := []*rng.Stream{root.Split("primary"), root.Split("baseline")}
	datasets, err := par.Map(cfg.Parallelism, len(cfgs), func(i int) (*trace.Dataset, error) {
		return synth.Generate(cfgs[i], streams[i])
	})
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	return &Study{Primary: datasets[0], Baseline: datasets[1], cfg: cfg}, nil
}

// LoadDataset reads a dataset saved by Dataset.SaveFile / cmd/geogen into
// memory. Compression and encoding (JSON or binary) are detected from
// magic bytes; use ValidateFile to process binary datasets without
// materializing them.
func LoadDataset(path string) (*trace.Dataset, error) { return trace.LoadFile(path) }

// StreamOptions tunes ValidateFileOpts. The zero value selects the
// paper's parameters and the default worker count.
type StreamOptions struct {
	// Params are the matching thresholds (core.DefaultParams when zero).
	Params core.Params
	// VisitConfig parameterizes stay-point detection
	// (visits.DefaultConfig when zero).
	VisitConfig visits.Config
	// Workers is the per-user pipeline worker count (<= 0 selects
	// GOMAXPROCS, 1 the serial path; results are identical for any
	// value).
	Workers int
	// OutcomeLog, when non-empty, is a path the validation writes a
	// GSO1 columnar outcome log to (gzip when it ends in ".gz"): one
	// compact record per user carrying everything the §5–§7 analyses
	// need, consumable by AnalyzeOutcomes and cmd/geoanalyze without
	// per-user outcomes in memory. The log is published atomically on
	// success and holds records in canonical user-ID order, so its
	// bytes are identical for any worker count and any shard split of
	// the same dataset.
	OutcomeLog string
	// CheckpointDir, when non-empty, makes sharded validation crash-safe
	// and resumable: as each shard completes, its results (aggregate
	// counters, user IDs, and outcome-log records when OutcomeLog is
	// set) are published atomically to a checkpoint fragment in this
	// directory, keyed by (manifest checksum, shard checksum, parameter
	// fingerprint). A rerun of the same corpus with the same parameters
	// skips every checkpointed shard and merges its fragment instead,
	// producing a StreamResult — and an outcome log — byte-identical to
	// an uninterrupted run, for any worker count. Only shard-set inputs
	// checkpoint; plain files and explicit path lists ignore the field.
	// See docs/FORMAT.md for the fragment format and atomicity contract.
	CheckpointDir string
	// CheckpointStale overrides how old a crashed run's temporary
	// checkpoint file must be before it is swept at open
	// (checkpoint.DefaultStaleAfter — one hour — when zero). It affects
	// only the sweep, never the checkpoint key or the parameter
	// fingerprint, so changing it does not invalidate existing
	// checkpoints.
	CheckpointStale time.Duration
	// Logf, when non-nil, receives one line per checkpoint event (shard
	// skipped, checkpoint written, corrupt fragment recovered).
	Logf func(format string, args ...any)
	// Spans, when non-nil, collects per-stage, per-shard pipeline spans
	// (decode, fold, segment, match, classify, merge, checkpoint-commit)
	// — record counts and summed wall time — for the post-run breakdown
	// `geovalidate -report` renders. Instrumentation never feeds back
	// into results: with or without a collector the StreamResult and the
	// outcome log are byte-identical, and a nil collector costs nothing
	// on the hot path (no clock reads, no allocation).
	Spans *obs.Collector

	// validated, when non-nil, observes every user ID as its outcome is
	// accumulated, serially on the collecting goroutine. Tests use it to
	// assert which users a run actually validated (the incremental path
	// must touch only appended users).
	validated func(userID int)
}

// StreamResult is the bounded-memory analogue of ValidationResult: the
// aggregate outputs of validating a dataset file (or sharded corpus)
// user by user, without retaining per-user outcomes. The whole struct
// marshals to JSON (geovalidate -json), and the geoserve service caches
// and serves the same representation; see core.StreamResult for the
// field-name compatibility contract.
type StreamResult = core.StreamResult

// ShardStat describes one input stream of a multi-file validation run.
type ShardStat = core.ShardStat

// ValidateFile runs the full validation pipeline over a dataset file
// with the paper's parameters and the default worker count. The path
// may also name a shard-set manifest ("*.manifest.json") or a directory
// containing exactly one — the shards are then read concurrently and
// validated as one corpus with an aggregate result byte-identical to
// validating the equivalent single file.
//
// Binary inputs are streamed: raw frames are fetched sequentially per
// file and decoded + validated on the worker pool, so in-flight users
// stay O(workers + shards) regardless of corpus size (the only
// per-user state retained is the integer duplicate-ID set, as in
// trace.StreamReader). JSON datasets are loaded in memory first (the
// document encoding cannot be streamed).
// The aggregate results are identical to loading the same users and
// running ValidateDataset.
func ValidateFile(path string) (*StreamResult, error) { return ValidateFileWorkers(path, 0) }

// ValidateFileWorkers is ValidateFile with an explicit worker count
// (<= 0 selects GOMAXPROCS, 1 the serial path). The result is identical
// for any value.
func ValidateFileWorkers(path string, workers int) (*StreamResult, error) {
	return ValidateFileOpts(path, StreamOptions{Workers: workers})
}

// ValidateFileOpts is ValidateFile with explicit matching and visit-
// detection parameters (cmd/geovalidate's -alpha/-beta flags thread
// through here).
//
// All CPU-heavy per-user stages — frame decode, validation (visit
// detection + matching) and classification — run inside the bounded
// parallel window on the worker pool; the calling goroutine only
// fetches raw frames and accumulates aggregates, in stream order.
func ValidateFileOpts(path string, opts StreamOptions) (*StreamResult, error) {
	if info, err := os.Stat(path); err == nil &&
		(info.IsDir() || strings.HasSuffix(path, trace.ManifestSuffix)) {
		return validateShardSet(path, opts)
	}
	stream, err := trace.OpenStream(path)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	defer stream.Close()
	db, err := stream.DB()
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	res, err := validateSources(stream.Name, db, []trace.FrameSource{stream.Frames()}, []string{path}, opts, nil, nil)
	if err != nil {
		return nil, err
	}
	res.Format = stream.Format
	res.Shards = nil // a plain file is not a shard set
	return res, nil
}

// ValidatePaths validates several dataset files as one corpus: every
// file must carry the same dataset name and an identical POI table
// (compared by checksum), user IDs must be unique across the whole set,
// and the aggregate result is byte-identical to validating one file
// holding all the users. Files are read concurrently and decoded on the
// shared worker pool; JSON and binary inputs can be mixed.
func ValidatePaths(paths []string, opts StreamOptions) (*StreamResult, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("geosocial: no dataset paths")
	}
	streams := make([]*trace.DatasetStream, len(paths))
	defer func() {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
	}()
	srcs := make([]trace.FrameSource, len(paths))
	var refSum string
	for i, p := range paths {
		s, err := trace.OpenStream(p)
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		streams[i] = s
		if i == 0 {
			refSum = trace.POIChecksum(s.POIs)
		}
		if s.Name != streams[0].Name {
			return nil, fmt.Errorf("geosocial: %s holds dataset %q, %s holds %q",
				p, s.Name, paths[0], streams[0].Name)
		}
		if trace.POIChecksum(s.POIs) != refSum {
			return nil, fmt.Errorf("geosocial: %s and %s carry different POI tables", paths[0], p)
		}
		srcs[i] = s.Frames()
	}
	db, err := streams[0].DB()
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	res, err := validateSources(streams[0].Name, db, srcs, paths, opts, nil, nil)
	if err != nil {
		return nil, err
	}
	res.Format = streams[0].Format
	return res, nil
}

// genSet carries a generational shard set's fold state through
// validateSources: the decoded delta content, the generation to stamp on
// the result, and — per manifest shard — the expected number of
// brand-new users (-1 for base shards, which are verified by their
// reader's frame count instead).
type genSet struct {
	ds         *trace.DeltaSet
	generation int
	newUsers   []int
}

// validateShardSet validates a manifest-described sharded corpus.
//
// A generational set (manifest Generation > 0) validates by folding: the
// delta shards are decoded up front into a DeltaSet (O(appended data)),
// every base-shard source is wrapped so touched users decode with their
// delta frames folded in, and users that exist only in delta shards are
// validated in a post-pass attributed to their home delta shard. The
// result is byte-identical to validating a from-scratch corpus of the
// concatenated data, modulo the per-shard layout. Checkpointing is
// skipped for generational sets: a delta changes every touched user's
// fold, so per-shard fragments keyed on shard content alone would be
// unsound.
func validateShardSet(path string, opts StreamOptions) (*StreamResult, error) {
	ss, err := trace.OpenShardSet(path)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	k := len(ss.Manifest.Shards)
	var gen *genSet
	if ss.Manifest.Generation > 0 {
		// The up-front delta decode is corpus-wide fold work, attributed
		// to the pseudo-shard "corpus" in the span report.
		foldCell := opts.Spans.Stage("fold", "corpus")
		var t0 time.Time
		if foldCell != nil {
			t0 = time.Now()
		}
		ds, err := trace.MergeSets(ss)
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		if foldCell != nil {
			foldCell.Observe(len(ds.IDs()), time.Since(t0))
		}
		gen = &genSet{ds: ds, generation: ss.Manifest.Generation, newUsers: make([]int, k)}
	}
	readers := make([]*trace.ShardReader, k)
	defer func() {
		for _, r := range readers {
			if r != nil {
				r.Close()
			}
		}
	}()
	srcs := make([]trace.FrameSource, k)
	labels := make([]string, k)
	var db *poi.DB
	for i := 0; i < k; i++ {
		labels[i] = ss.Manifest.Shards[i].File
		if gen != nil && ss.Manifest.Shards[i].Delta {
			// Delta shards are not streamed — their content is already in
			// the DeltaSet — but they keep a stats slot for the new users
			// attributed to them.
			gen.newUsers[i] = ss.Manifest.Shards[i].NewUsers
			continue
		}
		if gen != nil {
			gen.newUsers[i] = -1
		}
		r, err := ss.OpenShard(i)
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		readers[i] = r
		if gen != nil {
			srcs[i] = gen.ds.FoldSource(r)
		} else {
			srcs[i] = r
		}
		if db == nil {
			if db, err = poi.NewDB(r.POIs()); err != nil {
				return nil, fmt.Errorf("geosocial: %w", err)
			}
		}
	}
	if db == nil {
		return nil, fmt.Errorf("geosocial: %s: shard set has no base shards", path)
	}
	var ck *ckptRun
	if gen == nil {
		if ck, err = openCheckpoints(ss, labels, opts); err != nil {
			return nil, err
		}
	} else if opts.CheckpointDir != "" && opts.Logf != nil {
		opts.Logf("geosocial: generational shard set (generation %d): checkpointing skipped", gen.generation)
	}
	res, err := validateSources(ss.Manifest.Name, db, srcs, labels, opts, ck, gen)
	if err != nil {
		return nil, err
	}
	res.Format = trace.FormatBinary
	return res, nil
}

// ckptRun carries one sharded validation's checkpoint state: the open
// store, each shard's content checksum and manifest user count, and —
// for shards whose checkpoint was found at preload — the persisted
// aggregates and user IDs to merge instead of revalidating.
type ckptRun struct {
	store *checkpoint.Store
	sums  []string           // per-shard content checksum (key half)
	want  []int              // per-shard manifest user count
	metas []*checkpoint.Meta // non-nil marks a checkpointed (skipped) shard
	ids   [][]int            // the user IDs a skipped shard contributed
	logf  func(format string, args ...any)
}

// logff forwards to the run's Logf when set.
func (c *ckptRun) logff(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// openCheckpoints opens the checkpoint store for a shard set and
// preloads each shard's fragment (meta and user IDs only — outcome-log
// records are replayed later, once the log writer exists). It returns
// nil when opts does not request checkpointing. A fragment that fails
// to decode is removed and its shard revalidates — corruption degrades
// to recomputation, never to a wrong or aborted result.
func openCheckpoints(ss *trace.ShardSet, labels []string, opts StreamOptions) (*ckptRun, error) {
	if opts.CheckpointDir == "" {
		return nil, nil
	}
	// The parameter fingerprint is half of the checkpoint key; logging
	// runs carry a distinct tag because their fragments must hold the
	// per-user records a log-less fragment legitimately omits.
	tag := validationFingerprint(opts)
	if opts.OutcomeLog != "" {
		tag += "+log"
	}
	store, err := checkpoint.OpenStale(opts.CheckpointDir, checkpoint.ManifestChecksum(&ss.Manifest), tag, opts.CheckpointStale)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	k := len(ss.Manifest.Shards)
	ck := &ckptRun{
		store: store,
		sums:  make([]string, k),
		want:  make([]int, k),
		metas: make([]*checkpoint.Meta, k),
		ids:   make([][]int, k),
		logf:  opts.Logf,
	}
	for i, info := range ss.Manifest.Shards {
		ck.want[i] = info.Users
		sum, err := checkpoint.FileChecksum(filepath.Join(ss.Dir, info.File))
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		ck.sums[i] = sum
		m, ids, err := store.Load(sum, nil)
		if err != nil {
			ck.logff("geosocial: shard %s: checkpoint unreadable, revalidating: %v", labels[i], err)
			if err := store.Remove(sum); err != nil {
				return nil, fmt.Errorf("geosocial: %w", err)
			}
			continue
		}
		ck.metas[i], ck.ids[i] = m, ids
	}
	return ck, nil
}

// ckptSource wraps a shard's FrameSource to record when the shard has
// been fully and cleanly consumed. The flag is atomic because frames
// are pulled on a producer goroutine while the commit decision runs on
// the collecting goroutine; it is also deliberately non-blocking — in
// the serial (workers == 1) merge, a shard's EOF is only observed one
// round after its last user reaches the sink, so commits poll the flag
// instead of waiting on it.
type ckptSource struct {
	trace.FrameSource
	eof atomic.Bool
}

// NextFrame forwards to the wrapped source, latching clean end of
// stream (which, for a ShardReader, implies the manifest user count
// was verified).
func (c *ckptSource) NextFrame() (trace.Frame, error) {
	fr, err := c.FrameSource.NextFrame()
	if err == io.EOF {
		c.eof.Store(true)
	}
	return fr, err
}

// shardSpans bundles one shard's span cells, one per pipeline stage. A
// zero shardSpans (spans disabled, or a shard never streamed) makes
// every instrumentation site a single nil check — no clock read, no
// allocation — which is the zero-cost-when-disabled contract.
//
// segment and match are the interface type core consumes; they are only
// ever assigned non-nil cells, never typed-nil pointers, so core's own
// nil checks stay meaningful.
type shardSpans struct {
	decode   *obs.Cell
	fold     *obs.Cell
	classify *obs.Cell
	merge    *obs.Cell
	commit   *obs.Cell
	segment  core.StageObserver
	match    core.StageObserver
}

// newShardSpans creates the stage cells for one shard. commit and fold
// cells exist only when the run checkpoints / folds, so the report
// never carries zero-valued stages a run could not have executed.
func newShardSpans(c *obs.Collector, shard string, ck, fold bool) shardSpans {
	sp := shardSpans{
		decode:   c.Stage("decode", shard),
		classify: c.Stage("classify", shard),
		merge:    c.Stage("merge", shard),
		segment:  c.Stage("segment", shard),
		match:    c.Stage("match", shard),
	}
	if ck {
		sp.commit = c.Stage("checkpoint-commit", shard)
	}
	if fold {
		sp.fold = c.Stage("fold", shard)
	}
	return sp
}

// validateSources is the shared multi-source validation engine behind
// ValidateFileOpts, ValidatePaths and validateShardSet: fetch raw
// frames per source, run decode + validate + classify per user on the
// worker pool (par.MergeStreams), accumulate per-source statistics in
// the deterministic merged order, and merge them in source order. The
// aggregates are sums of per-user integer counts, so they are identical
// to single-stream validation of the same users for any worker count
// and any way of splitting the corpus.
//
// When ck is non-nil the run is checkpointed: sources whose fragment
// was preloaded are not streamed — their persisted counters merge in
// and their records replay into the outcome log — and every live
// source commits a fragment the moment it is fully consumed, so a kill
// at any point loses at most the shards still in flight. Checkpointed
// and live shards contribute through the same commutative sums, which
// is why a resumed result is byte-identical to an uninterrupted one.
//
// When gen is non-nil the run folds a generational shard set: entries
// of srcs left nil (the delta shards) are not streamed, and after the
// merge the users that exist only in delta shards are folded, validated
// on the same pool, and accumulated against their home delta shard's
// stats slot. gen and ck are mutually exclusive.
func validateSources(name string, db *poi.DB, srcs []trace.FrameSource, labels []string, opts StreamOptions, ck *ckptRun, gen *genSet) (*StreamResult, error) {
	v := &core.Validator{Params: opts.Params, VisitConfig: opts.VisitConfig}
	clsParams := classify.DefaultParams()
	res := &StreamResult{Name: name, Taxonomy: make(map[string]int, classify.NumKinds)}
	n := len(srcs)
	stats := make([]ShardStat, n)
	taxs := make([]map[string]int, n)
	truths := make([]core.TruthAccum, n)
	for i := range stats {
		stats[i].Path = labels[i]
		taxs[i] = make(map[string]int, classify.NumKinds)
	}
	var logw *outcome.Writer
	if opts.OutcomeLog != "" {
		var err error
		if logw, err = outcome.Create(opts.OutcomeLog, name); err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		defer logw.Discard() // no-op once Close has published the log
	}
	seen := make(map[int]int, 256) // user ID -> source index

	// Span cells, one bundle per shard that can stream (checkpoint-hit
	// shards never run, so they never appear in the report). The slice
	// stays all-zero when spans are off.
	spans := make([]shardSpans, n)
	if opts.Spans != nil {
		for i := range srcs {
			if ck != nil && ck.metas[i] != nil {
				continue
			}
			// A nil source inside a generational set is a delta shard:
			// its users run through the fold pass, not the merge.
			isDelta := gen != nil && srcs[i] == nil
			if srcs[i] == nil && !isDelta {
				continue
			}
			spans[i] = newShardSpans(opts.Spans, labels[i], ck != nil && srcs[i] != nil, isDelta)
		}
	}

	// Merge preloaded checkpoints: seed the skipped shards' counters and
	// duplicate-ID set, and replay their records into the outcome log
	// (the log writer canonicalizes record order at Close, so replayed
	// and live records interleave freely).
	var (
		frags   []*checkpoint.Frag
		wrapped []*ckptSource
		ids     [][]int
	)
	if ck != nil {
		frags = make([]*checkpoint.Frag, n)
		wrapped = make([]*ckptSource, n)
		ids = make([][]int, n)
		defer func() {
			for _, fr := range frags {
				if fr != nil {
					fr.Abort()
				}
			}
		}()
		for i := 0; i < n; i++ {
			m := ck.metas[i]
			if m == nil {
				continue
			}
			stats[i].Users = m.Users
			stats[i].Partition = m.Partition
			for k, c := range m.Taxonomy {
				taxs[i][k] = c
			}
			truths[i].AddCounts(m.Truth)
			for _, id := range ck.ids[i] {
				if prev, dup := seen[id]; dup {
					return nil, fmt.Errorf("geosocial: duplicate user ID %d (%s and %s)", id, labels[prev], labels[i])
				}
				seen[id] = i
			}
			if logw != nil {
				if _, _, err := ck.store.Load(ck.sums[i], func(data []byte) error {
					rec, err := outcome.DecodeRecord(data)
					if err != nil {
						return err
					}
					return logw.Write(rec)
				}); err != nil {
					return nil, fmt.Errorf("geosocial: replay checkpoint for %s: %w", labels[i], err)
				}
			}
			ck.logff("geosocial: shard %s: checkpoint hit, skipping (%d users)", labels[i], m.Users)
		}
	}

	// The merged run streams only the live sources; live[j] maps the
	// merge's source index back to the original shard index. A nil
	// source is a generational set's delta shard: its content folds in
	// through the base-shard sources and the post-merge new-user pass.
	var live []int
	var next []func() (trace.Frame, error)
	for i := range srcs {
		if srcs[i] == nil || (ck != nil && ck.metas[i] != nil) {
			continue
		}
		live = append(live, i)
		if ck != nil {
			w := &ckptSource{FrameSource: srcs[i]}
			wrapped[i] = w
			next = append(next, w.NextFrame)
			fr, err := ck.store.Begin(ck.sums[i])
			if err != nil {
				return nil, fmt.Errorf("geosocial: %w", err)
			}
			frags[i] = fr
		} else {
			next = append(next, srcs[i].NextFrame)
		}
	}

	// commitReady publishes the fragment of every live shard that has
	// been fully consumed (clean EOF latched and all its users through
	// the sink). It runs after each sunk user and once after the merge:
	// in the serial merge a shard's EOF is observed a round after its
	// last user, so the final sweep catches what the per-user polls
	// cannot.
	commitReady := func() error {
		if ck == nil {
			return nil
		}
		for _, i := range live {
			if frags[i] == nil || !wrapped[i].eof.Load() || stats[i].Users != ck.want[i] {
				continue
			}
			commitCell := spans[i].commit
			var t0 time.Time
			if commitCell != nil {
				t0 = time.Now()
			}
			err := frags[i].Commit(&checkpoint.Meta{
				Users:     stats[i].Users,
				Partition: stats[i].Partition,
				Taxonomy:  taxs[i],
				Truth:     truths[i].Counts(),
			}, ids[i])
			if commitCell != nil {
				commitCell.Observe(stats[i].Users, time.Since(t0))
			}
			if err != nil {
				return err
			}
			frags[i] = nil
			ck.logff("geosocial: shard %s: checkpoint written (%d users)", labels[i], stats[i].Users)
		}
		return nil
	}

	type outcomeCls struct {
		out      core.UserOutcome
		cls      *classify.Classification
		rec      *outcome.Record // outcome-log record, nil unless logging
		recBytes []byte          // its encoding, nil unless checkpointing a logging run
	}
	// process runs the CPU-heavy per-user stages (validation,
	// classification, record distillation) on the worker pool; account
	// accumulates one user's outcome into a shard's stats slot on the
	// collecting goroutine. Both the merged stream and the generational
	// new-user pass go through the same pair, which is what makes the
	// two paths' aggregates interchangeable.
	process := func(u *trace.User, sp shardSpans) (outcomeCls, error) {
		o, err := v.ValidateUserSpans(u, db, sp.segment, sp.match)
		if err != nil {
			return outcomeCls{}, err
		}
		var t0 time.Time
		if sp.classify != nil {
			t0 = time.Now()
		}
		cl, err := classify.ClassifyUser(o, clsParams)
		if sp.classify != nil {
			sp.classify.Observe(1, time.Since(t0))
		}
		if err != nil {
			return outcomeCls{}, fmt.Errorf("classify: user %d: %w", o.User.ID, err)
		}
		oc := outcomeCls{out: o, cls: cl}
		if logw != nil {
			// Record distillation (feature extraction, Levy sampling)
			// is CPU work, so it runs here on the pool; only the spool
			// write happens on the collecting goroutine.
			if oc.rec, err = outcome.NewRecord(o, cl); err != nil {
				return outcomeCls{}, err
			}
			if ck != nil {
				if oc.recBytes, err = outcome.EncodeRecord(oc.rec); err != nil {
					return outcomeCls{}, err
				}
			}
		}
		return oc, nil
	}
	account := func(shard int, oc outcomeCls) error {
		id := oc.out.User.ID
		if prev, dup := seen[id]; dup {
			return fmt.Errorf("duplicate user ID %d (%s and %s)", id, labels[prev], labels[shard])
		}
		seen[id] = shard
		stats[shard].Users++
		stats[shard].Partition.Add(oc.out)
		for _, k := range oc.cls.Kinds {
			taxs[shard][k.String()]++
		}
		truths[shard].Add(oc.out)
		if opts.validated != nil {
			opts.validated(id)
		}
		if logw != nil {
			return logw.Write(oc.rec)
		}
		return nil
	}
	// Recycle hook: once account has folded a user into the aggregates,
	// nothing downstream holds the record (stats are counts, outcome
	// records copy what they keep), so it goes back to its source's pool
	// for the next decode to fill in place. Only sources that opt in via
	// trace.UserRecycler participate — generational fold sources retain
	// users across shards and deliberately do not implement it.
	recyclers := make([]trace.UserRecycler, len(live))
	for j, i := range live {
		recyclers[j], _ = srcs[i].(trace.UserRecycler)
	}
	err := par.MergeStreams(opts.Workers, next,
		func(j, _ int, fr trace.Frame) (outcomeCls, error) {
			sp := spans[live[j]]
			var t0 time.Time
			if sp.decode != nil {
				t0 = time.Now()
			}
			u, err := srcs[live[j]].DecodeFrame(fr)
			if sp.decode != nil {
				sp.decode.Observe(1, time.Since(t0))
			}
			if err != nil {
				return outcomeCls{}, err
			}
			return process(u, sp)
		},
		func(j, _ int, oc outcomeCls) error {
			shard := live[j]
			mergeCell := spans[shard].merge
			var t0 time.Time
			if mergeCell != nil {
				t0 = time.Now()
			}
			err := account(shard, oc)
			if mergeCell != nil {
				mergeCell.Observe(1, time.Since(t0))
			}
			if err != nil {
				return err
			}
			if ck != nil {
				ids[shard] = append(ids[shard], oc.out.User.ID)
				if oc.recBytes != nil {
					if err := frags[shard].AddRecord(oc.recBytes); err != nil {
						return err
					}
				}
			}
			if recyclers[j] != nil {
				recyclers[j].RecycleUser(oc.out.User)
			}
			return commitReady()
		})
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	if err := commitReady(); err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	if gen != nil {
		// Users that exist only in delta shards were never seen by the
		// base-shard streams: fold and validate them now, in ascending ID
		// order, attributed to the delta shard holding their first frame.
		var newIDs []int
		for _, id := range gen.ds.IDs() {
			if _, ok := seen[id]; !ok {
				newIDs = append(newIDs, id)
			}
		}
		ocs, err := par.Map(opts.Workers, len(newIDs), func(i int) (outcomeCls, error) {
			sp := spans[gen.ds.Home(newIDs[i])]
			var t0 time.Time
			if sp.fold != nil {
				t0 = time.Now()
			}
			u, err := gen.ds.FoldNew(newIDs[i])
			if sp.fold != nil {
				sp.fold.Observe(1, time.Since(t0))
			}
			if err != nil {
				return outcomeCls{}, err
			}
			return process(u, sp)
		})
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		for i, oc := range ocs {
			home := gen.ds.Home(newIDs[i])
			mergeCell := spans[home].merge
			var t0 time.Time
			if mergeCell != nil {
				t0 = time.Now()
			}
			err := account(home, oc)
			if mergeCell != nil {
				mergeCell.Observe(1, time.Since(t0))
			}
			if err != nil {
				return nil, fmt.Errorf("geosocial: %w", err)
			}
		}
		// Cross-check the manifest's per-delta-shard accounting: a delta
		// shard's stats slot holds exactly its brand-new users.
		for i, want := range gen.newUsers {
			if want >= 0 && stats[i].Users != want {
				return nil, fmt.Errorf("geosocial: delta shard %s introduced %d new users, manifest says %d",
					labels[i], stats[i].Users, want)
			}
		}
		res.Generation = gen.generation
	}
	if logw != nil {
		if err := logw.Close(); err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
	}
	res.Shards = stats
	var truth core.TruthAccum
	for i := range stats {
		res.Users += stats[i].Users
		res.Partition.Merge(stats[i].Partition)
		for k, c := range taxs[i] {
			res.Taxonomy[k] += c
		}
		truth.AddCounts(truths[i].Counts())
	}
	if truth.Labeled() > 0 {
		sc, err := truth.Score()
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		res.Truth = &sc
	}
	return res, nil
}

// ValidationResult is the outcome of the §4 pipeline on one dataset.
type ValidationResult struct {
	// Outcomes holds per-user visits and matches.
	Outcomes []core.UserOutcome
	// Partition is the Figure 1 Venn split.
	Partition core.Partition
	// Classifications assigns a Kind to every checkin (parallel to
	// Outcomes and each user's checkin trace).
	Classifications []*classify.Classification
}

// Validate runs visit detection, matching and classification on the
// Primary dataset with the paper's parameters and the study's
// Parallelism.
func (s *Study) Validate() (*ValidationResult, error) {
	return ValidateDatasetWorkers(s.Primary, s.cfg.Parallelism)
}

// ValidateDataset runs the full validation pipeline on any dataset with
// the default worker count (GOMAXPROCS).
func ValidateDataset(ds *trace.Dataset) (*ValidationResult, error) {
	return ValidateDatasetWorkers(ds, 0)
}

// ValidateDatasetWorkers is ValidateDataset with an explicit worker count
// (<= 0 selects GOMAXPROCS, 1 the serial path). The result is identical
// for any value.
func ValidateDatasetWorkers(ds *trace.Dataset, workers int) (*ValidationResult, error) {
	v := core.NewValidator()
	v.Parallelism = workers
	outs, part, err := v.ValidateDataset(ds)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	params := classify.DefaultParams()
	params.Parallelism = workers
	cls, err := classify.ClassifyAll(outs, params)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	return &ValidationResult{Outcomes: outs, Partition: part, Classifications: cls}, nil
}

// Breakdown returns the §5.1 taxonomy counts over all checkins.
func (r *ValidationResult) Breakdown() map[string]int {
	tot := classify.Totals(r.Classifications)
	out := make(map[string]int, classify.NumKinds)
	for k, v := range tot {
		out[k.String()] = v
	}
	return out
}

// TruthScore scores the matcher against generator ground-truth labels
// (synthetic data only).
func (r *ValidationResult) TruthScore() (core.TruthScore, error) {
	return core.ScoreAgainstTruth(r.Outcomes)
}

// Correlations computes the Table 2 matrix.
func (r *ValidationResult) Correlations() (*classify.FeatureCorrelations, error) {
	return classify.CorrelateFeatures(r.Outcomes, r.Classifications)
}

// FilterTradeoff computes the §5.3 user-filtering trade-off curve.
func (r *ValidationResult) FilterTradeoff() classify.FilterTradeoff {
	return classify.ComputeFilterTradeoff(r.Classifications)
}

// BurstDetector evaluates the §7 burstiness-based extraneous-checkin
// detector at the given gap threshold.
func (r *ValidationResult) BurstDetector(maxGap time.Duration) classify.DetectorScore {
	d := classify.BurstDetector{MaxGap: maxGap}
	return classify.EvaluateBurstDetector(r.Outcomes, r.Classifications, d)
}

// TrainDetector trains the §7 machine-learned extraneous-checkin detector
// (logistic regression over trace-local features) and evaluates it by
// k-fold cross-validation grouped by user.
func (r *ValidationResult) TrainDetector(folds int) (detect.Score, error) {
	examples := detect.ExtractAll(r.Outcomes)
	return detect.CrossValidate(examples, folds, detect.DefaultTrainConfig(), 0.5)
}

// RecoverMissing evaluates the §7 missing-location recovery: inferring
// home/work anchors from checkins alone and up-sampling the trace,
// scored as ground-truth visit coverage before and after.
func (r *ValidationResult) RecoverMissing() (recoverpkg.Coverage, error) {
	return recoverpkg.EvaluateAll(r.Outcomes, core.DefaultParams())
}

// MobilityModels fits the three §6.1 Levy-walk models (gps,
// honest-checkin, all-checkin).
func (r *ValidationResult) MobilityModels() (*eval.Models, error) {
	return eval.FitModels(r.Outcomes)
}

// MANETConfig configures the §6.2 application-impact experiment.
type MANETConfig struct {
	Nodes    int     // default 200
	Flows    int     // default 100
	Duration float64 // seconds, default 3600
	Seed     uint64
}

// MANETOutcome is the result of one model's simulation.
type MANETOutcome struct {
	Model   string
	Metrics *manet.Metrics
}

// RunMANET fits the three mobility models from this validation result and
// runs the AODV simulation for each.
func (r *ValidationResult) RunMANET(cfg MANETConfig) ([]MANETOutcome, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 200
	}
	if cfg.Flows == 0 {
		cfg.Flows = 100
	}
	if cfg.Duration == 0 {
		cfg.Duration = 3600
	}
	ctx := &eval.Context{PrimaryOuts: r.Outcomes}
	res, err := eval.RunMANET(ctx, eval.MANETScale{
		Nodes: cfg.Nodes, Flows: cfg.Flows, Duration: cfg.Duration,
	}, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	out := make([]MANETOutcome, len(res))
	for i, m := range res {
		out[i] = MANETOutcome{Model: m.Model, Metrics: m.Metrics}
	}
	return out, nil
}

// GenerateMobility produces planar waypoint traces from a fitted model —
// the building block for driving external network simulators.
func GenerateMobility(m *levy.Model, nodes int, opt levy.GenOptions, seed uint64) ([][]levy.Waypoint, error) {
	return m.Generate(nodes, opt, rng.New(seed))
}

// Experiments returns the experiment IDs in presentation order (every
// table and figure in the paper).
func Experiments() []string { return eval.IDs() }

// RunExperiment executes one experiment at the study's scale and writes
// its report to w.
func (s *Study) RunExperiment(id string, w io.Writer) error {
	ctx, err := s.evalContext()
	if err != nil {
		return err
	}
	rep, err := eval.Run(ctx, id)
	if err != nil {
		return fmt.Errorf("geosocial: %w", err)
	}
	return rep.Render(w)
}

// evalContext adapts the study to the experiment harness, validating the
// Primary and Baseline datasets concurrently.
func (s *Study) evalContext() (*eval.Context, error) {
	ctx, err := eval.NewContextFromDatasets(s.Primary, s.Baseline, s.cfg.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	ctx.Scale, ctx.Seed = s.cfg.Scale, s.cfg.Seed
	return ctx, nil
}
