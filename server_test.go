package geosocial_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"geosocial"
	"geosocial/internal/trace"
)

// TestNewServerServesShardedCorpusFromSpool exercises the facade
// service entry point end to end at the library layer: a sharded
// corpus dropped into the spool is discovered by the watcher, validated
// through the shared streaming engine, and served with aggregates
// identical to ValidateFile on the same manifest.
func TestNewServerServesShardedCorpusFromSpool(t *testing.T) {
	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.03, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	manifest, err := study.Primary.SaveShards(spool, trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := geosocial.ValidateFile(manifest)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := geosocial.NewServer(geosocial.ServerOptions{
		SpoolDir:     spool,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Wait for the watcher to discover and validate the manifest.
	var id string
	deadline := time.Now().Add(30 * time.Second)
	for id == "" {
		resp, err := http.Get(ts.URL + "/v1/datasets")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Datasets []struct {
				ID     string `json:"id"`
				Status string `json:"status"`
			} `json:"datasets"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Datasets) == 1 && list.Datasets[0].Status == "done" {
			id = list.Datasets[0].ID
		} else if time.Now().After(deadline) {
			t.Fatalf("manifest never validated: %+v", list)
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/datasets/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Result *geosocial.StreamResult `json:"result"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Result == nil {
		t.Fatal("served document has no result")
	}
	gotJSON, _ := json.Marshal(doc.Result)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served sharded result differs from ValidateFile:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	if len(doc.Result.Shards) != 3 {
		t.Fatalf("served result has %d shard stats, want 3", len(doc.Result.Shards))
	}

	// The shard files themselves must not appear as standalone jobs.
	entries, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	var binFiles int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".bin" || filepath.Ext(e.Name()) == ".gz" {
			binFiles++
		}
	}
	if binFiles == 0 {
		t.Fatal("test setup: no shard files in spool")
	}
	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Datasets []any `json:"datasets"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 {
		t.Fatalf("shard files leaked into the dataset list: %+v", list)
	}
}
