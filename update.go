package geosocial

// Incremental revalidation: the live side of the append container.
//
// UpdateValidation takes the StreamResult and outcome log of a previous
// validation of a shard set and folds in the generations appended since,
// revalidating only the touched users. The previous log supplies each
// superseded user's old contribution, which is subtracted from the
// per-shard and aggregate counters before the recomputed contribution is
// added — all counters are commutative integer sums, so the updated
// result (and the compacted outcome log) is byte-identical to a cold
// full validation of the appended corpus.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/obs"
	"geosocial/internal/outcome"
	"geosocial/internal/par"
	"geosocial/internal/poi"
	"geosocial/internal/trace"
)

// UpdateValidation incrementally updates a previous validation of the
// shard set at path. prev is the StreamResult of the earlier run (its
// Shards must be a prefix of the current manifest) and prevLog the
// outcome log that run wrote; both are required — the log is where the
// superseded per-user contributions come from. Only users touched by
// the appended generations are revalidated: their delta frames are
// folded onto the frames scanned (by cheap ID peek) from the earlier
// shards, the folded users run through the standard pipeline, and their
// old contributions are swapped for the new ones. When opts.OutcomeLog
// is set the previous log is compacted into it with the touched users'
// records superseded.
//
// The returned result — and the rewritten log — is byte-identical to
// ValidateFileOpts on the same manifest (a cold revalidation of every
// user), for any worker count and any split of the appended data.
// opts.CheckpointDir is ignored: generational sets do not checkpoint.
func UpdateValidation(path string, prev *StreamResult, prevLog string, opts StreamOptions) (*StreamResult, error) {
	if prev == nil {
		return nil, fmt.Errorf("geosocial: update: no previous result")
	}
	if prevLog == "" {
		return nil, fmt.Errorf("geosocial: update: previous outcome log required")
	}
	ss, err := trace.OpenShardSet(path)
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}
	if ss.Manifest.Name != prev.Name {
		return nil, fmt.Errorf("geosocial: update: manifest is dataset %q, previous result is %q",
			ss.Manifest.Name, prev.Name)
	}
	if ss.Manifest.Generation <= prev.Generation {
		return nil, fmt.Errorf("geosocial: update: manifest generation %d is not newer than previous result's %d",
			ss.Manifest.Generation, prev.Generation)
	}
	old := len(prev.Shards)
	if old == 0 || old >= len(ss.Manifest.Shards) {
		return nil, fmt.Errorf("geosocial: update: previous result has %d shards, manifest has %d",
			old, len(ss.Manifest.Shards))
	}
	for i := 0; i < old; i++ {
		if ss.Manifest.Shards[i].File != prev.Shards[i].Path {
			return nil, fmt.Errorf("geosocial: update: shard %d is %s, previous result has %s",
				i, ss.Manifest.Shards[i].File, prev.Shards[i].Path)
		}
	}
	for i := old; i < len(ss.Manifest.Shards); i++ {
		info := ss.Manifest.Shards[i]
		if !info.Delta || info.Generation <= prev.Generation {
			return nil, fmt.Errorf("geosocial: update: shard %s is not an appended delta (generation %d after %d)",
				info.File, info.Generation, prev.Generation)
		}
	}

	lf, err := outcome.Open(prevLog)
	if err != nil {
		return nil, fmt.Errorf("geosocial: update: %w", err)
	}
	logName := lf.Name()
	lf.Close()
	if logName != ss.Manifest.Name {
		return nil, fmt.Errorf("geosocial: update: outcome log is dataset %q, manifest is %q",
			logName, ss.Manifest.Name)
	}

	// Decode the appended delta shards: per-user frames in shard order,
	// plus each brand-new candidate's home shard (the first appended
	// shard holding a frame of an ID the earlier shards don't).
	newFrames := make(map[int][]*trace.User)
	newHome := make(map[int]int)
	for i := old; i < len(ss.Manifest.Shards); i++ {
		r, err := ss.OpenShard(i)
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		for {
			u, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("geosocial: %w", err)
			}
			if _, ok := newHome[u.ID]; !ok {
				newHome[u.ID] = i
			}
			newFrames[u.ID] = append(newFrames[u.ID], u)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
	}
	touched := make([]int, 0, len(newFrames))
	for id := range newFrames {
		touched = append(touched, id)
	}
	sort.Ints(touched)

	// Scan the earlier shards once, decoding only the touched users'
	// frames (everything else is a cheap ID peek). A touched user's home
	// shard — the one its stats live in — is the first shard holding a
	// frame of it, exactly the cold path's attribution rule.
	chains := make(map[int][]*trace.User, len(touched))
	homeShard := make(map[int]int, len(touched))
	var db *poi.DB
	for i := 0; i < old; i++ {
		r, err := ss.OpenShard(i)
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		if db == nil && !ss.Manifest.Shards[i].Delta {
			if db, err = poi.NewDB(r.POIs()); err != nil {
				r.Close()
				return nil, fmt.Errorf("geosocial: %w", err)
			}
		}
		for {
			f, err := r.NextFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("geosocial: %w", err)
			}
			id, err := f.UserID()
			if err != nil {
				r.Recycle(f)
				r.Close()
				return nil, fmt.Errorf("geosocial: %w", err)
			}
			if _, hit := newFrames[id]; !hit {
				r.Recycle(f)
				continue
			}
			u, err := r.DecodeFrame(f)
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("geosocial: %w", err)
			}
			if _, ok := homeShard[id]; !ok {
				homeShard[id] = i
			}
			chains[id] = append(chains[id], u)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
	}
	if db == nil {
		return nil, fmt.Errorf("geosocial: update: shard set has no base shards")
	}

	// Fold and revalidate the touched users on the worker pool, in
	// ascending ID order.
	v := &core.Validator{Params: opts.Params, VisitConfig: opts.VisitConfig}
	clsParams := classify.DefaultParams()
	type updOut struct {
		out core.UserOutcome
		cls *classify.Classification
		rec *outcome.Record
	}
	outs, err := par.Map(opts.Workers, len(touched), func(i int) (updOut, error) {
		id := touched[i]
		// Span cells for the incremental path, attributed to the user's
		// home shard. Stage lookups are get-or-create under a mutex —
		// once per touched user, not per record — and skipped entirely
		// when spans are off.
		var foldCell, clsCell *obs.Cell
		var segObs, matchObs core.StageObserver
		if opts.Spans != nil {
			home, ok := homeShard[id]
			if !ok {
				home = newHome[id]
			}
			label := ss.Manifest.Shards[home].File
			foldCell = opts.Spans.Stage("fold", label)
			clsCell = opts.Spans.Stage("classify", label)
			segObs = opts.Spans.Stage("segment", label)
			matchObs = opts.Spans.Stage("match", label)
		}
		var u *trace.User
		var err error
		var t0 time.Time
		if foldCell != nil {
			t0 = time.Now()
		}
		if chain := chains[id]; len(chain) > 0 {
			deltas := append(append([]*trace.User(nil), chain[1:]...), newFrames[id]...)
			u, err = trace.FoldUser(chain[0], deltas)
		} else {
			u, err = trace.FoldUser(newFrames[id][0], newFrames[id][1:])
		}
		if foldCell != nil {
			foldCell.Observe(1, time.Since(t0))
		}
		if err != nil {
			return updOut{}, err
		}
		o, err := v.ValidateUserSpans(u, db, segObs, matchObs)
		if err != nil {
			return updOut{}, err
		}
		if clsCell != nil {
			t0 = time.Now()
		}
		cl, err := classify.ClassifyUser(o, clsParams)
		if clsCell != nil {
			clsCell.Observe(1, time.Since(t0))
		}
		if err != nil {
			return updOut{}, fmt.Errorf("classify: user %d: %w", o.User.ID, err)
		}
		rec, err := outcome.NewRecord(o, cl)
		if err != nil {
			return updOut{}, err
		}
		return updOut{out: o, cls: cl, rec: rec}, nil
	})
	if err != nil {
		return nil, fmt.Errorf("geosocial: %w", err)
	}

	// The updated result starts as a deep copy of the previous one, with
	// a fresh stats slot per appended shard.
	res := &StreamResult{
		Name:       prev.Name,
		Format:     trace.FormatBinary,
		Generation: ss.Manifest.Generation,
		Taxonomy:   make(map[string]int, len(prev.Taxonomy)),
	}
	for k, c := range prev.Taxonomy {
		res.Taxonomy[k] = c
	}
	res.Shards = append([]ShardStat(nil), prev.Shards...)
	for i := old; i < len(ss.Manifest.Shards); i++ {
		res.Shards = append(res.Shards, ShardStat{Path: ss.Manifest.Shards[i].File})
	}

	// Walk the previous log: every record feeds the truth accumulator
	// (the result only retains the derived score, not the counts), and a
	// superseded record's partition and taxonomy contributions are
	// subtracted from its home shard before the recomputed ones go in.
	var truth, stale core.TruthAccum
	pending := make(map[int]bool, len(chains))
	for id := range chains {
		pending[id] = true
	}
	observe := func(rec *outcome.Record, superseded bool) error {
		rec.AddTruth(&truth)
		if !superseded {
			return nil
		}
		home, ok := homeShard[rec.UserID]
		if !ok {
			return fmt.Errorf("log has user %d, shards do not", rec.UserID)
		}
		delete(pending, rec.UserID)
		rec.AddTruth(&stale)
		var p core.Partition
		rec.AddTo(&p)
		res.Shards[home].Partition.Subtract(p)
		res.Shards[home].Users--
		for k, c := range rec.Counts() {
			if c > 0 {
				res.Taxonomy[classify.Kind(k).String()] -= c
			}
		}
		return nil
	}
	if opts.OutcomeLog != "" {
		recs := make([]*outcome.Record, len(outs))
		for i, o := range outs {
			recs[i] = o.rec
		}
		err = outcome.Append(prevLog, opts.OutcomeLog, recs, observe)
	} else {
		inUpdate := make(map[int]bool, len(touched))
		for _, id := range touched {
			inUpdate[id] = true
		}
		err = outcome.Scan(prevLog, func(rec *outcome.Record) error {
			return observe(rec, inUpdate[rec.UserID])
		})
	}
	if err != nil {
		return nil, fmt.Errorf("geosocial: update: %w", err)
	}
	if len(pending) > 0 {
		miss := make([]int, 0, len(pending))
		for id := range pending {
			miss = append(miss, id)
		}
		sort.Ints(miss)
		return nil, fmt.Errorf("geosocial: update: previous outcome log has no record for touched user %d", miss[0])
	}
	truth.SubtractCounts(stale.Counts())

	// Add the recomputed contributions: an existing user back into its
	// home shard, a brand-new user into the appended shard introducing
	// it.
	for i, o := range outs {
		id := touched[i]
		home, existing := homeShard[id]
		if !existing {
			home = newHome[id]
		}
		res.Shards[home].Users++
		res.Shards[home].Partition.Add(o.out)
		for _, k := range o.cls.Kinds {
			res.Taxonomy[k.String()]++
		}
		truth.Add(o.out)
		if opts.validated != nil {
			opts.validated(id)
		}
	}
	for k, c := range res.Taxonomy {
		if c < 0 {
			return nil, fmt.Errorf("geosocial: update: taxonomy count %q went negative", k)
		}
		if c == 0 {
			delete(res.Taxonomy, k)
		}
	}
	for i := old; i < len(ss.Manifest.Shards); i++ {
		if want := ss.Manifest.Shards[i].NewUsers; res.Shards[i].Users != want {
			return nil, fmt.Errorf("geosocial: delta shard %s introduced %d new users, manifest says %d",
				ss.Manifest.Shards[i].File, res.Shards[i].Users, want)
		}
	}
	for i := range res.Shards {
		res.Users += res.Shards[i].Users
		res.Partition.Merge(res.Shards[i].Partition)
	}
	if res.Users != ss.Manifest.Users {
		return nil, fmt.Errorf("geosocial: update: %d users after update, manifest says %d",
			res.Users, ss.Manifest.Users)
	}
	if truth.Labeled() > 0 {
		sc, err := truth.Score()
		if err != nil {
			return nil, fmt.Errorf("geosocial: %w", err)
		}
		res.Truth = &sc
	}
	return res, nil
}
