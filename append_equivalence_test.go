package geosocial

// Acceptance tests for the live append path: a shard set appended to
// and updated incrementally must be byte-identical — StreamResult JSON
// and outcome log alike — to a cold full validation of the appended
// corpus, for any worker count and any append granularity.

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"geosocial/internal/core"
	"geosocial/internal/outcome"
	"geosocial/internal/trace"
)

// cutUserAt splits one user's traces at cutT: everything strictly
// before stays in the first part, the rest becomes the second. A user
// with no activity at or after cutT is untouched (nil second part); one
// with nothing before has a nil first part.
func cutUserAt(u *trace.User, cutT int64) (before, after *trace.User) {
	gi := sort.Search(len(u.GPS), func(i int) bool { return u.GPS[i].T >= cutT })
	ci := sort.Search(len(u.Checkins), func(i int) bool { return u.Checkins[i].T >= cutT })
	if gi == len(u.GPS) && ci == len(u.Checkins) {
		return u, nil
	}
	if gi == 0 && ci == 0 {
		return nil, u
	}
	before = &trace.User{ID: u.ID, Profile: u.Profile, Days: u.Days, GPS: u.GPS[:gi], Checkins: u.Checkins[:ci]}
	after = &trace.User{ID: u.ID, Profile: u.Profile, Days: u.Days, GPS: u.GPS[gi:], Checkins: u.Checkins[ci:]}
	return before, after
}

func corpusMaxTime(ds *trace.Dataset) int64 {
	maxT := int64(math.MinInt64)
	for _, u := range ds.Users {
		if n := len(u.GPS); n > 0 && u.GPS[n-1].T > maxT {
			maxT = u.GPS[n-1].T
		}
		if n := len(u.Checkins); n > 0 && u.Checkins[n-1].T > maxT {
			maxT = u.Checkins[n-1].T
		}
	}
	return maxT
}

// splitAppendCorpus cuts the study's primary dataset into a base
// dataset plus one or more delta generations, per mode:
//
//   - "day": every user's final synthetic day is appended.
//   - "interleave": every user is cut at its GPS midpoint, so appended
//     data interleaves with the whole corpus timeline.
//   - "subset": only every 3rd user is cut; the rest must not be
//     revalidated by the incremental path.
//   - "twogen": two stacked generations — midpoint and three-quarter
//     cuts.
//
// In every mode, every 7th user is withheld from the base entirely and
// arrives brand-new in the last generation. touched lists the IDs an
// incremental update must revalidate, ascending.
func splitAppendCorpus(t *testing.T, mode string) (base *trace.Dataset, gens [][]*trace.User, touched []int) {
	t.Helper()
	full := getStudy(t).Primary
	maxT := corpusMaxTime(full)
	base = &trace.Dataset{Name: full.Name, POIs: full.POIs}
	nGens := 1
	if mode == "twogen" {
		nGens = 2
	}
	gens = make([][]*trace.User, nGens)
	for i, u := range full.Users {
		if i%7 == 3 { // brand-new: whole user in the last generation
			gens[nGens-1] = append(gens[nGens-1], u)
			touched = append(touched, u.ID)
			continue
		}
		var cuts []int64
		switch mode {
		case "day":
			cuts = []int64{maxT - 86400}
		case "interleave":
			cuts = []int64{u.GPS[len(u.GPS)/2].T}
		case "subset":
			if i%3 != 0 {
				base.Users = append(base.Users, u)
				continue
			}
			cuts = []int64{u.GPS[len(u.GPS)/2].T}
		case "twogen":
			cuts = []int64{u.GPS[len(u.GPS)/2].T, u.GPS[3*len(u.GPS)/4].T}
		default:
			t.Fatalf("unknown mode %q", mode)
		}
		// Peel the user into len(cuts)+1 pieces: parts[0] goes to the
		// base, parts[k] to generation k-1. Any piece may come up empty.
		parts := make([]*trace.User, nGens+1)
		rest := u
		for gi, c := range cuts {
			if rest == nil {
				break
			}
			parts[gi], rest = cutUserAt(rest, c)
		}
		parts[nGens] = rest
		if parts[0] != nil {
			base.Users = append(base.Users, parts[0])
		}
		was := false
		for k := 1; k <= nGens; k++ {
			if parts[k] != nil {
				gens[k-1] = append(gens[k-1], parts[k])
				was = true
			}
		}
		if was || parts[0] == nil {
			touched = append(touched, u.ID)
		}
	}
	sort.Ints(touched)
	for gi, g := range gens {
		if len(g) == 0 {
			t.Fatalf("mode %q: generation %d is empty", mode, gi)
		}
	}
	if len(base.Users) == 0 {
		t.Fatalf("mode %q: base corpus is empty", mode)
	}
	return base, gens, touched
}

// applyAppend appends one generation of delta users to the shard set.
func applyAppend(t *testing.T, manifest string, users []*trace.User) {
	t.Helper()
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if err := aw.WriteUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
}

func resultJSON(t *testing.T, res *StreamResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteIndentedJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAppendEquivalence is the tentpole acceptance contract: for every
// append granularity, an appended-then-updated run — gen by gen and as
// one multi-generation jump — produces a StreamResult JSON document and
// an outcome log byte-identical to a cold full validation of the
// appended corpus, for worker counts {1, 8}; and the cold generational
// validation itself matches the unsplit single-file corpus.
func TestAppendEquivalence(t *testing.T) {
	// The unsplit reference: the whole primary corpus as one file.
	full := getStudy(t).Primary
	refDir := t.TempDir()
	refPath := filepath.Join(refDir, "full.bin")
	if err := full.SaveFile(refPath); err != nil {
		t.Fatal(err)
	}
	refLog := filepath.Join(refDir, "full.gso")
	ref, err := ValidateFileOpts(refPath, StreamOptions{Workers: 1, OutcomeLog: refLog})
	if err != nil {
		t.Fatal(err)
	}
	refLogBytes := readFile(t, refLog)

	for _, mode := range []string{"day", "interleave", "subset", "twogen"} {
		t.Run(mode, func(t *testing.T) {
			base, gens, _ := splitAppendCorpus(t, mode)
			dir := t.TempDir()
			manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			prevLog := filepath.Join(dir, "gen0.gso")
			prev, err := ValidateFileOpts(manifest, StreamOptions{Workers: 1, OutcomeLog: prevLog})
			if err != nil {
				t.Fatal(err)
			}

			// Append and update generation by generation.
			seqRes, seqLog := prev, prevLog
			for gi, gen := range gens {
				applyAppend(t, manifest, gen)
				log := filepath.Join(dir, fmt.Sprintf("seq-%d.gso", gi))
				seqRes, err = UpdateValidation(manifest, seqRes, seqLog, StreamOptions{Workers: 1, OutcomeLog: log})
				if err != nil {
					t.Fatal(err)
				}
				seqLog = log
			}
			seqJSON, seqLogBytes := resultJSON(t, seqRes), readFile(t, seqLog)

			var lastCold *StreamResult
			for _, workers := range []int{1, 8} {
				coldLog := filepath.Join(dir, fmt.Sprintf("cold-%d.gso", workers))
				cold, err := ValidateFileOpts(manifest, StreamOptions{Workers: workers, OutcomeLog: coldLog})
				if err != nil {
					t.Fatal(err)
				}
				lastCold = cold
				coldJSON := resultJSON(t, cold)
				if !bytes.Equal(coldJSON, seqJSON) {
					t.Fatalf("workers=%d: cold JSON differs from sequential update:\ncold:\n%s\nupdate:\n%s",
						workers, coldJSON, seqJSON)
				}
				if !bytes.Equal(readFile(t, coldLog), seqLogBytes) {
					t.Fatalf("workers=%d: cold outcome log differs from sequential update", workers)
				}

				// One-shot multi-generation update from the gen-0 result.
				osLog := filepath.Join(dir, fmt.Sprintf("oneshot-%d.gso", workers))
				oneshot, err := UpdateValidation(manifest, prev, prevLog, StreamOptions{Workers: workers, OutcomeLog: osLog})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(resultJSON(t, oneshot), coldJSON) {
					t.Fatalf("workers=%d: one-shot update JSON differs from cold", workers)
				}
				if !bytes.Equal(readFile(t, osLog), seqLogBytes) {
					t.Fatalf("workers=%d: one-shot update outcome log differs from cold", workers)
				}
			}

			// The cold generational aggregate equals the unsplit corpus
			// (shard layout and generation are provenance, not content).
			agg := *lastCold
			agg.Shards, agg.Generation = nil, 0
			if !reflect.DeepEqual(&agg, ref) {
				t.Errorf("cold generational aggregate differs from unsplit corpus:\n got %+v\nwant %+v", &agg, ref)
			}
			// And the outcome log is the unsplit corpus's, byte for byte.
			if !bytes.Equal(seqLogBytes, refLogBytes) {
				t.Error("updated outcome log differs from the unsplit corpus's log")
			}
		})
	}
}

// TestIncrementalUpdateRevalidatesOnlyTouched pins the N-of-M contract
// by counting, not timing: the incremental path validates exactly the
// touched users, while a cold run validates all of them.
func TestIncrementalUpdateRevalidatesOnlyTouched(t *testing.T) {
	full := getStudy(t).Primary
	base, gens, touched := splitAppendCorpus(t, "subset")
	dir := t.TempDir()
	manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	prevLog := filepath.Join(dir, "gen0.gso")
	prev, err := ValidateFileOpts(manifest, StreamOptions{Workers: 1, OutcomeLog: prevLog})
	if err != nil {
		t.Fatal(err)
	}
	applyAppend(t, manifest, gens[0])

	var got []int
	updLog := filepath.Join(dir, "upd.gso")
	if _, err := UpdateValidation(manifest, prev, prevLog, StreamOptions{
		Workers:    1,
		OutcomeLog: updLog,
		validated:  func(id int) { got = append(got, id) },
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, touched) {
		t.Errorf("incremental run validated %v, want exactly the touched set %v", got, touched)
	}
	if len(got) >= len(full.Users) {
		t.Errorf("incremental run validated %d of %d users — not incremental", len(got), len(full.Users))
	}

	var all []int
	if _, err := ValidateFileOpts(manifest, StreamOptions{
		Workers:   1,
		validated: func(id int) { all = append(all, id) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) != len(full.Users) {
		t.Errorf("cold run validated %d users, corpus has %d", len(all), len(full.Users))
	}
}

// TestUpdateValidationErrors covers the guard rails: stale manifests,
// mismatched identity, and a previous log missing a touched user.
func TestUpdateValidationErrors(t *testing.T) {
	base, gens, touched := splitAppendCorpus(t, "subset")
	dir := t.TempDir()
	manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	prevLog := filepath.Join(dir, "gen0.gso")
	prev, err := ValidateFileOpts(manifest, StreamOptions{Workers: 1, OutcomeLog: prevLog})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := UpdateValidation(manifest, prev, prevLog, StreamOptions{}); err == nil ||
		!strings.Contains(err.Error(), "not newer") {
		t.Errorf("update against un-appended manifest: %v", err)
	}
	if _, err := UpdateValidation(manifest, prev, "", StreamOptions{}); err == nil ||
		!strings.Contains(err.Error(), "outcome log required") {
		t.Errorf("update without previous log: %v", err)
	}

	applyAppend(t, manifest, gens[0])

	bad := *prev
	bad.Name = "other"
	if _, err := UpdateValidation(manifest, &bad, prevLog, StreamOptions{}); err == nil ||
		!strings.Contains(err.Error(), "previous result") {
		t.Errorf("mismatched dataset name: %v", err)
	}
	bad = *prev
	bad.Shards = append([]ShardStat(nil), prev.Shards...)
	bad.Shards[0].Path = "not-a-shard.gsb"
	if _, err := UpdateValidation(manifest, &bad, prevLog, StreamOptions{}); err == nil ||
		!strings.Contains(err.Error(), "previous result has") {
		t.Errorf("mismatched shard prefix: %v", err)
	}

	// A previous log missing a touched existing user is an error, never
	// a silently wrong subtraction. (Brand-new users are legitimately
	// absent, so drop a record of a cut — existing — user.)
	victim := -1
	for _, id := range touched {
		for _, u := range base.Users {
			if u.ID == id {
				victim = id
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no touched existing user in scenario")
	}
	holed := filepath.Join(dir, "holed.gso")
	w, err := outcome.Create(holed, prev.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := outcome.Scan(prevLog, func(rec *outcome.Record) error {
		if rec.UserID == victim {
			return nil
		}
		return w.Write(rec)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateValidation(manifest, prev, holed, StreamOptions{Workers: 1}); err == nil ||
		!strings.Contains(err.Error(), "no record for touched user") {
		t.Errorf("holed previous log: %v", err)
	}
}
