package geosocial

import (
	"path/filepath"
	"reflect"
	"testing"

	"geosocial/internal/trace"
)

// TestValidateFileStreamingMatchesInMemory is the PR's acceptance
// contract: streaming validation of a binary dataset file produces
// byte-identical Partition and Breakdown output to the in-memory path
// over the JSON encoding of the same dataset, for workers 1 and 8.
func TestValidateFileStreamingMatchesInMemory(t *testing.T) {
	s := getStudy(t)
	dir := t.TempDir()

	// One binary round trip puts the dataset on the codec's E7 coordinate
	// grid, so the JSON and binary files below hold the same values.
	binPath := filepath.Join(dir, "primary.bin.gz")
	if err := s.Primary.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	onGrid, err := trace.LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "primary.json.gz")
	if err := onGrid.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}

	// In-memory reference: the JSON file through the legacy path.
	fromJSON, err := LoadDataset(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ValidateDatasetWorkers(fromJSON, 1)
	if err != nil {
		t.Fatal(err)
	}
	refTruth, err := ref.TruthScore()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		for _, path := range []string{binPath, jsonPath} {
			got, err := ValidateFileWorkers(path, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Partition != ref.Partition {
				t.Errorf("workers=%d %s: partition %+v, want %+v",
					workers, filepath.Base(path), got.Partition, ref.Partition)
			}
			if !reflect.DeepEqual(got.Taxonomy, ref.Breakdown()) {
				t.Errorf("workers=%d %s: taxonomy %v, want %v",
					workers, filepath.Base(path), got.Taxonomy, ref.Breakdown())
			}
			if got.Users != len(onGrid.Users) {
				t.Errorf("workers=%d %s: %d users, want %d",
					workers, filepath.Base(path), got.Users, len(onGrid.Users))
			}
			if got.Name != "primary" {
				t.Errorf("workers=%d %s: name %q", workers, filepath.Base(path), got.Name)
			}
			if got.Truth == nil {
				t.Errorf("workers=%d %s: no truth score for labeled data", workers, filepath.Base(path))
			} else if *got.Truth != refTruth {
				t.Errorf("workers=%d %s: truth %+v, want %+v",
					workers, filepath.Base(path), *got.Truth, refTruth)
			}
		}
	}
}

// TestValidateFileErrors covers the failure paths of the streaming entry
// point.
func TestValidateFileErrors(t *testing.T) {
	if _, err := ValidateFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}
