// Detector: the paper's §7 open problem — detecting extraneous checkins
// without GPS ground truth. This example sweeps the burstiness detector's
// gap threshold, prints the precision/recall trade-off, and contrasts it
// with the §5.3 user-level filtering dilemma (dropping the worst users
// sacrifices half the honest checkins).
package main

import (
	"fmt"
	"log"
	"time"

	"geosocial"
)

func main() {
	log.SetFlags(0)

	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Validate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("burstiness detector: flag checkins whose nearest same-user")
	fmt.Println("checkin lies within the gap threshold (no GPS needed)")
	fmt.Printf("\n%-10s %-10s %-8s %-6s\n", "gap", "precision", "recall", "F1")
	for _, gap := range []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		10 * time.Minute, 30 * time.Minute,
	} {
		sc := res.BurstDetector(gap)
		fmt.Printf("%-10v %-10.3f %-8.3f %-6.3f\n", gap, sc.Precision(), sc.Recall(), sc.F1())
	}

	// The §7 "machine learning techniques" suggestion, implemented: a
	// logistic-regression detector over trace-local features, evaluated
	// with user-grouped cross-validation.
	if sc, err := res.TrainDetector(5); err == nil {
		fmt.Printf("\nlearned detector (5-fold CV): precision %.3f recall %.3f F1 %.3f\n",
			sc.Precision(), sc.Recall(), sc.F1())
	}

	// The paper's alternative — filtering whole users — and its cost.
	ft := res.FilterTradeoff()
	fmt.Println("\nuser-level filtering (§5.3): removing the worst offenders")
	fmt.Printf("%-22s %-15s %s\n", "extraneous removed", "users dropped", "honest lost")
	for _, target := range []float64{0.5, 0.8, 0.95} {
		dropped, lost := ft.HonestLossAt(target)
		fmt.Printf("%-22s %-15d %.0f%%\n", fmt.Sprintf(">= %.0f%%", 100*target), dropped, 100*lost)
	}
	fmt.Println("\npaper: removing the users behind 80% of extraneous checkins")
	fmt.Println("would also discard 53% of honest checkins — per-user filtering")
	fmt.Println("cannot save the trace; per-checkin detection is required.")
}
