// Detector: the paper's §7 open problem — detecting extraneous checkins
// without GPS ground truth — run end to end through the columnar
// outcome log. The example generates a study, saves it as a binary
// dataset, validates it with an outcome sink (one compact GSO1 record
// per user, no outcomes retained in memory), and then trains and
// evaluates the detectors from the log alone: exactly the flow a
// production deployment would use on a dataset too large for RAM, and
// the results are exactly equal to the in-memory path.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"geosocial"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small study and save it as a streaming binary file.
	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "detector-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataset := filepath.Join(dir, "primary.bin.gz")
	if err := study.Primary.SaveFile(dataset); err != nil {
		log.Fatal(err)
	}

	// 2. Validate the file with an outcome sink: per-user outcomes are
	// distilled into the log and discarded — memory stays bounded no
	// matter how large the dataset grows.
	outcomes := filepath.Join(dir, "primary.gso")
	res, err := geosocial.ValidateFileOpts(dataset, geosocial.StreamOptions{OutcomeLog: outcomes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated %d users: %v\n", res.Users, res.Partition)
	fmt.Printf("outcome log: %s\n\n", outcomes)

	// 3. Train and evaluate the §7 learned detector from the log: the
	// stored feature vectors are bit-identical to what live extraction
	// produces, so this is the same detector the in-memory path trains.
	det, err := geosocial.AnalyzeOutcomes(outcomes, geosocial.AnalysisDetector)
	if err != nil {
		log.Fatal(err)
	}
	d := det.Detector
	fmt.Printf("learned detector (%d-fold CV over %d checkins):\n", d.Folds, d.Examples)
	fmt.Printf("  precision %.3f recall %.3f F1 %.3f accuracy %.3f\n", d.Precision, d.Recall, d.F1, d.Accuracy)
	fmt.Printf("burstiness baseline (gap %.0fs): precision %.3f recall %.3f F1 %.3f\n\n",
		d.Burst.GapSeconds, d.Burst.Precision, d.Burst.Recall, d.Burst.F1)

	// 4. The paper's alternative — filtering whole users — and its cost,
	// from the same log.
	tr, err := geosocial.AnalyzeOutcomes(outcomes, geosocial.AnalysisTradeoff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user-level filtering (§5.3): removing the worst offenders")
	fmt.Printf("%-22s %-15s %s\n", "extraneous removed", "users dropped", "honest lost")
	for _, tg := range tr.Tradeoff.Targets {
		fmt.Printf("%-22s %-15d %.0f%%\n",
			fmt.Sprintf(">= %.0f%%", 100*tg.TargetExtraneous), tg.UsersDropped, 100*tg.HonestLost)
	}
	fmt.Println("\npaper: removing the users behind 80% of extraneous checkins")
	fmt.Println("would also discard 53% of honest checkins — per-user filtering")
	fmt.Println("cannot save the trace; per-checkin detection is required.")
}
