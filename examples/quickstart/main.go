// Quickstart: generate a small synthetic study, run the full validation
// pipeline and print the paper's headline findings — the Figure 1
// partition, the §5.1 taxonomy, and the matcher's score against the
// generator's ground truth. It finishes by spinning up an in-process
// validation server (the same service cmd/geoserve runs), uploading the
// dataset over HTTP, and fetching the cached partition back — which is
// byte-identical to the in-process result.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"geosocial"
)

func main() {
	log.SetFlags(0)

	// A 10% scale study (~24 primary users) keeps this example fast.
	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d primary users and %d baseline users\n",
		len(study.Primary.Users), len(study.Baseline.Users))

	res, err := study.Validate()
	if err != nil {
		log.Fatal(err)
	}

	p := res.Partition
	fmt.Println("\n--- Figure 1: matching partition ---")
	fmt.Printf("honest checkins:      %5d\n", p.Honest)
	fmt.Printf("extraneous checkins:  %5d  (%.0f%% of checkins; paper: 75%%)\n",
		p.Extraneous, 100*p.ExtraneousRatio())
	fmt.Printf("missing checkins:     %5d  (%.0f%% of visits; paper: 89%%)\n",
		p.Missing, 100*p.MissingRatio())
	fmt.Printf("visit coverage:        %.1f%%  (paper: ~10%%)\n", 100*p.CoverageRatio())

	fmt.Println("\n--- Section 5.1: extraneous checkin taxonomy ---")
	for kind, n := range res.Breakdown() {
		fmt.Printf("%-12s %5d\n", kind, n)
	}

	// Synthetic data carries ground-truth labels, so the validator can
	// be scored — something the paper could not do with real users.
	if sc, err := res.TruthScore(); err == nil {
		fmt.Printf("\nmatcher vs ground truth: accuracy %.1f%%, honest precision %.1f%%, recall %.1f%%\n",
			100*sc.Accuracy, 100*sc.HonestP, 100*sc.HonestR)
	}

	// --- The same pipeline, as a service ---
	// Save the dataset, start the validation server in-process, upload
	// the file over HTTP, and read the cached partition back. This is
	// exactly what `geoserve -spool ...` serves; see docs/API.md.
	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataset := filepath.Join(dir, "primary.bin.gz")
	if err := study.Primary.SaveFile(dataset); err != nil {
		log.Fatal(err)
	}

	srv, err := geosocial.NewServer(geosocial.ServerOptions{
		SpoolDir:     filepath.Join(dir, "spool"),
		PollInterval: -1, // no directory watching needed; we upload
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv) //nolint:errcheck // quickstart server dies with the process
	base := "http://" + ln.Addr().String()

	f, err := os.Open(dataset)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/datasets?wait=1", "application/octet-stream", f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	job, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- Served over HTTP (geoserve) ---\n")
	fmt.Printf("POST /v1/datasets?wait=1 -> %s\n%s", resp.Status, job)

	// The served partition is byte-identical to geovalidate -json on
	// the same file, and it comes straight from the result cache
	// (X-Cache: hit) — validation already ran during the upload.
	id := resp.Header.Get("Location")
	resp, err = http.Get(base + id + "/partition")
	if err != nil {
		log.Fatal(err)
	}
	part, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET %s/partition (X-Cache: %s)\n%s", id, resp.Header.Get("X-Cache"), part)
}
