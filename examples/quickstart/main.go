// Quickstart: generate a small synthetic study, run the full validation
// pipeline and print the paper's headline findings — the Figure 1
// partition, the §5.1 taxonomy, and the matcher's score against the
// generator's ground truth.
package main

import (
	"fmt"
	"log"

	"geosocial"
)

func main() {
	log.SetFlags(0)

	// A 10% scale study (~24 primary users) keeps this example fast.
	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d primary users and %d baseline users\n",
		len(study.Primary.Users), len(study.Baseline.Users))

	res, err := study.Validate()
	if err != nil {
		log.Fatal(err)
	}

	p := res.Partition
	fmt.Println("\n--- Figure 1: matching partition ---")
	fmt.Printf("honest checkins:      %5d\n", p.Honest)
	fmt.Printf("extraneous checkins:  %5d  (%.0f%% of checkins; paper: 75%%)\n",
		p.Extraneous, 100*p.ExtraneousRatio())
	fmt.Printf("missing checkins:     %5d  (%.0f%% of visits; paper: 89%%)\n",
		p.Missing, 100*p.MissingRatio())
	fmt.Printf("visit coverage:        %.1f%%  (paper: ~10%%)\n", 100*p.CoverageRatio())

	fmt.Println("\n--- Section 5.1: extraneous checkin taxonomy ---")
	for kind, n := range res.Breakdown() {
		fmt.Printf("%-12s %5d\n", kind, n)
	}

	// Synthetic data carries ground-truth labels, so the validator can
	// be scored — something the paper could not do with real users.
	if sc, err := res.TruthScore(); err == nil {
		fmt.Printf("\nmatcher vs ground truth: accuracy %.1f%%, honest precision %.1f%%, recall %.1f%%\n",
			100*sc.Accuracy, 100*sc.HonestP, 100*sc.HonestR)
	}
}
