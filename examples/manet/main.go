// MANET: the §6 application-impact experiment end to end — fit Levy-walk
// mobility models to the GPS, honest-checkin and all-checkin traces, run
// an AODV mobile ad hoc network under each, and compare the three paper
// metrics. The takeaway reproduced here: traces built from checkins give
// materially wrong answers about network performance, and even removing
// every extraneous checkin does not fix them.
package main

import (
	"fmt"
	"log"

	"geosocial"
	"geosocial/internal/stats"
)

func main() {
	log.SetFlags(0)

	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.15, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Validate()
	if err != nil {
		log.Fatal(err)
	}

	models, err := res.MobilityModels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fitted Levy-walk models (Figure 7):")
	fmt.Printf("  %v\n  %v\n  %v\n", models.GPS, models.Honest, models.All)

	// A reduced arena keeps the example under a minute; cmd/manetsim
	// runs the paper's full 200-node hour.
	outs, err := res.RunMANET(geosocial.MANETConfig{
		Nodes: 80, Flows: 40, Duration: 900, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nMANET metrics (Figure 8), mean over flows:")
	fmt.Printf("%-16s %-13s %-13s %-18s\n", "model", "changes/min", "availability", "overhead (median)")
	var gpsAvail, honestAvail float64
	for _, o := range outs {
		m := o.Metrics
		avail := stats.Mean(m.Availability)
		fmt.Printf("%-16s %-13.3f %-13.3f %-18.2f\n",
			o.Model, stats.Mean(m.RouteChangesPerMin), avail, stats.Quantile(m.Overhead, 0.5))
		switch o.Model {
		case "gps":
			gpsAvail = avail
		case "honest-checkin":
			honestAvail = avail
		}
	}
	if gpsAvail > 0 {
		fmt.Printf("\nhonest-checkin availability is %.1fx the GPS ground truth", honestAvail/gpsAvail)
		fmt.Println(" (paper: ~2x) —")
		fmt.Println("a trace-driven study would overestimate route stability even after")
		fmt.Println("perfectly filtering all fake checkins, because the missing checkins")
		fmt.Println("(commutes, routine stops) hide most of the real movement.")
	}
}
