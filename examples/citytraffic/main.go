// Citytraffic: the §6 discussion's city-planning scenario. A planner
// estimating commute traffic between residential areas and offices from
// checkin data (as Tampa's master plan proposed with Foursquare data)
// undercounts those trips badly, because home and office are exactly the
// "boring" places users never check in at. This example measures
// origin–destination trip counts between POI categories from the GPS
// ground truth, the full checkin trace, and the honest subset.
package main

import (
	"fmt"
	"log"
	"time"

	"geosocial"
	"geosocial/internal/core"
	"geosocial/internal/poi"
	"geosocial/internal/trace"
)

// tripKind classifies an origin–destination pair of categories.
func tripKind(from, to poi.Category) string {
	isHome := func(c poi.Category) bool { return c == poi.Residence }
	isWork := func(c poi.Category) bool { return c == poi.Professional || c == poi.College }
	switch {
	case isHome(from) && isWork(to), isWork(from) && isHome(to):
		return "commute (home<->work)"
	case isHome(from) || isHome(to):
		return "home<->other"
	default:
		return "other<->other"
	}
}

// maxTripGap bounds the time between consecutive observations treated as
// one trip.
const maxTripGap = 4 * time.Hour

// visitTrips counts trips between consecutive GPS visits.
func visitTrips(outs []core.UserOutcome, counts map[string]float64) {
	for _, o := range outs {
		for i := 1; i < len(o.Visits); i++ {
			a, b := o.Visits[i-1], o.Visits[i]
			if time.Duration(b.Start-a.End)*time.Second > maxTripGap {
				continue
			}
			counts[tripKind(a.Category, b.Category)]++
		}
	}
}

// checkinTrips counts trips between consecutive checkins (all or honest).
func checkinTrips(outs []core.UserOutcome, honestOnly bool, counts map[string]float64) {
	for _, o := range outs {
		matched := map[int]bool{}
		for _, m := range o.Match.Matches {
			matched[m.CheckinIdx] = true
		}
		var prev *trace.Checkin
		for i := range o.User.Checkins {
			c := &o.User.Checkins[i]
			if honestOnly && !matched[i] {
				continue
			}
			if prev != nil && time.Duration(c.T-prev.T)*time.Second <= maxTripGap {
				counts[tripKind(prev.Category, c.Category)]++
			}
			prev = c
		}
	}
}

func main() {
	log.SetFlags(0)

	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.15, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Validate()
	if err != nil {
		log.Fatal(err)
	}

	gps := map[string]float64{}
	all := map[string]float64{}
	honest := map[string]float64{}
	visitTrips(res.Outcomes, gps)
	checkinTrips(res.Outcomes, false, all)
	checkinTrips(res.Outcomes, true, honest)

	var userDays float64
	for _, u := range study.Primary.Users {
		userDays += u.Days
	}

	fmt.Println("origin-destination trips per user-day, by data source:")
	fmt.Printf("%-24s %-10s %-13s %-15s\n", "trip class", "GPS truth", "all checkins", "honest checkins")
	for _, k := range []string{"commute (home<->work)", "home<->other", "other<->other"} {
		fmt.Printf("%-24s %-10.2f %-13.2f %-15.2f\n",
			k, gps[k]/userDays, all[k]/userDays, honest[k]/userDays)
	}

	commuteGPS := gps["commute (home<->work)"]
	commuteAll := all["commute (home<->work)"]
	if commuteGPS > 0 {
		fmt.Printf("\ncheckin data captures %.1f%% of real commute trips —\n",
			100*commuteAll/commuteGPS)
		fmt.Println("a planner sizing roads between residential areas and offices from")
		fmt.Println("geosocial traces would underestimate exactly the traffic that")
		fmt.Println("matters (the paper's Tampa example).")
	}
}
