// Friendrec: the §6 discussion's friendship-recommendation scenario.
// Link-prediction systems on LBSNs suggest friends from physical
// co-location ("you two keep visiting the same places at the same time").
// Fake checkins manufacture co-locations that never happened: two badge
// hunters "checking in" at the same trendy bar from their homes look like
// companions. This example builds co-location pairs from checkin data and
// scores them against GPS ground truth.
package main

import (
	"fmt"
	"log"
	"sort"

	"geosocial"
	"geosocial/internal/core"
	"geosocial/internal/geo"
)

// event is one located observation of one user.
type event struct {
	user int
	t    int64
	loc  geo.LatLon
}

// colocations counts, per user pair, events within coWindow seconds and
// coRadius meters of each other.
func colocations(events []event) map[[2]int]int {
	const (
		coWindow = 1800 // seconds
		coRadius = 250  // meters
	)
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	out := map[[2]int]int{}
	for i := range events {
		for j := i + 1; j < len(events); j++ {
			if events[j].t-events[i].t > coWindow {
				break
			}
			a, b := events[i], events[j]
			if a.user == b.user {
				continue
			}
			if geo.Distance(a.loc, b.loc) > coRadius {
				continue
			}
			key := [2]int{a.user, b.user}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			out[key]++
		}
	}
	return out
}

// topPairs returns the n pairs with the most co-locations (at least 2).
func topPairs(co map[[2]int]int, n int) [][2]int {
	type kv struct {
		k [2]int
		v int
	}
	var kvs []kv
	for k, v := range co {
		if v >= 2 {
			kvs = append(kvs, kv{k, v})
		}
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k[0]*10000+kvs[i].k[1] < kvs[j].k[0]*10000+kvs[j].k[1]
	})
	if len(kvs) > n {
		kvs = kvs[:n]
	}
	out := make([][2]int, len(kvs))
	for i, e := range kvs {
		out[i] = e.k
	}
	return out
}

func gatherCheckinEvents(outs []core.UserOutcome, honestOnly bool) []event {
	var evs []event
	for _, o := range outs {
		matched := map[int]bool{}
		for _, m := range o.Match.Matches {
			matched[m.CheckinIdx] = true
		}
		for i, c := range o.User.Checkins {
			if honestOnly && !matched[i] {
				continue
			}
			evs = append(evs, event{user: o.User.ID, t: c.T, loc: c.Loc})
		}
	}
	return evs
}

func gatherVisitEvents(outs []core.UserOutcome) []event {
	var evs []event
	for _, o := range outs {
		for _, v := range o.Visits {
			evs = append(evs, event{user: o.User.ID, t: (v.Start + v.End) / 2, loc: v.Loc})
		}
	}
	return evs
}

func main() {
	log.SetFlags(0)

	study, err := geosocial.GenerateStudy(geosocial.StudyConfig{Scale: 0.20, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Validate()
	if err != nil {
		log.Fatal(err)
	}

	truth := colocations(gatherVisitEvents(res.Outcomes))
	fromAll := colocations(gatherCheckinEvents(res.Outcomes, false))
	fromHonest := colocations(gatherCheckinEvents(res.Outcomes, true))

	const topN = 20
	score := func(name string, co map[[2]int]int) {
		pairs := topPairs(co, topN)
		real := 0
		for _, p := range pairs {
			if truth[p] >= 2 {
				real++
			}
		}
		if len(pairs) == 0 {
			fmt.Printf("%-22s no candidate pairs\n", name)
			return
		}
		fmt.Printf("%-22s %3d suggestions, %3d physically real (precision %.0f%%)\n",
			name, len(pairs), real, 100*float64(real)/float64(len(pairs)))
	}

	fmt.Printf("friend suggestions from top-%d co-location pairs:\n\n", topN)
	score("all checkins", fromAll)
	score("honest checkins", fromHonest)
	fmt.Printf("\nground truth has %d physically co-located pairs (GPS visits)\n", len(truth))
	fmt.Println("\nremote and superfluous checkins fabricate co-location evidence, so")
	fmt.Println("recommendations driven by raw checkin traces suggest people who were")
	fmt.Println("never in the same place (the paper's §6 warning).")
}
