package geosocial

// TestInstrumentationPreservesBytes is the observability layer's hard
// acceptance contract: attaching a span collector must not change a
// single output byte. The StreamResult JSON document and the GSO1
// outcome log of an instrumented run are compared byte-for-byte against
// an uninstrumented run, for a single binary file and a shard-set
// manifest, at workers 1 and 8.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"geosocial/internal/core"
	"geosocial/internal/obs"
	"geosocial/internal/trace"
)

func TestInstrumentationPreservesBytes(t *testing.T) {
	s := getStudy(t)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "primary.bin.gz")
	if err := s.Primary.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	manifest, err := s.Primary.SaveShards(t.TempDir(), trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	// runOnce validates in with or without a span collector and returns
	// the result's JSON document and the outcome log bytes.
	runOnce := func(t *testing.T, in string, workers int, spans *obs.Collector) (doc, gso []byte) {
		t.Helper()
		logPath := filepath.Join(t.TempDir(), "out.gso")
		res, err := ValidateFileOpts(in, StreamOptions{
			Workers:    workers,
			OutcomeLog: logPath,
			Spans:      spans,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := core.WriteIndentedJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		gso, err = os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), gso
	}

	for _, in := range []string{binPath, manifest} {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("%s/workers=%d", filepath.Base(in), workers)
			t.Run(name, func(t *testing.T) {
				plainDoc, plainGSO := runOnce(t, in, workers, nil)
				spans := obs.NewCollector()
				instrDoc, instrGSO := runOnce(t, in, workers, spans)

				if !bytes.Equal(plainDoc, instrDoc) {
					t.Error("StreamResult JSON differs between instrumented and uninstrumented runs")
				}
				if !bytes.Equal(plainGSO, instrGSO) {
					t.Error("outcome log bytes differ between instrumented and uninstrumented runs")
				}

				// Guard against a vacuous pass: the collector must have
				// seen real pipeline work.
				rep := spans.Report()
				if len(rep.Stages) == 0 || rep.TotalOps == 0 {
					t.Fatalf("collector recorded no spans: %+v", rep)
				}
				for _, want := range []string{"decode", "match", "classify"} {
					found := false
					for _, st := range rep.Stages {
						if st.Stage == want {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("stage %q missing from span report (got %+v)", want, rep.Stages)
					}
				}
			})
		}
	}
}
