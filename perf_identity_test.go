package geosocial

// Acceptance tests for the hot-path optimization work: the memory-mapped
// reader and the buffered streaming reader must be interchangeable at
// the byte level. For single-file, sharded and appended corpora, any
// worker count, mmap on or off, the StreamResult JSON document and the
// outcome log must come out identical.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"geosocial/internal/trace"
)

func TestMmapFallbackByteIdentity(t *testing.T) {
	orig := trace.SetMmapDisabled(false)
	defer trace.SetMmapDisabled(orig)

	full := getStudy(t).Primary
	dir := t.TempDir()

	filePath := filepath.Join(dir, "full.bin")
	if err := full.SaveFile(filePath); err != nil {
		t.Fatal(err)
	}

	shardDir := t.TempDir()
	shardManifest, err := full.SaveShards(shardDir, trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	// An appended corpus: base shards plus live-appended generations, so
	// the identity also covers multi-generation shard sets.
	base, gens, _ := splitAppendCorpus(t, "day")
	appDir := t.TempDir()
	appManifest, err := base.SaveShards(appDir, trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, gen := range gens {
		applyAppend(t, appManifest, gen)
	}

	corpora := []struct{ name, path string }{
		{"file", filePath},
		{"sharded", shardManifest},
		{"appended", appManifest},
	}
	for _, c := range corpora {
		t.Run(c.name, func(t *testing.T) {
			var refJSON, refLog []byte
			var refName string
			for _, mmapOff := range []bool{false, true} {
				for _, workers := range []int{1, 8} {
					trace.SetMmapDisabled(mmapOff)
					name := fmt.Sprintf("mmapOff=%v workers=%d", mmapOff, workers)
					log := filepath.Join(dir, fmt.Sprintf("%s-%v-%d.gso", c.name, mmapOff, workers))
					res, err := ValidateFileOpts(c.path, StreamOptions{Workers: workers, OutcomeLog: log})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					gotJSON, gotLog := resultJSON(t, res), readFile(t, log)
					if refJSON == nil {
						refJSON, refLog, refName = gotJSON, gotLog, name
						continue
					}
					if !bytes.Equal(gotJSON, refJSON) {
						t.Fatalf("%s: StreamResult JSON differs from %s:\n got:\n%s\nwant:\n%s",
							name, refName, gotJSON, refJSON)
					}
					if !bytes.Equal(gotLog, refLog) {
						t.Fatalf("%s: outcome log differs from %s", name, refName)
					}
				}
			}
		})
	}
}
