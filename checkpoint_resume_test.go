package geosocial

// Crash/resume coverage for checkpointed sharded validation: a run
// interrupted after k of n shard checkpoints and restarted must
// produce a StreamResult and an outcome log byte-identical to an
// uninterrupted run, skipping exactly the k checkpointed shards. The
// interrupted state is constructed deterministically — k fragments
// copied from a completed donor run into a fresh checkpoint directory
// — which is exactly what a kill between the k-th and (k+1)-th commit
// leaves behind (commits are atomic, so no other on-disk state is
// possible). The CI smoke complements this with a real SIGKILL.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geosocial/internal/checkpoint"
	"geosocial/internal/core"
	"geosocial/internal/serve"
	"geosocial/internal/trace"
)

// resumeCorpus generates a small sharded corpus for resume tests and
// returns its directory, manifest path, and parsed shard set.
func resumeCorpus(t *testing.T, shards int) (string, string, *trace.ShardSet) {
	t.Helper()
	study, err := GenerateStudy(StudyConfig{Scale: 0.05, Seed: 11})
	if err != nil {
		t.Fatalf("GenerateStudy: %v", err)
	}
	dir := t.TempDir()
	manifest, err := study.Primary.SaveShards(dir, trace.ShardOptions{Shards: shards})
	if err != nil {
		t.Fatalf("SaveShards: %v", err)
	}
	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatalf("OpenShardSet: %v", err)
	}
	return dir, manifest, ss
}

// countingLogf returns a StreamOptions.Logf plus a counter of lines
// containing the given marker.
func countingLogf(marker string) (func(string, ...any), *int) {
	var mu sync.Mutex
	count := new(int)
	return func(format string, args ...any) {
		if strings.Contains(format, marker) {
			mu.Lock()
			*count++
			mu.Unlock()
		}
	}, count
}

// copyCheckpoints re-commits the first k shards' fragments from a
// completed donor store into dst — the on-disk state a crash after k
// atomic commits leaves behind.
func copyCheckpoints(t *testing.T, corpusDir string, ss *trace.ShardSet, donorDir, dstDir, tag string, k int) {
	t.Helper()
	msum := checkpoint.ManifestChecksum(&ss.Manifest)
	donor, err := checkpoint.Open(donorDir, msum, tag)
	if err != nil {
		t.Fatalf("open donor store: %v", err)
	}
	dst, err := checkpoint.Open(dstDir, msum, tag)
	if err != nil {
		t.Fatalf("open dst store: %v", err)
	}
	for i := 0; i < k; i++ {
		sum, err := checkpoint.FileChecksum(filepath.Join(corpusDir, ss.Manifest.Shards[i].File))
		if err != nil {
			t.Fatalf("shard checksum: %v", err)
		}
		frag, err := dst.Begin(sum)
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		meta, ids, err := donor.Load(sum, frag.AddRecord)
		if err != nil || meta == nil {
			t.Fatalf("donor fragment for shard %d: %+v, %v", i, meta, err)
		}
		if err := frag.Commit(meta, ids); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
}

func TestShardedValidationResume(t *testing.T) {
	const shards = 3
	corpusDir, manifest, ss := resumeCorpus(t, shards)
	outDir := t.TempDir()

	// Uninterrupted reference run, no checkpointing.
	baseLog := filepath.Join(outDir, "base.gso")
	baseRes, err := ValidateFileOpts(manifest, StreamOptions{Workers: 4, OutcomeLog: baseLog})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baseJSON, err := baseRes.Encode()
	if err != nil {
		t.Fatal(err)
	}
	baseBytes, err := os.ReadFile(baseLog)
	if err != nil {
		t.Fatal(err)
	}

	// Donor run: checkpointing on, runs to completion, commits every
	// shard. Its result must already match the non-checkpointed run.
	donorDir := filepath.Join(outDir, "donor-ck")
	donorLog := filepath.Join(outDir, "donor.gso")
	logf, wrote := countingLogf("checkpoint written")
	donorRes, err := ValidateFileOpts(manifest, StreamOptions{
		Workers: 4, OutcomeLog: donorLog, CheckpointDir: donorDir, Logf: logf,
	})
	if err != nil {
		t.Fatalf("donor run: %v", err)
	}
	if got, _ := donorRes.Encode(); !bytes.Equal(got, baseJSON) {
		t.Fatalf("checkpointing changed the result:\n%s\nvs\n%s", got, baseJSON)
	}
	if *wrote != shards {
		t.Fatalf("donor run committed %d checkpoints, want %d", *wrote, shards)
	}
	tag := validationFingerprint(StreamOptions{}) + "+log"

	// The kill matrix: resume after k of n checkpoints, under both the
	// serial merge and a parallel pool. Results and log bytes must be
	// identical to the uninterrupted run, and exactly k shards skipped.
	for _, workers := range []int{1, 8} {
		for _, k := range []int{0, 1, shards - 1} {
			ckDir := t.TempDir()
			copyCheckpoints(t, corpusDir, ss, donorDir, ckDir, tag, k)
			logPath := filepath.Join(t.TempDir(), "resumed.gso")
			logf, skips := countingLogf("checkpoint hit")
			res, err := ValidateFileOpts(manifest, StreamOptions{
				Workers: workers, OutcomeLog: logPath, CheckpointDir: ckDir, Logf: logf,
			})
			if err != nil {
				t.Fatalf("workers=%d k=%d: resume: %v", workers, k, err)
			}
			if *skips != k {
				t.Errorf("workers=%d k=%d: skipped %d shards, want %d", workers, k, *skips, k)
			}
			got, err := res.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, baseJSON) {
				t.Errorf("workers=%d k=%d: resumed result differs:\n%s\nvs\n%s", workers, k, got, baseJSON)
			}
			logBytes, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(logBytes, baseBytes) {
				t.Errorf("workers=%d k=%d: resumed outcome log differs (%d vs %d bytes)",
					workers, k, len(logBytes), len(baseBytes))
			}
		}
	}
}

// A corrupt fragment must degrade to revalidating that shard — never a
// wrong result, never a hard failure.
func TestResumeSurvivesCorruptFragment(t *testing.T) {
	const shards = 3
	_, manifest, _ := resumeCorpus(t, shards)
	outDir := t.TempDir()

	ckDir := filepath.Join(outDir, "ck")
	logA := filepath.Join(outDir, "a.gso")
	resA, err := ValidateFileOpts(manifest, StreamOptions{Workers: 4, OutcomeLog: logA, CheckpointDir: ckDir})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	wantJSON, _ := resA.Encode()
	wantLog, err := os.ReadFile(logA)
	if err != nil {
		t.Fatal(err)
	}

	frags, err := filepath.Glob(filepath.Join(ckDir, "ckpt-*.gsf"))
	if err != nil || len(frags) != shards {
		t.Fatalf("found %d fragments, want %d (%v)", len(frags), shards, err)
	}
	data, err := os.ReadFile(frags[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(frags[0], data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}

	logB := filepath.Join(outDir, "b.gso")
	logf, skips := countingLogf("checkpoint hit")
	resB, err := ValidateFileOpts(manifest, StreamOptions{
		Workers: 4, OutcomeLog: logB, CheckpointDir: ckDir, Logf: logf,
	})
	if err != nil {
		t.Fatalf("resume with corrupt fragment: %v", err)
	}
	if *skips != shards-1 {
		t.Errorf("skipped %d shards, want %d (corrupt one revalidates)", *skips, shards-1)
	}
	gotJSON, _ := resB.Encode()
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("result differs after corrupt-fragment recovery")
	}
	gotLog, err := os.ReadFile(logB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotLog, wantLog) {
		t.Errorf("outcome log differs after corrupt-fragment recovery")
	}
	// The revalidation rewrote the fragment: a third run skips all n.
	logf, skips = countingLogf("checkpoint hit")
	if _, err := ValidateFileOpts(manifest, StreamOptions{
		Workers: 4, OutcomeLog: filepath.Join(outDir, "c.gso"), CheckpointDir: ckDir, Logf: logf,
	}); err != nil {
		t.Fatal(err)
	}
	if *skips != shards {
		t.Errorf("after recovery run, skipped %d shards, want %d", *skips, shards)
	}
}

// TestServeResumesInterruptedJob is the service-level end of the
// contract: a job whose validation completes its shard checkpoints but
// then fails (the moral equivalent of a crash mid-publish) keeps its
// checkpoint run directory, and the retry triggered by re-adding the
// dataset skips every checkpointed shard through the real engine.
func TestServeResumesInterruptedJob(t *testing.T) {
	const shards = 3
	study, err := GenerateStudy(StudyConfig{Scale: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	manifest, err := study.Primary.SaveShards(spool, trace.ShardOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}

	logf, skips := countingLogf("checkpoint hit")
	var attempts atomic.Int64
	s, err := serve.New(serve.Config{
		SpoolDir:          spool,
		PollInterval:      -1,
		NoDiskCache:       true,
		RetainCheckpoints: true,
		Validate: func(path string, workers int, outcomeLog, ckDir string) (*core.StreamResult, error) {
			if ckDir == "" {
				t.Error("job ran without a checkpoint dir")
			}
			res, verr := ValidateFileOpts(path, StreamOptions{
				Workers: 2, CheckpointDir: ckDir, Logf: logf,
			})
			if attempts.Add(1) == 1 {
				// Simulated crash after the engine checkpointed every
				// shard but before the job could publish its result.
				return nil, errors.New("interrupted before publish")
			}
			return res, verr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	wait := func(id string) serve.JobInfo {
		deadline := time.Now().Add(60 * time.Second)
		for {
			j, ok := s.Job(id)
			if ok && (j.Status == serve.StatusDone || j.Status == serve.StatusFailed) {
				return j
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish: %+v", id, j)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	info, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if j := wait(info.ID); j.Status != serve.StatusFailed {
		t.Fatalf("first attempt: %+v, want failed", j)
	}
	if *skips != 0 {
		t.Fatalf("first attempt skipped %d shards, want 0", *skips)
	}

	// Re-adding the dataset retries the failed job; the retry must find
	// the first attempt's checkpoints and skip every shard.
	retry, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID != info.ID {
		t.Fatalf("retry got a different job: %s vs %s", retry.ID, info.ID)
	}
	if j := wait(retry.ID); j.Status != serve.StatusDone {
		t.Fatalf("retry: %+v, want done", j)
	}
	if *skips != shards {
		t.Fatalf("retry skipped %d shards, want %d", *skips, shards)
	}
	if attempts.Load() != 2 {
		t.Fatalf("validation ran %d times, want 2", attempts.Load())
	}
}

// Checkpoints are parameter-keyed: fragments written by a logging run
// are invisible to a run with different parameters (here: a different
// alpha), which revalidates everything and still gets the right
// result for its own parameters.
func TestResumeIgnoresMismatchedParams(t *testing.T) {
	const shards = 2
	_, manifest, _ := resumeCorpus(t, shards)
	ckDir := t.TempDir()

	if _, err := ValidateFileOpts(manifest, StreamOptions{Workers: 2, CheckpointDir: ckDir}); err != nil {
		t.Fatalf("seed run: %v", err)
	}

	other := StreamOptions{Workers: 2, CheckpointDir: ckDir}
	other.Params = core.DefaultParams()
	other.Params.Alpha = 250 // non-default matching radius
	logf, skips := countingLogf("checkpoint hit")
	other.Logf = logf
	res, err := ValidateFileOpts(manifest, other)
	if err != nil {
		t.Fatalf("mismatched-params run: %v", err)
	}
	if *skips != 0 {
		t.Errorf("run with different params skipped %d shards, want 0", *skips)
	}
	noCk := other
	noCk.CheckpointDir, noCk.Logf = "", nil
	want, err := ValidateFileOpts(manifest, noCk)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := res.Encode()
	wantJSON, _ := want.Encode()
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("mismatched-params result differs from its own clean run")
	}
}
