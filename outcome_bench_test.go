package geosocial_test

// Benchmarks for the columnar outcome sink and the log-backed analysis
// paths: what outcome capture costs on top of streaming validation, and
// what each §5–§7 analysis costs when it runs from the log instead of
// in-memory outcomes. CI archives both as BENCH_analysis.json.

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geosocial"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

// outcomeBench lazily prepares a shared binary dataset and outcome log
// (dataset generation is the expensive common prefix).
var outcomeBench struct {
	once    sync.Once
	err     error
	dataset string
	logPath string
	users   int
}

func outcomeBenchSetup(b *testing.B) (dataset, logPath string, users int) {
	b.Helper()
	outcomeBench.once.Do(func() {
		ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.1), rng.New(42))
		if err != nil {
			outcomeBench.err = err
			return
		}
		dir, err := os.MkdirTemp("", "geosocial-outcome-bench")
		if err != nil {
			outcomeBench.err = err
			return
		}
		outcomeBench.dataset = filepath.Join(dir, "primary.bin.gz")
		if err := ds.SaveFile(outcomeBench.dataset); err != nil {
			outcomeBench.err = err
			return
		}
		outcomeBench.logPath = filepath.Join(dir, "primary.gso")
		res, err := geosocial.ValidateFileOpts(outcomeBench.dataset, geosocial.StreamOptions{
			OutcomeLog: outcomeBench.logPath,
		})
		if err != nil {
			outcomeBench.err = err
			return
		}
		outcomeBench.users = res.Users
	})
	if outcomeBench.err != nil {
		b.Fatal(outcomeBench.err)
	}
	return outcomeBench.dataset, outcomeBench.logPath, outcomeBench.users
}

// BenchmarkOutcomeSink measures streaming validation with and without
// the outcome sink attached — the capture overhead a production ingest
// pays for analyzable logs.
func BenchmarkOutcomeSink(b *testing.B) {
	dataset, _, users := outcomeBenchSetup(b)
	for _, sink := range []struct {
		name string
		log  bool
	}{{"validate", false}, {"validate+sink", true}} {
		b.Run(sink.name, func(b *testing.B) {
			dir := b.TempDir()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				opts := geosocial.StreamOptions{Workers: 4}
				if sink.log {
					opts.OutcomeLog = filepath.Join(dir, "bench.gso")
				}
				if _, err := geosocial.ValidateFileOpts(dataset, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
		})
	}
}

// BenchmarkAnalyzeFromLog measures each log-backed analysis over a
// prepared outcome log.
func BenchmarkAnalyzeFromLog(b *testing.B) {
	_, logPath, users := outcomeBenchSetup(b)
	for _, kind := range geosocial.AnalysisKinds() {
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := geosocial.AnalyzeOutcomes(logPath, kind); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
		})
	}
}
