package geosocial

// HTTP-level acceptance for the live ingest path: a corpus grown
// through POST /v1/datasets/{id}/append, revalidated incrementally by
// the service, must serve a result document and an outcome log
// byte-identical to a cold CLI-style validation of the appended corpus
// — and the /metrics counter must prove the incremental path (not a
// silent full revalidation) produced them.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"geosocial/internal/serve"
	"geosocial/internal/trace"
)

func TestServerAppendEquivalence(t *testing.T) {
	base, gens, _ := splitAppendCorpus(t, "twogen")
	spool := t.TempDir()
	manifest, err := base.SaveShards(spool, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(ServerOptions{
		SpoolDir:     spool,
		PollInterval: -1, // no watcher: the test controls ingest order
		Outcomes:     true,
		Stream:       StreamOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	info, err := srv.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var job serve.JobInfo
	getJSON(t, ts.URL+"/v1/datasets/"+info.ID+"?wait=1", &job)
	if job.Status != serve.StatusDone {
		t.Fatalf("generation-0 job: %+v", job)
	}

	// Append each generation over the wire as a GSB1 delta stream.
	id := info.ID
	for gi, gen := range gens {
		var buf bytes.Buffer
		sw, err := trace.NewStreamWriter(&buf, base.Name, base.POIs)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range gen {
			if err := sw.WriteUser(u); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/datasets/"+id+"/append?wait=1",
			"application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var grown serve.JobInfo
		code := resp.StatusCode
		decodeJSON(t, resp.Body, &grown)
		if code != http.StatusOK || grown.Status != serve.StatusDone {
			t.Fatalf("append generation %d: code=%d job=%+v", gi+1, code, grown)
		}
		if grown.ID == id {
			t.Fatalf("append generation %d kept the dataset ID", gi+1)
		}
		id = grown.ID
	}

	// The cold reference: a from-scratch validation of the manifest the
	// appends grew, exactly what geovalidate would compute.
	coldLog := filepath.Join(t.TempDir(), "cold.gso")
	cold, err := ValidateFileOpts(manifest, StreamOptions{Workers: 1, OutcomeLog: coldLog})
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Result *StreamResult `json:"result"`
	}
	getJSON(t, ts.URL+"/v1/datasets/"+id, &doc)
	if doc.Result == nil {
		t.Fatal("grown dataset served no result")
	}
	if got, want := resultJSON(t, doc.Result), resultJSON(t, cold); !bytes.Equal(got, want) {
		t.Errorf("served result differs from cold validation:\nserved:\n%s\ncold:\n%s", got, want)
	}

	resp, err := http.Get(ts.URL + "/v1/datasets/" + id + "/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("outcomes: code=%d err=%v", resp.StatusCode, err)
	}
	if !bytes.Equal(served, readFile(t, coldLog)) {
		t.Error("served outcome log differs from cold validation's log")
	}

	// Both generations must have been produced by the incremental path —
	// asserted by counter, not timing.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := "geoserve_incremental_updates_total 2"; !strings.Contains(string(metrics), want) {
		t.Errorf("metrics missing %q — the service fell back to full revalidation:\n%s", want, metrics)
	}
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp.Body, v)
}

// decodeJSON decodes one JSON document and closes the body.
func decodeJSON(t *testing.T, body io.ReadCloser, v any) {
	t.Helper()
	defer body.Close()
	if err := json.NewDecoder(body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
