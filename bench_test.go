// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (see DESIGN.md §4 for the index), plus ablation benches for
// the design choices the reproduction depends on.
//
// The per-experiment benches share one prepared study context (dataset
// generation + validation are the expensive common prefix); each bench
// then measures its own analysis stage and reports the experiment's
// headline quantities as custom metrics, so `go test -bench . -benchmem`
// regenerates every result in one run.
package geosocial_test

import (
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/eval"
	"geosocial/internal/levy"
	"geosocial/internal/manet"
	"geosocial/internal/rng"
	"geosocial/internal/stats"
	"geosocial/internal/synth"
)

// benchScale is the population scale for the shared context: a quarter
// of the paper's 244-user study keeps one full bench pass in minutes
// while preserving every distribution shape. Individual benches that need
// the full population (none do for shape) can build their own context.
const benchScale = 0.25

var (
	benchOnce sync.Once
	benchCtx  *eval.Context
	benchErr  error
)

func ctxForBench(b *testing.B) *eval.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx, benchErr = eval.NewContext(benchScale, 42)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// runExperiment executes the experiment once per iteration, discarding
// the rendered report.
func runExperiment(b *testing.B, id string) *eval.Report {
	ctx := ctxForBench(b)
	var rep *eval.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = eval.Run(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkTable1DatasetStats regenerates Table 1 (dataset statistics).
func BenchmarkTable1DatasetStats(b *testing.B) {
	ctx := ctxForBench(b)
	rep := runExperiment(b, "table1")
	_ = rep
	days := eval.UserDays(ctx.Primary)
	b.ReportMetric(float64(ctx.PrimaryPart.Checkins)/days, "checkins/user-day")
	b.ReportMetric(float64(ctx.PrimaryPart.Visits)/days, "visits/user-day")
}

// BenchmarkFig1Matching regenerates Figure 1 (the matching Venn
// partition) and reports its headline ratios (paper: 0.75 extraneous,
// 0.11 coverage).
func BenchmarkFig1Matching(b *testing.B) {
	ctx := ctxForBench(b)
	runExperiment(b, "fig1")
	b.ReportMetric(ctx.PrimaryPart.ExtraneousRatio(), "extraneous-ratio")
	b.ReportMetric(ctx.PrimaryPart.CoverageRatio(), "visit-coverage")
	b.ReportMetric(ctx.PrimaryPart.MissingRatio(), "missing-ratio")
}

// BenchmarkFig2InterArrival regenerates Figure 2 (inter-arrival CDFs and
// the honest-vs-baseline equivalence).
func BenchmarkFig2InterArrival(b *testing.B) {
	runExperiment(b, "fig2")
}

// BenchmarkFig3TopPOIMissing regenerates Figure 3 (missing checkins at
// top-n POIs).
func BenchmarkFig3TopPOIMissing(b *testing.B) {
	runExperiment(b, "fig3")
}

// BenchmarkFig4MissingByCategory regenerates Figure 4 (missing checkins
// by POI category).
func BenchmarkFig4MissingByCategory(b *testing.B) {
	runExperiment(b, "fig4")
}

// BenchmarkTable2Correlations regenerates Table 2 (checkin-type ratio vs
// profile feature correlations) and reports the two strongest paper
// cells.
func BenchmarkTable2Correlations(b *testing.B) {
	ctx := ctxForBench(b)
	runExperiment(b, "table2")
	fc, err := classify.CorrelateFeatures(ctx.PrimaryOuts, ctx.Cls)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(fc.Rows[classify.Remote][1], "remote-vs-badges-r")
	b.ReportMetric(fc.Rows[classify.Superfluous][2], "superfluous-vs-mayors-r")
	b.ReportMetric(fc.Rows[classify.Honest][3], "honest-vs-ckpd-r")
}

// BenchmarkFig5PerUserPrevalence regenerates Figure 5 (per-user
// extraneous ratio CDFs; paper: ~20 % of users above 0.8).
func BenchmarkFig5PerUserPrevalence(b *testing.B) {
	ctx := ctxForBench(b)
	runExperiment(b, "fig5")
	ratios := classify.PerUserRatios(ctx.Cls, classify.Kind(-1))
	over := 0
	for _, r := range ratios {
		if r >= 0.8 {
			over++
		}
	}
	b.ReportMetric(float64(over)/float64(len(ratios)), "users-over-0.8-extraneous")
}

// BenchmarkFig6Burstiness regenerates Figure 6 (inter-arrival CDFs per
// checkin type; paper: ~35 % of extraneous gaps under a minute).
func BenchmarkFig6Burstiness(b *testing.B) {
	ctx := ctxForBench(b)
	runExperiment(b, "fig6")
	var gaps []float64
	for _, k := range []classify.Kind{classify.Superfluous, classify.Remote, classify.Driveby, classify.Other} {
		gaps = append(gaps, classify.InterArrivals(ctx.PrimaryOuts, ctx.Cls, k)...)
	}
	b.ReportMetric(stats.NewCDF(gaps).Eval(1), "extraneous-gaps-under-1min")
}

// BenchmarkFig7LevyFitting regenerates Figure 7 (mobility model fitting)
// and reports the fitted flight medians whose ordering carries the
// paper's claim (all-checkin < honest < GPS).
func BenchmarkFig7LevyFitting(b *testing.B) {
	ctx := ctxForBench(b)
	runExperiment(b, "fig7")
	models, err := eval.FitModels(ctx.PrimaryOuts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(models.GPS.FlightDist.Alpha, "gps-flight-alpha")
	b.ReportMetric(models.Honest.FlightDist.Alpha, "honest-flight-alpha")
	b.ReportMetric(models.All.FlightDist.Alpha, "all-flight-alpha")
}

// BenchmarkFig8MANET regenerates Figure 8 (the MANET application-impact
// experiment) at the paper's full topology: 200 nodes, 100 CBR flows,
// one simulated hour per mobility model.
func BenchmarkFig8MANET(b *testing.B) {
	ctx := ctxForBench(b)
	b.ResetTimer()
	var results []eval.MANETResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = eval.RunMANET(ctx, eval.FullMANET(), 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, res := range results {
		name := res.Model
		b.ReportMetric(stats.Mean(res.Metrics.Availability), name+"-availability")
		b.ReportMetric(stats.Mean(res.Metrics.RouteChangesPerMin), name+"-changes/min")
		b.ReportMetric(stats.Quantile(res.Metrics.Overhead, 0.5), name+"-overhead-p50")
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationMatchingSweep reruns matching across the (α, β) grid
// of §4.1 — the paper's "most consistent at 500 m / 30 min" claim — and
// reports the honest-count sensitivity around the chosen point.
func BenchmarkAblationMatchingSweep(b *testing.B) {
	ctx := ctxForBench(b)
	alphas := []float64{125, 250, 500, 1000, 2000}
	betas := []time.Duration{
		7500 * time.Millisecond * 60, // 7.5 min
		15 * time.Minute, 30 * time.Minute, 60 * time.Minute, 120 * time.Minute,
	}
	var pts []core.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.SweepParams(ctx.PrimaryOuts, alphas, betas)
		if err != nil {
			b.Fatal(err)
		}
	}
	get := func(a float64, bta time.Duration) float64 {
		for _, p := range pts {
			if p.Alpha == a && p.Beta == bta {
				return float64(p.Honest)
			}
		}
		return 0
	}
	center := get(500, 30*time.Minute)
	if center > 0 {
		// Relative growth when doubling each threshold from the paper's
		// point: small values mean the match set has stabilized.
		b.ReportMetric(get(1000, 30*time.Minute)/center-1, "honest-gain-alpha-x2")
		b.ReportMetric(get(500, 60*time.Minute)/center-1, "honest-gain-beta-x2")
		b.ReportMetric(get(250, 30*time.Minute)/center-1, "honest-loss-alpha-half")
	}
}

// BenchmarkAblationExpandingRing compares AODV route discovery with the
// expanding-ring search against full-diameter flooding on the same
// honest-checkin mobility.
func BenchmarkAblationExpandingRing(b *testing.B) {
	ctx := ctxForBench(b)
	models, err := eval.FitModels(ctx.PrimaryOuts)
	if err != nil {
		b.Fatal(err)
	}
	gen := levy.DefaultGenOptions()
	gen.Duration = 600
	gen.SpawnKm = 6.2 // ~5 neighbors at 60 nodes
	wps, err := models.Honest.Generate(60, gen, rng.New(9))
	if err != nil {
		b.Fatal(err)
	}
	run := func(fullFlood bool) *manet.Metrics {
		cfg := manet.DefaultConfig()
		cfg.Nodes = 60
		cfg.Flows = 25
		cfg.Duration = 600
		cfg.FullFloodRREQ = fullFlood
		sm, err := manet.NewSimulator(cfg, &manet.WaypointMobility{Schedules: wps}, rng.New(10))
		if err != nil {
			b.Fatal(err)
		}
		m, err := sm.Run()
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	var ring, flood *manet.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring = run(false)
		flood = run(true)
	}
	b.ReportMetric(float64(ring.ControlPackets), "ring-control-pkts")
	b.ReportMetric(float64(flood.ControlPackets), "flood-control-pkts")
	b.ReportMetric(ring.DeliveryRatio, "ring-delivery")
	b.ReportMetric(flood.DeliveryRatio, "flood-delivery")
}

// BenchmarkAblationHello compares link-layer break detection (ns-2
// default) against periodic hello beacons.
func BenchmarkAblationHello(b *testing.B) {
	ctx := ctxForBench(b)
	models, err := eval.FitModels(ctx.PrimaryOuts)
	if err != nil {
		b.Fatal(err)
	}
	gen := levy.DefaultGenOptions()
	gen.Duration = 600
	gen.SpawnKm = 6.2
	wps, err := models.GPS.Generate(60, gen, rng.New(11))
	if err != nil {
		b.Fatal(err)
	}
	run := func(hello bool) *manet.Metrics {
		cfg := manet.DefaultConfig()
		cfg.Nodes = 60
		cfg.Flows = 25
		cfg.Duration = 600
		cfg.Hello = hello
		sm, err := manet.NewSimulator(cfg, &manet.WaypointMobility{Schedules: wps}, rng.New(12))
		if err != nil {
			b.Fatal(err)
		}
		m, err := sm.Run()
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	var off, on *manet.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(float64(off.ControlPackets), "linklayer-control-pkts")
	b.ReportMetric(float64(on.ControlPackets), "hello-control-pkts")
	b.ReportMetric(off.DeliveryRatio, "linklayer-delivery")
	b.ReportMetric(on.DeliveryRatio, "hello-delivery")
}

// BenchmarkAblationBurstDetector sweeps the §7 burstiness detector's gap
// threshold and reports the best F1.
func BenchmarkAblationBurstDetector(b *testing.B) {
	ctx := ctxForBench(b)
	gaps := []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		10 * time.Minute, 20 * time.Minute,
	}
	bestF1 := 0.0
	var bestGap time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bestF1 = 0
		for _, g := range gaps {
			sc := classify.EvaluateBurstDetector(ctx.PrimaryOuts, ctx.Cls, classify.BurstDetector{MaxGap: g})
			if f1 := sc.F1(); f1 > bestF1 {
				bestF1 = f1
				bestGap = g
			}
		}
	}
	b.ReportMetric(bestF1, "best-f1")
	b.ReportMetric(bestGap.Minutes(), "best-gap-min")
}

// benchGenerate measures raw dataset generation throughput with the given
// worker count (0 = all cores, 1 = exact serial path).
func benchGenerate(b *testing.B, workers int) {
	cfg := synth.PrimaryConfig().Scale(0.1)
	cfg.Parallelism = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := synth.Generate(cfg, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Users) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkGenerate measures generation at the default worker count.
func BenchmarkGenerate(b *testing.B) { benchGenerate(b, 0) }

// BenchmarkGenerateSerial pins generation to the legacy single-core path;
// the ratio against BenchmarkGenerateParallel is the fan-out speedup.
func BenchmarkGenerateSerial(b *testing.B) { benchGenerate(b, 1) }

// BenchmarkGenerateParallel runs generation on all cores.
func BenchmarkGenerateParallel(b *testing.B) { benchGenerate(b, runtime.GOMAXPROCS(0)) }

// benchValidate measures the §4 pipeline (visit detection + matching)
// over the shared context's primary dataset with the given worker count.
func benchValidate(b *testing.B, workers int) {
	ctx := ctxForBench(b)
	v := core.NewValidator()
	v.Parallelism = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.ValidateDataset(ctx.Primary); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidatePipeline measures validation at the default worker
// count.
func BenchmarkValidatePipeline(b *testing.B) { benchValidate(b, 0) }

// BenchmarkValidatePipelineSerial pins validation to the legacy
// single-core path; the ratio against BenchmarkValidatePipelineParallel is
// the fan-out speedup (≥ 2× expected on ≥ 4 cores).
func BenchmarkValidatePipelineSerial(b *testing.B) { benchValidate(b, 1) }

// BenchmarkValidatePipelineParallel runs validation on all cores.
func BenchmarkValidatePipelineParallel(b *testing.B) { benchValidate(b, runtime.GOMAXPROCS(0)) }

// benchValidateStream measures the bounded-memory streaming path over
// the same users benchValidate processes in memory; the delta against
// BenchmarkValidatePipeline* is the cost of the windowed hand-off.
func benchValidateStream(b *testing.B, workers int) {
	ctx := ctxForBench(b)
	db, err := ctx.Primary.DB()
	if err != nil {
		b.Fatal(err)
	}
	v := core.NewValidator()
	v.Parallelism = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.ValidateStream(db, ctx.Primary.Source(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateStreamSerial pins streaming validation to one worker.
func BenchmarkValidateStreamSerial(b *testing.B) { benchValidateStream(b, 1) }

// BenchmarkValidateStreamParallel runs streaming validation on all cores.
func BenchmarkValidateStreamParallel(b *testing.B) { benchValidateStream(b, runtime.GOMAXPROCS(0)) }

// benchClassify measures taxonomy classification over the shared
// context's outcomes with the given worker count.
func benchClassify(b *testing.B, workers int) {
	ctx := ctxForBench(b)
	p := classify.DefaultParams()
	p.Parallelism = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.ClassifyAll(ctx.PrimaryOuts, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifySerial pins classification to the single-core path.
func BenchmarkClassifySerial(b *testing.B) { benchClassify(b, 1) }

// BenchmarkClassifyParallel runs classification on all cores.
func BenchmarkClassifyParallel(b *testing.B) { benchClassify(b, runtime.GOMAXPROCS(0)) }
