package geosocial_test

// Acceptance tests for the columnar outcome sink: log bytes are
// identical for any worker count and any shard split; every log-backed
// analysis is exactly equal to the in-memory analysis of the same
// users; and validation + analysis runs bounded-memory — no
// []core.UserOutcome is ever materialized.

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"geosocial"
	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/detect"
	"geosocial/internal/eval"
	"geosocial/internal/geo"
	"geosocial/internal/outcome"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// saveOutcomeCorpus writes one dataset as a single binary file, a JSON
// file of the same on-grid users, and 3- and 8-shard corpora.
func saveOutcomeCorpus(t *testing.T) (binPath, jsonPath string, manifests []string) {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.05), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath = filepath.Join(dir, "primary.bin.gz")
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	// The JSON twin holds the E7-quantized users, so all four inputs
	// carry bit-identical data.
	onGrid, err := trace.LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	jsonPath = filepath.Join(dir, "primary.json.gz")
	if err := onGrid.SaveFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{3, 8} {
		m, err := ds.SaveShards(t.TempDir(), trace.ShardOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		manifests = append(manifests, m)
	}
	return binPath, jsonPath, manifests
}

// logFor validates input with an outcome sink and returns the log bytes.
func logFor(t *testing.T, input string, workers int) []byte {
	t.Helper()
	logPath := filepath.Join(t.TempDir(), "out.gso")
	if _, err := geosocial.ValidateFileOpts(input, geosocial.StreamOptions{
		Workers:    workers,
		OutcomeLog: logPath,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestOutcomeLogByteIdentical pins the log's determinism contract:
// identical bytes for workers {1, 8} × {single file, JSON twin, 3
// shards, 8 shards} of the same dataset.
func TestOutcomeLogByteIdentical(t *testing.T) {
	binPath, jsonPath, manifests := saveOutcomeCorpus(t)
	ref := logFor(t, binPath, 1)
	if len(ref) == 0 {
		t.Fatal("empty reference log")
	}
	inputs := map[string]string{
		"file":    binPath,
		"json":    jsonPath,
		"shards3": manifests[0],
		"shards8": manifests[1],
	}
	for name, input := range inputs {
		for _, workers := range []int{1, 8} {
			got := logFor(t, input, workers)
			if !bytes.Equal(got, ref) {
				t.Errorf("%s workers=%d: outcome log differs from reference (%d vs %d bytes)",
					name, workers, len(got), len(ref))
			}
		}
	}
}

// inMemoryOutcomes validates the on-grid dataset in memory — the path
// every log-backed analysis must match exactly.
func inMemoryOutcomes(t *testing.T, binPath string) ([]core.UserOutcome, []*classify.Classification) {
	t.Helper()
	onGrid, err := trace.LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := geosocial.ValidateDataset(onGrid)
	if err != nil {
		t.Fatal(err)
	}
	return res.Outcomes, res.Classifications
}

// TestLogBackedAnalysesExactlyEqualInMemory is the tentpole's equality
// contract: correlations, inter-arrivals, filtering trade-off, burst
// and learned detector scores, Levy fits and truth scores computed from
// the log equal the in-memory results bit for bit.
func TestLogBackedAnalysesExactlyEqualInMemory(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.06), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath := filepath.Join(dir, "primary.bin.gz")
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "out.gso")
	if _, err := geosocial.ValidateFileOpts(binPath, geosocial.StreamOptions{OutcomeLog: logPath}); err != nil {
		t.Fatal(err)
	}
	outs, cls := inMemoryOutcomes(t, binPath)

	t.Run("correlations", func(t *testing.T) {
		want, err := classify.CorrelateFeatures(outs, cls)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := outcome.Correlations(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("log-backed correlations differ:\n got %+v\nwant %+v", got, want)
		}
		// And through the facade report.
		a, err := geosocial.AnalyzeOutcomes(logPath, geosocial.AnalysisCorrelations)
		if err != nil {
			t.Fatal(err)
		}
		for k, row := range want.Rows {
			if a.Correlations.Rows[k.String()] != row {
				t.Fatalf("facade correlations row %v = %v, want %v", k, a.Correlations.Rows[k.String()], row)
			}
		}
	})

	t.Run("interarrivals", func(t *testing.T) {
		for _, k := range []classify.Kind{classify.Kind(-1), classify.Honest, classify.Superfluous} {
			want := classify.InterArrivals(outs, cls, k)
			got, _, err := outcome.InterArrivals(logPath, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("kind %v: log-backed inter-arrivals differ (%d vs %d gaps)", k, len(got), len(want))
			}
		}
	})

	t.Run("tradeoff", func(t *testing.T) {
		want := classify.ComputeFilterTradeoff(cls)
		got, _, err := outcome.FilterTradeoff(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("log-backed filter trade-off differs")
		}
	})

	t.Run("burst", func(t *testing.T) {
		d := classify.BurstDetector{MaxGap: 2 * time.Minute}
		want := classify.EvaluateBurstDetector(outs, cls, d)
		got, err := outcome.BurstScore(logPath, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("log-backed burst score %+v != %+v", got, want)
		}
	})

	t.Run("detector", func(t *testing.T) {
		wantEx := detect.ExtractAll(outs)
		gotEx, err := outcome.Examples(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotEx, wantEx) {
			t.Fatalf("log-backed examples differ (%d vs %d)", len(gotEx), len(wantEx))
		}
		want, err := detect.CrossValidate(wantEx, 5, detect.DefaultTrainConfig(), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		a, err := geosocial.AnalyzeOutcomes(logPath, geosocial.AnalysisDetector)
		if err != nil {
			t.Fatal(err)
		}
		d := a.Detector
		if d.TP != want.TP || d.FP != want.FP || d.TN != want.TN || d.FN != want.FN {
			t.Fatalf("log-backed detector score (%d/%d/%d/%d) != in-memory (%d/%d/%d/%d)",
				d.TP, d.FP, d.TN, d.FN, want.TP, want.FP, want.TN, want.FN)
		}
	})

	t.Run("levy", func(t *testing.T) {
		want, err := eval.FitModels(outs)
		if err != nil {
			t.Fatal(err)
		}
		gpsSm, honestSm, allSm, _, err := outcome.Samples(logPath)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.FitModelsFromSamples(gpsSm, honestSm, allSm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("log-backed Levy models differ:\n got %+v %+v %+v\nwant %+v %+v %+v",
				got.GPS, got.Honest, got.All, want.GPS, want.Honest, want.All)
		}
		// Facade report carries the same parameters.
		a, err := geosocial.AnalyzeOutcomes(logPath, geosocial.AnalysisLevy)
		if err != nil {
			t.Fatal(err)
		}
		if a.Levy.GPS.FlightAlpha != want.GPS.FlightDist.Alpha ||
			a.Levy.Honest.FlightAlpha != want.Honest.FlightDist.Alpha ||
			a.Levy.All.FlightAlpha != want.All.FlightDist.Alpha {
			t.Fatalf("facade Levy alphas %+v differ from models", a.Levy)
		}
	})

	t.Run("truth", func(t *testing.T) {
		want, err := core.ScoreAgainstTruth(outs)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := outcome.Summarize(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if sm.Truth == nil || *sm.Truth != want {
			t.Fatalf("log-backed truth score %+v != %+v", sm.Truth, want)
		}
	})
}

// tinyUserSource generates small synthetic users on demand — a
// multi-thousand-user "dataset" that never exists in memory at once.
type tinyUserSource struct {
	next, n int
	pois    []poi.POI
}

func (g *tinyUserSource) Next() (*trace.User, error) {
	if g.next >= g.n {
		return nil, io.EOF
	}
	i := g.next
	g.next++
	t0 := int64(1_400_000_000) + int64(i%97)*3600
	u := &trace.User{
		ID:   i,
		Days: 1,
		Profile: trace.Profile{
			Friends: 10 + i%53, Badges: i % 11, Mayors: i % 5,
			CheckinsPerDay: float64(2 + i%7),
		},
	}
	// A 20-minute stay at POI 0: one detected visit.
	for m := 0; m < 20; m++ {
		u.GPS = append(u.GPS, trace.GPSPoint{T: t0 + int64(m)*60, Loc: g.pois[0].Loc})
	}
	// One checkin during the stay (matches), one claiming the far POI
	// (extraneous). Users vary in honest count so per-user ratios carry
	// variance.
	u.Checkins = append(u.Checkins, trace.Checkin{
		T: t0 + 300, POIID: 0, POIName: g.pois[0].Name, Category: g.pois[0].Category, Loc: g.pois[0].Loc,
	})
	if i%2 == 0 {
		u.Checkins = append(u.Checkins, trace.Checkin{
			T: t0 + 600, POIID: 0, POIName: g.pois[0].Name, Category: g.pois[0].Category, Loc: g.pois[0].Loc,
		})
	}
	u.Checkins = append(u.Checkins, trace.Checkin{
		T: t0 + 1300, POIID: 1, POIName: g.pois[1].Name, Category: g.pois[1].Category, Loc: g.pois[1].Loc,
	})
	return u, nil
}

// TestOutcomeSinkBoundedMemory validates and analyzes a 3000-user
// stream through the sink without ever materializing a
// []core.UserOutcome: users are generated on demand, consumed by
// ValidateStream's bounded window, distilled into log records, and the
// analyses run over the log afterwards.
func TestOutcomeSinkBoundedMemory(t *testing.T) {
	base := geo.LatLon{Lat: 34.4208, Lon: -119.6982}
	pois := []poi.POI{
		{ID: 0, Name: "Cafe", Category: poi.Food, Loc: base, Popularity: 1},
		{ID: 1, Name: "Far", Category: poi.Shop, Loc: geo.Destination(base, 90, 5000), Popularity: 1},
	}
	db, err := poi.NewDB(pois)
	if err != nil {
		t.Fatal(err)
	}
	const users = 3000
	src := &tinyUserSource{n: users, pois: pois}

	logPath := filepath.Join(t.TempDir(), "big.gso")
	w, err := outcome.Create(logPath, "big")
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()
	v.Parallelism = 8
	part, err := v.ValidateStream(db, src, w.Sink(classify.Params{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sm, err := outcome.Summarize(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Users != users {
		t.Fatalf("log holds %d users, want %d", sm.Users, users)
	}
	if sm.Partition != part {
		t.Fatalf("log partition %+v != stream partition %+v", sm.Partition, part)
	}
	if sm.Partition.Honest == 0 || sm.Partition.Extraneous == 0 {
		t.Fatalf("degenerate partition: %+v", sm.Partition)
	}

	ft, _, err := outcome.FilterTradeoff(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.UsersDropped) != users {
		t.Fatalf("trade-off curve has %d points, want %d", len(ft.UsersDropped), users)
	}
	gaps, _, err := outcome.InterArrivals(logPath, classify.Kind(-1))
	if err != nil {
		t.Fatal(err)
	}
	// Every user contributes nCheckins-1 gaps.
	if want := sm.Checkins - users; len(gaps) != want {
		t.Fatalf("pooled inter-arrivals = %d gaps, want %d", len(gaps), want)
	}
}
