module geosocial

go 1.24
