package geosocial

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// smallStudy is shared across facade tests (generation dominates).
var smallStudy *Study

func getStudy(t *testing.T) *Study {
	t.Helper()
	if smallStudy == nil {
		s, err := GenerateStudy(StudyConfig{Scale: 0.08, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		smallStudy = s
	}
	return smallStudy
}

func TestGenerateStudyDefaultsAndErrors(t *testing.T) {
	if _, err := GenerateStudy(StudyConfig{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
	s := getStudy(t)
	if len(s.Primary.Users) == 0 || len(s.Baseline.Users) == 0 {
		t.Fatal("empty datasets")
	}
	if s.Primary.Name != "primary" || s.Baseline.Name != "baseline" {
		t.Errorf("dataset names %q/%q", s.Primary.Name, s.Baseline.Name)
	}
}

func TestValidatePipelineEndToEnd(t *testing.T) {
	s := getStudy(t)
	res, err := s.Validate()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Partition
	if p.Checkins == 0 || p.Visits == 0 {
		t.Fatal("empty partition")
	}
	if er := p.ExtraneousRatio(); er < 0.5 || er > 0.92 {
		t.Errorf("extraneous ratio %.2f outside sane band", er)
	}
	bd := res.Breakdown()
	total := 0
	for _, n := range bd {
		total += n
	}
	if total != p.Checkins {
		t.Errorf("breakdown sums to %d, partition has %d checkins", total, p.Checkins)
	}
	sc, err := res.TruthScore()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Accuracy < 0.85 {
		t.Errorf("matcher accuracy %.3f", sc.Accuracy)
	}
}

func TestFacadeAnalyses(t *testing.T) {
	s := getStudy(t)
	res, err := s.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Correlations(); err != nil {
		t.Errorf("correlations: %v", err)
	}
	ft := res.FilterTradeoff()
	if len(ft.UsersDropped) == 0 {
		t.Error("empty trade-off curve")
	}
	sc := res.BurstDetector(2 * time.Minute)
	if sc.TP+sc.FP+sc.TN+sc.FN != res.Partition.Checkins {
		t.Error("detector did not see every checkin")
	}
	models, err := res.MobilityModels()
	if err != nil {
		t.Fatal(err)
	}
	if !models.Honest.HasPause() || !models.All.HasPause() {
		t.Error("checkin models missing grafted pauses")
	}
	cov, err := res.RecoverMissing()
	if err != nil {
		t.Fatal(err)
	}
	if cov.AfterRatio() < cov.BeforeRatio() {
		t.Errorf("recovery reduced coverage: %.3f -> %.3f", cov.BeforeRatio(), cov.AfterRatio())
	}
}

func TestFacadeDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := getStudy(t)
	res, err := s.Validate()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := res.TrainDetector(4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.F1() < 0.6 {
		t.Errorf("learned detector F1 %.3f", sc.F1())
	}
}

func TestFacadeMANETQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := getStudy(t)
	res, err := s.Validate()
	if err != nil {
		t.Fatal(err)
	}
	outs, err := res.RunMANET(MANETConfig{Nodes: 40, Flows: 10, Duration: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("models = %d, want 3", len(outs))
	}
	names := map[string]bool{}
	for _, o := range outs {
		names[o.Model] = true
		if len(o.Metrics.Availability) != 10 {
			t.Errorf("%s: %d flows, want 10", o.Model, len(o.Metrics.Availability))
		}
	}
	for _, want := range []string{"gps", "honest-checkin", "all-checkin"} {
		if !names[want] {
			t.Errorf("missing model %q", want)
		}
	}
}

func TestDatasetSaveLoadThroughFacade(t *testing.T) {
	s := getStudy(t)
	path := filepath.Join(t.TempDir(), "p.json.gz")
	if err := s.Primary.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != len(s.Primary.Users) {
		t.Fatal("round trip lost users")
	}
	if _, err := ValidateDataset(ds); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := getStudy(t)
	var buf bytes.Buffer
	if err := s.RunExperiment("fig1", &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "extraneous") {
		t.Errorf("fig1 report missing content:\n%s", out)
	}
	if err := s.RunExperiment("nope", &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) != 10 {
		t.Fatalf("experiments = %v", ids)
	}
	want := map[string]bool{"table1": true, "table2": true, "fig8": true}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("missing experiments: %v", want)
	}
}
