package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"geosocial/internal/trace"
)

// sampleResult builds a fully populated StreamResult.
func sampleResult() *StreamResult {
	return &StreamResult{
		Name:   "primary",
		Format: trace.FormatBinary,
		Users:  7,
		Partition: Partition{
			Checkins: 100, Visits: 300, Honest: 25, Extraneous: 75, Missing: 270,
		},
		Taxonomy: map[string]int{"honest": 25, "superfluous": 30, "remote": 20, "driveby": 15, "other": 10},
		Truth:    &TruthScore{Labeled: 100, Agree: 90, Accuracy: 0.9, HonestP: 0.8, HonestR: 0.7},
		Shards: []ShardStat{
			{Path: "primary-0000.bin", Users: 4, Partition: Partition{Checkins: 60}},
			{Path: "primary-0001.bin", Users: 3, Partition: Partition{Checkins: 40}},
		},
	}
}

func TestStreamResultEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleResult()
	data, err := want.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeStreamResult(data)
	if err != nil {
		t.Fatalf("DecodeStreamResult: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// Equal results must encode to identical bytes — the property that lets
// the geoserve cache serve responses byte-comparable to fresh ones.
func TestStreamResultEncodeDeterministic(t *testing.T) {
	a, err := sampleResult().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for i := 0; i < 10; i++ {
		b, err := sampleResult().Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("encoding of equal results differs:\n%s\n%s", a, b)
		}
	}
}

// The JSON field names are a compatibility contract between geovalidate
// -json, the geoserve HTTP API, and the at-rest cache encoding. Pin the
// exact key sets so a rename fails loudly here instead of silently
// breaking one of the consumers.
func TestStreamResultFieldNames(t *testing.T) {
	data, err := sampleResult().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	wantKeys := []string{"format", "name", "partition", "shards", "taxonomy", "truth", "users"}
	for _, k := range wantKeys {
		if _, ok := doc[k]; !ok {
			t.Errorf("StreamResult JSON is missing key %q", k)
		}
	}
	if len(doc) != len(wantKeys) {
		t.Errorf("StreamResult JSON has %d keys, want %d: %v", len(doc), len(wantKeys), keys(doc))
	}

	var part map[string]json.RawMessage
	if err := json.Unmarshal(doc["partition"], &part); err != nil {
		t.Fatalf("Unmarshal partition: %v", err)
	}
	for _, k := range []string{"checkins", "visits", "honest", "extraneous", "missing"} {
		if _, ok := part[k]; !ok {
			t.Errorf("Partition JSON is missing key %q", k)
		}
	}

	var shards []map[string]json.RawMessage
	if err := json.Unmarshal(doc["shards"], &shards); err != nil {
		t.Fatalf("Unmarshal shards: %v", err)
	}
	for _, k := range []string{"path", "users", "partition"} {
		if _, ok := shards[0][k]; !ok {
			t.Errorf("ShardStat JSON is missing key %q", k)
		}
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDecodeStreamResultRejectsGarbage(t *testing.T) {
	if _, err := DecodeStreamResult([]byte("not json")); err == nil {
		t.Fatal("DecodeStreamResult accepted garbage")
	}
}
