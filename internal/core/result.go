package core

import (
	"encoding/json"
	"fmt"
	"io"

	"geosocial/internal/trace"
)

// StreamResult is the bounded-memory analogue of the facade's
// ValidationResult: the aggregate outputs of validating a dataset file
// (or sharded corpus) user by user, without retaining per-user
// outcomes. It is the unit of exchange across the system's edges — the
// facade's ValidateFile returns it, geovalidate -json prints it, and
// the geoserve service caches and serves it — so its JSON field names
// are a compatibility contract (pinned by tests at each of those
// layers).
type StreamResult struct {
	// Name is the dataset name from the file header (or manifest).
	Name string `json:"name"`
	// Format is the detected on-disk encoding of the input.
	Format trace.Format `json:"format"`
	// Users is the number of users validated.
	Users int `json:"users"`
	// Generation is the manifest generation of a generational shard set
	// (omitted for generation 0 and plain files, keeping pre-append
	// encodings byte-identical). Incremental updates and cold runs over
	// the same appended corpus report the same generation.
	Generation int `json:"generation,omitempty"`
	// Partition is the Figure 1 Venn split.
	Partition Partition `json:"partition"`
	// Taxonomy holds the §5.1 per-kind checkin counts, keyed by
	// classify.Kind.String() (as in ValidationResult.Breakdown).
	Taxonomy map[string]int `json:"taxonomy"`
	// Truth scores the matcher against generator ground-truth labels; nil
	// when the dataset carries none (real data).
	Truth *TruthScore `json:"truth,omitempty"`
	// Shards holds per-input statistics when the input was a shard set
	// (or an explicit path list); nil for a plain single file. The
	// aggregate fields above never depend on how the corpus was split.
	Shards []ShardStat `json:"shards,omitempty"`
}

// ShardStat describes one input stream of a multi-file validation run.
type ShardStat struct {
	// Path names the input (shard file name from the manifest, or the
	// caller-supplied path).
	Path string `json:"path"`
	// Users is the number of users this input contributed.
	Users int `json:"users"`
	// Partition is this input's share of the Figure 1 split.
	Partition Partition `json:"partition"`
}

// Encode serializes the result for at-rest storage (the geoserve result
// cache). The encoding is deterministic — encoding/json emits struct
// fields in declaration order and map keys sorted — so equal results
// encode to identical bytes, which is what lets cached responses be
// compared byte-for-byte against freshly computed ones.
func (r *StreamResult) Encode() ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("core: encode result: %w", err)
	}
	return data, nil
}

// DecodeStreamResult reverses Encode. It also accepts the indented JSON
// emitted by geovalidate -json and served by geoserve — the three
// encodings share one schema, pinned by round-trip tests.
func DecodeStreamResult(data []byte) (*StreamResult, error) {
	var r StreamResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	return &r, nil
}

// WriteIndentedJSON writes v in the canonical presentation encoding
// (two-space indent, trailing newline). geovalidate -json and every
// geoserve HTTP response encode through this one function, which is
// what makes "served partition == CLI partition" a byte-for-byte
// guarantee rather than two call sites happening to agree.
func WriteIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
