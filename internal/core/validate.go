package core

import (
	"fmt"
	"time"

	"geosocial/internal/par"
	"geosocial/internal/poi"
	"geosocial/internal/trace"
	"geosocial/internal/visits"
)

// UserOutcome bundles one user's detected visits and matching result.
type UserOutcome struct {
	User   *trace.User
	Visits []trace.Visit
	Match  *Result
}

// Partition is the dataset-level Venn diagram of Figure 1.
type Partition struct {
	Checkins   int `json:"checkins"`   // total checkin events
	Visits     int `json:"visits"`     // total detected visits
	Honest     int `json:"honest"`     // matched checkins
	Extraneous int `json:"extraneous"` // unmatched checkins
	Missing    int `json:"missing"`    // unmatched visits
}

// Merge adds q's counts into p. Merging per-shard partitions in any
// order yields exactly the partition of the concatenated users —
// addition is associative and commutative — which is what makes sharded
// validation byte-identical to single-file validation.
func (p *Partition) Merge(q Partition) {
	p.Checkins += q.Checkins
	p.Visits += q.Visits
	p.Honest += q.Honest
	p.Extraneous += q.Extraneous
	p.Missing += q.Missing
}

// Subtract removes q's counts from p — the inverse of Merge. It is the
// subtract half of the incremental update's subtract-then-add: removing
// a user's old contribution and adding its re-validated one leaves
// exactly the partition a cold run over the updated corpus computes,
// because the counts are plain commutative sums.
func (p *Partition) Subtract(q Partition) {
	p.Checkins -= q.Checkins
	p.Visits -= q.Visits
	p.Honest -= q.Honest
	p.Extraneous -= q.Extraneous
	p.Missing -= q.Missing
}

// ExtraneousRatio returns extraneous checkins as a fraction of all
// checkins (the paper reports 75 %).
func (p Partition) ExtraneousRatio() float64 {
	if p.Checkins == 0 {
		return 0
	}
	return float64(p.Extraneous) / float64(p.Checkins)
}

// CoverageRatio returns matched visits as a fraction of all visits (the
// paper reports roughly 10 %).
func (p Partition) CoverageRatio() float64 {
	if p.Visits == 0 {
		return 0
	}
	return float64(p.Honest) / float64(p.Visits)
}

// MissingRatio returns unmatched visits as a fraction of all visits (the
// paper reports 89 %).
func (p Partition) MissingRatio() float64 {
	if p.Visits == 0 {
		return 0
	}
	return float64(p.Missing) / float64(p.Visits)
}

// String implements fmt.Stringer in the shape of Figure 1.
func (p Partition) String() string {
	return fmt.Sprintf("honest=%d extraneous=%d (%.0f%% of %d checkins) missing=%d (%.0f%% of %d visits)",
		p.Honest, p.Extraneous, 100*p.ExtraneousRatio(), p.Checkins,
		p.Missing, 100*p.MissingRatio(), p.Visits)
}

// Validator runs the full §4 pipeline: visit detection followed by
// checkin-to-visit matching, per user and dataset-wide.
type Validator struct {
	// Params are the matching thresholds (DefaultParams when zero).
	Params Params
	// VisitConfig parameterizes stay-point detection
	// (visits.DefaultConfig when zero).
	VisitConfig visits.Config
	// Parallelism is the number of workers used to validate users.
	// <= 0 selects runtime.GOMAXPROCS(0); 1 runs the serial path. The
	// outcomes and partition are identical for any value: per-user work is
	// collected into index-addressed slots and reduced serially.
	Parallelism int
}

// NewValidator returns a validator with the paper's parameters.
func NewValidator() *Validator {
	return &Validator{Params: DefaultParams(), VisitConfig: visits.DefaultConfig()}
}

// resolve returns the effective matching and visit-detection parameters,
// substituting the paper defaults for zero values.
func (v *Validator) resolve() (Params, visits.Config) {
	params := v.Params
	if params == (Params{}) {
		params = DefaultParams()
	}
	vcfg := v.VisitConfig
	if vcfg == (visits.Config{}) {
		vcfg = visits.DefaultConfig()
	}
	return params, vcfg
}

// StageObserver receives one pipeline stage's instrumentation: n
// records processed in d of wall time. internal/obs span cells satisfy
// it; core depends only on this interface so the hot path carries no
// observability imports.
type StageObserver interface {
	Observe(n int, d time.Duration)
}

// validateUser runs the §4 pipeline — visit detection then matching —
// for one user. It is pure: both the in-memory and streaming paths call
// it, which is what makes their outputs identical.
func validateUser(u *trace.User, db *poi.DB, params Params, vcfg visits.Config) (UserOutcome, error) {
	return validateUserSpans(u, db, params, vcfg, nil, nil)
}

// validateUserSpans is validateUser with optional per-stage
// instrumentation. seg and match must be nil interfaces — not typed nil
// pointers — when spans are disabled: the nil checks below are what
// keeps the uninstrumented path free of clock reads, so outputs (which
// never depend on the observed times) and performance both stay exactly
// as before.
func validateUserSpans(u *trace.User, db *poi.DB, params Params, vcfg visits.Config, seg, match StageObserver) (UserOutcome, error) {
	var t0 time.Time
	if seg != nil {
		t0 = time.Now()
	}
	vs, err := visits.Detect(u.GPS, vcfg, db)
	if seg != nil {
		seg.Observe(1, time.Since(t0))
	}
	if err != nil {
		return UserOutcome{}, fmt.Errorf("core: user %d: %w", u.ID, err)
	}
	if match != nil {
		t0 = time.Now()
	}
	res, err := MatchUser(u.Checkins, vs, params)
	if match != nil {
		match.Observe(1, time.Since(t0))
	}
	if err != nil {
		return UserOutcome{}, fmt.Errorf("core: user %d: %w", u.ID, err)
	}
	return UserOutcome{User: u, Visits: vs, Match: res}, nil
}

// Add accumulates one user outcome into the partition; summing outcomes
// in any order yields the dataset-level Figure 1 split.
func (p *Partition) Add(o UserOutcome) {
	p.Checkins += len(o.User.Checkins)
	p.Visits += len(o.Visits)
	p.Honest += o.Match.Honest()
	p.Extraneous += o.Match.Extraneous()
	p.Missing += o.Match.Missing()
}

// ValidateUser runs the §4 pipeline for one user against a POI database,
// resolving zero-value validator fields to the paper defaults. It is the
// per-item building block for custom streaming pipelines; ValidateStream
// composes it with the bounded fan-out for the common case.
func (v *Validator) ValidateUser(u *trace.User, db *poi.DB) (UserOutcome, error) {
	params, vcfg := v.resolve()
	return validateUser(u, db, params, vcfg)
}

// ValidateUserSpans is ValidateUser with per-stage instrumentation:
// seg observes the visit-detection (segment) stage and match the
// checkin-matching stage, each as (1 user, wall time). Pass nil
// interfaces to disable either; the outcome is identical to
// ValidateUser in all cases — observers only ever receive timings,
// they never influence the pipeline.
func (v *Validator) ValidateUserSpans(u *trace.User, db *poi.DB, seg, match StageObserver) (UserOutcome, error) {
	params, vcfg := v.resolve()
	return validateUserSpans(u, db, params, vcfg, seg, match)
}

// UpdateUser re-runs the §4 pipeline for one user whose trace changed —
// an appended day folded into its history — and returns the outcome
// together with the user's partition contribution, ready for the
// subtract-then-add update of dataset aggregates: subtract the user's
// previous contribution, add the returned one, and the global partition
// matches a cold run over the updated corpus in O(touched users).
func (v *Validator) UpdateUser(u *trace.User, db *poi.DB) (UserOutcome, Partition, error) {
	o, err := v.ValidateUser(u, db)
	if err != nil {
		return UserOutcome{}, Partition{}, err
	}
	var p Partition
	p.Add(o)
	return o, p, nil
}

// ValidateDataset runs visit detection and matching for every user and
// returns the per-user outcomes with the dataset partition.
func (v *Validator) ValidateDataset(ds *trace.Dataset) ([]UserOutcome, Partition, error) {
	params, vcfg := v.resolve()
	db, err := ds.DB()
	if err != nil {
		return nil, Partition{}, fmt.Errorf("core: %w", err)
	}
	outs, err := par.Map(v.Parallelism, len(ds.Users), func(i int) (UserOutcome, error) {
		return validateUser(ds.Users[i], db, params, vcfg)
	})
	if err != nil {
		return nil, Partition{}, err
	}
	var part Partition
	for _, o := range outs {
		part.Add(o)
	}
	return outs, part, nil
}

// ValidateStream is ValidateDataset over a user stream: it pulls users
// one at a time from src, validates them on v.Parallelism workers with a
// bounded in-flight window (memory O(workers), not O(users)), and calls
// sink — which may be nil — with each outcome strictly in stream order on
// the calling goroutine. Paired with a trace.StreamReader this validates
// datasets far larger than memory.
//
// The outcomes delivered to sink and the returned partition are identical
// to ValidateDataset over the same users, for any worker count; see
// par.MapStream for the scheduling contract. Outcomes are not retained
// after sink returns, so a sink that needs per-user state must copy it.
func (v *Validator) ValidateStream(db *poi.DB, src trace.UserSource, sink func(UserOutcome) error) (Partition, error) {
	params, vcfg := v.resolve()
	var part Partition
	err := par.MapStream(v.Parallelism,
		func() (*trace.User, error) { return src.Next() },
		func(_ int, u *trace.User) (UserOutcome, error) {
			return validateUser(u, db, params, vcfg)
		},
		func(_ int, o UserOutcome) error {
			part.Add(o)
			if sink != nil {
				return sink(o)
			}
			return nil
		})
	if err != nil {
		return Partition{}, err
	}
	return part, nil
}

// ValidateShards is ValidateStream over a set of shard streams read
// concurrently: each shard's frames are fetched by a dedicated reader
// goroutine (overlapping I/O across files), decode + visit detection +
// matching run per user on a single shared pool of v.Parallelism
// workers, and sink — which may be nil — receives each outcome on the
// calling goroutine in the deterministic merged order of
// par.MergeStreams. Duplicate user IDs are rejected across the whole
// set, exactly as single-stream readers reject them within one file.
//
// The returned partitions are per shard, merged-ready: merging them in
// shard order (or any order — Merge is commutative) yields exactly the
// partition ValidateStream would produce over the concatenated users,
// for any worker count and any shard count.
func (v *Validator) ValidateShards(db *poi.DB, shards []trace.FrameSource, sink func(shard int, o UserOutcome) error) ([]Partition, error) {
	return v.ResumeShards(db, shards, nil, nil, sink)
}

// ResumeShards is the checkpoint-aware form of ValidateShards: shards
// whose skip entry is true are not opened or streamed at all (their
// partitions come from a checkpoint store and stay zero here), and seen
// — which may be nil — pre-seeds the cross-shard duplicate-ID check
// with the user IDs the skipped shards contributed, so a duplicate
// between a checkpointed shard and a live one is still rejected exactly
// as an uninterrupted run rejects it. A nil skip streams every shard;
// entries of a skipped shard's FrameSource slice may be nil.
//
// The live shards are validated in the merged order par.MergeStreams
// defines over them alone, so the outcomes delivered to sink — and the
// returned per-shard partitions — are identical to what a full
// ValidateShards run delivers for those shards, for any worker count.
func (v *Validator) ResumeShards(db *poi.DB, shards []trace.FrameSource, skip []bool, seen map[int]int, sink func(shard int, o UserOutcome) error) ([]Partition, error) {
	params, vcfg := v.resolve()
	parts := make([]Partition, len(shards))
	if seen == nil {
		seen = make(map[int]int, 256) // user ID -> shard, for the cross-shard duplicate check
	}
	var live []int // live[j] = original shard index of merged source j
	next := make([]func() (trace.Frame, error), 0, len(shards))
	for s := range shards {
		if skip != nil && skip[s] {
			continue
		}
		live = append(live, s)
		next = append(next, shards[s].NextFrame)
	}
	err := par.MergeStreams(v.Parallelism, next,
		func(j, _ int, fr trace.Frame) (UserOutcome, error) {
			u, err := shards[live[j]].DecodeFrame(fr)
			if err != nil {
				return UserOutcome{}, err
			}
			return validateUser(u, db, params, vcfg)
		},
		func(j, _ int, o UserOutcome) error {
			shard := live[j]
			if prev, dup := seen[o.User.ID]; dup {
				return fmt.Errorf("core: duplicate user ID %d (shards %d and %d)", o.User.ID, prev, shard)
			}
			seen[o.User.ID] = shard
			parts[shard].Add(o)
			if sink != nil {
				return sink(shard, o)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// TruthScore compares the matcher's honest/extraneous split against the
// generator's ground-truth labels (synthetic data only). It treats
// "matched" as the positive class for honest-labeled checkins.
type TruthScore struct {
	Labeled  int     `json:"labeled"`          // checkins carrying a ground-truth label
	Agree    int     `json:"agree"`            // checkins where matcher and label agree
	Accuracy float64 `json:"accuracy"`         // Agree / Labeled
	HonestP  float64 `json:"honest_precision"` // precision of the matched set against LabelHonest
	HonestR  float64 `json:"honest_recall"`    // recall of LabelHonest checkins into the matched set
}

// TruthAccum incrementally builds a TruthScore from a stream of user
// outcomes: Add each outcome as it arrives (O(1) state), then Score. It
// is the streaming-friendly core of ScoreAgainstTruth.
type TruthAccum struct {
	labeled, agree                           int
	matchedHonest, matchedTotal, honestTotal int
}

// Add accumulates one user's labeled checkins.
func (a *TruthAccum) Add(o UserOutcome) {
	for ci, c := range o.User.Checkins {
		a.AddLabel(c.Truth, o.Match.IsHonest(ci))
	}
}

// AddLabel accumulates one checkin given its ground-truth label and
// whether the matcher marked it honest. LabelNone is a no-op. It is the
// per-checkin core of Add, shared with the outcome-log path (which
// stores labels and match verdicts but not the traces behind them).
func (a *TruthAccum) AddLabel(l trace.Label, isMatched bool) {
	if l == trace.LabelNone {
		return
	}
	a.labeled++
	wantHonest := l == trace.LabelHonest
	if isMatched == wantHonest {
		a.agree++
	}
	if isMatched {
		a.matchedTotal++
		if wantHonest {
			a.matchedHonest++
		}
	}
	if wantHonest {
		a.honestTotal++
	}
}

// Labeled returns the number of labeled checkins seen so far.
func (a *TruthAccum) Labeled() int { return a.labeled }

// TruthCounts is the serializable snapshot of a TruthAccum: plain
// commutative sums, so persisted per-shard counts (the checkpoint
// store) merge back into a live accumulator in any order and score
// exactly like one accumulator fed the concatenated users.
type TruthCounts struct {
	Labeled       int `json:"labeled"`
	Agree         int `json:"agree"`
	MatchedHonest int `json:"matched_honest"`
	MatchedTotal  int `json:"matched_total"`
	HonestTotal   int `json:"honest_total"`
}

// Counts snapshots the accumulator's state.
func (a *TruthAccum) Counts() TruthCounts {
	return TruthCounts{
		Labeled:       a.labeled,
		Agree:         a.agree,
		MatchedHonest: a.matchedHonest,
		MatchedTotal:  a.matchedTotal,
		HonestTotal:   a.honestTotal,
	}
}

// AddCounts merges a persisted snapshot back into the accumulator.
func (a *TruthAccum) AddCounts(c TruthCounts) {
	a.labeled += c.Labeled
	a.agree += c.Agree
	a.matchedHonest += c.MatchedHonest
	a.matchedTotal += c.MatchedTotal
	a.honestTotal += c.HonestTotal
}

// SubtractCounts removes a snapshot's counts from the accumulator — the
// inverse of AddCounts. Together they give truth scoring the same
// subtract-then-add incremental shape as Partition: drop a superseded
// user's labeled checkins, add the re-validated ones, and the final
// Score is exactly what a cold run over the updated corpus computes.
func (a *TruthAccum) SubtractCounts(c TruthCounts) {
	a.labeled -= c.Labeled
	a.agree -= c.Agree
	a.matchedHonest -= c.MatchedHonest
	a.matchedTotal -= c.MatchedTotal
	a.honestTotal -= c.HonestTotal
}

// Merge adds b's counts into a. Like Partition.Merge it is associative
// and commutative, so per-shard accumulators merged in any order score
// exactly like one accumulator fed the concatenated users.
func (a *TruthAccum) Merge(b TruthAccum) {
	a.labeled += b.labeled
	a.agree += b.agree
	a.matchedHonest += b.matchedHonest
	a.matchedTotal += b.matchedTotal
	a.honestTotal += b.honestTotal
}

// Score finalizes the accumulated counts. It returns an error when no
// checkin carried a label (real data).
func (a *TruthAccum) Score() (TruthScore, error) {
	sc := TruthScore{Labeled: a.labeled, Agree: a.agree}
	if a.labeled == 0 {
		return sc, fmt.Errorf("core: no ground-truth labels present")
	}
	sc.Accuracy = float64(a.agree) / float64(a.labeled)
	if a.matchedTotal > 0 {
		sc.HonestP = float64(a.matchedHonest) / float64(a.matchedTotal)
	}
	if a.honestTotal > 0 {
		sc.HonestR = float64(a.matchedHonest) / float64(a.honestTotal)
	}
	return sc, nil
}

// ScoreAgainstTruth computes matcher-vs-ground-truth agreement over the
// outcomes. It returns an error when no checkin carries a label (real
// data).
func ScoreAgainstTruth(outs []UserOutcome) (TruthScore, error) {
	var a TruthAccum
	for _, o := range outs {
		a.Add(o)
	}
	return a.Score()
}

// SweepPoint is one cell of the (α, β) consistency sweep.
type SweepPoint struct {
	Alpha  float64
	Beta   time.Duration
	Honest int
}

// SweepParams reruns matching over a grid of (α, β) values and reports
// the honest-checkin count at each point. The paper's §4.1 claim — that
// results are "most consistent" around 500 m / 30 min — corresponds to
// the count surface flattening there; the ablation bench regenerates it.
//
// Each user's spatial index is built once, at the largest α in the grid,
// and reused across every sweep cell — rebuilding it per (α, β, user)
// made the sweep O(cells × users) grid constructions for identical
// geometry. Radius queries are exact for any radius, so the counts are
// identical to matching each cell from scratch.
func SweepParams(outs []UserOutcome, alphas []float64, betas []time.Duration) ([]SweepPoint, error) {
	if len(alphas) == 0 || len(betas) == 0 {
		return nil, nil
	}
	maxAlpha := alphas[0]
	for _, a := range alphas[1:] {
		if a > maxAlpha {
			maxAlpha = a
		}
	}
	honest := make([]int, len(alphas)*len(betas))
	for _, o := range outs {
		ix := NewVisitIndex(o.Visits, maxAlpha)
		for ai, a := range alphas {
			for bi, b := range betas {
				res, err := ix.Match(o.User.Checkins, Params{Alpha: a, Beta: b})
				if err != nil {
					return nil, err
				}
				honest[ai*len(betas)+bi] += res.Honest()
			}
		}
	}
	pts := make([]SweepPoint, 0, len(honest))
	for ai, a := range alphas {
		for bi, b := range betas {
			pts = append(pts, SweepPoint{Alpha: a, Beta: b, Honest: honest[ai*len(betas)+bi]})
		}
	}
	return pts, nil
}
