package core

import (
	"fmt"
	"time"

	"geosocial/internal/par"
	"geosocial/internal/trace"
	"geosocial/internal/visits"
)

// UserOutcome bundles one user's detected visits and matching result.
type UserOutcome struct {
	User   *trace.User
	Visits []trace.Visit
	Match  *Result
}

// Partition is the dataset-level Venn diagram of Figure 1.
type Partition struct {
	Checkins   int // total checkin events
	Visits     int // total detected visits
	Honest     int // matched checkins
	Extraneous int // unmatched checkins
	Missing    int // unmatched visits
}

// ExtraneousRatio returns extraneous checkins as a fraction of all
// checkins (the paper reports 75 %).
func (p Partition) ExtraneousRatio() float64 {
	if p.Checkins == 0 {
		return 0
	}
	return float64(p.Extraneous) / float64(p.Checkins)
}

// CoverageRatio returns matched visits as a fraction of all visits (the
// paper reports roughly 10 %).
func (p Partition) CoverageRatio() float64 {
	if p.Visits == 0 {
		return 0
	}
	return float64(p.Honest) / float64(p.Visits)
}

// MissingRatio returns unmatched visits as a fraction of all visits (the
// paper reports 89 %).
func (p Partition) MissingRatio() float64 {
	if p.Visits == 0 {
		return 0
	}
	return float64(p.Missing) / float64(p.Visits)
}

// String implements fmt.Stringer in the shape of Figure 1.
func (p Partition) String() string {
	return fmt.Sprintf("honest=%d extraneous=%d (%.0f%% of %d checkins) missing=%d (%.0f%% of %d visits)",
		p.Honest, p.Extraneous, 100*p.ExtraneousRatio(), p.Checkins,
		p.Missing, 100*p.MissingRatio(), p.Visits)
}

// Validator runs the full §4 pipeline: visit detection followed by
// checkin-to-visit matching, per user and dataset-wide.
type Validator struct {
	// Params are the matching thresholds (DefaultParams when zero).
	Params Params
	// VisitConfig parameterizes stay-point detection
	// (visits.DefaultConfig when zero).
	VisitConfig visits.Config
	// Parallelism is the number of workers used to validate users.
	// <= 0 selects runtime.GOMAXPROCS(0); 1 runs the serial path. The
	// outcomes and partition are identical for any value: per-user work is
	// collected into index-addressed slots and reduced serially.
	Parallelism int
}

// NewValidator returns a validator with the paper's parameters.
func NewValidator() *Validator {
	return &Validator{Params: DefaultParams(), VisitConfig: visits.DefaultConfig()}
}

// ValidateDataset runs visit detection and matching for every user and
// returns the per-user outcomes with the dataset partition.
func (v *Validator) ValidateDataset(ds *trace.Dataset) ([]UserOutcome, Partition, error) {
	params := v.Params
	if params == (Params{}) {
		params = DefaultParams()
	}
	vcfg := v.VisitConfig
	if vcfg == (visits.Config{}) {
		vcfg = visits.DefaultConfig()
	}
	db, err := ds.DB()
	if err != nil {
		return nil, Partition{}, fmt.Errorf("core: %w", err)
	}
	outs, err := par.Map(v.Parallelism, len(ds.Users), func(i int) (UserOutcome, error) {
		u := ds.Users[i]
		vs, err := visits.Detect(u.GPS, vcfg, db)
		if err != nil {
			return UserOutcome{}, fmt.Errorf("core: user %d: %w", u.ID, err)
		}
		res, err := MatchUser(u.Checkins, vs, params)
		if err != nil {
			return UserOutcome{}, fmt.Errorf("core: user %d: %w", u.ID, err)
		}
		return UserOutcome{User: u, Visits: vs, Match: res}, nil
	})
	if err != nil {
		return nil, Partition{}, err
	}
	var part Partition
	for _, o := range outs {
		part.Checkins += len(o.User.Checkins)
		part.Visits += len(o.Visits)
		part.Honest += o.Match.Honest()
		part.Extraneous += o.Match.Extraneous()
		part.Missing += o.Match.Missing()
	}
	return outs, part, nil
}

// TruthScore compares the matcher's honest/extraneous split against the
// generator's ground-truth labels (synthetic data only). It treats
// "matched" as the positive class for honest-labeled checkins.
type TruthScore struct {
	Labeled  int     // checkins carrying a ground-truth label
	Agree    int     // checkins where matcher and label agree
	Accuracy float64 // Agree / Labeled
	HonestP  float64 // precision of the matched set against LabelHonest
	HonestR  float64 // recall of LabelHonest checkins into the matched set
}

// ScoreAgainstTruth computes matcher-vs-ground-truth agreement over the
// outcomes. It returns an error when no checkin carries a label (real
// data).
func ScoreAgainstTruth(outs []UserOutcome) (TruthScore, error) {
	var sc TruthScore
	var matchedHonest, matchedTotal, honestTotal int
	for _, o := range outs {
		for ci, c := range o.User.Checkins {
			if c.Truth == trace.LabelNone {
				continue
			}
			sc.Labeled++
			isMatched := o.Match.IsHonest(ci)
			wantHonest := c.Truth == trace.LabelHonest
			if isMatched == wantHonest {
				sc.Agree++
			}
			if isMatched {
				matchedTotal++
				if wantHonest {
					matchedHonest++
				}
			}
			if wantHonest {
				honestTotal++
			}
		}
	}
	if sc.Labeled == 0 {
		return sc, fmt.Errorf("core: no ground-truth labels present")
	}
	sc.Accuracy = float64(sc.Agree) / float64(sc.Labeled)
	if matchedTotal > 0 {
		sc.HonestP = float64(matchedHonest) / float64(matchedTotal)
	}
	if honestTotal > 0 {
		sc.HonestR = float64(matchedHonest) / float64(honestTotal)
	}
	return sc, nil
}

// SweepPoint is one cell of the (α, β) consistency sweep.
type SweepPoint struct {
	Alpha  float64
	Beta   time.Duration
	Honest int
}

// SweepParams reruns matching over a grid of (α, β) values and reports
// the honest-checkin count at each point. The paper's §4.1 claim — that
// results are "most consistent" around 500 m / 30 min — corresponds to
// the count surface flattening there; the ablation bench regenerates it.
func SweepParams(outs []UserOutcome, alphas []float64, betas []time.Duration) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, a := range alphas {
		for _, b := range betas {
			p := Params{Alpha: a, Beta: b}
			honest := 0
			for _, o := range outs {
				res, err := MatchUser(o.User.Checkins, o.Visits, p)
				if err != nil {
					return nil, err
				}
				honest += res.Honest()
			}
			pts = append(pts, SweepPoint{Alpha: a, Beta: b, Honest: honest})
		}
	}
	return pts, nil
}
