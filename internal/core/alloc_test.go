package core

import (
	"testing"

	"geosocial/internal/trace"
)

// TestMatchIntoSteadyStateAllocs pins the matching hot path: once a
// VisitIndex and a recycled Result have been through one warm-up call,
// repeated MatchInto calls must stay within one allocation per call
// (the budget leaves headroom; the current implementation needs zero).
func TestMatchIntoSteadyStateAllocs(t *testing.T) {
	vs := []trace.Visit{
		visit(0, 10, 30),
		visit(120, 40, 55),
		visit(900, 70, 95),
		visit(40, 100, 130),
	}
	cks := trace.CheckinTrace{
		checkin(10, 15),
		checkin(130, 42),
		checkin(2500, 60), // extraneous: nothing within α
		checkin(890, 80),
		checkin(35, 110),
		checkin(45, 112), // conflicting claim on the same visit
	}
	ix := NewVisitIndex(vs, DefaultParams().Alpha)
	p := DefaultParams()

	var res Result
	if err := ix.MatchInto(&res, cks, p); err != nil {
		t.Fatal(err)
	}
	if res.Honest() == 0 || res.Extraneous() == 0 {
		t.Fatalf("fixture produced no interesting partition: %d honest, %d extraneous, %d missing",
			res.Honest(), res.Extraneous(), res.Missing())
	}

	allocs := testing.AllocsPerRun(200, func() {
		if err := ix.MatchInto(&res, cks, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("steady-state MatchInto: %v allocs per run, want <= 1", allocs)
	}
}
