package core

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

var base = geo.LatLon{Lat: 34.4208, Lon: -119.6982}

// at returns a point dist meters east of base.
func at(dist float64) geo.LatLon { return geo.Destination(base, 90, dist) }

// visit builds a visit at the given offset meters, spanning [start, end]
// minutes.
func visit(dist float64, startMin, endMin int64) trace.Visit {
	return trace.Visit{Start: startMin * 60, End: endMin * 60, Loc: at(dist), POIID: -1}
}

// checkin builds a checkin at the given offset meters and minute.
func checkin(dist float64, min int64) trace.Checkin {
	return trace.Checkin{T: min * 60, Loc: at(dist)}
}

func mustMatch(t *testing.T, cks trace.CheckinTrace, vs []trace.Visit) *Result {
	t.Helper()
	res, err := MatchUser(cks, vs, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMatchSimple(t *testing.T) {
	// One checkin during one visit at the same place: honest.
	res := mustMatch(t,
		trace.CheckinTrace{checkin(0, 15)},
		[]trace.Visit{visit(0, 10, 30)},
	)
	if res.Honest() != 1 || res.Extraneous() != 0 || res.Missing() != 0 {
		t.Fatalf("partition = %d/%d/%d", res.Honest(), res.Extraneous(), res.Missing())
	}
	if res.Matches[0].DeltaT != 0 {
		t.Errorf("DeltaT = %v, want 0 (checkin inside visit)", res.Matches[0].DeltaT)
	}
}

func TestMatchSpatialThreshold(t *testing.T) {
	// Checkin 600 m away exceeds alpha = 500 m: extraneous.
	res := mustMatch(t,
		trace.CheckinTrace{checkin(600, 15)},
		[]trace.Visit{visit(0, 10, 30)},
	)
	if res.Honest() != 0 || res.Extraneous() != 1 || res.Missing() != 1 {
		t.Fatalf("partition = %d/%d/%d", res.Honest(), res.Extraneous(), res.Missing())
	}
	// 400 m is inside alpha: honest.
	res = mustMatch(t,
		trace.CheckinTrace{checkin(400, 15)},
		[]trace.Visit{visit(0, 10, 30)},
	)
	if res.Honest() != 1 {
		t.Fatalf("400m checkin not matched")
	}
}

func TestMatchTemporalThreshold(t *testing.T) {
	// Checkin 29 minutes after the visit ends: inside beta.
	res := mustMatch(t,
		trace.CheckinTrace{checkin(0, 59)},
		[]trace.Visit{visit(0, 10, 30)},
	)
	if res.Honest() != 1 {
		t.Fatal("29-minute-late checkin not matched")
	}
	if got := res.Matches[0].DeltaT; got != 29*time.Minute {
		t.Errorf("DeltaT = %v, want 29m", got)
	}
	// 31 minutes after: outside beta.
	res = mustMatch(t,
		trace.CheckinTrace{checkin(0, 61)},
		[]trace.Visit{visit(0, 10, 30)},
	)
	if res.Honest() != 0 {
		t.Fatal("31-minute-late checkin matched")
	}
}

func TestIntervalDeltaT(t *testing.T) {
	v := visit(0, 10, 30)
	tests := []struct {
		tc   int64 // minutes
		want time.Duration
	}{
		{10, 0}, {20, 0}, {30, 0}, // inside the stay
		{5, 5 * time.Minute},   // before start
		{40, 10 * time.Minute}, // after end
	}
	for _, tc := range tests {
		if got := v.DeltaT(tc.tc * 60); got != tc.want {
			t.Errorf("DeltaT(%d min) = %v, want %v", tc.tc, got, tc.want)
		}
	}
}

func TestMatchClosestInTimeWins(t *testing.T) {
	// Two visits within alpha; the temporally closer one must match.
	res := mustMatch(t,
		trace.CheckinTrace{checkin(0, 45)},
		[]trace.Visit{
			visit(100, 10, 20), // 25 min away
			visit(200, 50, 60), // 5 min away
		},
	)
	if res.Honest() != 1 {
		t.Fatal("no match")
	}
	if res.Matches[0].VisitIdx != 1 {
		t.Fatalf("matched visit %d, want 1 (temporally closest)", res.Matches[0].VisitIdx)
	}
}

func TestMatchGeographicTieBreak(t *testing.T) {
	// Two checkins claim the same visit; the geographically closer one
	// keeps it, the other becomes extraneous — the §4.1 dedup rule that
	// exposes superfluous checkins.
	res := mustMatch(t,
		trace.CheckinTrace{
			checkin(10, 15),  // 10 m from the visit
			checkin(300, 16), // 300 m away (superfluous)
		},
		[]trace.Visit{visit(0, 10, 30)},
	)
	if res.Honest() != 1 || res.Extraneous() != 1 {
		t.Fatalf("partition = %d/%d", res.Honest(), res.Extraneous())
	}
	if res.Matches[0].CheckinIdx != 0 {
		t.Fatalf("matched checkin %d, want 0 (geographically closest)", res.Matches[0].CheckinIdx)
	}
}

func TestMatchDeltaTTieBreak(t *testing.T) {
	// Two visits exactly equidistant in time from the checkin (10 min on
	// each side), both within alpha: the tie must go to the lowest visit
	// index, not to whichever the spatial index happened to scan first.
	cks := trace.CheckinTrace{checkin(0, 30)}
	vs := []trace.Visit{
		visit(100, 10, 20), // ends 10 min before the checkin
		visit(200, 40, 50), // starts 10 min after
	}
	res := mustMatch(t, cks, vs)
	if res.Honest() != 1 {
		t.Fatal("no match")
	}
	if res.Matches[0].VisitIdx != 0 {
		t.Fatalf("tie matched visit %d, want 0 (lowest index)", res.Matches[0].VisitIdx)
	}
	// Swapping the visit order flips which stay is index 0; the winner
	// must follow the index, proving the tie-break is real.
	swapped := []trace.Visit{vs[1], vs[0]}
	res = mustMatch(t, cks, swapped)
	if res.Matches[0].VisitIdx != 0 {
		t.Fatalf("swapped tie matched visit %d, want 0", res.Matches[0].VisitIdx)
	}
	if res.Matches[0].Dist != geo.Distance(cks[0].Loc, swapped[0].Loc) {
		t.Error("match distance not recomputed for the winning visit")
	}
}

// TestVisitIndexMatchesMatchUser pins the reusable index to MatchUser for
// any grid cell size: radius queries are exact, and the explicit
// tie-break makes scan order irrelevant, so results must be identical.
func TestVisitIndexMatchesMatchUser(t *testing.T) {
	s := rng.New(99)
	var cks trace.CheckinTrace
	var vs []trace.Visit
	var tcur int64
	for i := 0; i < 80; i++ {
		tcur += s.Int63n(1500)
		cks = append(cks, trace.Checkin{T: tcur, Loc: at(s.Range(0, 2500))})
	}
	tcur = 0
	for i := 0; i < 80; i++ {
		start := tcur + s.Int63n(900)
		end := start + 360 + s.Int63n(2400)
		tcur = end
		vs = append(vs, trace.Visit{Start: start, End: end, Loc: at(s.Range(0, 2500)), POIID: -1})
	}
	p := DefaultParams()
	want, err := MatchUser(cks, vs, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range []float64{100, 500, 2000, 10000} {
		got, err := NewVisitIndex(vs, cell).Match(cks, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cell=%gm: result differs from MatchUser", cell)
		}
	}
	if _, err := NewVisitIndex(vs, 500).Match(cks, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMatchEachCheckinAtMostOneVisit(t *testing.T) {
	// One checkin, several nearby visits: exactly one match.
	res := mustMatch(t,
		trace.CheckinTrace{checkin(0, 25)},
		[]trace.Visit{visit(50, 10, 20), visit(100, 22, 28), visit(150, 30, 40)},
	)
	if res.Honest() != 1 {
		t.Fatalf("honest = %d, want 1", res.Honest())
	}
	if res.Missing() != 2 {
		t.Fatalf("missing = %d, want 2", res.Missing())
	}
}

func TestMatchEmptyInputs(t *testing.T) {
	res := mustMatch(t, nil, nil)
	if res.Honest() != 0 || res.Extraneous() != 0 || res.Missing() != 0 {
		t.Fatal("empty inputs produced matches")
	}
	res = mustMatch(t, trace.CheckinTrace{checkin(0, 5)}, nil)
	if res.Extraneous() != 1 {
		t.Fatal("checkin with no visits not extraneous")
	}
	res = mustMatch(t, nil, []trace.Visit{visit(0, 0, 10)})
	if res.Missing() != 1 {
		t.Fatal("visit with no checkins not missing")
	}
}

func TestMatchInvalidParams(t *testing.T) {
	if _, err := MatchUser(nil, nil, Params{Alpha: 0, Beta: time.Minute}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := MatchUser(nil, nil, Params{Alpha: 500, Beta: 0}); err == nil {
		t.Error("beta=0 accepted")
	}
}

// TestMatchPartitionInvariants checks, over random inputs, the structural
// invariants of the matching: every checkin is honest xor extraneous,
// every visit is matched xor missing, and no checkin or visit appears in
// two matches.
func TestMatchPartitionInvariants(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		s := rng.New(uint64(seed))
		nCk := s.Intn(40)
		nVis := s.Intn(40)
		cks := make(trace.CheckinTrace, 0, nCk)
		var tcur int64
		for i := 0; i < nCk; i++ {
			tcur += s.Int63n(1800)
			cks = append(cks, trace.Checkin{T: tcur, Loc: at(s.Range(0, 3000))})
		}
		vs := make([]trace.Visit, 0, nVis)
		tcur = 0
		for i := 0; i < nVis; i++ {
			start := tcur + s.Int63n(1800)
			end := start + 360 + s.Int63n(3600)
			tcur = end
			vs = append(vs, trace.Visit{Start: start, End: end, Loc: at(s.Range(0, 3000)), POIID: -1})
		}
		res, err := MatchUser(cks, vs, DefaultParams())
		if err != nil {
			return false
		}
		if res.Honest()+res.Extraneous() != len(cks) {
			return false
		}
		if res.Honest()+res.Missing() != len(vs) {
			return false
		}
		seenCk := map[int]bool{}
		seenVis := map[int]bool{}
		for _, m := range res.Matches {
			if seenCk[m.CheckinIdx] || seenVis[m.VisitIdx] {
				return false
			}
			seenCk[m.CheckinIdx] = true
			seenVis[m.VisitIdx] = true
			if m.Dist > DefaultParams().Alpha {
				return false
			}
			if m.DeltaT >= DefaultParams().Beta {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepParamsMonotone(t *testing.T) {
	// Honest count must be monotone non-decreasing in both alpha and
	// beta: looser thresholds can only add matches.
	s := rng.New(77)
	var cks trace.CheckinTrace
	var vs []trace.Visit
	var tcur int64
	for i := 0; i < 60; i++ {
		tcur += s.Int63n(2400)
		cks = append(cks, trace.Checkin{T: tcur, Loc: at(s.Range(0, 2000))})
	}
	tcur = 0
	for i := 0; i < 60; i++ {
		start := tcur + s.Int63n(1200)
		end := start + 400 + s.Int63n(2000)
		tcur = end
		vs = append(vs, trace.Visit{Start: start, End: end, Loc: at(s.Range(0, 2000)), POIID: -1})
	}
	outs := []UserOutcome{{
		User:   &trace.User{Checkins: cks},
		Visits: vs,
		Match:  &Result{},
	}}
	alphas := []float64{100, 250, 500, 1000}
	betas := []time.Duration{5 * time.Minute, 15 * time.Minute, 30 * time.Minute, time.Hour}
	pts, err := SweepParams(outs, alphas, betas)
	if err != nil {
		t.Fatal(err)
	}
	get := func(a float64, b time.Duration) int {
		for _, p := range pts {
			if p.Alpha == a && p.Beta == b {
				return p.Honest
			}
		}
		t.Fatalf("missing sweep point %g/%v", a, b)
		return 0
	}
	for bi := range betas {
		for ai := 1; ai < len(alphas); ai++ {
			if get(alphas[ai], betas[bi]) < get(alphas[ai-1], betas[bi]) {
				t.Errorf("honest count decreased with alpha at beta=%v", betas[bi])
			}
		}
	}
	for ai := range alphas {
		for bi := 1; bi < len(betas); bi++ {
			if get(alphas[ai], betas[bi]) < get(alphas[ai], betas[bi-1]) {
				t.Errorf("honest count decreased with beta at alpha=%g", alphas[ai])
			}
		}
	}
}

// TestSweepParamsMatchesPerCellMatching pins the grid-reuse optimization:
// the sweep (one spatial index per user, built at the maximum alpha) must
// produce exactly the counts of running MatchUser from scratch for every
// cell.
func TestSweepParamsMatchesPerCellMatching(t *testing.T) {
	ds, err := synthDataset(t)
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{125, 500, 2000}
	betas := []time.Duration{10 * time.Minute, 30 * time.Minute, time.Hour}
	pts, err := SweepParams(outs, alphas, betas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(alphas)*len(betas) {
		t.Fatalf("%d sweep points, want %d", len(pts), len(alphas)*len(betas))
	}
	i := 0
	for _, a := range alphas {
		for _, b := range betas {
			if pts[i].Alpha != a || pts[i].Beta != b {
				t.Fatalf("point %d is (%g, %v), want (%g, %v)", i, pts[i].Alpha, pts[i].Beta, a, b)
			}
			honest := 0
			for _, o := range outs {
				res, err := MatchUser(o.User.Checkins, o.Visits, Params{Alpha: a, Beta: b})
				if err != nil {
					t.Fatal(err)
				}
				honest += res.Honest()
			}
			if pts[i].Honest != honest {
				t.Fatalf("sweep(%g, %v) = %d honest, per-cell matching = %d",
					a, b, pts[i].Honest, honest)
			}
			i++
		}
	}
	// Degenerate grids yield no points.
	if pts, err := SweepParams(outs, nil, betas); err != nil || pts != nil {
		t.Errorf("empty alphas: %v, %v", pts, err)
	}
}

// synthDataset generates a small dataset for sweep tests.
func synthDataset(t *testing.T) (*trace.Dataset, error) {
	t.Helper()
	return synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(31))
}

func TestValidatorPipeline(t *testing.T) {
	// Hand-built dataset: a user visits POI 0 for 20 minutes and checks
	// in there, plus one remote checkin. The validator must detect the
	// visit, match the honest checkin and flag the remote one.
	pois := []poi.POI{
		{ID: 0, Name: "Cafe", Category: poi.Food, Loc: at(0)},
		{ID: 1, Name: "Bar", Category: poi.Nightlife, Loc: at(5000)},
	}
	var gps trace.GPSTrace
	for m := int64(0); m <= 20; m++ {
		gps = append(gps, trace.GPSPoint{T: m * 60, Loc: at(3)})
	}
	u := &trace.User{
		ID:   0,
		Days: 1,
		GPS:  gps,
		Checkins: trace.CheckinTrace{
			{T: 300, POIID: 0, Category: poi.Food, Loc: at(0), Truth: trace.LabelHonest},
			{T: 600, POIID: 1, Category: poi.Nightlife, Loc: at(5000), Truth: trace.LabelRemote},
		},
	}
	ds := &trace.Dataset{Name: "test", POIs: pois, Users: []*trace.User{u}}
	outs, part, err := NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if part.Honest != 1 || part.Extraneous != 1 {
		t.Fatalf("partition %+v", part)
	}
	if len(outs[0].Visits) != 1 {
		t.Fatalf("visits = %d, want 1", len(outs[0].Visits))
	}
	if outs[0].Visits[0].POIID != 0 {
		t.Errorf("visit snapped to POI %d, want 0", outs[0].Visits[0].POIID)
	}
	sc, err := ScoreAgainstTruth(outs)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Accuracy != 1 {
		t.Errorf("accuracy %.2f, want 1", sc.Accuracy)
	}
}

func TestScoreAgainstTruthNoLabels(t *testing.T) {
	outs := []UserOutcome{{
		User:  &trace.User{Checkins: trace.CheckinTrace{{T: 1}}},
		Match: &Result{},
	}}
	if _, err := ScoreAgainstTruth(outs); err == nil {
		t.Error("unlabeled data accepted")
	}
}

func TestPartitionRatios(t *testing.T) {
	p := Partition{Checkins: 100, Visits: 200, Honest: 25, Extraneous: 75, Missing: 175}
	if p.ExtraneousRatio() != 0.75 {
		t.Errorf("extraneous ratio %g", p.ExtraneousRatio())
	}
	if p.CoverageRatio() != 0.125 {
		t.Errorf("coverage %g", p.CoverageRatio())
	}
	if p.MissingRatio() != 0.875 {
		t.Errorf("missing ratio %g", p.MissingRatio())
	}
	var zero Partition
	if zero.ExtraneousRatio() != 0 || zero.CoverageRatio() != 0 || zero.MissingRatio() != 0 {
		t.Error("zero partition ratios not zero")
	}
}
