package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// onGridDataset generates a dataset and round-trips it through the
// binary codec so its coordinates sit on the E7 grid — binary shard
// streams then decode to exactly these users.
func onGridDataset(t *testing.T, scale float64, seed uint64) *trace.Dataset {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(scale), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	onGrid, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return onGrid
}

// splitUsers deals the dataset's users round-robin into n slices.
func splitUsers(ds *trace.Dataset, n int) []*trace.Dataset {
	out := make([]*trace.Dataset, n)
	for i := range out {
		out[i] = &trace.Dataset{Name: ds.Name, POIs: ds.POIs}
	}
	for i, u := range ds.Users {
		out[i%n].Users = append(out[i%n].Users, u)
	}
	return out
}

// binaryShardSources encodes each split as a standalone binary stream
// and opens a StreamReader over it, so decode really runs from raw
// frames.
func binaryShardSources(t *testing.T, splits []*trace.Dataset) []trace.FrameSource {
	t.Helper()
	srcs := make([]trace.FrameSource, len(splits))
	for i, part := range splits {
		var buf bytes.Buffer
		if err := part.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		sr, err := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = sr
	}
	return srcs
}

// TestValidateShardsMatchesDataset is the core determinism contract:
// validating K binary shards concurrently yields exactly the partition
// of single-dataset validation of the same users, for shard counts
// {1, 3, 8} x worker counts {1, 8}, with per-shard partitions that sum
// to the whole.
func TestValidateShardsMatchesDataset(t *testing.T) {
	ds := onGridDataset(t, 0.05, 42)
	ref := NewValidator()
	ref.Parallelism = 1
	_, wantPart, err := ref.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				splits := splitUsers(ds, shards)
				srcs := binaryShardSources(t, splits)
				v := NewValidator()
				v.Parallelism = workers
				users := 0
				parts, err := v.ValidateShards(db, srcs, func(shard int, o UserOutcome) error {
					users++
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if users != len(ds.Users) {
					t.Fatalf("sink saw %d users, want %d", users, len(ds.Users))
				}
				var got Partition
				for _, p := range parts {
					got.Merge(p)
				}
				if got != wantPart {
					t.Fatalf("merged partition %+v, want %+v", got, wantPart)
				}
				for s, p := range parts {
					if want := countPartition(t, splits[s]); p != want {
						t.Fatalf("shard %d partition %+v, want %+v", s, p, want)
					}
				}
			})
		}
	}
}

// countPartition validates one split serially as the per-shard
// reference.
func countPartition(t *testing.T, part *trace.Dataset) Partition {
	t.Helper()
	v := NewValidator()
	v.Parallelism = 1
	_, p, err := v.ValidateDataset(part)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestValidateShardsRejectsCrossShardDuplicates covers the set-wide
// duplicate user ID check the serial readers cannot perform.
func TestValidateShardsRejectsCrossShardDuplicates(t *testing.T) {
	ds := onGridDataset(t, 0.02, 7)
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	// Both shards carry the full user list: every ID is a duplicate.
	srcs := []trace.FrameSource{
		trace.SourceFrames(ds.Source()),
		trace.SourceFrames(ds.Source()),
	}
	for _, workers := range []int{1, 8} {
		v := NewValidator()
		v.Parallelism = workers
		_, err := v.ValidateShards(db, srcs, nil)
		if err == nil || !strings.Contains(err.Error(), "duplicate user ID") {
			t.Fatalf("workers=%d: duplicate users accepted: %v", workers, err)
		}
		srcs = []trace.FrameSource{ // fresh cursors for the next round
			trace.SourceFrames(ds.Source()),
			trace.SourceFrames(ds.Source()),
		}
	}
}

// TestResumeShards covers the checkpoint-aware entry point: skipped
// shards are never streamed, live shards produce exactly the
// partitions a full run produces for them, and a pre-seeded seen map
// still rejects duplicates between a skipped shard's users and a live
// shard's.
func TestResumeShards(t *testing.T) {
	ds := onGridDataset(t, 0.05, 42)
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	splits := splitUsers(ds, shards)
	for _, workers := range []int{1, 8} {
		v := NewValidator()
		v.Parallelism = workers
		full, err := v.ValidateShards(db, binaryShardSources(t, splits), nil)
		if err != nil {
			t.Fatal(err)
		}

		// Skip shard 0; its source slot may be nil. Seed seen with its
		// user IDs, as a checkpoint-driven resume does.
		srcs := binaryShardSources(t, splits)
		srcs[0] = nil
		skip := []bool{true, false, false}
		seen := make(map[int]int)
		for _, u := range splits[0].Users {
			seen[u.ID] = 0
		}
		sunk := 0
		parts, err := v.ResumeShards(db, srcs, skip, seen, func(shard int, o UserOutcome) error {
			if shard == 0 {
				t.Fatalf("sink saw an outcome for the skipped shard")
			}
			sunk++
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := len(splits[1].Users) + len(splits[2].Users); sunk != want {
			t.Fatalf("workers=%d: sink saw %d users, want %d", workers, sunk, want)
		}
		if parts[0] != (Partition{}) {
			t.Fatalf("workers=%d: skipped shard has partition %+v", workers, parts[0])
		}
		for s := 1; s < shards; s++ {
			if parts[s] != full[s] {
				t.Fatalf("workers=%d: shard %d partition %+v, want %+v", workers, s, parts[s], full[s])
			}
		}

		// A live user colliding with a seeded (checkpointed) ID fails.
		dup := binaryShardSources(t, splits)
		dup[0] = nil
		seen2 := map[int]int{splits[1].Users[0].ID: 0}
		_, err = v.ResumeShards(db, dup, skip, seen2, nil)
		if err == nil || !strings.Contains(err.Error(), "duplicate user ID") {
			t.Fatalf("workers=%d: seeded duplicate accepted: %v", workers, err)
		}
	}
}

// TestTruthCountsRoundTrip pins the serializable snapshot against the
// accumulator it came from.
func TestTruthCountsRoundTrip(t *testing.T) {
	ds := onGridDataset(t, 0.03, 21)
	outs, _, err := NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	var whole TruthAccum
	for _, o := range outs {
		whole.Add(o)
	}
	var restored TruthAccum
	restored.AddCounts(whole.Counts())
	if restored != whole {
		t.Fatalf("Counts/AddCounts round trip: %+v vs %+v", restored, whole)
	}
	want, err := whole.Score()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Score()
	if err != nil || got != want {
		t.Fatalf("restored score %+v (%v), want %+v", got, err, want)
	}
}

// TestPartitionMerge pins Merge against element-wise addition and the
// zero identity.
func TestPartitionMerge(t *testing.T) {
	a := Partition{Checkins: 1, Visits: 2, Honest: 3, Extraneous: 4, Missing: 5}
	b := Partition{Checkins: 10, Visits: 20, Honest: 30, Extraneous: 40, Missing: 50}
	got := a
	got.Merge(b)
	want := Partition{Checkins: 11, Visits: 22, Honest: 33, Extraneous: 44, Missing: 55}
	if got != want {
		t.Fatalf("merge %+v, want %+v", got, want)
	}
	got.Merge(Partition{})
	if got != want {
		t.Fatalf("zero merge changed the partition: %+v", got)
	}
}

// TestTruthAccumMerge checks that per-shard accumulators merged in any
// order score exactly like one accumulator over all outcomes.
func TestTruthAccumMerge(t *testing.T) {
	ds := onGridDataset(t, 0.03, 21)
	outs, _, err := NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	var whole TruthAccum
	for _, o := range outs {
		whole.Add(o)
	}
	want, err := whole.Score()
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]TruthAccum, 3)
	for i, o := range outs {
		shards[i%3].Add(o)
	}
	// Merge in reverse order to exercise commutativity.
	var merged TruthAccum
	for i := len(shards) - 1; i >= 0; i-- {
		merged.Merge(shards[i])
	}
	got, err := merged.Score()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("merged score %+v, want %+v", got, want)
	}
}
