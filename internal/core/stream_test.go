package core

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// TestValidateStreamMatchesDataset pins the streaming path to the
// in-memory path: for the same users, ValidateStream must deliver the
// exact outcome sequence and partition ValidateDataset produces, at
// worker counts 1 and 8.
func TestValidateStreamMatchesDataset(t *testing.T) {
	for _, c := range []struct {
		seed  uint64
		scale float64
	}{
		{3, 0.03},
		{42, 0.05},
	} {
		t.Run(fmt.Sprintf("seed=%d/scale=%g", c.seed, c.scale), func(t *testing.T) {
			ds, err := synth.Generate(synth.PrimaryConfig().Scale(c.scale), rng.New(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			ref := NewValidator()
			ref.Parallelism = 1
			wantOuts, wantPart, err := ref.ValidateDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			db, err := ds.DB()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				v := NewValidator()
				v.Parallelism = workers
				var gotOuts []UserOutcome
				gotPart, err := v.ValidateStream(db, ds.Source(), func(o UserOutcome) error {
					gotOuts = append(gotOuts, o)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if gotPart != wantPart {
					t.Fatalf("workers=%d: partition %+v, want %+v", workers, gotPart, wantPart)
				}
				if len(gotOuts) != len(wantOuts) {
					t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(gotOuts), len(wantOuts))
				}
				for i := range gotOuts {
					if !reflect.DeepEqual(gotOuts[i], wantOuts[i]) {
						t.Fatalf("workers=%d: outcome %d differs from in-memory path", workers, i)
					}
				}
			}
		})
	}
}

// TestValidateStreamNilSink allows aggregate-only consumers.
func TestValidateStreamNilSink(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	_, wantPart, err := NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	gotPart, err := NewValidator().ValidateStream(db, ds.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotPart != wantPart {
		t.Fatalf("partition %+v, want %+v", gotPart, wantPart)
	}
}

// errSource fails after yielding a fixed number of users.
type errSource struct {
	users []*trace.User
	pos   int
	err   error
}

func (s *errSource) Next() (*trace.User, error) {
	if s.pos >= len(s.users) {
		return nil, s.err
	}
	u := s.users[s.pos]
	s.pos++
	return u, nil
}

// TestValidateStreamErrors covers the two failure directions: a failing
// source and a failing per-user pipeline (invalid params), at both worker
// counts.
func TestValidateStreamErrors(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	srcErr := errors.New("disk on fire")
	for _, workers := range []int{1, 8} {
		v := NewValidator()
		v.Parallelism = workers
		if _, err := v.ValidateStream(db, &errSource{users: ds.Users[:3], err: srcErr}, nil); !errors.Is(err, srcErr) {
			t.Errorf("workers=%d: source error not propagated: %v", workers, err)
		}

		bad := &Validator{Params: Params{Alpha: -1, Beta: time.Minute}, Parallelism: workers}
		_, err := bad.ValidateStream(db, ds.Source(), nil)
		if err == nil {
			t.Errorf("workers=%d: invalid params accepted", workers)
		}
	}
}

// TestValidateStreamSinkError stops the stream when the sink fails.
func TestValidateStreamSinkError(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	sinkErr := errors.New("downstream full")
	for _, workers := range []int{1, 8} {
		v := NewValidator()
		v.Parallelism = workers
		calls := 0
		_, err := v.ValidateStream(db, ds.Source(), func(UserOutcome) error {
			calls++
			if calls == 2 {
				return sinkErr
			}
			return nil
		})
		if !errors.Is(err, sinkErr) {
			t.Errorf("workers=%d: sink error not propagated: %v", workers, err)
		}
		if calls != 2 {
			t.Errorf("workers=%d: sink called %d times, want 2", workers, calls)
		}
	}
}

// TestTruthAccumMatchesScore pins the incremental scorer to the batch
// one.
func TestTruthAccumMatchesScore(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.03), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ScoreAgainstTruth(outs)
	if err != nil {
		t.Fatal(err)
	}
	var a TruthAccum
	for _, o := range outs {
		a.Add(o)
	}
	got, err := a.Score()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("incremental score %+v, batch %+v", got, want)
	}
	var empty TruthAccum
	if _, err := empty.Score(); err == nil {
		t.Error("empty accumulator scored without error")
	}
	if empty.Labeled() != 0 {
		t.Error("empty accumulator reports labels")
	}
}

// TestDatasetSourceEOF checks the in-memory source terminates cleanly.
func TestDatasetSourceEOF(t *testing.T) {
	ds := &trace.Dataset{Users: []*trace.User{{ID: 0}, {ID: 1}}}
	src := ds.Source()
	for i := 0; i < 2; i++ {
		u, err := src.Next()
		if err != nil || u.ID != i {
			t.Fatalf("user %d: %v, err %v", i, u, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("exhausted source returned %v, want io.EOF", err)
		}
	}
}
