// Package core implements the paper's primary contribution: the algorithm
// that matches Foursquare checkin events against GPS-derived visits
// (§4.1), the resulting honest/extraneous/missing partition (Figure 1),
// and the parameter-consistency sweep behind the choice of α = 500 m and
// β = 30 min.
//
// Matching algorithm (verbatim from §4.1):
//
//	Step 1: for each checkin event ci, identify from the same user's GPS
//	trace the set of visits {V} whose physical locations are within α
//	meters of ci's location.
//
//	Step 2: if {V} is non-null, find the visit vj in {V} whose timestamp
//	is closest to that of ci (using the interval distance Δt of the §4.1
//	footnote). If Δt < β, vj matches ci.
//
// Each checkin matches at most one visit; when multiple checkins claim
// the same visit, the geographically closest checkin keeps it and the
// rest become unmatched (they are the superfluous checkins of §5.1).
package core

import (
	"fmt"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/trace"
)

// Params are the matching thresholds.
type Params struct {
	// Alpha is the spatial threshold in meters (paper: 500 m).
	Alpha float64
	// Beta is the temporal threshold (paper: 30 min).
	Beta time.Duration
}

// DefaultParams returns the paper's thresholds: α = 500 m, β = 30 min,
// chosen in §4.1 as the values where matching results are most consistent.
func DefaultParams() Params {
	return Params{Alpha: 500, Beta: 30 * time.Minute}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("core: Alpha must be positive, got %g", p.Alpha)
	}
	if p.Beta <= 0 {
		return fmt.Errorf("core: Beta must be positive, got %v", p.Beta)
	}
	return nil
}

// Match is one checkin-to-visit correspondence.
type Match struct {
	CheckinIdx int           // index into the user's checkin trace
	VisitIdx   int           // index into the user's visit list
	DeltaT     time.Duration // interval timestamp distance at match time
	Dist       float64       // meters between checkin POI and visit centroid
}

// Result is the outcome of matching one user's traces.
type Result struct {
	// Matches holds the surviving one-to-one correspondences; matched
	// checkins are the "honest" set.
	Matches []Match
	// ExtraneousIdx lists checkin indices with no matching visit.
	ExtraneousIdx []int
	// MissingIdx lists visit indices not matched by any checkin
	// ("missing checkins" / unmatched visits).
	MissingIdx []int

	// honestBits and visitBits are bitmaps over checkin / visit indices,
	// precomputed by MatchUser so IsHonest and IsVisitMatched are O(1).
	// Hand-built Results (tests) leave them nil and fall back to a scan.
	honestBits []bool
	visitBits  []bool
}

// Honest returns the number of matched (honest) checkins.
func (r *Result) Honest() int { return len(r.Matches) }

// Extraneous returns the number of unmatched checkins.
func (r *Result) Extraneous() int { return len(r.ExtraneousIdx) }

// Missing returns the number of unmatched visits.
func (r *Result) Missing() int { return len(r.MissingIdx) }

// IsHonest reports whether checkin index ci was matched.
func (r *Result) IsHonest(ci int) bool {
	if r.honestBits != nil {
		return ci >= 0 && ci < len(r.honestBits) && r.honestBits[ci]
	}
	for _, m := range r.Matches {
		if m.CheckinIdx == ci {
			return true
		}
	}
	return false
}

// IsVisitMatched reports whether visit index vi was claimed by a checkin.
func (r *Result) IsVisitMatched(vi int) bool {
	if r.visitBits != nil {
		return vi >= 0 && vi < len(r.visitBits) && r.visitBits[vi]
	}
	for _, m := range r.Matches {
		if m.VisitIdx == vi {
			return true
		}
	}
	return false
}

// MatchUser runs the matching algorithm for one user's checkins against
// her detected visits. Both inputs must be time-ordered; visits must be
// non-overlapping (as produced by internal/visits).
//
// To rerun matching over the same visits at several parameter settings
// (the (α, β) sweep), build a VisitIndex once and call its Match method.
func MatchUser(checkins trace.CheckinTrace, vs []trace.Visit, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(checkins) == 0 && len(vs) == 0 {
		return &Result{}, nil
	}
	return NewVisitIndex(vs, p.Alpha).Match(checkins, p)
}

// VisitIndex is a reusable spatial index over one user's visit centroids.
// Building the grid is the dominant fixed cost of MatchUser, so callers
// that match the same visits repeatedly — the (α, β) consistency sweep —
// build the index once at the largest α they will query and reuse it:
// radius queries are exact for any radius, the cell size only tunes scan
// cost. Match results are identical to MatchUser for any cell size.
type VisitIndex struct {
	vs   []trace.Visit
	grid *geo.GridIndex
	// Reusable per-Match scratch (what makes repeated Match calls on one
	// index allocation-free in steady state, and the index single-threaded).
	buf    []int
	claims []claim
	winner []int32
}

// claim is one checkin's provisional claim on a visit (Step 2 output,
// before conflict resolution).
type claim struct {
	checkin int
	visit   int
	deltaT  time.Duration
	dist    float64
}

// NewVisitIndex builds the index with the given grid cell size in meters
// (values <= 0 default to 500; pass the largest α you will match at).
func NewVisitIndex(vs []trace.Visit, cellMeters float64) *VisitIndex {
	pts := make([]geo.LatLon, len(vs))
	for i, v := range vs {
		pts[i] = v.Loc
	}
	return &VisitIndex{vs: vs, grid: geo.NewGridIndex(pts, cellMeters)}
}

// Match runs the §4.1 matching of checkins against the indexed visits.
// The index is not safe for concurrent Match calls (it reuses internal
// scratch buffers); build one index per goroutine.
func (ix *VisitIndex) Match(checkins trace.CheckinTrace, p Params) (*Result, error) {
	res := &Result{}
	if err := ix.MatchInto(res, checkins, p); err != nil {
		return nil, err
	}
	return res, nil
}

// MatchInto is Match writing its result into res, reusing res's slices —
// the steady-state allocation-free form for hot loops that recycle a
// Result across users or parameter settings. res must not be read
// concurrently with the call; its previous contents are overwritten.
func (ix *VisitIndex) MatchInto(res *Result, checkins trace.CheckinTrace, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	vs := ix.vs
	res.Matches = res.Matches[:0]
	res.ExtraneousIdx = res.ExtraneousIdx[:0]
	res.MissingIdx = res.MissingIdx[:0]
	res.honestBits = resetBools(res.honestBits, len(checkins))
	res.visitBits = resetBools(res.visitBits, len(vs))
	ix.claims = ix.claims[:0]
	if cap(ix.winner) < len(vs) {
		ix.winner = make([]int32, len(vs))
	}
	ix.winner = ix.winner[:len(vs)]
	for i := range ix.winner {
		ix.winner[i] = -1
	}

	// Step 1 + Step 2: provisional best visit per checkin. Candidate scan
	// order is whatever the grid yields, so ΔT ties are broken explicitly:
	// the lowest visit index (the earliest detected visit) wins. The §4.1
	// text does not specify a tie rule; index order is the deterministic
	// choice that cannot depend on grid geometry.
	//
	// Conflict resolution is folded into the same pass: ix.winner tracks,
	// per visit, the claim index of the geographically closest claiming
	// checkin so far (§4.1 — ties keep the earliest checkin, matching the
	// strict < comparison the claim-list scan used).
	for ci, c := range checkins {
		ix.buf = ix.grid.Within(c.Loc, p.Alpha, ix.buf[:0])
		bestVisit := -1
		bestDT := time.Duration(0)
		bestDist := 0.0
		for _, vi := range ix.buf {
			dt := vs[vi].DeltaT(c.T)
			if dt >= p.Beta {
				continue
			}
			if bestVisit < 0 || dt < bestDT || (dt == bestDT && vi < bestVisit) {
				bestDT = dt
				bestVisit = vi
				bestDist = geo.Distance(c.Loc, vs[vi].Loc)
			}
		}
		if bestVisit >= 0 {
			k := int32(len(ix.claims))
			ix.claims = append(ix.claims, claim{checkin: ci, visit: bestVisit, deltaT: bestDT, dist: bestDist})
			if w := ix.winner[bestVisit]; w < 0 || bestDist < ix.claims[w].dist {
				ix.winner[bestVisit] = k
			}
		}
	}

	// Emit surviving matches. Claims are in ascending checkin order and
	// each checkin claims at most one visit, so the result is already
	// sorted by CheckinIdx — the same order the deterministic sort
	// produced before conflict resolution was single-pass.
	for k := range ix.claims {
		cl := &ix.claims[k]
		if ix.winner[cl.visit] != int32(k) {
			continue
		}
		res.Matches = append(res.Matches, Match{
			CheckinIdx: cl.checkin,
			VisitIdx:   cl.visit,
			DeltaT:     cl.deltaT,
			Dist:       cl.dist,
		})
		res.honestBits[cl.checkin] = true
		res.visitBits[cl.visit] = true
	}

	for ci := range checkins {
		if !res.honestBits[ci] {
			res.ExtraneousIdx = append(res.ExtraneousIdx, ci)
		}
	}
	for vi := range vs {
		if !res.visitBits[vi] {
			res.MissingIdx = append(res.MissingIdx, vi)
		}
	}
	sortMatches(res)
	return nil
}

// resetBools returns b resized to n with every element false, reusing
// capacity when possible.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// sortMatches orders the result deterministically by checkin index.
func sortMatches(r *Result) {
	// Insertion sort: match lists are small per user and mostly ordered.
	for i := 1; i < len(r.Matches); i++ {
		m := r.Matches[i]
		j := i - 1
		for j >= 0 && r.Matches[j].CheckinIdx > m.CheckinIdx {
			r.Matches[j+1] = r.Matches[j]
			j--
		}
		r.Matches[j+1] = m
	}
}
