package core

import (
	"fmt"
	"reflect"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// validateBothWays runs ValidateDataset serially and on eight workers and
// asserts the outcomes and partition are identical.
func validateBothWays(t *testing.T, ds *trace.Dataset) ([]UserOutcome, Partition) {
	t.Helper()
	serial := NewValidator()
	serial.Parallelism = 1
	parallel := NewValidator()
	parallel.Parallelism = 8

	sOuts, sPart, err := serial.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	pOuts, pPart, err := parallel.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if sPart != pPart {
		t.Fatalf("partitions differ: serial %+v, parallel %+v", sPart, pPart)
	}
	if len(sOuts) != len(pOuts) {
		t.Fatalf("outcome counts differ: serial %d, parallel %d", len(sOuts), len(pOuts))
	}
	for i := range sOuts {
		if !reflect.DeepEqual(sOuts[i], pOuts[i]) {
			t.Fatalf("outcome %d (user %d) differs between serial and parallel",
				i, sOuts[i].User.ID)
		}
	}
	return sOuts, sPart
}

// TestValidateDatasetDeterministicAcrossWorkers asserts the §4 pipeline
// produces identical per-user outcomes and an identical partition at
// Parallelism 1 and 8, for several seeds and scales.
func TestValidateDatasetDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		seed  uint64
		scale float64
	}{
		{3, 0.03},
		{42, 0.03},
		{1234, 0.06},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("seed=%d/scale=%g", c.seed, c.scale), func(t *testing.T) {
			ds, err := synth.Generate(synth.PrimaryConfig().Scale(c.scale), rng.New(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			outs, part := validateBothWays(t, ds)
			if len(outs) != len(ds.Users) {
				t.Fatalf("got %d outcomes for %d users", len(outs), len(ds.Users))
			}
			if part.Checkins == 0 || part.Visits == 0 {
				t.Fatalf("degenerate partition %+v", part)
			}
		})
	}
}

// TestValidateDatasetEmpty covers the zero-user edge case on both paths.
func TestValidateDatasetEmpty(t *testing.T) {
	outs, part := validateBothWays(t, &trace.Dataset{Name: "empty"})
	if len(outs) != 0 {
		t.Fatalf("got %d outcomes for empty dataset", len(outs))
	}
	if part != (Partition{}) {
		t.Fatalf("non-zero partition %+v for empty dataset", part)
	}
}

// TestValidateDatasetSingleUserNoCheckins covers a one-user dataset whose
// user has GPS fixes but zero checkins: every visit must come out missing.
func TestValidateDatasetSingleUserNoCheckins(t *testing.T) {
	var gps trace.GPSTrace
	for m := int64(0); m <= 30; m++ {
		gps = append(gps, trace.GPSPoint{T: m * 60, Loc: at(3)})
	}
	u := &trace.User{ID: 0, Days: 1, GPS: gps}
	ds := &trace.Dataset{Name: "one-user", Users: []*trace.User{u}}
	outs, part := validateBothWays(t, ds)
	if len(outs) != 1 {
		t.Fatalf("got %d outcomes, want 1", len(outs))
	}
	if part.Checkins != 0 || part.Honest != 0 {
		t.Fatalf("partition %+v, want zero checkins", part)
	}
	if part.Visits == 0 || part.Missing != part.Visits {
		t.Fatalf("partition %+v, want all visits missing", part)
	}
	if outs[0].Match.IsHonest(0) {
		t.Fatal("IsHonest(0) true for a user with no checkins")
	}
}
