// Package par provides the deterministic worker-pool primitives behind
// every parallel fan-out in this repository.
//
// The pipeline's unit of work is one user: generation, visit detection,
// matching and classification all treat users independently, so user-level
// fan-out is the natural scaling axis. The contract every helper here
// upholds is that parallel execution is observationally identical to the
// serial loop:
//
//   - work items are addressed by index and results land in index-addressed
//     slots, never appended from goroutines;
//   - when several items fail, the error reported is the one the serial
//     loop would have hit first (the lowest index), regardless of the order
//     goroutines happened to finish in;
//   - workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs the plain
//     serial loop on the calling goroutine — the exact legacy path with no
//     goroutine overhead.
//
// Callers that need randomness must pre-split their rng streams serially
// (in index order, on the calling goroutine) before fanning out, so the
// parent stream advances identically to the serial path.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), and the result is capped at n so a tiny job does
// not spawn idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// SplitBudget divides an explicit worker budget across the branches of a
// nested fan-out (an outer loop whose body fans out again), so the total
// worker count stays within what the caller asked for. Non-positive
// budgets ("all cores") pass through unchanged: goroutine counts may then
// exceed GOMAXPROCS, but actual CPU parallelism is still capped by the
// scheduler.
func SplitBudget(workers, branches int) int {
	if workers <= 1 || branches <= 1 {
		return workers
	}
	return (workers + branches - 1) / branches
}

// For runs f(i) for every i in [0, n) on the given number of workers and
// returns when all calls have completed. Indices are claimed in increasing
// order; f must not assume any particular completion order.
func For(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs f(i) for every i in [0, n) on the given number of workers.
// When one or more calls fail, the error returned is the one at the lowest
// index — exactly the error a serial loop would have returned — and items
// not yet claimed at failure time are skipped. The guarantee holds because
// the failure flag is checked before an index is claimed, never after:
// every claimed item runs to completion, and indices are claimed in
// increasing order, so the lowest failing index is always claimed before
// any higher one and always records its own error.
func ForErr(workers, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Map runs f over every index in [0, n) and collects the results into an
// index-addressed slice, so out[i] corresponds to item i regardless of
// completion order. On error the partial slice is discarded and the
// lowest-index error is returned (see ForErr).
func Map[T any](workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErr(workers, n, func(i int) error {
		v, err := f(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
