// Package par provides the deterministic worker-pool primitives behind
// every parallel fan-out in this repository.
//
// The pipeline's unit of work is one user: generation, visit detection,
// matching and classification all treat users independently, so user-level
// fan-out is the natural scaling axis. The contract every helper here
// upholds is that parallel execution is observationally identical to the
// serial loop:
//
//   - work items are addressed by index and results land in index-addressed
//     slots, never appended from goroutines;
//   - when several items fail, the error reported is the one the serial
//     loop would have hit first (the lowest index), regardless of the order
//     goroutines happened to finish in;
//   - workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs the plain
//     serial loop on the calling goroutine — the exact legacy path with no
//     goroutine overhead.
//
// Callers that need randomness must pre-split their rng streams serially
// (in index order, on the calling goroutine) before fanning out, so the
// parent stream advances identically to the serial path.
package par

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), and the result is capped at n so a tiny job does
// not spawn idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// SplitBudget divides an explicit worker budget across the branches of a
// nested fan-out (an outer loop whose body fans out again), so the total
// worker count stays within what the caller asked for. Non-positive
// budgets ("all cores") pass through unchanged: goroutine counts may then
// exceed GOMAXPROCS, but actual CPU parallelism is still capped by the
// scheduler.
func SplitBudget(workers, branches int) int {
	if workers <= 1 || branches <= 1 {
		return workers
	}
	return (workers + branches - 1) / branches
}

// For runs f(i) for every i in [0, n) on the given number of workers and
// returns when all calls have completed. Indices are claimed in increasing
// order; f must not assume any particular completion order.
func For(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr runs f(i) for every i in [0, n) on the given number of workers.
// When one or more calls fail, the error returned is the one at the lowest
// index — exactly the error a serial loop would have returned — and items
// not yet claimed at failure time are skipped. The guarantee holds because
// the failure flag is checked before an index is claimed, never after:
// every claimed item runs to completion, and indices are claimed in
// increasing order, so the lowest failing index is always claimed before
// any higher one and always records its own error.
func ForErr(workers, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// streamSlot carries one in-flight item of a MapStream run. The consumer
// waits on done before touching out/err, so no lock is needed: the close
// happens-before the receive.
type streamSlot[T, R any] struct {
	idx  int
	in   T
	out  R
	err  error
	done chan struct{}
}

// MapStream is Map over a stream of unknown length: items are pulled one
// at a time from next (which returns io.EOF to end the stream), mapped by
// f on the given number of workers, and delivered to sink strictly in
// input order. At most O(workers) items are in flight at any moment, so
// memory stays bounded no matter how long the stream is.
//
// The determinism contract matches the rest of this package: sink sees
// exactly the (index, result) sequence the serial loop would produce, for
// any worker count. When several calls fail, the error returned is the
// lowest-index one. workers == 1 runs the exact serial loop — next, f,
// sink, repeat — with no goroutines and no read-ahead; parallel runs may
// call next up to the window size ahead of the item sink is consuming.
//
// next is called from a single goroutine (not necessarily the caller's);
// f must be safe for concurrent calls on distinct items; sink runs on the
// calling goroutine.
func MapStream[T, R any](workers int, next func() (T, error), f func(i int, v T) (R, error), sink func(i int, r R) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		for i := 0; ; i++ {
			v, err := next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			r, err := f(i, v)
			if err != nil {
				return err
			}
			if err := sink(i, r); err != nil {
				return err
			}
		}
	}

	// The order channel's buffer is the in-flight window: the producer
	// blocks once window slots are unconsumed, bounding memory. Every slot
	// enters order before jobs, so the consumer sees each index exactly
	// once, in input order, regardless of completion order.
	window := 2 * workers
	jobs := make(chan *streamSlot[T, R])
	order := make(chan *streamSlot[T, R], window)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // producer: pulls the stream, fans slots out
		defer wg.Done()
		defer close(jobs)
		defer close(order)
		for i := 0; ; i++ {
			v, err := next()
			if err != nil {
				if err != io.EOF {
					s := &streamSlot[T, R]{idx: i, err: err, done: make(chan struct{})}
					close(s.done)
					select {
					case order <- s:
					case <-stop:
					}
				}
				return
			}
			s := &streamSlot[T, R]{idx: i, in: v, done: make(chan struct{})}
			select {
			case order <- s:
			case <-stop:
				return
			}
			select {
			case jobs <- s:
			case <-stop:
				return
			}
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for s := range jobs {
				s.out, s.err = f(s.idx, s.in)
				close(s.done)
			}
		}()
	}

	// Consumer (this goroutine): reduce strictly in input order. Walking
	// order sequentially means the first error seen is the lowest-index
	// error — the one the serial loop would have hit first.
	var firstErr error
	for s := range order {
		<-s.done
		if s.err != nil {
			firstErr = s.err
			break
		}
		if err := sink(s.idx, s.out); err != nil {
			firstErr = err
			break
		}
	}
	close(stop)
	wg.Wait()
	return firstErr
}

// Map runs f over every index in [0, n) and collects the results into an
// index-addressed slice, so out[i] corresponds to item i regardless of
// completion order. On error the partial slice is discarded and the
// lowest-index error is returned (see ForErr).
func Map[T any](workers, n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErr(workers, n, func(i int) error {
		v, err := f(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
