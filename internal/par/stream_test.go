package par

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// sliceNext returns a next func streaming the given values then io.EOF.
func sliceNext(vals []int) func() (int, error) {
	i := 0
	return func() (int, error) {
		if i >= len(vals) {
			return 0, io.EOF
		}
		v := vals[i]
		i++
		return v, nil
	}
}

// TestMapStreamOrderAndResults pins the core contract for several worker
// counts: sink sees every (index, result) pair exactly once, strictly in
// input order, regardless of completion order.
func TestMapStreamOrderAndResults(t *testing.T) {
	vals := make([]int, 200)
	for i := range vals {
		vals[i] = i * 3
	}
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []int
			err := MapStream(workers, sliceNext(vals),
				func(i, v int) (int, error) {
					// Stagger completions so out-of-order finishes are real.
					if i%7 == 0 {
						time.Sleep(time.Millisecond)
					}
					return v + 1, nil
				},
				func(i, r int) error {
					if i != len(got) {
						t.Errorf("sink index %d, want %d", i, len(got))
					}
					got = append(got, r)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(vals) {
				t.Fatalf("sink saw %d items, want %d", len(got), len(vals))
			}
			for i, r := range got {
				if r != vals[i]+1 {
					t.Fatalf("got[%d] = %d, want %d", i, r, vals[i]+1)
				}
			}
		})
	}
}

// TestMapStreamEmpty covers the immediate-EOF stream.
func TestMapStreamEmpty(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := MapStream(workers, sliceNext(nil),
			func(i, v int) (int, error) { t.Error("f called on empty stream"); return 0, nil },
			func(i, r int) error { t.Error("sink called on empty stream"); return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMapStreamLowestIndexError asserts the deterministic error contract:
// when several items fail, the reported error is the lowest-index one,
// exactly as the serial loop would have returned.
func TestMapStreamLowestIndexError(t *testing.T) {
	vals := make([]int, 100)
	for _, workers := range []int{1, 4, 16} {
		err := MapStream(workers, sliceNext(vals),
			func(i, v int) (int, error) {
				if i >= 30 {
					return 0, fmt.Errorf("item %d failed", i)
				}
				// Let high indices fail fast while low ones dawdle.
				if i < 30 {
					time.Sleep(time.Millisecond)
				}
				return 0, nil
			},
			func(i, r int) error { return nil })
		if err == nil || err.Error() != "item 30 failed" {
			t.Errorf("workers=%d: err = %v, want item 30", workers, err)
		}
	}
}

// TestMapStreamSourceError propagates a failing next.
func TestMapStreamSourceError(t *testing.T) {
	srcErr := errors.New("stream broke")
	for _, workers := range []int{1, 8} {
		calls := 0
		err := MapStream(workers,
			func() (int, error) {
				calls++
				if calls > 5 {
					return 0, srcErr
				}
				return calls, nil
			},
			func(i, v int) (int, error) { return v, nil },
			func(i, r int) error { return nil })
		if !errors.Is(err, srcErr) {
			t.Errorf("workers=%d: err = %v, want stream error", workers, err)
		}
	}
}

// TestMapStreamSinkError stops the run on a sink failure.
func TestMapStreamSinkError(t *testing.T) {
	vals := make([]int, 500)
	sinkErr := errors.New("sink full")
	for _, workers := range []int{1, 8} {
		seen := 0
		err := MapStream(workers, sliceNext(vals),
			func(i, v int) (int, error) { return v, nil },
			func(i, r int) error {
				seen++
				if seen == 10 {
					return sinkErr
				}
				return nil
			})
		if !errors.Is(err, sinkErr) {
			t.Errorf("workers=%d: err = %v, want sink error", workers, err)
		}
		if seen != 10 {
			t.Errorf("workers=%d: sink called %d times after error, want 10", workers, seen)
		}
	}
}

// TestMapStreamBoundedInFlight verifies the memory contract: the number
// of items pulled from next but not yet delivered to sink never exceeds
// the in-flight window (O(workers)), even with a slow consumer.
func TestMapStreamBoundedInFlight(t *testing.T) {
	const workers = 4
	var pulled, delivered atomic.Int64
	var maxInFlight atomic.Int64
	n := 300
	err := MapStream(workers,
		func() (int, error) {
			p := pulled.Add(1)
			if p > int64(n) {
				return 0, io.EOF
			}
			if inFlight := p - delivered.Load(); inFlight > maxInFlight.Load() {
				maxInFlight.Store(inFlight)
			}
			return int(p), nil
		},
		func(i, v int) (int, error) { return v, nil },
		func(i, r int) error {
			time.Sleep(200 * time.Microsecond) // slow consumer
			delivered.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Window is 2*workers slots plus one being handed over; leave slack
	// for the race between the Add and the Load above.
	limit := int64(2*workers + workers + 2)
	if got := maxInFlight.Load(); got > limit {
		t.Errorf("max in-flight items %d exceeds bound %d", got, limit)
	}
}

// TestMapStreamConcurrencyCap verifies f never runs on more than the
// requested number of workers at once.
func TestMapStreamConcurrencyCap(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	vals := make([]int, 100)
	err := MapStream(workers, sliceNext(vals),
		func(i, v int) (int, error) {
			c := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			return v, nil
		},
		func(i, r int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}
