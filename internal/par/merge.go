package par

import (
	"io"
	"runtime"
	"sync"
)

// mergeSlot carries one in-flight item of a MergeStreams run. As with
// streamSlot, the consumer waits on done before touching out/err.
type mergeSlot[T, R any] struct {
	shard, idx int
	in         T
	out        R
	err        error
	done       chan struct{}
}

// MergeStreams is MapStream over K ordered sources sharing one worker
// budget: items are pulled from each source by its own producer (so K
// files can be read concurrently), mapped by f on a single shared pool
// of workers, and delivered to sink in a deterministic merged order —
// round-robin across the sources in index order, skipping sources that
// have ended. For sources A and B the sink sees A0 B0 A1 B1 …, and once
// A ends, B's remaining items back to back. The merged order depends
// only on the sources' contents, never on worker count or scheduling.
//
// The contracts match MapStream, generalized to the merged order:
//
//   - sink sees every (shard, index, result) exactly once, in merged
//     order, on the calling goroutine, for any worker count;
//   - when several items fail, the error returned is the one at the
//     earliest merged position — exactly what the serial round-robin
//     loop would have hit first;
//   - at most O(workers + len(next)) items are in flight at once, so
//     memory stays bounded no matter how long the streams are;
//   - workers == 1 runs the exact serial round-robin loop on the
//     calling goroutine, with no goroutines and no read-ahead.
//
// Each next[s] is called from a single goroutine; f must be safe for
// concurrent calls on distinct items.
func MergeStreams[T, R any](workers int, next []func() (T, error), f func(shard, idx int, v T) (R, error), sink func(shard, idx int, r R) error) error {
	k := len(next)
	if k == 0 {
		return nil
	}
	if k == 1 {
		return MapStream(workers, next[0],
			func(i int, v T) (R, error) { return f(0, i, v) },
			func(i int, r R) error { return sink(0, i, r) })
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		alive := make([]bool, k)
		for s := range alive {
			alive[s] = true
		}
		idx := make([]int, k)
		for live := k; live > 0; {
			for s := 0; s < k; s++ {
				if !alive[s] {
					continue
				}
				v, err := next[s]()
				if err == io.EOF {
					alive[s] = false
					live--
					continue
				}
				if err != nil {
					return err
				}
				r, err := f(s, idx[s], v)
				if err != nil {
					return err
				}
				if err := sink(s, idx[s], r); err != nil {
					return err
				}
				idx[s]++
			}
		}
		return nil
	}

	// Per-shard windows share the global budget: the buffered order
	// channels hold ~2*workers slots total (at least one per shard), so
	// in-flight items stay O(workers + shards) and a fast shard cannot
	// buffer unboundedly ahead of the merge cursor.
	perShard := (2*workers + k - 1) / k
	jobs := make(chan *mergeSlot[T, R])
	orders := make([]chan *mergeSlot[T, R], k)
	stop := make(chan struct{})
	var producers, pool sync.WaitGroup

	for s := 0; s < k; s++ {
		orders[s] = make(chan *mergeSlot[T, R], perShard)
		producers.Add(1)
		go func(s int) { // producer: pulls one source, fans slots out
			defer producers.Done()
			defer close(orders[s])
			for i := 0; ; i++ {
				v, err := next[s]()
				if err != nil {
					if err != io.EOF {
						sl := &mergeSlot[T, R]{shard: s, idx: i, err: err, done: make(chan struct{})}
						close(sl.done)
						select {
						case orders[s] <- sl:
						case <-stop:
						}
					}
					return
				}
				sl := &mergeSlot[T, R]{shard: s, idx: i, in: v, done: make(chan struct{})}
				select {
				case orders[s] <- sl:
				case <-stop:
					return
				}
				select {
				case jobs <- sl:
				case <-stop:
					return
				}
			}
		}(s)
	}
	go func() { producers.Wait(); close(jobs) }()

	pool.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer pool.Done()
			for sl := range jobs {
				sl.out, sl.err = f(sl.shard, sl.idx, sl.in)
				close(sl.done)
			}
		}()
	}

	// Consumer (this goroutine): walk the merged order — one item from
	// each live shard per round, shards in index order. The first error
	// seen is therefore the earliest merged-position error.
	var firstErr error
	rotation := make([]int, k)
	for s := range rotation {
		rotation[s] = s
	}
	for len(rotation) > 0 && firstErr == nil {
		live := rotation[:0]
		for _, s := range rotation {
			sl, ok := <-orders[s]
			if !ok {
				continue // shard ended: drop it from the rotation
			}
			<-sl.done
			if sl.err != nil {
				firstErr = sl.err
				break
			}
			if err := sink(sl.shard, sl.idx, sl.out); err != nil {
				firstErr = err
				break
			}
			live = append(live, s)
		}
		rotation = live
	}
	close(stop)
	pool.Wait()
	return firstErr
}
