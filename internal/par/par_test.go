package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{1, 100, 1},
		{8, 100, 8},
		{8, 3, 3},
		{8, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.workers, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestSplitBudget(t *testing.T) {
	cases := []struct {
		workers, branches, want int
	}{
		{0, 2, 0}, // "all cores" passes through
		{-1, 2, -1},
		{1, 2, 1}, // serial stays serial
		{8, 2, 4},
		{7, 2, 4},
		{8, 1, 8},
	}
	for _, c := range cases {
		if got := SplitBudget(c.workers, c.branches); got != c.want {
			t.Errorf("SplitBudget(%d, %d) = %d, want %d", c.workers, c.branches, got, c.want)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			counts := make([]atomic.Int64, max(n, 1))
			For(workers, n, func(i int) { counts[i].Add(1) })
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	// Indices 10 and 40 both fail; the slow early failure must win over
	// the fast late one, matching what a serial loop would return.
	for _, workers := range []int{1, 2, 8} {
		err := ForErr(workers, 50, func(i int) error {
			switch i {
			case 10:
				time.Sleep(10 * time.Millisecond)
				return fmt.Errorf("item %d", i)
			case 40:
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 10" {
			t.Fatalf("workers=%d: got %v, want item 10", workers, err)
		}
	}
}

func TestForErrSkipsAfterFailure(t *testing.T) {
	// With a single failure at index 0 and enough delay, the later items
	// should mostly be skipped rather than all executed.
	var ran atomic.Int64
	err := ForErr(2, 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got == 10000 {
		t.Errorf("all %d items ran despite early failure", got)
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if out != nil {
		t.Fatalf("expected nil slice on error, got %v", out)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, func(i int) { called = true })
	For(4, -5, func(i int) { called = true })
	if called {
		t.Fatal("f called for non-positive n")
	}
	if err := ForErr(4, 0, func(i int) error { return errors.New("x") }); err != nil {
		t.Fatalf("ForErr with n=0 returned %v", err)
	}
}
