package par

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// mergeRef computes the reference merged delivery order for the given
// shard lengths: one item per live shard per round, shards in index
// order.
func mergeRef(lens []int) [][2]int {
	var out [][2]int
	for round := 0; ; round++ {
		progressed := false
		for s, n := range lens {
			if round < n {
				out = append(out, [2]int{s, round})
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// TestMergeStreamsOrderAndResults pins the merged-order contract across
// worker counts and uneven shard lengths: sink sees every (shard, idx,
// result) exactly once, in the deterministic round-robin merged order.
func TestMergeStreamsOrderAndResults(t *testing.T) {
	lens := []int{17, 0, 5, 40, 1}
	want := mergeRef(lens)
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			next := make([]func() (int, error), len(lens))
			for s, n := range lens {
				next[s] = sliceNext(seq(s, n))
			}
			var got [][2]int
			err := MergeStreams(workers, next,
				func(shard, idx int, v int) (int, error) {
					if v%5 == 0 { // stagger completions
						time.Sleep(time.Millisecond)
					}
					return v * 2, nil
				},
				func(shard, idx int, r int) error {
					if wantV := (shard*1000 + idx) * 2; r != wantV {
						t.Errorf("shard %d idx %d: result %d, want %d", shard, idx, r, wantV)
					}
					got = append(got, [2]int{shard, idx})
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("sink saw %d items, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("delivery %d = %v, want %v (merged order broken)", i, got[i], want[i])
				}
			}
		})
	}
}

// seq returns shard s's values: s*1000, s*1000+1, ...
func seq(s, n int) []int {
	vals := make([]int, n)
	for i := range vals {
		vals[i] = s*1000 + i
	}
	return vals
}

// TestMergeStreamsEdges covers zero sources, all-empty sources, and the
// single-source delegation to MapStream.
func TestMergeStreamsEdges(t *testing.T) {
	if err := MergeStreams(8, nil,
		func(s, i, v int) (int, error) { return v, nil },
		func(s, i, r int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		err := MergeStreams(workers,
			[]func() (int, error){sliceNext(nil), sliceNext(nil)},
			func(s, i, v int) (int, error) { t.Error("f called on empty streams"); return 0, nil },
			func(s, i, r int) error { t.Error("sink called on empty streams"); return nil })
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		err = MergeStreams(workers,
			[]func() (int, error){sliceNext([]int{7, 8, 9})},
			func(s, i, v int) (int, error) { return v, nil },
			func(s, i, r int) error { got = append(got, r); return nil })
		if err != nil || len(got) != 3 || got[0] != 7 || got[2] != 9 {
			t.Fatalf("single source: got %v, err %v", got, err)
		}
	}
}

// TestMergeStreamsEarliestError asserts the deterministic error
// contract: the reported error is the one at the earliest merged
// position, not whichever goroutine failed first.
func TestMergeStreamsEarliestError(t *testing.T) {
	// Shard 0 fails at idx 5 (merged position: round 5), shard 1 at
	// idx 2 (round 2). The earliest merged failure is shard 1's, even
	// though shard 0's items complete faster.
	for _, workers := range []int{1, 4, 16} {
		next := []func() (int, error){sliceNext(seq(0, 20)), sliceNext(seq(1, 20))}
		err := MergeStreams(workers, next,
			func(shard, idx int, v int) (int, error) {
				if shard == 0 && idx == 5 {
					return 0, fmt.Errorf("shard 0 item 5 failed")
				}
				if shard == 1 && idx == 2 {
					time.Sleep(2 * time.Millisecond) // fail slowly
					return 0, fmt.Errorf("shard 1 item 2 failed")
				}
				return v, nil
			},
			func(shard, idx int, r int) error { return nil })
		if err == nil || err.Error() != "shard 1 item 2 failed" {
			t.Errorf("workers=%d: err = %v, want shard 1 item 2", workers, err)
		}
	}
}

// TestMergeStreamsSourceError propagates a failing next at its merged
// position.
func TestMergeStreamsSourceError(t *testing.T) {
	srcErr := errors.New("shard 1 unreadable")
	for _, workers := range []int{1, 8} {
		var delivered [][2]int
		err := MergeStreams(workers,
			[]func() (int, error){
				sliceNext(seq(0, 10)),
				func() (int, error) { return 0, srcErr },
			},
			func(shard, idx int, v int) (int, error) { return v, nil },
			func(shard, idx int, r int) error {
				delivered = append(delivered, [2]int{shard, idx})
				return nil
			})
		if !errors.Is(err, srcErr) {
			t.Errorf("workers=%d: err = %v, want source error", workers, err)
		}
		// Merged order: (0,0) delivers, then shard 1's position fails.
		if len(delivered) != 1 || delivered[0] != [2]int{0, 0} {
			t.Errorf("workers=%d: delivered %v before the error, want [[0 0]]", workers, delivered)
		}
	}
}

// TestMergeStreamsSinkError stops the run when sink fails.
func TestMergeStreamsSinkError(t *testing.T) {
	sinkErr := errors.New("sink full")
	for _, workers := range []int{1, 8} {
		seen := 0
		err := MergeStreams(workers,
			[]func() (int, error){sliceNext(seq(0, 100)), sliceNext(seq(1, 100))},
			func(shard, idx int, v int) (int, error) { return v, nil },
			func(shard, idx int, r int) error {
				seen++
				if seen == 7 {
					return sinkErr
				}
				return nil
			})
		if !errors.Is(err, sinkErr) {
			t.Errorf("workers=%d: err = %v, want sink error", workers, err)
		}
		if seen != 7 {
			t.Errorf("workers=%d: sink called %d times after error, want 7", workers, seen)
		}
	}
}

// TestMergeStreamsBoundedInFlight verifies the memory contract across
// all sources: items pulled but not yet delivered stay O(workers +
// shards) even with a slow consumer.
func TestMergeStreamsBoundedInFlight(t *testing.T) {
	const workers, shards, perShard = 4, 3, 100
	var pulled, delivered atomic.Int64
	var maxInFlight atomic.Int64
	next := make([]func() (int, error), shards)
	for s := 0; s < shards; s++ {
		i := 0
		next[s] = func() (int, error) {
			if i >= perShard {
				return 0, io.EOF
			}
			i++
			p := pulled.Add(1)
			if inFlight := p - delivered.Load(); inFlight > maxInFlight.Load() {
				maxInFlight.Store(inFlight)
			}
			return i, nil
		}
	}
	err := MergeStreams(workers, next,
		func(shard, idx int, v int) (int, error) { return v, nil },
		func(shard, idx int, r int) error {
			time.Sleep(200 * time.Microsecond) // slow consumer
			delivered.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Window ~2*workers+shards buffered, plus workers in flight and
	// hand-over slack.
	limit := int64(2*workers + shards + workers + 2*shards + 2)
	if got := maxInFlight.Load(); got > limit {
		t.Errorf("max in-flight items %d exceeds bound %d", got, limit)
	}
}

// TestMergeStreamsConcurrencyCap verifies f never runs on more than the
// requested number of workers at once, across all sources combined.
func TestMergeStreamsConcurrencyCap(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	next := []func() (int, error){sliceNext(seq(0, 50)), sliceNext(seq(1, 50)), sliceNext(seq(2, 50))}
	err := MergeStreams(workers, next,
		func(shard, idx int, v int) (int, error) {
			c := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			return v, nil
		},
		func(shard, idx int, r int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}
