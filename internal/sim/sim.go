// Package sim is a minimal discrete-event simulation kernel: a time-
// ordered event queue with deterministic FIFO tie-breaking and a clock.
// The MANET simulator in internal/manet schedules protocol timers, packet
// deliveries and mobility updates through it.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type Event struct {
	time float64
	seq  uint64
	fn   func()
	// canceled events stay in the heap but are skipped on pop.
	canceled bool
}

// Time returns the event's scheduled time.
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Safe to call multiple times and
// after the event has fired (no-op).
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and event queue. The zero value is ready
// to use.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of events still queued (including canceled
// ones not yet skipped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// is always a logic error in a discrete-event simulation.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %.6f before now %.6f", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Step fires the next pending event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the queue drains or the next event
// lies beyond t; the clock ends at min(t, last event time fired) or t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Run drains the queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
