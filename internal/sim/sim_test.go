package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %g", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestAfterAndNesting(t *testing.T) {
	var e Engine
	var times []float64
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.RunUntil(3)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %g, want 3", e.Now())
	}
	e.RunUntil(10)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeDelayClamped(t *testing.T) {
	var e Engine
	fired := false
	e.After(-3, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("fired=%v now=%g", fired, e.Now())
	}
}

func TestMonotonicClockProperty(t *testing.T) {
	err := quick.Check(func(delays []uint16) bool {
		var e Engine
		last := -1.0
		ok := true
		for _, d := range delays {
			e.At(float64(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.At(float64(j%100), func() {})
		}
		e.Run()
	}
}
