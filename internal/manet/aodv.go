package manet

// AODV (Ad hoc On-Demand Distance Vector, RFC 3561) as implemented by the
// ns-2 simulator the paper uses [2]: reactive route discovery with
// expanding-ring RREQ flooding, RREP unicast along reverse routes,
// sequence-numbered route freshness, RERR propagation on link breaks, and
// link-layer feedback for break detection (ns-2's default in place of
// hello beacons; hello emission is available as an option).

import "fmt"

// AODV protocol constants (RFC 3561 defaults, times in seconds).
const (
	activeRouteTimeout = 10.0
	ttlStart           = 2
	ttlIncrement       = 2
	ttlThreshold       = 7
	netDiameter        = 35
	rreqRetries        = 2
	pathDiscoveryTime  = 2.0 // wait per discovery round before retry
	maxQueuedPerDest   = 64
	// unreachableBackoff suppresses new discoveries for a destination
	// that just exhausted its retry budget (RFC 3561's DELETE_PERIOD
	// spirit); without it a CBR source bleeds RREQ floods every packet
	// while its peer is partitioned away.
	unreachableBackoff = 10.0
)

// pktKind discriminates simulated packets.
type pktKind int

const (
	pktData pktKind = iota
	pktRREQ
	pktRREP
	pktRERR
	pktHello
)

func (k pktKind) String() string {
	switch k {
	case pktData:
		return "DATA"
	case pktRREQ:
		return "RREQ"
	case pktRREP:
		return "RREP"
	case pktRERR:
		return "RERR"
	case pktHello:
		return "HELLO"
	default:
		return fmt.Sprintf("pkt(%d)", int(k))
	}
}

// packet is the on-air unit. Fields are a union across kinds; flow
// identifies the originating CBR pair for overhead attribution.
type packet struct {
	kind pktKind
	src  int // immediate transmitter
	// Data.
	flow   int
	seq    int
	origin int // data source / RREQ originator
	dest   int
	ttl    int
	hops   int
	// RREQ.
	rreqID     int
	originSeq  uint32
	destSeq    uint32
	unknownSeq bool
	// RREP: dest/destSeq/hops reused; origin is the RREQ originator.
	// RERR.
	unreachable []unreachableDest
}

type unreachableDest struct {
	dest    int
	destSeq uint32
}

// routeEntry is one AODV routing-table row.
type routeEntry struct {
	nextHop    int
	hopCount   int
	destSeq    uint32
	validSeq   bool
	valid      bool
	expires    float64
	precursors map[int]bool
}

// queuedData is a buffered data packet awaiting route discovery.
type queuedData struct {
	pkt packet
}

// aodvNode is the per-node protocol state machine.
type aodvNode struct {
	id     int
	sim    *Simulator
	seqNo  uint32
	rreqID int
	routes map[int]*routeEntry
	// seenRREQ deduplicates flooded requests: key origin<<32|rreqID.
	seenRREQ map[uint64]bool
	// queue buffers data per destination during discovery.
	queue map[int][]queuedData
	// pendingDiscovery tracks retry state per destination.
	pendingDiscovery map[int]*discoveryState
	// unreachableUntil suppresses re-discovery of recently failed
	// destinations until the stored simulation time.
	unreachableUntil map[int]float64
}

type discoveryState struct {
	ttl     int
	retries int
	timer   cancelable
}

type cancelable interface{ Cancel() }

func newAODVNode(id int, s *Simulator) *aodvNode {
	return &aodvNode{
		id:               id,
		sim:              s,
		routes:           make(map[int]*routeEntry),
		seenRREQ:         make(map[uint64]bool),
		queue:            make(map[int][]queuedData),
		pendingDiscovery: make(map[int]*discoveryState),
		unreachableUntil: make(map[int]float64),
	}
}

// route returns the entry for dest, creating it if needed.
func (n *aodvNode) route(dest int) *routeEntry {
	r, ok := n.routes[dest]
	if !ok {
		r = &routeEntry{precursors: make(map[int]bool)}
		n.routes[dest] = r
	}
	return r
}

// validRoute returns the usable route to dest, or nil.
func (n *aodvNode) validRoute(dest int) *routeEntry {
	r, ok := n.routes[dest]
	if !ok || !r.valid || n.sim.eng.Now() > r.expires {
		return nil
	}
	return r
}

// refreshRoute extends the active-route lifetime of dest (and is called
// for source, destination and intermediate hops on data forwarding).
func (n *aodvNode) refreshRoute(dest int) {
	if r, ok := n.routes[dest]; ok && r.valid {
		if exp := n.sim.eng.Now() + activeRouteTimeout; exp > r.expires {
			r.expires = exp
		}
	}
}

// updateRoute installs or improves a route per the RFC's freshness rules:
// accept when the sequence number is newer, equal with fewer hops, or the
// entry is invalid/unknown.
func (n *aodvNode) updateRoute(dest, nextHop, hops int, destSeq uint32, hasSeq bool) {
	r := n.route(dest)
	accept := !r.valid || !r.validSeq
	if !accept && hasSeq {
		if seqNewer(destSeq, r.destSeq) {
			accept = true
		} else if destSeq == r.destSeq && hops < r.hopCount {
			accept = true
		}
	}
	if !accept && !hasSeq && hops < r.hopCount {
		accept = true
	}
	if !accept {
		return
	}
	r.nextHop = nextHop
	r.hopCount = hops
	if hasSeq {
		r.destSeq = destSeq
		r.validSeq = true
	}
	r.valid = true
	r.expires = n.sim.eng.Now() + activeRouteTimeout
}

// seqNewer reports whether a is fresher than b with wraparound semantics.
func seqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// sendData originates or forwards a data packet.
func (n *aodvNode) sendData(p packet) {
	if p.dest == n.id {
		n.sim.deliverData(p)
		return
	}
	if p.ttl <= 0 {
		n.sim.metrics.dropTTL++
		return
	}
	r := n.validRoute(p.dest)
	if r == nil {
		if p.origin == n.id {
			if until, ok := n.unreachableUntil[p.dest]; ok && n.sim.eng.Now() < until {
				n.sim.metrics.dropUnreachable++
				return
			}
			// Source: buffer and discover.
			if len(n.queue[p.dest]) < maxQueuedPerDest {
				n.queue[p.dest] = append(n.queue[p.dest], queuedData{pkt: p})
			} else {
				n.sim.metrics.dropQueueFull++
			}
			n.startDiscovery(p.dest)
		} else {
			// Intermediate node lost the route: drop and report upstream.
			n.sim.metrics.dropNoRoute++
			n.sendRERR(p.dest, p.flow)
		}
		return
	}
	r.precursors[p.src] = true
	n.refreshRoute(p.dest)
	n.refreshRoute(r.nextHop)
	p.ttl--
	p.hops++
	n.sim.unicast(n.id, r.nextHop, p)
}

// startDiscovery begins (or continues) expanding-ring route discovery.
func (n *aodvNode) startDiscovery(dest int) {
	if _, running := n.pendingDiscovery[dest]; running {
		return
	}
	ttl := ttlStart
	if n.sim.cfg.FullFloodRREQ {
		ttl = netDiameter
	}
	st := &discoveryState{ttl: ttl}
	n.pendingDiscovery[dest] = st
	n.issueRREQ(dest, st)
}

func (n *aodvNode) issueRREQ(dest int, st *discoveryState) {
	n.seqNo++
	n.rreqID++
	var destSeq uint32
	unknown := true
	if r, ok := n.routes[dest]; ok && r.validSeq {
		destSeq = r.destSeq
		unknown = false
	}
	p := packet{
		kind:       pktRREQ,
		flow:       n.sim.flowOf(n.id, dest),
		origin:     n.id,
		dest:       dest,
		ttl:        st.ttl,
		rreqID:     n.rreqID,
		originSeq:  n.seqNo,
		destSeq:    destSeq,
		unknownSeq: unknown,
	}
	n.seenRREQ[rreqKey(n.id, n.rreqID)] = true
	n.sim.broadcast(n.id, p)
	// Retry timer.
	st.timer = n.sim.eng.After(pathDiscoveryTime, func() { n.discoveryTimeout(dest) })
}

func (n *aodvNode) discoveryTimeout(dest int) {
	st, ok := n.pendingDiscovery[dest]
	if !ok {
		return
	}
	if n.validRoute(dest) != nil {
		delete(n.pendingDiscovery, dest)
		n.flushQueue(dest)
		return
	}
	// Expanding ring, then full-diameter retries.
	if st.ttl < ttlThreshold {
		st.ttl += ttlIncrement
	} else if st.ttl < netDiameter {
		st.ttl = netDiameter
	} else {
		st.retries++
		if st.retries > rreqRetries {
			// Destination unreachable: drop the buffered packets and
			// back off before trying again.
			n.sim.metrics.dropUnreachable += len(n.queue[dest])
			delete(n.queue, dest)
			delete(n.pendingDiscovery, dest)
			n.unreachableUntil[dest] = n.sim.eng.Now() + unreachableBackoff
			return
		}
	}
	n.issueRREQ(dest, st)
}

// flushQueue sends the data buffered for dest once a route exists.
func (n *aodvNode) flushQueue(dest int) {
	q := n.queue[dest]
	delete(n.queue, dest)
	for _, qd := range q {
		n.sendData(qd.pkt)
	}
}

func rreqKey(origin, id int) uint64 { return uint64(origin)<<32 | uint64(uint32(id)) }

// handleRREQ processes a received route request.
func (n *aodvNode) handleRREQ(p packet) {
	if p.origin == n.id {
		return
	}
	key := rreqKey(p.origin, p.rreqID)
	if n.seenRREQ[key] {
		return
	}
	n.seenRREQ[key] = true

	// Reverse route to the originator (and to the transmitter).
	n.updateRoute(p.src, p.src, 1, 0, false)
	n.updateRoute(p.origin, p.src, p.hops+1, p.originSeq, true)

	// Answer if we are the destination or hold a fresh-enough route.
	if p.dest == n.id {
		if !p.unknownSeq && seqNewer(p.destSeq, n.seqNo) {
			n.seqNo = p.destSeq
		}
		n.seqNo++
		n.sendRREP(p.origin, n.id, 0, n.seqNo, p.flow)
		return
	}
	if r := n.validRoute(p.dest); r != nil && r.validSeq && (!p.unknownSeq && !seqNewer(p.destSeq, r.destSeq) || p.unknownSeq) {
		// Intermediate reply from cached route (RFC gratuitous RREP to
		// the destination is omitted, as in ns-2's default).
		n.sendRREP(p.origin, p.dest, r.hopCount, r.destSeq, p.flow)
		return
	}
	// Rebroadcast with decremented TTL.
	if p.ttl <= 1 {
		return
	}
	p.ttl--
	p.hops++
	p.src = n.id
	n.sim.broadcast(n.id, p)
}

// sendRREP unicasts a route reply toward the RREQ originator.
func (n *aodvNode) sendRREP(origin, dest, hopsToDest int, destSeq uint32, flow int) {
	r := n.validRoute(origin)
	if r == nil {
		return
	}
	p := packet{
		kind:    pktRREP,
		flow:    flow,
		origin:  origin,
		dest:    dest,
		destSeq: destSeq,
		hops:    hopsToDest,
		ttl:     netDiameter,
	}
	n.sim.unicast(n.id, r.nextHop, p)
}

// handleRREP processes a received route reply.
func (n *aodvNode) handleRREP(p packet) {
	// Forward route to the reply's destination.
	n.updateRoute(p.src, p.src, 1, 0, false)
	n.updateRoute(p.dest, p.src, p.hops+1, p.destSeq, true)

	if p.origin == n.id {
		// Discovery complete.
		if st, ok := n.pendingDiscovery[p.dest]; ok {
			if st.timer != nil {
				st.timer.Cancel()
			}
			delete(n.pendingDiscovery, p.dest)
		}
		n.flushQueue(p.dest)
		return
	}
	// Forward along the reverse route.
	r := n.validRoute(p.origin)
	if r == nil {
		return
	}
	if fr := n.routes[p.dest]; fr != nil {
		fr.precursors[r.nextHop] = true
	}
	p.hops++
	p.src = n.id
	n.sim.unicast(n.id, r.nextHop, p)
}

// linkBroken reacts to a failed transmission to neighbor nb: invalidate
// every route through nb and propagate RERR.
func (n *aodvNode) linkBroken(nb int, flow int) {
	var lost []unreachableDest
	for dest, r := range n.routes {
		if r.valid && r.nextHop == nb {
			r.valid = false
			r.destSeq++ // RFC: increment seq of unreachable destinations
			lost = append(lost, unreachableDest{dest: dest, destSeq: r.destSeq})
		}
	}
	if len(lost) == 0 {
		return
	}
	n.broadcastRERR(lost, flow)
}

// sendRERR reports a single unreachable destination (no-route forwarding
// failure).
func (n *aodvNode) sendRERR(dest int, flow int) {
	r := n.route(dest)
	r.destSeq++
	n.broadcastRERR([]unreachableDest{{dest: dest, destSeq: r.destSeq}}, flow)
}

func (n *aodvNode) broadcastRERR(lost []unreachableDest, flow int) {
	n.sim.broadcast(n.id, packet{
		kind:        pktRERR,
		flow:        flow,
		ttl:         1, // RERRs travel hop by hop via precursor re-broadcast
		unreachable: lost,
	})
}

// handleRERR invalidates routes that used the transmitter as next hop for
// the listed destinations and propagates when it had precursors.
func (n *aodvNode) handleRERR(p packet) {
	var propagate []unreachableDest
	for _, u := range p.unreachable {
		r, ok := n.routes[u.dest]
		if !ok || !r.valid || r.nextHop != p.src {
			continue
		}
		if seqNewer(r.destSeq, u.destSeq) {
			continue
		}
		r.valid = false
		r.destSeq = u.destSeq
		propagate = append(propagate, u)
	}
	if len(propagate) > 0 {
		n.broadcastRERR(propagate, p.flow)
	}
}

// handleHello refreshes the neighbor route on hello reception.
func (n *aodvNode) handleHello(p packet) {
	n.updateRoute(p.src, p.src, 1, p.originSeq, true)
}

// receive dispatches a delivered packet.
func (n *aodvNode) receive(p packet) {
	switch p.kind {
	case pktData:
		n.sendData(p) // forwards or delivers
	case pktRREQ:
		n.handleRREQ(p)
	case pktRREP:
		n.handleRREP(p)
	case pktRERR:
		n.handleRERR(p)
	case pktHello:
		n.handleHello(p)
	}
}
