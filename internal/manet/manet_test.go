package manet

import (
	"math"
	"testing"

	"geosocial/internal/rng"
)

// lineConfig returns a config sized for an n-node static chain.
func lineConfig(n int) Config {
	cfg := DefaultConfig()
	cfg.Nodes = n
	cfg.Flows = 1
	cfg.Duration = 60
	cfg.RatePps = 1
	return cfg
}

// newLineSim builds a simulator over an n-node chain with one flow from
// node 0 to node n-1.
func newLineSim(t *testing.T, n int, spacing float64) *Simulator {
	t.Helper()
	cfg := lineConfig(n)
	mob := NewLine(n, spacing)
	sm, err := NewSimulator(cfg, mob, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Force the single flow to span the chain.
	sm.flows = []Flow{{Src: 0, Dst: n - 1}}
	sm.flowIdx = map[[2]int]int{{0, n - 1}: 0}
	return sm
}

func TestLineDelivery(t *testing.T) {
	// 5 nodes 0.8 km apart (range 1 km): 4-hop chain, all packets must
	// route end to end.
	sm := newLineSim(t, 5, 0.8)
	m, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DataSent == 0 {
		t.Fatal("no data sent")
	}
	if m.DeliveryRatio < 0.95 {
		t.Fatalf("delivery ratio %.2f on a static chain, want ~1 (%v)", m.DeliveryRatio, m)
	}
	if m.AvgHops < 3.9 || m.AvgHops > 4.1 {
		t.Fatalf("avg hops %.2f, want 4", m.AvgHops)
	}
	if m.Availability[0] < 0.9 {
		t.Fatalf("availability %.2f on static chain", m.Availability[0])
	}
	if m.RouteChangesPerMin[0] != 0 {
		t.Fatalf("route changes %.2f on static chain, want 0", m.RouteChangesPerMin[0])
	}
}

func TestPartitionedNoDelivery(t *testing.T) {
	// Two nodes 5 km apart with 1 km range: nothing can be delivered,
	// and discovery gives up after the retry budget.
	cfg := lineConfig(2)
	mob := NewLine(2, 5)
	sm, err := NewSimulator(cfg, mob, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sm.flows = []Flow{{Src: 0, Dst: 1}}
	sm.flowIdx = map[[2]int]int{{0, 1}: 0}
	m, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DataDelivered != 0 {
		t.Fatalf("delivered %d packets across a partition", m.DataDelivered)
	}
	if m.Availability[0] != 0 {
		t.Fatalf("availability %.2f across a partition", m.Availability[0])
	}
	if m.Reachability[0] != 0 {
		t.Fatalf("reachability %.2f across a partition", m.Reachability[0])
	}
}

func TestSingleHop(t *testing.T) {
	sm := newLineSim(t, 2, 0.5)
	m, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveryRatio < 0.95 {
		t.Fatalf("single-hop delivery %.2f", m.DeliveryRatio)
	}
	if m.AvgHops != 1 {
		t.Fatalf("avg hops %.2f, want 1", m.AvgHops)
	}
	// One discovery should suffice: overhead must be far below 1
	// control packet per data packet.
	if m.Overhead[0] > 0.5 {
		t.Fatalf("single-hop overhead %.2f", m.Overhead[0])
	}
}

func TestExpandingRingLimitsFlood(t *testing.T) {
	// A 10-node chain with the destination 2 hops away: expanding ring
	// should find it with TTL 2 and never flood the full chain.
	cfg := lineConfig(10)
	mob := NewLine(10, 0.8)
	sm, err := NewSimulator(cfg, mob, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	sm.flows = []Flow{{Src: 0, Dst: 2}}
	sm.flowIdx = map[[2]int]int{{0, 2}: 0}
	m, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveryRatio < 0.95 {
		t.Fatalf("delivery %.2f", m.DeliveryRatio)
	}
	// RREQ transmissions: initial broadcast reaches node 1, node 1
	// rebroadcasts, node 2 replies. A full flood would involve ~10
	// transmissions; the expanding ring needs only a handful (plus the
	// RREP unicasts).
	if m.ControlPackets > 8 {
		t.Fatalf("control packets %d, expanding ring should need <= 8", m.ControlPackets)
	}
}

func TestMobileLinkBreakRecovery(t *testing.T) {
	// Node 1 relays between 0 and 2, then walks out of range at t=30;
	// node 3 sits where it can take over. The flow must recover via a
	// route change instead of dying.
	mob := &scriptedMobility{}
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Flows = 1
	cfg.Duration = 60
	sm, err := NewSimulator(cfg, mob, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	sm.flows = []Flow{{Src: 0, Dst: 2}}
	sm.flowIdx = map[[2]int]int{{0, 2}: 0}
	m, err := sm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.DeliveryRatio < 0.80 {
		t.Fatalf("delivery %.2f after relay handoff (%v)", m.DeliveryRatio, m)
	}
	if m.linkBreaks == 0 {
		t.Fatal("expected at least one link break")
	}
	if m.RouteChangesPerMin[0] == 0 {
		t.Fatal("expected a route change after relay handoff")
	}
}

// scriptedMobility: nodes 0 and 2 fixed 1.6 km apart; node 1 relays
// between them until t=30 then leaves; node 3 is a permanent alternate
// relay slightly off axis.
type scriptedMobility struct{}

func (s *scriptedMobility) Nodes() int { return 4 }
func (s *scriptedMobility) Position(n int, t float64) (float64, float64) {
	switch n {
	case 0:
		return 0, 0
	case 2:
		return 1.6, 0
	case 1:
		if t < 30 {
			return 0.8, 0
		}
		return 0.8, 50 // gone
	default: // node 3
		return 0.8, 0.3
	}
}

func TestFlowSelectionDistinct(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 30
	cfg.Flows = 20
	cfg.Duration = 1
	mob := NewLine(30, 0.5)
	sm, err := NewSimulator(cfg, mob, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, f := range sm.Flows() {
		if f.Src == f.Dst {
			t.Fatalf("self flow %v", f)
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			t.Fatalf("duplicate flow %v", f)
		}
		seen[key] = true
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 1, RangeKm: 1, Flows: 1, RatePps: 1, Duration: 1, NeighborUpdate: 1},
		{Nodes: 5, RangeKm: 0, Flows: 1, RatePps: 1, Duration: 1, NeighborUpdate: 1},
		{Nodes: 5, RangeKm: 1, Flows: 0, RatePps: 1, Duration: 1, NeighborUpdate: 1},
		{Nodes: 5, RangeKm: 1, Flows: 1, RatePps: 0, Duration: 1, NeighborUpdate: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNeighborTableMatchesBruteForce(t *testing.T) {
	st := rng.New(6)
	n := 60
	mob := &StaticMobility{X: make([]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		mob.X[i] = st.Range(0, 10)
		mob.Y[i] = st.Range(0, 10)
	}
	nt := newNeighborTable(n, 1.5)
	nt.update(mob, 0)
	for i := 0; i < n; i++ {
		want := map[int]bool{}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := mob.X[i] - mob.X[j]
			dy := mob.Y[i] - mob.Y[j]
			if math.Hypot(dx, dy) <= 1.5 {
				want[j] = true
			}
		}
		got := nt.neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for _, nb := range got {
			if !want[nb] {
				t.Fatalf("node %d: unexpected neighbor %d", i, nb)
			}
		}
	}
}

func TestPathExists(t *testing.T) {
	// Chain 0-1-2 plus isolated 3.
	mob := &StaticMobility{X: []float64{0, 0.8, 1.6, 50}, Y: []float64{0, 0, 0, 0}}
	nt := newNeighborTable(4, 1)
	nt.update(mob, 0)
	if !nt.pathExists(0, 2) {
		t.Error("0-2 path missing")
	}
	if nt.pathExists(0, 3) {
		t.Error("path to isolated node")
	}
	if !nt.pathExists(1, 1) {
		t.Error("self path missing")
	}
}

func TestSeqNewerWraparound(t *testing.T) {
	if !seqNewer(2, 1) {
		t.Error("2 not newer than 1")
	}
	if seqNewer(1, 2) {
		t.Error("1 newer than 2")
	}
	if !seqNewer(0, ^uint32(0)) {
		t.Error("wraparound: 0 not newer than max")
	}
}
