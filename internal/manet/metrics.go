package manet

import "fmt"

// flowMetrics accumulates per-flow counters during the run.
type flowMetrics struct {
	dataSent         int
	dataTx           int // per-hop data transmissions
	dataDelivered    int
	hopSum           int
	controlTx        int // RREQ/RREP/RERR transmissions attributed to the flow
	routeChanges     int
	samples          int
	availableSamples int
	reachableSamples int
	lastHop          int
	lastHopValid     bool
	pendingChange    bool
}

// Metrics is the result of one simulation run: the three per-flow series
// the paper plots in Figure 8 plus global accounting.
type Metrics struct {
	flow []*flowMetrics

	// RouteChangesPerMin is Figure 8(a)'s sample: per-flow route changes
	// per simulated minute.
	RouteChangesPerMin []float64
	// Availability is Figure 8(b)'s sample: per-flow fraction of time a
	// valid route existed at the source.
	Availability []float64
	// Overhead is Figure 8(c)'s sample: per-flow routing (control)
	// packets per delivered data packet.
	Overhead []float64
	// Reachability is the graph-level path-existence fraction per flow
	// (ground truth upper bound on availability).
	Reachability []float64

	// Global counters.
	DataSent            int
	DataDelivered       int
	ControlPackets      int
	UnattributedControl int
	AvgHops             float64
	DeliveryRatio       float64

	linkBreaks      int
	dropTTL         int
	dropNoRoute     int
	dropQueueFull   int
	dropUnreachable int
	dropLinkBreak   int
}

func newMetrics(flows int) *Metrics {
	m := &Metrics{flow: make([]*flowMetrics, flows)}
	for i := range m.flow {
		m.flow[i] = &flowMetrics{}
	}
	return m
}

// countControl attributes one control-packet transmission.
func (m *Metrics) countControl(p packet) {
	if p.kind == pktData {
		return
	}
	m.ControlPackets++
	if p.flow >= 0 && p.flow < len(m.flow) {
		m.flow[p.flow].controlTx++
	} else {
		m.UnattributedControl++
	}
}

// finish derives the per-flow series and global summaries.
func (m *Metrics) finish(cfg Config) {
	minutes := cfg.Duration / 60
	var hops, delivered int
	for _, f := range m.flow {
		m.DataSent += f.dataSent
		m.DataDelivered += f.dataDelivered
		hops += f.hopSum
		delivered += f.dataDelivered

		rc := 0.0
		if minutes > 0 {
			rc = float64(f.routeChanges) / minutes
		}
		m.RouteChangesPerMin = append(m.RouteChangesPerMin, rc)

		avail := 0.0
		reach := 0.0
		if f.samples > 0 {
			avail = float64(f.availableSamples) / float64(f.samples)
			reach = float64(f.reachableSamples) / float64(f.samples)
		}
		m.Availability = append(m.Availability, avail)
		m.Reachability = append(m.Reachability, reach)

		den := f.dataDelivered
		if den == 0 {
			den = 1
		}
		m.Overhead = append(m.Overhead, float64(f.controlTx)/float64(den))
	}
	if delivered > 0 {
		m.AvgHops = float64(hops) / float64(delivered)
	}
	if m.DataSent > 0 {
		m.DeliveryRatio = float64(m.DataDelivered) / float64(m.DataSent)
	}
}

// String implements fmt.Stringer with a run summary.
func (m *Metrics) String() string {
	return fmt.Sprintf("manet: sent=%d delivered=%d (%.1f%%) control=%d avgHops=%.2f breaks=%d",
		m.DataSent, m.DataDelivered, 100*m.DeliveryRatio, m.ControlPackets, m.AvgHops, m.linkBreaks)
}
