package manet

import (
	"fmt"

	"geosocial/internal/rng"
	"geosocial/internal/sim"
)

// Config parameterizes a MANET simulation run. The defaults mirror the
// paper's §6.2 setup.
type Config struct {
	// Nodes is the node count (paper: 200).
	Nodes int
	// RangeKm is the radio range (paper: 1 km).
	RangeKm float64
	// Flows is the number of CBR source/destination pairs (paper: 100).
	Flows int
	// RatePps is the CBR packet rate per flow in packets/second.
	RatePps float64
	// Duration is the simulated time in seconds.
	Duration float64
	// HopDelay is the per-hop transmission latency in seconds.
	HopDelay float64
	// NeighborUpdate is the connectivity refresh period in seconds.
	NeighborUpdate float64
	// Hello enables periodic hello beacons (ns-2 default uses link-layer
	// feedback instead; both are supported).
	Hello         bool
	HelloInterval float64
	// FullFloodRREQ disables the expanding-ring search and floods every
	// RREQ at full network diameter — the ablation for the discovery
	// strategy's overhead contribution.
	FullFloodRREQ bool
}

// DefaultConfig returns the paper's topology with a 1-hour run.
func DefaultConfig() Config {
	return Config{
		Nodes:          200,
		RangeKm:        1,
		Flows:          100,
		RatePps:        1,
		Duration:       3600,
		HopDelay:       0.002,
		NeighborUpdate: 1,
		Hello:          false,
		HelloInterval:  1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("manet: need at least 2 nodes, got %d", c.Nodes)
	}
	if c.RangeKm <= 0 {
		return fmt.Errorf("manet: RangeKm must be positive, got %g", c.RangeKm)
	}
	if c.Flows < 1 {
		return fmt.Errorf("manet: need at least 1 flow, got %d", c.Flows)
	}
	if c.RatePps <= 0 || c.Duration <= 0 || c.HopDelay < 0 || c.NeighborUpdate <= 0 {
		return fmt.Errorf("manet: invalid timing parameters %+v", c)
	}
	return nil
}

// Flow is one CBR source/destination pair.
type Flow struct {
	Src, Dst int
}

// Simulator wires mobility, radio, AODV nodes and CBR traffic through the
// discrete-event engine.
type Simulator struct {
	cfg     Config
	eng     *sim.Engine
	mob     Mobility
	nt      *neighborTable
	nodes   []*aodvNode
	flows   []Flow
	flowIdx map[[2]int]int
	metrics *Metrics
	rng     *rng.Stream
}

// NewSimulator builds a simulator over the mobility source. Flows are
// chosen as distinct random ordered pairs using the stream.
func NewSimulator(cfg Config, mob Mobility, s *rng.Stream) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mob.Nodes() < cfg.Nodes {
		return nil, fmt.Errorf("manet: mobility supplies %d nodes, config wants %d", mob.Nodes(), cfg.Nodes)
	}
	sm := &Simulator{
		cfg:     cfg,
		eng:     &sim.Engine{},
		mob:     mob,
		nt:      newNeighborTable(cfg.Nodes, cfg.RangeKm),
		flowIdx: make(map[[2]int]int),
		rng:     s,
	}
	sm.nodes = make([]*aodvNode, cfg.Nodes)
	for i := range sm.nodes {
		sm.nodes[i] = newAODVNode(i, sm)
	}
	for len(sm.flows) < cfg.Flows {
		src := s.Intn(cfg.Nodes)
		dst := s.Intn(cfg.Nodes)
		if src == dst {
			continue
		}
		key := [2]int{src, dst}
		if _, dup := sm.flowIdx[key]; dup {
			continue
		}
		sm.flowIdx[key] = len(sm.flows)
		sm.flows = append(sm.flows, Flow{Src: src, Dst: dst})
	}
	sm.metrics = newMetrics(cfg.Flows)
	return sm, nil
}

// Flows returns the CBR pairs.
func (sm *Simulator) Flows() []Flow { return append([]Flow(nil), sm.flows...) }

// flowOf maps an ordered (src, dst) pair to its flow index, or -1.
func (sm *Simulator) flowOf(src, dst int) int {
	if i, ok := sm.flowIdx[[2]int{src, dst}]; ok {
		return i
	}
	return -1
}

// Run executes the simulation and returns the collected metrics.
func (sm *Simulator) Run() (*Metrics, error) {
	cfg := sm.cfg
	// Initial connectivity and periodic refresh.
	sm.nt.update(sm.mob, 0)
	var refresh func()
	refresh = func() {
		sm.nt.update(sm.mob, sm.eng.Now())
		sm.sampleRoutes()
		if sm.eng.Now()+cfg.NeighborUpdate <= cfg.Duration {
			sm.eng.After(cfg.NeighborUpdate, refresh)
		}
	}
	sm.eng.After(cfg.NeighborUpdate, refresh)

	// CBR traffic with random phase per flow.
	for fi, f := range sm.flows {
		period := 1 / cfg.RatePps
		phase := sm.rng.Float64() * period
		fi, f := fi, f
		var tick func()
		seq := 0
		tick = func() {
			seq++
			sm.metrics.flow[fi].dataSent++
			sm.nodes[f.Src].sendData(packet{
				kind:   pktData,
				flow:   fi,
				seq:    seq,
				origin: f.Src,
				dest:   f.Dst,
				ttl:    netDiameter,
			})
			if sm.eng.Now()+period <= cfg.Duration {
				sm.eng.After(period, tick)
			}
		}
		sm.eng.After(phase, tick)
	}

	// Optional hello beacons.
	if cfg.Hello {
		for _, n := range sm.nodes {
			n := n
			var hello func()
			hello = func() {
				n.seqNo++
				sm.broadcast(n.id, packet{kind: pktHello, flow: -1, originSeq: n.seqNo, ttl: 1})
				if sm.eng.Now()+cfg.HelloInterval <= cfg.Duration {
					sm.eng.After(cfg.HelloInterval, hello)
				}
			}
			sm.eng.After(sm.rng.Float64()*cfg.HelloInterval, hello)
		}
	}

	sm.eng.RunUntil(cfg.Duration)
	sm.metrics.finish(cfg)
	return sm.metrics, nil
}

// broadcast delivers p to every current neighbor of src after HopDelay.
// Each broadcast counts as one transmission for overhead accounting.
func (sm *Simulator) broadcast(src int, p packet) {
	sm.metrics.countControl(p)
	p.src = src
	nbs := sm.nt.neighbors(src)
	if len(nbs) == 0 {
		return
	}
	targets := append([]int(nil), nbs...)
	sm.eng.After(sm.cfg.HopDelay, func() {
		for _, nb := range targets {
			sm.nodes[nb].receive(p)
		}
	})
}

// unicast delivers p to nb after HopDelay when the link still exists at
// delivery time; a vanished link triggers the sender's link-failure
// handling (ns-2 link-layer feedback).
func (sm *Simulator) unicast(src, nb int, p packet) {
	if p.kind != pktData {
		sm.metrics.countControl(p)
	} else {
		sm.metrics.flow[p.flow].dataTx++
	}
	p.src = src
	sm.eng.After(sm.cfg.HopDelay, func() {
		if !sm.nt.connected(src, nb) {
			sm.metrics.linkBreaks++
			sm.nodes[src].linkBroken(nb, p.flow)
			if p.kind == pktData {
				sm.metrics.dropLinkBreak++
				// The source will rediscover on subsequent packets.
			}
			return
		}
		sm.nodes[nb].receive(p)
	})
}

// deliverData records an end-to-end data delivery.
func (sm *Simulator) deliverData(p packet) {
	if p.flow >= 0 {
		fm := sm.metrics.flow[p.flow]
		fm.dataDelivered++
		fm.hopSum += p.hops
	}
}

// sampleRoutes snapshots per-flow route state once per neighbor update:
// availability (valid route at the source), graph-level reachability, and
// route-change detection (next-hop transitions at the source).
func (sm *Simulator) sampleRoutes() {
	for fi, f := range sm.flows {
		fm := sm.metrics.flow[fi]
		fm.samples++
		if sm.nt.pathExists(f.Src, f.Dst) {
			fm.reachableSamples++
		}
		r := sm.nodes[f.Src].validRoute(f.Dst)
		if r != nil {
			fm.availableSamples++
			if fm.lastHopValid && fm.lastHop != r.nextHop {
				fm.routeChanges++
			}
			fm.lastHop = r.nextHop
			fm.lastHopValid = true
		} else if fm.lastHopValid {
			fm.lastHopValid = false
			// A break followed by a new route counts as one change when
			// the new route appears.
			fm.pendingChange = true
		}
		if r != nil && fm.pendingChange {
			fm.routeChanges++
			fm.pendingChange = false
		}
	}
}
