// Package manet is the mobile ad hoc network simulator behind the paper's
// application-impact experiment (§6.2): 200 nodes with 1 km radios moving
// through a 100 km × 100 km arena under a fitted Levy-walk model, 100 CBR
// node pairs, AODV routing. It substitutes for the ns-2 AODV setup the
// paper drives with its fitted mobility models, reporting the same three
// metrics: route change frequency, route availability ratio and routing
// overhead (route packets per data packet).
package manet

import (
	"fmt"
	"math"

	"geosocial/internal/levy"
)

// Mobility supplies node positions over time (planar kilometers).
type Mobility interface {
	// Position returns node n's coordinates at time t seconds.
	Position(n int, t float64) (x, y float64)
	// Nodes returns the node count.
	Nodes() int
}

// WaypointMobility adapts per-node Levy waypoint schedules to the
// Mobility interface.
type WaypointMobility struct {
	Schedules [][]levy.Waypoint
}

// Position implements Mobility.
func (w *WaypointMobility) Position(n int, t float64) (float64, float64) {
	return levy.PositionAt(w.Schedules[n], t)
}

// Nodes implements Mobility.
func (w *WaypointMobility) Nodes() int { return len(w.Schedules) }

// StaticMobility pins nodes to fixed positions; used by protocol tests.
type StaticMobility struct {
	X, Y []float64
}

// Position implements Mobility.
func (s *StaticMobility) Position(n int, _ float64) (float64, float64) {
	return s.X[n], s.Y[n]
}

// Nodes implements Mobility.
func (s *StaticMobility) Nodes() int { return len(s.X) }

// NewLine returns len nodes spaced step km apart on the x axis — a
// classic multi-hop chain topology for protocol tests.
func NewLine(n int, step float64) *StaticMobility {
	m := &StaticMobility{X: make([]float64, n), Y: make([]float64, n)}
	for i := range m.X {
		m.X[i] = float64(i) * step
	}
	return m
}

// neighborTable maintains the connectivity snapshot, rebuilt every update
// interval with uniform-grid binning so the 200-node arena refresh stays
// O(n · neighbors).
type neighborTable struct {
	rangeKm float64
	cell    float64
	n       int
	adj     [][]int // adjacency lists, rebuilt in place
	xs, ys  []float64
	bins    map[[2]int32][]int32
}

func newNeighborTable(n int, rangeKm float64) *neighborTable {
	return &neighborTable{
		rangeKm: rangeKm,
		cell:    rangeKm,
		n:       n,
		adj:     make([][]int, n),
		xs:      make([]float64, n),
		ys:      make([]float64, n),
		bins:    make(map[[2]int32][]int32, n),
	}
}

// update rebuilds the adjacency snapshot for time t.
func (nt *neighborTable) update(m Mobility, t float64) {
	for k := range nt.bins {
		delete(nt.bins, k)
	}
	for i := 0; i < nt.n; i++ {
		x, y := m.Position(i, t)
		nt.xs[i], nt.ys[i] = x, y
		key := [2]int32{int32(math.Floor(x / nt.cell)), int32(math.Floor(y / nt.cell))}
		nt.bins[key] = append(nt.bins[key], int32(i))
	}
	r2 := nt.rangeKm * nt.rangeKm
	for i := 0; i < nt.n; i++ {
		nt.adj[i] = nt.adj[i][:0]
		cx := int32(math.Floor(nt.xs[i] / nt.cell))
		cy := int32(math.Floor(nt.ys[i] / nt.cell))
		for dy := int32(-1); dy <= 1; dy++ {
			for dx := int32(-1); dx <= 1; dx++ {
				for _, j := range nt.bins[[2]int32{cx + dx, cy + dy}] {
					if int(j) == i {
						continue
					}
					ddx := nt.xs[i] - nt.xs[j]
					ddy := nt.ys[i] - nt.ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						nt.adj[i] = append(nt.adj[i], int(j))
					}
				}
			}
		}
	}
}

// neighbors returns the current neighbor list of node i (valid until the
// next update).
func (nt *neighborTable) neighbors(i int) []int { return nt.adj[i] }

// connected reports whether i and j are currently within radio range.
func (nt *neighborTable) connected(i, j int) bool {
	dx := nt.xs[i] - nt.xs[j]
	dy := nt.ys[i] - nt.ys[j]
	return dx*dx+dy*dy <= nt.rangeKm*nt.rangeKm
}

// pathExists reports whether a multi-hop path connects src and dst in the
// current snapshot (BFS) — the ground-truth route availability check.
func (nt *neighborTable) pathExists(src, dst int) bool {
	if src == dst {
		return true
	}
	visited := make([]bool, nt.n)
	queue := []int{src}
	visited[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range nt.adj[cur] {
			if nb == dst {
				return true
			}
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return false
}

func (nt *neighborTable) String() string {
	deg := 0
	for _, a := range nt.adj {
		deg += len(a)
	}
	return fmt.Sprintf("neighborTable{n=%d avgDeg=%.2f}", nt.n, float64(deg)/float64(maxInt(nt.n, 1)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
