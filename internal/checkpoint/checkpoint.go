// Package checkpoint persists per-shard validation results so an
// interrupted sharded run can resume instead of restarting from zero.
//
// A Store manages one directory of GSF1 fragments (trace.FragmentWriter
// is the envelope; docs/FORMAT.md documents the layout). Each fragment
// holds everything one completed shard contributed to a run: the
// outcome-log records (when the run logs outcomes), the user IDs the
// shard delivered (so a resumed run still detects cross-shard duplicate
// IDs), and the aggregate counters (partition, taxonomy, ground-truth
// counts). Fragments are keyed by the triple
//
//	(manifest checksum, shard checksum, validation-parameter fingerprint)
//
// so a checkpoint is only ever reused for byte-identical shard content
// under the same manifest and the same parameters — any of the three
// changing makes the old fragment unreachable, never wrong.
//
// Atomicity contract: a fragment is built in a temporary file and
// published by fsync + rename + directory fsync, so a fragment that
// exists under its final name is always complete and durable. A crash
// mid-shard leaves only a temp file, which Open sweeps once it is
// stale. The GSF1 trailer makes truncation (disk corruption) a decode
// error; callers treat a Load error as "no checkpoint" after Remove.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/trace"
)

// payloadVersion is the checkpoint payload schema version, stored in
// the fragment's key header (the GSF1 envelope has its own version).
const payloadVersion = "1"

// tmpPrefix marks in-progress fragment files. Open removes leftovers
// once they are older than the stale threshold (age-based, so a
// concurrent run's live temp in the same directory is never swept).
const tmpPrefix = ".ckpt-tmp-"

// DefaultStaleAfter is how old a temp file must be before Open sweeps
// it, absent an explicit threshold.
const DefaultStaleAfter = time.Hour

// Fragment section names, in file order. Records stream to disk while
// the shard validates, so the aggregate sections land after them.
const (
	sectionRecords = "records"
	sectionUsers   = "users"
	sectionMeta    = "meta"
)

// Meta is one checkpointed shard's aggregate contribution: exactly the
// counters a resumed run must seed instead of recomputing. All fields
// are commutative sums, so merging checkpointed and freshly validated
// shards in any order reproduces the uninterrupted run's aggregates.
type Meta struct {
	// Users is the number of users the shard contributed.
	Users int `json:"users"`
	// Partition is the shard's share of the Figure 1 split.
	Partition core.Partition `json:"partition"`
	// Taxonomy holds the shard's per-kind checkin counts, keyed by
	// classify.Kind.String() (the StreamResult.Taxonomy keying).
	Taxonomy map[string]int `json:"taxonomy,omitempty"`
	// Truth is the shard's ground-truth agreement counts.
	Truth core.TruthCounts `json:"truth"`
	// Records is the number of outcome-log records in the fragment (0
	// when the run did not log outcomes).
	Records int `json:"records"`
}

// Store is a directory of checkpoint fragments for one (manifest,
// parameters) pair. Methods are safe for use from a single validation
// run; distinct runs may share the directory (fragment names embed the
// full key triple, so they never collide meaningfully).
type Store struct {
	dir         string
	manifestSum string
	paramsTag   string
}

// Open creates the checkpoint directory if missing and sweeps temp
// files left by crashed runs once they are older than
// DefaultStaleAfter.
func Open(dir, manifestSum, paramsTag string) (*Store, error) {
	return OpenStale(dir, manifestSum, paramsTag, DefaultStaleAfter)
}

// OpenStale is Open with a caller-chosen stale-temp sweep threshold; a
// non-positive threshold selects DefaultStaleAfter. A shorter threshold
// reclaims crashed runs' space sooner at the cost of sweeping a
// long-idle concurrent run's live temp; the sweep never touches
// published fragments either way.
func OpenStale(dir, manifestSum, paramsTag string, staleAfter time.Duration) (*Store, error) {
	if staleAfter <= 0 {
		staleAfter = DefaultStaleAfter
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open dir: %w", err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if info, err := e.Info(); err == nil && time.Since(info.ModTime()) > staleAfter {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{dir: dir, manifestSum: manifestSum, paramsTag: paramsTag}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// fragPath is the final on-disk location for one shard's fragment: the
// name is a hash of the full key triple, so it is unique per (manifest,
// shard, parameters) and stable across runs.
func (s *Store) fragPath(shardSum string) string {
	h := sha256.Sum256([]byte(s.manifestSum + "\x00" + shardSum + "\x00" + s.paramsTag))
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%x.gsf", h[:16]))
}

// keys is the fragment key header binding a fragment to its identity.
func (s *Store) keys(shardSum string) map[string]string {
	return map[string]string{
		"checkpoint": payloadVersion,
		"manifest":   s.manifestSum,
		"shard":      shardSum,
		"params":     s.paramsTag,
	}
}

// Load reads the shard's checkpoint if one exists. It returns the
// aggregate meta and the user IDs the shard contributed, or (nil, nil,
// nil) when no checkpoint is published for the key. When rec is
// non-nil it receives each outcome-log record's encoded payload in
// stored order (the slice is reused across calls — decode or copy
// before returning); a nil rec skips over the record bytes, which is
// the cheap pass skip decisions use. Any decode or consistency failure
// is an error: the caller should Remove the fragment and revalidate.
func (s *Store) Load(shardSum string, rec func(data []byte) error) (*Meta, []int, error) {
	f, err := os.Open(s.fragPath(shardSum))
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: open fragment: %w", err)
	}
	defer f.Close()
	fr, err := trace.NewFragmentReader(f)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	for k, v := range s.keys(shardSum) {
		if got := fr.Keys()[k]; got != v {
			return nil, nil, fmt.Errorf("checkpoint: fragment key %s is %q, want %q", k, got, v)
		}
	}

	records := 0
	if name, err := fr.NextSection(); err != nil || name != sectionRecords {
		return nil, nil, fmt.Errorf("checkpoint: expected %s section, got %q: %v", sectionRecords, name, err)
	}
	if rec != nil {
		for {
			data, err := fr.NextChunk()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, nil, fmt.Errorf("checkpoint: %w", err)
			}
			if err := rec(data); err != nil {
				return nil, nil, err
			}
			records++
		}
	}

	if name, err := fr.NextSection(); err != nil || name != sectionUsers {
		return nil, nil, fmt.Errorf("checkpoint: expected %s section, got %q: %v", sectionUsers, name, err)
	}
	chunk, err := fr.NextChunk()
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	ids, err := decodeIDs(chunk)
	if err != nil {
		return nil, nil, err
	}

	if name, err := fr.NextSection(); err != nil || name != sectionMeta {
		return nil, nil, fmt.Errorf("checkpoint: expected %s section, got %q: %v", sectionMeta, name, err)
	}
	chunk, err = fr.NextChunk()
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(chunk, &m); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: decode meta: %w", err)
	}
	if _, err := fr.NextSection(); err != io.EOF {
		return nil, nil, fmt.Errorf("checkpoint: trailing fragment content: %v", err)
	}
	if len(ids) != m.Users {
		return nil, nil, fmt.Errorf("checkpoint: fragment lists %d user IDs, meta says %d users", len(ids), m.Users)
	}
	if rec != nil && records != m.Records {
		return nil, nil, fmt.Errorf("checkpoint: fragment holds %d records, meta says %d", records, m.Records)
	}
	return &m, ids, nil
}

// Remove deletes the shard's published fragment (used when Load finds
// it corrupt). Removing a missing fragment is not an error.
func (s *Store) Remove(shardSum string) error {
	err := os.Remove(s.fragPath(shardSum))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: remove fragment: %w", err)
	}
	return nil
}

// Frag is an in-progress checkpoint for one shard: records stream in
// via AddRecord while the shard validates, and Commit seals and
// publishes the fragment atomically. A Frag that will not be committed
// must be Aborted so its temp file is removed.
type Frag struct {
	store    *Store
	shardSum string
	f        *os.File
	tmp      string
	fw       *trace.FragmentWriter
	records  int
	done     bool
}

// Begin opens a new fragment for the shard and positions it to accept
// records. Records must all be added before Commit.
func (s *Store) Begin(shardSum string) (*Frag, error) {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: begin fragment: %w", err)
	}
	fail := func(err error) (*Frag, error) {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	fw, err := trace.NewFragmentWriter(f, s.keys(shardSum))
	if err != nil {
		return fail(fmt.Errorf("checkpoint: %w", err))
	}
	if err := fw.Section(sectionRecords); err != nil {
		return fail(fmt.Errorf("checkpoint: %w", err))
	}
	return &Frag{store: s, shardSum: shardSum, f: f, tmp: f.Name(), fw: fw}, nil
}

// AddRecord appends one encoded outcome-log record to the fragment.
func (fr *Frag) AddRecord(data []byte) error {
	if fr.done {
		return fmt.Errorf("checkpoint: fragment already sealed")
	}
	if err := fr.fw.Chunk(data); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	fr.records++
	return nil
}

// Commit seals the fragment — user IDs, aggregate meta, envelope
// trailer — syncs it, and publishes it under its final name with the
// fsync + rename + directory-fsync discipline, so a visible fragment
// is always complete and durable. m.Records is set from the records
// actually added.
func (fr *Frag) Commit(m *Meta, ids []int) error {
	if fr.done {
		return fmt.Errorf("checkpoint: fragment already sealed")
	}
	fr.done = true
	defer func() {
		if fr.tmp != "" {
			fr.f.Close()
			os.Remove(fr.tmp)
			fr.tmp = ""
		}
	}()
	if len(ids) != m.Users {
		return fmt.Errorf("checkpoint: committing %d user IDs for %d users", len(ids), m.Users)
	}
	meta := *m
	meta.Records = fr.records
	metaJSON, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("checkpoint: encode meta: %w", err)
	}
	if err := fr.fw.Section(sectionUsers); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fr.fw.Chunk(encodeIDs(ids)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fr.fw.Section(sectionMeta); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fr.fw.Chunk(metaJSON); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fr.fw.Finish(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fr.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync fragment: %w", err)
	}
	if err := fr.f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close fragment: %w", err)
	}
	final := fr.store.fragPath(fr.shardSum)
	if err := os.Rename(fr.tmp, final); err != nil {
		os.Remove(fr.tmp)
		fr.tmp = ""
		return fmt.Errorf("checkpoint: publish fragment: %w", err)
	}
	fr.tmp = ""
	if err := SyncDir(fr.store.dir); err != nil {
		return err
	}
	return nil
}

// Abort discards the in-progress fragment. Safe to call after Commit
// (it then does nothing).
func (fr *Frag) Abort() {
	if fr.tmp == "" {
		return
	}
	fr.done = true
	fr.f.Close()
	os.Remove(fr.tmp)
	fr.tmp = ""
}

// encodeIDs packs user IDs as one sorted delta-uvarint chunk (count,
// first ID as varint, then positive deltas). Sorting makes the
// encoding canonical regardless of delivery order.
func encodeIDs(ids []int) []byte {
	sorted := make([]int, len(ids))
	copy(sorted, ids)
	sort.Ints(sorted)
	buf := binary.AppendUvarint(nil, uint64(len(sorted)))
	prev := 0
	for i, id := range sorted {
		if i == 0 {
			buf = binary.AppendVarint(buf, int64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(id-prev))
		}
		prev = id
	}
	return buf
}

// decodeIDs reverses encodeIDs.
func decodeIDs(data []byte) ([]int, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("checkpoint: bad user-ID count")
	}
	pos := used
	ids := make([]int, 0, min(n, 1<<16))
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		if i == 0 {
			v, used := binary.Varint(data[pos:])
			if used <= 0 {
				return nil, fmt.Errorf("checkpoint: bad user ID at offset %d", pos)
			}
			prev, pos = v, pos+used
		} else {
			d, used := binary.Uvarint(data[pos:])
			if used <= 0 || d == 0 {
				return nil, fmt.Errorf("checkpoint: bad user-ID delta at offset %d", pos)
			}
			prev, pos = prev+int64(d), pos+used
		}
		ids = append(ids, int(prev))
	}
	if pos != len(data) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after user IDs", len(data)-pos)
	}
	return ids, nil
}

// FileChecksum fingerprints one file's raw bytes ("sha256:<hex>") —
// the shard half of a checkpoint key. It hashes the stored bytes, not
// the decoded stream, so a recompressed shard is a different shard.
func FileChecksum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("checkpoint: checksum: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("checkpoint: checksum %s: %w", path, err)
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil)), nil
}

// ManifestChecksum fingerprints a shard-set manifest's semantic
// content — name, POI checksum, and the shard list — so reformatting
// the manifest JSON does not orphan checkpoints, while renaming,
// reordering or resizing shards does.
func ManifestChecksum(m *trace.Manifest) string {
	h := sha256.New()
	fmt.Fprintf(h, "gsb1-shards\x00%s\x00%s\x00%d\x00", m.Name, m.POIChecksum, m.Users)
	for _, sh := range m.Shards {
		fmt.Fprintf(h, "%s\x00%d\x00%d\x00", sh.File, sh.Users, sh.Bytes)
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}

// SyncDir fsyncs a directory, making a just-renamed entry durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}
