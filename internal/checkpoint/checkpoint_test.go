package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geosocial/internal/core"
)

func testStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, "sha256:manifest", "params-a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func testMeta() *Meta {
	return &Meta{
		Users:     3,
		Partition: core.Partition{Checkins: 10, Visits: 7, Honest: 4, Extraneous: 6, Missing: 3},
		Taxonomy:  map[string]int{"honest": 4, "remote": 2},
		Truth:     core.TruthCounts{Labeled: 10, Agree: 8, MatchedHonest: 4, MatchedTotal: 5, HonestTotal: 6},
	}
}

func TestCommitLoadRoundTrip(t *testing.T) {
	s := testStore(t, t.TempDir())
	fr, err := s.Begin("sha256:shard0")
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	recs := [][]byte{[]byte("rec-a"), []byte("rec-b")}
	for _, r := range recs {
		if err := fr.AddRecord(r); err != nil {
			t.Fatalf("AddRecord: %v", err)
		}
	}
	ids := []int{42, 7, 19}
	if err := fr.Commit(testMeta(), ids); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// Full load replays the records and returns sorted IDs.
	var got [][]byte
	m, loaded, err := s.Load("sha256:shard0", func(data []byte) error {
		got = append(got, append([]byte(nil), data...))
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m == nil {
		t.Fatal("Load reported no checkpoint after Commit")
	}
	if m.Users != 3 || m.Records != 2 || m.Partition.Checkins != 10 || m.Taxonomy["remote"] != 2 || m.Truth.Agree != 8 {
		t.Fatalf("meta round-trip mismatch: %+v", m)
	}
	if len(loaded) != 3 || loaded[0] != 7 || loaded[1] != 19 || loaded[2] != 42 {
		t.Fatalf("user IDs = %v, want sorted [7 19 42]", loaded)
	}
	if len(got) != 2 || !bytes.Equal(got[0], recs[0]) || !bytes.Equal(got[1], recs[1]) {
		t.Fatalf("records = %q, want %q", got, recs)
	}

	// Meta-only load skips the records but still verifies IDs and meta.
	m2, loaded2, err := s.Load("sha256:shard0", nil)
	if err != nil {
		t.Fatalf("meta-only Load: %v", err)
	}
	if m2 == nil || m2.Users != 3 || len(loaded2) != 3 {
		t.Fatalf("meta-only Load = %+v ids %v", m2, loaded2)
	}
}

func TestLoadMissing(t *testing.T) {
	s := testStore(t, t.TempDir())
	m, ids, err := s.Load("sha256:absent", nil)
	if err != nil || m != nil || ids != nil {
		t.Fatalf("Load of absent fragment = %+v, %v, %v; want nil, nil, nil", m, ids, err)
	}
}

// Fragments are keyed by the full triple: a store opened with different
// parameters (or a different manifest) never sees another store's
// fragments.
func TestKeyIsolation(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir)
	fr, err := s.Begin("sha256:shard0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Commit(&Meta{}, nil); err != nil {
		t.Fatal(err)
	}

	other, err := Open(dir, "sha256:manifest", "params-b")
	if err != nil {
		t.Fatal(err)
	}
	if m, _, err := other.Load("sha256:shard0", nil); err != nil || m != nil {
		t.Fatalf("other-params Load = %+v, %v; want miss", m, err)
	}
	if m, _, err := s.Load("sha256:shard1", nil); err != nil || m != nil {
		t.Fatalf("other-shard Load = %+v, %v; want miss", m, err)
	}
}

// A corrupted fragment is a load error (never a silent wrong result),
// and Remove clears it so the shard revalidates.
func TestCorruptFragment(t *testing.T) {
	s := testStore(t, t.TempDir())
	fr, err := s.Begin("sha256:shard0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.AddRecord([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := fr.Commit(&Meta{Users: 1}, []int{5}); err != nil {
		t.Fatal(err)
	}
	path := s.fragPath("sha256:shard0")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load("sha256:shard0", nil); err == nil {
		t.Fatal("truncated fragment loaded cleanly")
	}
	if err := s.Remove("sha256:shard0"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m, _, err := s.Load("sha256:shard0", nil); err != nil || m != nil {
		t.Fatalf("Load after Remove = %+v, %v; want miss", m, err)
	}
	if err := s.Remove("sha256:shard0"); err != nil {
		t.Fatalf("Remove of missing fragment: %v", err)
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, dir)
	fr, err := s.Begin("sha256:shard0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.AddRecord([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	fr.Abort()
	fr.Abort() // idempotent
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Abort left %d files behind", len(entries))
	}
	if err := fr.Commit(&Meta{}, nil); err == nil {
		t.Fatal("Commit after Abort succeeded")
	}
}

func TestCommitRejectsIDCountMismatch(t *testing.T) {
	s := testStore(t, t.TempDir())
	fr, err := s.Begin("sha256:shard0")
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Commit(&Meta{Users: 2}, []int{1}); err == nil {
		t.Fatal("Commit accepted 1 ID for 2 users")
	}
}

// Open sweeps temp files old enough to belong to a dead run, and keeps
// fresh ones (a concurrent run's live fragment).
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"dead")
	fresh := filepath.Join(dir, tmpPrefix+"live")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * DefaultStaleAfter)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	testStore(t, dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh temp swept by Open")
	}
}

// OpenStale honours a caller-chosen sweep threshold; non-positive
// selects the default.
func TestOpenStaleCustomThreshold(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"recent")
	if err := os.WriteFile(tmp, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-10 * time.Minute)
	if err := os.Chtimes(tmp, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStale(dir, "sha256:m", "p", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatal("10-minute-old temp swept under the default threshold")
	}
	if _, err := OpenStale(dir, "sha256:m", "p", 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp older than the custom threshold survived")
	}
}

func TestChecksumHelpers(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "shard.bin")
	if err := os.WriteFile(p, []byte("shard bytes"), 0o666); err != nil {
		t.Fatal(err)
	}
	sum, err := FileChecksum(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sum, "sha256:") || len(sum) != len("sha256:")+64 {
		t.Fatalf("FileChecksum = %q", sum)
	}
	sum2, err := FileChecksum(p)
	if err != nil || sum2 != sum {
		t.Fatalf("FileChecksum not stable: %q vs %q (%v)", sum, sum2, err)
	}
}

func TestIDCodec(t *testing.T) {
	cases := [][]int{nil, {0}, {-5, 3, 1000000, 7}, {1, 2, 3}}
	for _, ids := range cases {
		out, err := decodeIDs(encodeIDs(ids))
		if err != nil {
			t.Fatalf("decodeIDs(%v): %v", ids, err)
		}
		if len(out) != len(ids) {
			t.Fatalf("round trip of %v = %v", ids, out)
		}
	}
	if _, err := decodeIDs([]byte{}); err == nil {
		t.Fatal("empty ID chunk decoded")
	}
	// Trailing bytes are rejected.
	bad := append(encodeIDs([]int{1, 2}), 0x7)
	if _, err := decodeIDs(bad); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
