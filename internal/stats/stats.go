// Package stats is the statistics substrate for the reproduction: empirical
// CDFs, linear and logarithmic histograms/PDFs, Pearson correlation,
// maximum-likelihood Pareto fitting (plain and truncated), least-squares
// power-law and exponential fits in log space, Kolmogorov–Smirnov distances
// and summary statistics.
//
// The paper's analysis is entirely built from these primitives: Figures 2,
// 3, 5, 6 and 8 are empirical CDFs; Figures 4 and 7 are (log-binned) PDFs;
// Table 2 is Pearson correlation; Figure 7's fits are Pareto MLE and
// log-log least squares. The calibration band "no stats tooling fit" is why
// this package exists rather than an external dependency.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds the usual scalar summaries of a sample.
type Summary struct {
	N             int
	Mean, Stddev  float64
	Min, Max      float64
	Median        float64
	P25, P75, P90 float64
	Sum           float64
}

// Summarize computes summary statistics of xs. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.P25 = quantileSorted(sorted, 0.25)
	s.P75 = quantileSorted(sorted, 0.75)
	s.P90 = quantileSorted(sorted, 0.90)
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// sample and clamps q to [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples xs and ys. It returns an error if the lengths differ,
// fewer than two pairs are given, or either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: Pearson undefined for zero-variance sample")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Guard against floating point overshoot.
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// Spearman returns the Spearman rank correlation of xs and ys, i.e. the
// Pearson correlation of their ranks with ties assigned mean ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d != %d", len(xs), len(ys))
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs with ties given their mean rank.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mean := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mean
		}
		i = j + 1
	}
	return ranks
}
