package stats

import (
	"math"
	"testing"
	"testing/quick"

	"geosocial/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Summarize(xs)
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %g", s.Mean)
	}
	if !almostEq(s.Stddev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("Stddev = %g", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %g/%g", s.Min, s.Max)
	}
	if !almostEq(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %g", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) not NaN")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive r = %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative r = %g", r)
	}
}

func TestPearsonKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 3, 2, 5, 4}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 0.8, 1e-12) {
		t.Errorf("r = %g, want 0.8", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("n=1 not rejected")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance not rejected")
	}
}

func TestPearsonProperties(t *testing.T) {
	s := rng.New(1)
	err := quick.Check(func(seed uint32) bool {
		st := rng.New(uint64(seed))
		n := 10 + st.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = st.Norm(0, 1)
			ys[i] = st.Norm(0, 1)
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate sample; fine
		}
		if r < -1 || r > 1 {
			return false
		}
		// Invariance under affine transform with positive scale.
		xs2 := make([]float64, n)
		for i := range xs {
			xs2[i] = 3*xs[i] + 7
		}
		r2, err := Pearson(xs2, ys)
		if err != nil {
			return false
		}
		// Symmetry.
		r3, err := Pearson(ys, xs)
		if err != nil {
			return false
		}
		return almostEq(r, r2, 1e-9) && almostEq(r, r3, 1e-9)
	}, &quick.Config{MaxCount: 50, Rand: nil})
	if err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("Spearman of monotone = %g, want 1", r)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range tests {
		if got := c.Eval(tc.x); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %g/%g", c.Min(), c.Max())
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	st := rng.New(42)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = st.Norm(0, 10)
	}
	c := NewCDF(xs)
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		fa, fb := c.Eval(a), c.Eval(b)
		return fa >= 0 && fb <= 1 && fa <= fb
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Eval(5) != 0 {
		t.Error("empty CDF Eval != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile not NaN")
	}
}

func TestCDFPointsPercent(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points([]float64{2, 4})
	if !almostEq(pts[0], 50, 1e-9) || !almostEq(pts[1], 100, 1e-9) {
		t.Errorf("Points = %v", pts)
	}
}

func TestKSIdenticalAndDisjoint(t *testing.T) {
	a := NewCDF([]float64{1, 2, 3})
	b := NewCDF([]float64{1, 2, 3})
	if ks := a.KS(b); !almostEq(ks, 0, 1e-12) {
		t.Errorf("KS identical = %g", ks)
	}
	cc := NewCDF([]float64{100, 200, 300})
	if ks := a.KS(cc); !almostEq(ks, 1, 1e-12) {
		t.Errorf("KS disjoint = %g", ks)
	}
}

func TestLinLogSpace(t *testing.T) {
	lin := LinSpace(0, 10, 11)
	if len(lin) != 11 || lin[0] != 0 || lin[10] != 10 || !almostEq(lin[5], 5, 1e-12) {
		t.Errorf("LinSpace = %v", lin)
	}
	lg := LogSpace(0.1, 1000, 5)
	if len(lg) != 5 || !almostEq(lg[0], 0.1, 1e-9) || !almostEq(lg[4], 1000, 1e-9) {
		t.Errorf("LogSpace = %v", lg)
	}
	if !almostEq(lg[2], 10, 1e-9) {
		t.Errorf("LogSpace midpoint = %g, want 10", lg[2])
	}
}
