package stats

import (
	"fmt"
	"math"
)

// Histogram is a binned density estimate. Bins are defined by their edges
// (len(Edges) == len(Counts)+1); values outside [Edges[0], Edges[last])
// are dropped and tallied in Outside.
type Histogram struct {
	Edges   []float64
	Counts  []int
	Outside int
	total   int
}

// NewLinearHistogram builds a histogram with n equal-width bins over
// [lo, hi). It panics if n <= 0 or hi <= lo.
func NewLinearHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid linear histogram parameters")
	}
	return &Histogram{Edges: LinSpace(lo, hi, n+1), Counts: make([]int, n)}
}

// NewLogHistogram builds a histogram with n log-width bins over [lo, hi).
// It panics if n <= 0 or bounds are not positive/increasing. Log-binned
// PDFs are how the paper plots movement-distance and pause-time densities
// (Figure 7).
func NewLogHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || lo <= 0 || hi <= lo {
		panic("stats: invalid log histogram parameters")
	}
	return &Histogram{Edges: LogSpace(lo, hi, n+1), Counts: make([]int, n)}
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	i := h.binOf(x)
	if i < 0 {
		h.Outside++
		return
	}
	h.Counts[i]++
	h.total++
}

// AddAll tallies every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	if x < h.Edges[0] || x >= h.Edges[n] || math.IsNaN(x) {
		return -1
	}
	// Binary search over edges.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if x >= h.Edges[mid] {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// N returns the number of in-range observations.
func (h *Histogram) N() int { return h.total }

// Centers returns the geometric (for log bins the arithmetic mean of edges
// still overweights the right edge, so use the geometric mean when both
// edges are positive) centers of the bins.
func (h *Histogram) Centers() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		a, b := h.Edges[i], h.Edges[i+1]
		if a > 0 && b > 0 {
			out[i] = math.Sqrt(a * b)
		} else {
			out[i] = (a + b) / 2
		}
	}
	return out
}

// PDF returns the density estimate per bin: count / (N * width). Empty
// histograms yield all zeros.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		w := h.Edges[i+1] - h.Edges[i]
		out[i] = float64(c) / (float64(h.total) * w)
	}
	return out
}

// Fractions returns the fraction of in-range observations per bin (sums to
// 1 for a non-empty histogram).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CategoryHistogram tallies observations over a fixed set of string
// categories — Figure 4's "missing checkins by POI category" breakdown.
type CategoryHistogram struct {
	order  []string
	counts map[string]int
	total  int
}

// NewCategoryHistogram builds a histogram over the given categories in
// display order. Observations of unknown categories return an error.
func NewCategoryHistogram(categories []string) *CategoryHistogram {
	c := &CategoryHistogram{
		order:  append([]string(nil), categories...),
		counts: make(map[string]int, len(categories)),
	}
	for _, k := range categories {
		c.counts[k] = 0
	}
	return c
}

// Add tallies one observation of category k.
func (c *CategoryHistogram) Add(k string) error {
	if _, ok := c.counts[k]; !ok {
		return fmt.Errorf("stats: unknown category %q", k)
	}
	c.counts[k]++
	c.total++
	return nil
}

// N returns the number of observations.
func (c *CategoryHistogram) N() int { return c.total }

// Count returns the tally for category k.
func (c *CategoryHistogram) Count(k string) int { return c.counts[k] }

// Categories returns the categories in display order.
func (c *CategoryHistogram) Categories() []string {
	return append([]string(nil), c.order...)
}

// Percentages returns, in display order, each category's share of the
// total as a percentage (all zeros when empty).
func (c *CategoryHistogram) Percentages() []float64 {
	out := make([]float64, len(c.order))
	if c.total == 0 {
		return out
	}
	for i, k := range c.order {
		out[i] = 100 * float64(c.counts[k]) / float64(c.total)
	}
	return out
}
