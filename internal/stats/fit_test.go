package stats

import (
	"math"
	"testing"
	"testing/quick"

	"geosocial/internal/rng"
)

func TestFitParetoRecovery(t *testing.T) {
	// Sample from a known Pareto and recover the shape by MLE.
	for _, alpha := range []float64{0.8, 1.5, 3.0} {
		s := rng.New(uint64(alpha * 100))
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = s.Pareto(2, alpha)
		}
		fit, err := FitPareto(xs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha)/alpha > 0.03 {
			t.Errorf("alpha = %g, recovered %g", alpha, fit.Alpha)
		}
		if fit.Xm != 2 {
			t.Errorf("xm = %g", fit.Xm)
		}
		if fit.N != len(xs) {
			t.Errorf("N = %d", fit.N)
		}
	}
}

func TestFitParetoAuto(t *testing.T) {
	s := rng.New(7)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = s.Pareto(5, 2)
	}
	fit, err := FitParetoAuto(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Xm-5) > 0.05 {
		t.Errorf("auto xm = %g, want ~5", fit.Xm)
	}
	if math.Abs(fit.Alpha-2) > 0.1 {
		t.Errorf("auto alpha = %g, want ~2", fit.Alpha)
	}
}

func TestFitParetoErrors(t *testing.T) {
	if _, err := FitPareto([]float64{1, 2}, 0); err == nil {
		t.Error("xm=0 accepted")
	}
	if _, err := FitPareto([]float64{0.5}, 1); err == nil {
		t.Error("all-below-xm accepted")
	}
	if _, err := FitParetoAuto(nil, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitParetoAuto([]float64{-1, 0}, 1); err == nil {
		t.Error("non-positive-only accepted")
	}
}

func TestParetoPDFIntegratesToOne(t *testing.T) {
	f := ParetoFit{Xm: 1, Alpha: 2}
	// Numeric integral over [1, 1000] should approach 1.
	sum := 0.0
	xs := LogSpace(1, 1000, 20000)
	for i := 0; i+1 < len(xs); i++ {
		mid := (xs[i] + xs[i+1]) / 2
		sum += f.PDF(mid) * (xs[i+1] - xs[i])
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("PDF integral = %g", sum)
	}
	if f.PDF(0.5) != 0 {
		t.Error("PDF below support not zero")
	}
}

func TestParetoCDFProperties(t *testing.T) {
	f := ParetoFit{Xm: 3, Alpha: 1.5}
	err := quick.Check(func(a, b float64) bool {
		a = math.Abs(a)
		b = math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ca, cb := f.CDF(a), f.CDF(b)
		return ca >= 0 && cb <= 1 && ca <= cb
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.CDF(3) != 0 {
		t.Errorf("CDF(xm) = %g", f.CDF(3))
	}
}

func TestParetoMean(t *testing.T) {
	if m := (ParetoFit{Xm: 1, Alpha: 3}).Mean(); !almostEq(m, 1.5, 1e-12) {
		t.Errorf("Mean = %g, want 1.5", m)
	}
	if m := (ParetoFit{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Errorf("Mean for alpha<=1 = %g, want +Inf", m)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 2.5 * x^0.6 exactly.
	xs := LogSpace(0.1, 100, 50)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5 * math.Pow(x, 0.6)
	}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.K, 2.5, 1e-6) || !almostEq(fit.Exp, 0.6, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %g", fit.R2)
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	s := rng.New(9)
	xs := LogSpace(1, 1000, 300)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 4 * math.Pow(x, -1.2) * math.Exp(s.Norm(0, 0.1))
	}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exp+1.2) > 0.05 {
		t.Errorf("Exp = %g, want ~-1.2", fit.Exp)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 2, 4}
	ys := []float64{5, 5, 3, 6, 12}
	if _, err := FitPowerLaw(xs, ys); err != nil {
		t.Fatalf("fit with some non-positive points failed: %v", err)
	}
	if _, err := FitPowerLaw([]float64{-1, 0}, []float64{1, 1}); err == nil {
		t.Error("all-non-positive xs accepted")
	}
}

func TestFitExponentialExact(t *testing.T) {
	xs := LinSpace(0, 10, 30)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 7 * math.Exp(-0.5*x)
	}
	fit, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.A, 7, 1e-6) || !almostEq(fit.Rate, -0.5, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if got := fit.Eval(2); !almostEq(got, 7*math.Exp(-1), 1e-6) {
		t.Errorf("Eval(2) = %g", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.Eval(10), 21, 1e-12) {
		t.Errorf("Eval(10) = %g", fit.Eval(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x variance accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFitParetoRoundTripProperty(t *testing.T) {
	// Property: fitting samples drawn from the fitted distribution
	// recovers the parameters (sample → fit → sample → fit stability).
	err := quick.Check(func(seed uint16, aRaw uint8) bool {
		alpha := 0.5 + float64(aRaw%40)/10 // 0.5 .. 4.4
		s := rng.New(uint64(seed) + 1)
		xs := make([]float64, 8000)
		for i := range xs {
			xs[i] = s.Pareto(1, alpha)
		}
		fit, err := FitPareto(xs, 1)
		if err != nil {
			return false
		}
		return math.Abs(fit.Alpha-alpha)/alpha < 0.15
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
