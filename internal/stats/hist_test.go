package stats

import (
	"math"
	"testing"
)

func TestLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1, 2.5, 5, 9.99, 10, -1, math.NaN()})
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if h.Outside != 3 {
		t.Fatalf("Outside = %d, want 3", h.Outside)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
}

func TestHistogramPDFNormalizes(t *testing.T) {
	h := NewLinearHistogram(0, 1, 10)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%1000) / 1000)
	}
	pdf := h.PDF()
	integral := 0.0
	for i, d := range pdf {
		integral += d * (h.Edges[i+1] - h.Edges[i])
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Fatalf("PDF integral = %g", integral)
	}
}

func TestHistogramFractionsSum(t *testing.T) {
	h := NewLogHistogram(0.1, 1000, 8)
	h.AddAll([]float64{0.5, 1, 2, 50, 999})
	total := 0.0
	for _, f := range h.Fractions() {
		total += f
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("fractions sum = %g", total)
	}
}

func TestLogHistogramBinning(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3) // bins [1,10), [10,100), [100,1000)
	h.AddAll([]float64{1, 9.99, 10, 99, 100, 999, 1000, 0.5})
	want := []int{2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Outside != 2 {
		t.Fatalf("Outside = %d, want 2", h.Outside)
	}
}

func TestLogHistogramCenters(t *testing.T) {
	h := NewLogHistogram(1, 100, 2) // [1,10), [10,100)
	c := h.Centers()
	if math.Abs(c[0]-math.Sqrt(10)) > 1e-9 {
		t.Fatalf("center[0] = %g, want sqrt(10)", c[0])
	}
	if math.Abs(c[1]-math.Sqrt(1000)) > 1e-9 {
		t.Fatalf("center[1] = %g, want sqrt(1000)", c[1])
	}
}

func TestHistogramEmptyPDF(t *testing.T) {
	h := NewLinearHistogram(0, 1, 4)
	for _, v := range h.PDF() {
		if v != 0 {
			t.Fatal("empty PDF not all zero")
		}
	}
	for _, v := range h.Fractions() {
		if v != 0 {
			t.Fatal("empty fractions not all zero")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"linear n=0":    func() { NewLinearHistogram(0, 1, 0) },
		"linear hi<=lo": func() { NewLinearHistogram(1, 1, 3) },
		"log lo<=0":     func() { NewLogHistogram(0, 1, 3) },
		"log hi<=lo":    func() { NewLogHistogram(2, 2, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCategoryHistogram(t *testing.T) {
	c := NewCategoryHistogram([]string{"Food", "Shop", "Arts"})
	for _, k := range []string{"Food", "Food", "Shop", "Arts"} {
		if err := c.Add(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add("Nope"); err == nil {
		t.Fatal("unknown category accepted")
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if c.Count("Food") != 2 {
		t.Fatalf("Count(Food) = %d", c.Count("Food"))
	}
	p := c.Percentages()
	if math.Abs(p[0]-50) > 1e-12 || math.Abs(p[1]-25) > 1e-12 {
		t.Fatalf("Percentages = %v", p)
	}
	cats := c.Categories()
	if len(cats) != 3 || cats[0] != "Food" {
		t.Fatalf("Categories = %v", cats)
	}
}

func TestCategoryHistogramEmpty(t *testing.T) {
	c := NewCategoryHistogram([]string{"A"})
	if p := c.Percentages(); p[0] != 0 {
		t.Fatalf("empty percentages = %v", p)
	}
}
