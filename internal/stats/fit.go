package stats

import (
	"fmt"
	"math"
)

// ParetoFit holds the parameters of a Pareto (power-law tail)
// distribution: density alpha * xm^alpha / x^(alpha+1) for x >= xm.
type ParetoFit struct {
	Xm    float64 // scale (minimum)
	Alpha float64 // shape
	N     int     // sample size used for the fit
}

// PDF evaluates the fitted density at x (0 below Xm).
func (f ParetoFit) PDF(x float64) float64 {
	if x < f.Xm || f.Xm <= 0 || f.Alpha <= 0 {
		return 0
	}
	return f.Alpha * math.Pow(f.Xm, f.Alpha) / math.Pow(x, f.Alpha+1)
}

// CDF evaluates the fitted cumulative distribution at x.
func (f ParetoFit) CDF(x float64) float64 {
	if x < f.Xm {
		return 0
	}
	return 1 - math.Pow(f.Xm/x, f.Alpha)
}

// Mean returns the distribution mean (+Inf when Alpha <= 1).
func (f ParetoFit) Mean() float64 {
	if f.Alpha <= 1 {
		return math.Inf(1)
	}
	return f.Alpha * f.Xm / (f.Alpha - 1)
}

// String implements fmt.Stringer.
func (f ParetoFit) String() string {
	return fmt.Sprintf("Pareto(xm=%.4g, alpha=%.4g, n=%d)", f.Xm, f.Alpha, f.N)
}

// FitPareto computes the maximum-likelihood Pareto fit of xs with the
// scale fixed to xm (samples below xm are dropped). The MLE shape is
// n / sum(ln(x/xm)). It returns an error when fewer than two usable
// samples remain or xm is not positive.
func FitPareto(xs []float64, xm float64) (ParetoFit, error) {
	if xm <= 0 {
		return ParetoFit{}, fmt.Errorf("stats: FitPareto requires xm > 0, got %g", xm)
	}
	var sum float64
	n := 0
	for _, x := range xs {
		if x < xm {
			continue
		}
		sum += math.Log(x / xm)
		n++
	}
	if n < 2 || sum <= 0 {
		return ParetoFit{}, ErrInsufficientData
	}
	return ParetoFit{Xm: xm, Alpha: float64(n) / sum, N: n}, nil
}

// FitParetoAuto fits a Pareto distribution using the sample minimum
// (clamped below by minXm) as the scale parameter.
func FitParetoAuto(xs []float64, minXm float64) (ParetoFit, error) {
	if len(xs) == 0 {
		return ParetoFit{}, ErrInsufficientData
	}
	xm := math.Inf(1)
	for _, x := range xs {
		if x > 0 && x < xm {
			xm = x
		}
	}
	if math.IsInf(xm, 1) {
		return ParetoFit{}, ErrInsufficientData
	}
	if xm < minXm {
		xm = minXm
	}
	return FitPareto(xs, xm)
}

// PowerLawFit holds the parameters of the relation y = K * x^Exp, fitted
// by least squares in log-log space. The paper fits movement time against
// movement distance this way: t = k * d^(1-rho) (Figure 7b).
type PowerLawFit struct {
	K   float64 // multiplicative constant
	Exp float64 // exponent
	R2  float64 // coefficient of determination in log space
	N   int
}

// Eval evaluates the fitted relation at x.
func (f PowerLawFit) Eval(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return f.K * math.Pow(x, f.Exp)
}

// String implements fmt.Stringer.
func (f PowerLawFit) String() string {
	return fmt.Sprintf("PowerLaw(k=%.4g, exp=%.4g, r2=%.3f, n=%d)", f.K, f.Exp, f.R2, f.N)
}

// FitPowerLaw fits y = K * x^Exp over the positive pairs of (xs, ys) by
// ordinary least squares on (ln x, ln y).
func FitPowerLaw(xs, ys []float64) (PowerLawFit, error) {
	if len(xs) != len(ys) {
		return PowerLawFit{}, fmt.Errorf("stats: FitPowerLaw length mismatch %d != %d", len(xs), len(ys))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return PowerLawFit{}, ErrInsufficientData
	}
	slope, intercept, r2, err := linearLSQ(lx, ly)
	if err != nil {
		return PowerLawFit{}, err
	}
	return PowerLawFit{K: math.Exp(intercept), Exp: slope, R2: r2, N: len(lx)}, nil
}

// ExpFit holds the parameters of y = A * exp(Rate * x), fitted by least
// squares on (x, ln y).
type ExpFit struct {
	A    float64
	Rate float64
	R2   float64
	N    int
}

// Eval evaluates the fitted relation at x.
func (f ExpFit) Eval(x float64) float64 { return f.A * math.Exp(f.Rate*x) }

// FitExponential fits y = A * exp(Rate*x) over pairs with positive y.
func FitExponential(xs, ys []float64) (ExpFit, error) {
	if len(xs) != len(ys) {
		return ExpFit{}, fmt.Errorf("stats: FitExponential length mismatch %d != %d", len(xs), len(ys))
	}
	var fx, fy []float64
	for i := range xs {
		if ys[i] > 0 {
			fx = append(fx, xs[i])
			fy = append(fy, math.Log(ys[i]))
		}
	}
	if len(fx) < 2 {
		return ExpFit{}, ErrInsufficientData
	}
	slope, intercept, r2, err := linearLSQ(fx, fy)
	if err != nil {
		return ExpFit{}, err
	}
	return ExpFit{A: math.Exp(intercept), Rate: slope, R2: r2, N: len(fx)}, nil
}

// LinearFit holds the parameters of y = Intercept + Slope*x.
type LinearFit struct {
	Slope, Intercept, R2 float64
	N                    int
}

// Eval evaluates the fitted relation at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// FitLinear fits y = a + b*x by ordinary least squares.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLinear length mismatch %d != %d", len(xs), len(ys))
	}
	slope, intercept, r2, err := linearLSQ(xs, ys)
	if err != nil {
		return LinearFit{}, err
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// linearLSQ computes the OLS slope, intercept and R^2 of ys on xs.
func linearLSQ(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	n := len(xs)
	if n < 2 {
		return 0, 0, 0, ErrInsufficientData
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: degenerate fit (zero x variance)")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2, nil
}
