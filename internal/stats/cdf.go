package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function built from a
// sample. The zero value is an empty CDF (Eval returns 0 everywhere).
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// Eval returns P(X <= x) under the empirical distribution.
func (c *CDF) Eval(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample (inverse CDF with linear
// interpolation). NaN for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	return quantileSorted(c.sorted, q)
}

// Min returns the smallest sample value (NaN when empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample value (NaN when empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns the CDF evaluated at the given xs, as percentages in
// [0, 100] — the paper plots all CDFs on a percent axis.
func (c *CDF) Points(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * c.Eval(x)
	}
	return out
}

// KS returns the two-sample Kolmogorov–Smirnov statistic between c and
// other: the supremum over x of |F1(x) - F2(x)|.
func (c *CDF) KS(other *CDF) float64 {
	if c.N() == 0 || other.N() == 0 {
		return math.NaN()
	}
	max := 0.0
	for _, x := range c.sorted {
		d := math.Abs(c.Eval(x) - other.Eval(x))
		if d > max {
			max = d
		}
	}
	for _, x := range other.sorted {
		d := math.Abs(c.Eval(x) - other.Eval(x))
		if d > max {
			max = d
		}
	}
	return max
}

// LinSpace returns n evenly spaced values from lo to hi inclusive.
// It panics if n < 2.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: LinSpace requires n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// LogSpace returns n logarithmically spaced values from lo to hi
// inclusive. It panics if n < 2 or lo/hi are not positive.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: LogSpace requires n >= 2")
	}
	if lo <= 0 || hi <= 0 {
		panic("stats: LogSpace requires positive bounds")
	}
	out := make([]float64, n)
	llo := math.Log(lo)
	lhi := math.Log(hi)
	step := (lhi - llo) / float64(n-1)
	for i := range out {
		out[i] = math.Exp(llo + float64(i)*step)
	}
	out[n-1] = hi
	return out
}
