package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("alpha")
	c2 := parent.Split("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children produced %d/100 identical outputs", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() *Stream { return New(99).Split("user-13") }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical split paths diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := s.Norm(10, 3)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean %g, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Norm stddev %g, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean %g, want ~5", mean)
	}
}

func TestParetoSupport(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2,1.5) below support: %g", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	s := New(9)
	const n = 500000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Pareto(1, 3)
	}
	// Mean of Pareto(1,3) is 1.5.
	if mean := sum / n; math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("Pareto(1,3) mean %g, want ~1.5", mean)
	}
}

func TestTruncParetoBounds(t *testing.T) {
	s := New(10)
	for i := 0; i < 10000; i++ {
		v := s.TruncPareto(1, 1.2, 100)
		if v < 1 || v > 100 {
			t.Fatalf("TruncPareto out of [1,100]: %g", v)
		}
	}
}

func TestTruncParetoDegenerate(t *testing.T) {
	s := New(11)
	if v := s.TruncPareto(5, 2, 3); v != 5 {
		t.Fatalf("TruncPareto with max <= xm: got %g, want 5", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 80} {
		s := New(13)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%g) mean %g", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	s := New(14)
	if v := s.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(15)
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Fatalf("Bool(0.25) hit %d/10000", hits)
	}
}

func TestZipfTable(t *testing.T) {
	s := New(16)
	z := NewZipfTable(10, 1.0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	// Rank 0 should dominate and ranks must be monotone decreasing in
	// expectation; allow noise but check the ends.
	if counts[0] <= counts[9] {
		t.Fatalf("Zipf rank 0 (%d) not more frequent than rank 9 (%d)", counts[0], counts[9])
	}
	// P(rank 0) for Zipf(s=1, n=10) is 1/H10 ~= 0.3414.
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.3414) > 0.02 {
		t.Fatalf("Zipf p(0) = %g, want ~0.3414", p0)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipfTable(0, 1) did not panic")
		}
	}()
	NewZipfTable(0, 1)
}

func TestRangeBounds(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		v := s.Range(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Range(-3,9) out of bounds: %g", v)
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(18)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: sum %d", sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Norm(0, 1)
	}
}
