// Package rng provides deterministic, splittable pseudo-random number
// streams used by every stochastic component in this repository.
//
// All dataset generation, simulation and sampling code takes an explicit
// *rng.Stream rather than using a global source, so that an entire
// experiment is bit-reproducible from a single root seed. Streams may be
// split into independent child streams (one per user, per node, per
// subsystem) without coordination; children derived from distinct labels
// are statistically independent.
//
// The generator is PCG-XSH-RR 64/32 bottom state with a 64-bit output mix
// (a.k.a. PCG64-like via two 32-bit halves), which is small, fast and has
// no shared state.
package rng

import (
	"math"
)

// Stream is a deterministic pseudo-random number stream. The zero value is
// not valid; construct streams with New or Stream.Split.
type Stream struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

// New returns a stream seeded from seed with the default sequence selector.
func New(seed uint64) *Stream {
	return NewSeq(seed, 0xda3e39cb94b95bdb)
}

// NewSeq returns a stream seeded from seed on the sequence identified by
// seq. Distinct sequences yield independent streams even for equal seeds.
func NewSeq(seed, seq uint64) *Stream {
	s := &Stream{inc: seq<<1 | 1}
	s.state = 0
	s.Uint64()
	s.state += seed
	s.Uint64()
	return s
}

const pcgMult = 6364136223846793005

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 {
	hi := s.next32()
	lo := s.next32()
	return uint64(hi)<<32 | uint64(lo)
}

// next32 advances the PCG-XSH-RR 64/32 generator one step.
func (s *Stream) next32() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Split derives an independent child stream. The child is a pure function
// of the parent's current state and the label, so splitting with distinct
// labels from the same parent state yields independent streams; the parent
// is advanced once per call so repeated splits also differ.
func (s *Stream) Split(label string) *Stream {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewSeq(s.Uint64()^h, h|1)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Stream) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Stream) Norm(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
	}
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with non-positive mean")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(xm, alpha) distributed value: support [xm, inf),
// density alpha*xm^alpha/x^(alpha+1). It panics unless xm > 0 and alpha > 0.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires xm > 0 and alpha > 0")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// TruncPareto returns a Pareto(xm, alpha) value truncated to [xm, max] by
// inverse-CDF sampling of the truncated distribution.
func (s *Stream) TruncPareto(xm, alpha, max float64) float64 {
	if max <= xm {
		return xm
	}
	// CDF of truncated Pareto: F(x) = (1-(xm/x)^a) / (1-(xm/max)^a).
	tail := 1 - math.Pow(xm/max, alpha)
	u := s.Float64() * tail
	return xm / math.Pow(1-u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Poisson returns a Poisson-distributed value with the given mean, using
// Knuth's method for small means and normal approximation for large means.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := s.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a value in [0, n) drawn from a Zipf distribution with
// exponent sexp (probability of rank r proportional to 1/(r+1)^sexp),
// using precomputed weights supplied by a ZipfTable.
type ZipfTable struct {
	cum []float64 // cumulative weights, len n, cum[n-1] == total
}

// NewZipfTable builds a sampling table for ranks [0, n) with exponent sexp.
// It panics if n <= 0.
func NewZipfTable(n int, sexp float64) *ZipfTable {
	if n <= 0 {
		panic("rng: NewZipfTable requires n > 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += 1 / math.Pow(float64(r+1), sexp)
		cum[r] = total
	}
	return &ZipfTable{cum: cum}
}

// N returns the number of ranks in the table.
func (z *ZipfTable) N() int { return len(z.cum) }

// Sample draws one rank from the table using stream s.
func (z *ZipfTable) Sample(s *Stream) int {
	u := s.Float64() * z.cum[len(z.cum)-1]
	// Binary search for the first cum[i] > u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
