// Package recover builds out the paper's §7 "Recovering Missing
// Locations" open problem: filling in the visits users make but never
// report. The paper's observation is that "even approximations of 1 or
// more key locations (home, work) will go a long way towards improving
// accuracy", and it sketches two approaches — up-sampling observed
// checkins from statistical models of real mobility, and inserting
// locations from per-category checkin-rate models. This package
// implements both:
//
//   - AnchorInference estimates a user's home and work locations from her
//     checkin trace alone (first/last checkins of the day bracket home;
//     weekday mid-day checkins bracket work);
//   - Upsample augments a checkin trace with recovered anchor visits on a
//     daily schedule, producing a denser event trace;
//   - Coverage scores a recovered trace against the GPS ground truth with
//     the same α/β matching used by the validator.
package recover

import (
	"fmt"
	"math"
	"sort"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/geo"
	"geosocial/internal/trace"
)

// Anchors are a user's inferred key locations.
type Anchors struct {
	Home geo.LatLon
	// HomeSupport is the number of checkins that voted for Home.
	HomeSupport int
	Work        geo.LatLon
	WorkSupport int
}

// InferAnchors estimates home and work from a checkin trace. Home: the
// medoid of each day's first and last checkin locations (people start and
// end their day near home). Work: the medoid of weekday 9:00–17:00
// checkin locations. Support counts below 3 mean the estimate is weak.
func InferAnchors(cks trace.CheckinTrace) Anchors {
	var homeVotes, workVotes []geo.LatLon
	// Bursty checkins (nearest same-user neighbour within 2 minutes) are
	// overwhelmingly reward sprees at places the user never was (§5.3);
	// excluding them keeps fake venues from dragging the anchor votes.
	isBursty := func(i int) bool {
		const gap = 120
		if i > 0 && cks[i].T-cks[i-1].T <= gap {
			return true
		}
		if i+1 < len(cks) && cks[i+1].T-cks[i].T <= gap {
			return true
		}
		return false
	}
	byDay := map[int64][]int{}
	for i, c := range cks {
		if isBursty(i) {
			continue
		}
		byDay[c.T/86400] = append(byDay[c.T/86400], i)
	}
	for _, idxs := range byDay {
		first, last := idxs[0], idxs[0]
		for _, i := range idxs {
			if cks[i].T < cks[first].T {
				first = i
			}
			if cks[i].T > cks[last].T {
				last = i
			}
		}
		homeVotes = append(homeVotes, cks[first].Loc)
		if last != first {
			homeVotes = append(homeVotes, cks[last].Loc)
		}
	}
	for i, c := range cks {
		if isBursty(i) {
			continue
		}
		day := (c.T/86400 + 4) % 7
		hour := (c.T % 86400) / 3600
		if day >= 1 && day <= 5 && hour >= 9 && hour < 17 {
			workVotes = append(workVotes, c.Loc)
		}
	}
	var a Anchors
	a.Home, a.HomeSupport = medoid(homeVotes)
	a.Work, a.WorkSupport = medoid(workVotes)
	return a
}

// medoid returns the vote minimizing total distance to the others — more
// robust than a centroid when votes scatter across town (which checkin
// traces do).
func medoid(votes []geo.LatLon) (geo.LatLon, int) {
	if len(votes) == 0 {
		return geo.LatLon{}, 0
	}
	best := 0
	bestSum := math.Inf(1)
	for i := range votes {
		sum := 0.0
		for j := range votes {
			sum += geo.Distance(votes[i], votes[j])
		}
		if sum < bestSum {
			bestSum = sum
			best = i
		}
	}
	// Support: votes within 1 km of the medoid.
	support := 0
	for _, v := range votes {
		if geo.Distance(votes[best], v) <= 1000 {
			support++
		}
	}
	return votes[best], support
}

// Event is one point of a recovered event trace: either an original
// checkin or a synthesized anchor visit.
type Event struct {
	T         int64
	Loc       geo.LatLon
	Recovered bool // true when synthesized by Upsample
}

// UpsampleConfig tunes trace augmentation.
type UpsampleConfig struct {
	// MorningHour and EveningHour are the local hours at which home
	// events are inserted each observed day.
	MorningHour, EveningHour int
	// WorkHours are the hours of the inserted weekday work events (the
	// workday spans the β window several times over, so one event cannot
	// cover it).
	WorkHours []int
	// MinSupport suppresses insertion from anchors with fewer supporting
	// votes.
	MinSupport int
}

// DefaultUpsampleConfig returns the defaults: home at 07:30 and 22:00,
// work at 10:00 and 15:00, anchors need 3 supporting votes.
func DefaultUpsampleConfig() UpsampleConfig {
	return UpsampleConfig{MorningHour: 7, EveningHour: 22, WorkHours: []int{10, 15}, MinSupport: 3}
}

// Upsample augments the checkin trace with inferred home/work events on
// every day the user produced at least one checkin. The result is
// time-ordered.
func Upsample(cks trace.CheckinTrace, a Anchors, cfg UpsampleConfig) []Event {
	events := make([]Event, 0, len(cks)*2)
	for _, c := range cks {
		events = append(events, Event{T: c.T, Loc: c.Loc})
	}
	days := map[int64]bool{}
	for _, c := range cks {
		days[c.T/86400] = true
	}
	for day := range days {
		base := day * 86400
		if a.HomeSupport >= cfg.MinSupport {
			events = append(events,
				Event{T: base + int64(cfg.MorningHour)*3600 + 1800, Loc: a.Home, Recovered: true},
				Event{T: base + int64(cfg.EveningHour)*3600, Loc: a.Home, Recovered: true},
			)
		}
		dow := (day + 4) % 7
		if dow >= 1 && dow <= 5 && a.WorkSupport >= cfg.MinSupport {
			for _, h := range cfg.WorkHours {
				events = append(events, Event{T: base + int64(h)*3600, Loc: a.Work, Recovered: true})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}

// Coverage is the recovery evaluation: how much of the user's real
// mobility the (augmented) event trace now captures.
type Coverage struct {
	// Visits is the ground-truth visit count.
	Visits int
	// CoveredBefore and CoveredAfter count visits matched (within
	// alpha/beta) by the raw checkins and by the augmented trace.
	CoveredBefore, CoveredAfter int
	// AnchorErrorM is the distance from the inferred home to the user's
	// true most-visited location (meters; NaN when unknown).
	AnchorErrorM float64
}

// BeforeRatio returns the raw-checkin visit coverage.
func (c Coverage) BeforeRatio() float64 { return ratio(c.CoveredBefore, c.Visits) }

// AfterRatio returns the augmented-trace visit coverage.
func (c Coverage) AfterRatio() float64 { return ratio(c.CoveredAfter, c.Visits) }

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// EvaluateUser measures recovery quality for one matched user outcome,
// using the validator's α/β to decide whether an event covers a visit.
func EvaluateUser(o core.UserOutcome, p core.Params) (Coverage, error) {
	if err := p.Validate(); err != nil {
		return Coverage{}, fmt.Errorf("recover: %w", err)
	}
	a := InferAnchors(o.User.Checkins)
	events := Upsample(o.User.Checkins, a, DefaultUpsampleConfig())

	var cov Coverage
	cov.Visits = len(o.Visits)
	cov.CoveredBefore = coveredVisits(o.Visits, checkinEvents(o.User.Checkins), p)
	cov.CoveredAfter = coveredVisits(o.Visits, events, p)
	cov.AnchorErrorM = anchorError(o, a)
	return cov, nil
}

func checkinEvents(cks trace.CheckinTrace) []Event {
	evs := make([]Event, len(cks))
	for i, c := range cks {
		evs[i] = Event{T: c.T, Loc: c.Loc}
	}
	return evs
}

// coveredVisits counts visits with at least one event within alpha meters
// and beta interval-time.
func coveredVisits(vs []trace.Visit, events []Event, p core.Params) int {
	covered := 0
	for _, v := range vs {
		for _, e := range events {
			if v.DeltaT(e.T) >= p.Beta {
				continue
			}
			if geo.Distance(v.Loc, e.Loc) <= p.Alpha {
				covered++
				break
			}
		}
	}
	return covered
}

// anchorError compares the inferred home to the user's true home proxy:
// the place with the most stay time during overnight-adjacent hours
// (before 09:00 and after 20:00), which is where people actually live —
// total stay time alone would pick the workplace.
func anchorError(o core.UserOutcome, a Anchors) float64 {
	if a.HomeSupport == 0 || len(o.Visits) == 0 {
		return math.NaN()
	}
	type key struct{ lat, lon int }
	stay := map[key]time.Duration{}
	locOf := map[key]geo.LatLon{}
	for _, v := range o.Visits {
		overlap := overnightOverlap(v.Start, v.End)
		if overlap <= 0 {
			continue
		}
		k := key{int(v.Loc.Lat / 0.002), int(v.Loc.Lon / 0.002)}
		stay[k] += overlap
		locOf[k] = v.Loc
	}
	var bestK key
	bestDur := time.Duration(-1)
	for k, d := range stay {
		if d > bestDur {
			bestDur = d
			bestK = k
		}
	}
	if bestDur < 0 {
		return math.NaN()
	}
	return geo.Distance(a.Home, locOf[bestK])
}

// overnightOverlap returns how much of [start, end] (Unix seconds) falls
// before 09:00 or after 20:00 local time.
func overnightOverlap(start, end int64) time.Duration {
	var total int64
	for t := start; t < end; {
		dayBase := (t / 86400) * 86400
		hour := (t - dayBase) / 3600
		// Next boundary of interest.
		next := end
		switch {
		case hour < 9:
			if b := dayBase + 9*3600; b < next {
				next = b
			}
			total += next - t
		case hour >= 20:
			if b := dayBase + 86400; b < next {
				next = b
			}
			total += next - t
		default:
			if b := dayBase + 20*3600; b < next {
				next = b
			}
		}
		t = next
	}
	return time.Duration(total) * time.Second
}

// EvaluateAll pools coverage over all users.
func EvaluateAll(outs []core.UserOutcome, p core.Params) (Coverage, error) {
	var pooled Coverage
	var errSum float64
	errN := 0
	for _, o := range outs {
		c, err := EvaluateUser(o, p)
		if err != nil {
			return Coverage{}, err
		}
		pooled.Visits += c.Visits
		pooled.CoveredBefore += c.CoveredBefore
		pooled.CoveredAfter += c.CoveredAfter
		if !math.IsNaN(c.AnchorErrorM) {
			errSum += c.AnchorErrorM
			errN++
		}
	}
	if errN > 0 {
		pooled.AnchorErrorM = errSum / float64(errN)
	} else {
		pooled.AnchorErrorM = math.NaN()
	}
	return pooled, nil
}
