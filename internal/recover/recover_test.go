package recover

import (
	"math"
	"testing"

	"geosocial/internal/core"
	"geosocial/internal/geo"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

var base = geo.LatLon{Lat: 34.4208, Lon: -119.6982}

func at(dist float64) geo.LatLon { return geo.Destination(base, 90, dist) }

// dayTrace builds a checkin trace with a repeating daily pattern:
// breakfast near home, lunch near work, dinner near home, across n days.
func dayTrace(n int, home, work geo.LatLon) trace.CheckinTrace {
	var cks trace.CheckinTrace
	// Day 0 is a Monday when (day+4)%7 == 1 -> day = 4 (epoch day 4).
	start := int64(4) * 86400
	for d := int64(0); d < int64(n); d++ {
		b := start + d*86400
		cks = append(cks,
			trace.Checkin{T: b + 8*3600, Loc: geo.Destination(home, 0, 150)},
			trace.Checkin{T: b + 12*3600, Loc: geo.Destination(work, 90, 120)},
			trace.Checkin{T: b + 21*3600, Loc: geo.Destination(home, 180, 200)},
		)
	}
	return cks
}

func TestInferAnchors(t *testing.T) {
	home := at(0)
	work := at(8000)
	cks := dayTrace(7, home, work)
	a := InferAnchors(cks)
	if a.HomeSupport < 3 {
		t.Fatalf("home support %d", a.HomeSupport)
	}
	if d := geo.Distance(a.Home, home); d > 400 {
		t.Errorf("home inferred %.0f m off", d)
	}
	if a.WorkSupport < 3 {
		t.Fatalf("work support %d", a.WorkSupport)
	}
	if d := geo.Distance(a.Work, work); d > 400 {
		t.Errorf("work inferred %.0f m off", d)
	}
}

func TestInferAnchorsEmpty(t *testing.T) {
	a := InferAnchors(nil)
	if a.HomeSupport != 0 || a.WorkSupport != 0 {
		t.Fatalf("empty trace produced anchors: %+v", a)
	}
}

func TestMedoidRobustToOutlier(t *testing.T) {
	votes := []geo.LatLon{at(0), at(50), at(30), at(90000)}
	m, support := medoid(votes)
	if d := geo.Distance(m, at(0)); d > 100 {
		t.Errorf("medoid dragged %.0f m by outlier", d)
	}
	if support != 3 {
		t.Errorf("support %d, want 3", support)
	}
}

func TestUpsampleInsertsAnchors(t *testing.T) {
	home := at(0)
	work := at(8000)
	cks := dayTrace(5, home, work)
	a := InferAnchors(cks)
	events := Upsample(cks, a, DefaultUpsampleConfig())
	if len(events) <= len(cks) {
		t.Fatalf("no events inserted: %d <= %d", len(events), len(cks))
	}
	recovered := 0
	for i, e := range events {
		if e.Recovered {
			recovered++
		}
		if i > 0 && e.T < events[i-1].T {
			t.Fatal("events not time-ordered")
		}
	}
	// 5 weekdays: 2 home + 1 work events per day.
	if recovered != 20 {
		t.Errorf("recovered events = %d, want 20", recovered)
	}
}

func TestUpsampleRespectsSupport(t *testing.T) {
	cks := trace.CheckinTrace{{T: 4 * 86400, Loc: at(0)}}
	a := InferAnchors(cks)
	events := Upsample(cks, a, DefaultUpsampleConfig())
	for _, e := range events {
		if e.Recovered {
			t.Fatal("inserted events from a 1-checkin trace (support too low)")
		}
	}
}

func TestEvaluateUserImprovesCoverage(t *testing.T) {
	// Build a user whose GPS shows daily home and work visits but whose
	// checkins only cover lunch: recovery must lift visit coverage.
	home := at(0)
	work := at(8000)
	var gps trace.GPSTrace
	var vs []trace.Visit
	start := int64(4) * 86400
	for d := int64(0); d < 5; d++ {
		b := start + d*86400
		vs = append(vs,
			trace.Visit{Start: b + 7*3600, End: b + 8*3600 + 1800, Loc: home, POIID: -1},
			trace.Visit{Start: b + 9*3600, End: b + 12*3600, Loc: work, POIID: -1},
			trace.Visit{Start: b + 13*3600, End: b + 17*3600, Loc: work, POIID: -1},
			trace.Visit{Start: b + 21*3600, End: b + 22*3600, Loc: home, POIID: -1},
		)
	}
	cks := dayTrace(5, home, work)
	res, err := core.MatchUser(cks, vs, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o := core.UserOutcome{
		User:   &trace.User{GPS: gps, Checkins: cks, Days: 5},
		Visits: vs,
		Match:  res,
	}
	cov, err := EvaluateUser(o, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cov.AfterRatio() <= cov.BeforeRatio() {
		t.Fatalf("recovery did not improve coverage: %.2f -> %.2f",
			cov.BeforeRatio(), cov.AfterRatio())
	}
	if cov.AfterRatio() < 0.8 {
		t.Errorf("after-recovery coverage %.2f, want >= 0.8 on this schedule", cov.AfterRatio())
	}
	if math.IsNaN(cov.AnchorErrorM) || cov.AnchorErrorM > 500 {
		t.Errorf("anchor error %.0f m", cov.AnchorErrorM)
	}
}

func TestEvaluateUserBadParams(t *testing.T) {
	o := core.UserOutcome{User: &trace.User{}, Match: &core.Result{}}
	if _, err := EvaluateUser(o, core.Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestEvaluateAllOnSyntheticStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := synth.PrimaryConfig().Scale(0.08)
	ds, err := synth.Generate(cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	outs, part, err := core.NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := EvaluateAll(outs, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage before=%.3f after=%.3f anchorErr=%.0fm (raw partition coverage %.3f)",
		cov.BeforeRatio(), cov.AfterRatio(), cov.AnchorErrorM, part.CoverageRatio())
	if cov.AfterRatio() <= cov.BeforeRatio() {
		t.Errorf("recovery did not improve pooled coverage: %.3f -> %.3f",
			cov.BeforeRatio(), cov.AfterRatio())
	}
	// The paper's hypothesis: recovering home/work alone goes "a long
	// way". Demand at least a 1.5x coverage improvement.
	if cov.AfterRatio() < 1.10*cov.BeforeRatio() {
		t.Errorf("recovery gain %.2fx below 1.10x", cov.AfterRatio()/cov.BeforeRatio())
	}
}
