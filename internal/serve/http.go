package serve

// HTTP surface of the validation service. Endpoints (full reference
// with curl examples in docs/API.md):
//
//	POST /v1/datasets                 upload a dataset file (?wait=1 blocks)
//	GET  /v1/datasets                 list jobs in arrival order
//	GET  /v1/datasets/{id}            job status + full StreamResult when done
//	POST /v1/datasets/{id}/append     append a GSB1 delta stream to a shard set
//	GET  /v1/datasets/{id}/partition  the Figure 1 partition only
//	GET  /v1/datasets/{id}/taxonomy   the §5.1 taxonomy only
//	GET  /v1/datasets/{id}/outcomes   the raw GSO1 outcome log bytes
//	GET  /v1/datasets/{id}/analysis/{kind}  a §5–§7 analysis over the log
//	GET  /healthz                     liveness probe (JSON status + build version)
//	GET  /metrics                     Prometheus text-exposition metrics
//
// All JSON responses are encoded exactly like geovalidate -json
// (two-space indent), so service output and CLI output on the same
// dataset are byte-comparable. The X-Cache header on result endpoints
// is "hit" when the request was served from the result cache without
// waiting on a validation, "miss" otherwise.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/obs"
)

// maxUploadBytes caps an upload request body (1 GiB, far above any
// study-scale dataset; a sharded corpus should be spooled, not
// uploaded).
const maxUploadBytes = 1 << 30

// initMux wires the HTTP routes. Called once by New.
func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDataset)
	mux.HandleFunc("POST /v1/datasets/{id}/append", s.handleAppend)
	mux.HandleFunc("GET /v1/datasets/{id}/partition", s.handlePartition)
	mux.HandleFunc("GET /v1/datasets/{id}/taxonomy", s.handleTaxonomy)
	mux.HandleFunc("GET /v1/datasets/{id}/outcomes", s.handleOutcomes)
	mux.HandleFunc("GET /v1/datasets/{id}/analysis/{kind}", s.handleAnalysis)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// ServeHTTP implements http.Handler. Every request is timed and
// counted into the per-route HTTP metrics, labeled by the mux pattern
// it matched (never the raw URL, so label cardinality stays bounded by
// the route table).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := "unmatched"
	if _, pattern := s.mux.Handler(r); pattern != "" {
		route = pattern
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	t0 := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.sm.observeRequest(route, sw.status, time.Since(t0))
}

// writeJSON writes v in the shared presentation encoding
// (core.WriteIndentedJSON — the same call geovalidate -json makes), so
// the two surfaces emit byte-identical documents for equal values.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	core.WriteIndentedJSON(w, v) //nolint:errcheck // nothing to do about a failed write
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// datasetResponse is the GET /v1/datasets/{id} body: job state plus the
// full result once available.
type datasetResponse struct {
	JobInfo
	// Result is the full validation result; present only when the job
	// is done and its result is cached.
	Result *core.StreamResult `json:"result,omitempty"`
}

// wantWait reports the ?wait=1 request flag.
func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleUpload accepts a dataset file as the raw request body.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	info, err := s.Upload(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		// Upload failures are server faults (spool I/O) unless the body
		// exceeded the cap or the server is draining.
		status := http.StatusInternalServerError
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			status = http.StatusRequestEntityTooLarge
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	cacheState := "miss"
	if info.Status == StatusDone || info.Status == StatusFailed {
		cacheState = "hit" // no validation ran for this request
	} else if wantWait(r) {
		info, _ = s.wait(info.ID, r.Context().Done())
	}
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("Location", "/v1/datasets/"+info.ID)
	status := http.StatusAccepted
	if info.Status == StatusDone || info.Status == StatusFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// handleList lists every job in arrival order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Datasets []JobInfo `json:"datasets"`
	}{Datasets: s.Jobs()})
}

// loadResult resolves {id} to its job state and decoded result,
// honouring ?wait=1 — including across an eviction-triggered
// revalidation, so a waiting client always leaves with a result (or a
// failure), never a transient 202. ok=false means the response has
// been written.
func (s *Server) loadResult(w http.ResponseWriter, r *http.Request) (info JobInfo, res *core.StreamResult, fromCache bool, ok bool) {
	id := r.PathValue("id")
	info, exists := s.Job(id)
	if !exists {
		writeError(w, http.StatusNotFound, "unknown dataset %q", id)
		return info, nil, false, false
	}
	fromCache = true
	// Bounded retries: each pass either returns, waits for a terminal
	// state, or observes an eviction re-queue (which the next pass
	// waits out). More than a few passes means the cache is thrashing
	// faster than we can read it; give up with the transient state.
	for attempt := 0; attempt < 4; attempt++ {
		if info.Status != StatusDone && info.Status != StatusFailed {
			if !wantWait(r) {
				return info, nil, fromCache, true
			}
			var finished bool
			info, finished = s.wait(id, r.Context().Done())
			fromCache = false // this request waited on a validation
			if !finished {
				if _, exists := s.Job(id); !exists {
					// The job vanished mid-wait: its file was claimed as
					// a shard by a manifest and the standalone dataset
					// withdrawn.
					writeError(w, http.StatusGone, "dataset %q was withdrawn (claimed by a shard manifest)", id)
					return info, nil, fromCache, false
				}
				return info, nil, fromCache, true // cancelled or shutdown
			}
		}
		if info.Status != StatusDone {
			return info, nil, fromCache, true // failed
		}
		var data []byte
		data, info, _ = s.result(id)
		if data == nil {
			// Evicted; result() re-queued a revalidation. A waiting
			// client loops to wait it out, others get the transient
			// state.
			fromCache = false
			if !wantWait(r) {
				return info, nil, false, true
			}
			continue
		}
		res, err := core.DecodeStreamResult(data)
		if err != nil {
			// A corrupt cache entry (torn disk write) must not poison the
			// dataset forever: drop both tiers and loop — the next pass
			// misses the cache and revalidates from the spool, exactly as
			// for an eviction.
			s.logf("serve: %s: dropping corrupt cached result: %v", info.Path, err)
			s.cache.Delete(id)
			fromCache = false
			continue
		}
		return info, res, fromCache, true
	}
	return info, nil, false, true
}

// setCache writes the X-Cache header.
func setCache(w http.ResponseWriter, fromCache bool) {
	state := "miss"
	if fromCache {
		state = "hit"
	}
	w.Header().Set("X-Cache", state)
}

// handleDataset serves job status plus the full result when done.
func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	info, res, fromCache, ok := s.loadResult(w, r)
	if !ok {
		return
	}
	setCache(w, fromCache && res != nil)
	status := http.StatusOK
	if info.Status == StatusPending || info.Status == StatusRunning {
		status = http.StatusAccepted
	}
	writeJSON(w, status, datasetResponse{JobInfo: info, Result: res})
}

// handleAppend grows a validated shard-set dataset by one generation:
// the request body is a GSB1 delta stream (the same wire format an
// upload uses, carrying only the appended data), applied to the
// dataset's manifest on disk. The response is the new generation's job
// — a different dataset ID, since the corpus content changed — which
// validates incrementally from the old generation's result when
// possible. ?wait=1 blocks for the new job's completion.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	info, ok := s.resolveDone(w, r)
	if !ok {
		return
	}
	newInfo, err := s.Append(info.ID, http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		status := http.StatusUnprocessableEntity
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			status = http.StatusRequestEntityTooLarge
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	if wantWait(r) && newInfo.Status != StatusDone && newInfo.Status != StatusFailed {
		newInfo, _ = s.wait(newInfo.ID, r.Context().Done())
	}
	w.Header().Set("Location", "/v1/datasets/"+newInfo.ID)
	status := http.StatusAccepted
	if newInfo.Status == StatusDone || newInfo.Status == StatusFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, newInfo)
}

// handleNotReady reports a job that cannot serve a result yet (or ever,
// for failed jobs).
func handleNotReady(w http.ResponseWriter, info JobInfo) {
	if info.Status == StatusFailed {
		writeError(w, http.StatusUnprocessableEntity, "validation failed: %s", info.Error)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

// handlePartition serves only the Figure 1 partition of a validated
// dataset — the endpoint the byte-identity contract is pinned against
// (geoserve partition JSON == geovalidate -json partition field).
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	info, res, fromCache, ok := s.loadResult(w, r)
	if !ok {
		return
	}
	if res == nil {
		handleNotReady(w, info)
		return
	}
	setCache(w, fromCache)
	writeJSON(w, http.StatusOK, res.Partition)
}

// handleTaxonomy serves only the §5.1 taxonomy counts.
func (s *Server) handleTaxonomy(w http.ResponseWriter, r *http.Request) {
	info, res, fromCache, ok := s.loadResult(w, r)
	if !ok {
		return
	}
	if res == nil {
		handleNotReady(w, info)
		return
	}
	setCache(w, fromCache)
	writeJSON(w, http.StatusOK, res.Taxonomy)
}

// resolveDone resolves {id} to a done job, honouring ?wait=1. ok=false
// means the response has been written (unknown job, failed job, or a
// job that is not done and the client would not wait).
func (s *Server) resolveDone(w http.ResponseWriter, r *http.Request) (JobInfo, bool) {
	id := r.PathValue("id")
	info, exists := s.Job(id)
	if !exists {
		writeError(w, http.StatusNotFound, "unknown dataset %q", id)
		return info, false
	}
	if info.Status != StatusDone && info.Status != StatusFailed && wantWait(r) {
		var finished bool
		if info, finished = s.wait(id, r.Context().Done()); !finished {
			if _, exists := s.Job(id); !exists {
				writeError(w, http.StatusGone, "dataset %q was withdrawn (claimed by a shard manifest)", id)
				return info, false
			}
		}
	}
	if info.Status != StatusDone {
		handleNotReady(w, info)
		return info, false
	}
	return info, true
}

// handleOutcomes serves a validated dataset's raw GSO1 outcome log —
// the exact bytes geovalidate -outcomes would have written, ready for
// a local geoanalyze run.
func (s *Server) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	info, ok := s.resolveDone(w, r)
	if !ok {
		return
	}
	logPath := s.outcomePath(info.ID)
	if logPath == "" {
		writeError(w, http.StatusNotFound, "outcome logging is disabled on this server")
		return
	}
	f, err := os.Open(logPath)
	if err != nil {
		writeError(w, http.StatusNotFound, "no outcome log retained for dataset %q", info.ID)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	if st, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", fmt.Sprint(st.Size()))
	}
	io.Copy(w, f) //nolint:errcheck // nothing to do about a failed write
}

// handleAnalysis serves one §5–§7 analysis over a validated dataset's
// outcome log. Analysis documents are cached alongside partitions in
// the result cache (and its disk tier), keyed by "<checksum>.<kind>",
// so each (dataset, kind) pair is computed at most once per cache
// lifetime; X-Cache reports whether this request hit that cache.
func (s *Server) handleAnalysis(w http.ResponseWriter, r *http.Request) {
	info, ok := s.resolveDone(w, r)
	if !ok {
		return
	}
	// Configuration errors first: "outcome logging is disabled" is the
	// honest answer for any kind when there are no logs to analyze
	// (with AnalysisKinds empty, every kind would otherwise read as
	// "unknown").
	if s.outcomePath(info.ID) == "" {
		writeError(w, http.StatusNotFound, "outcome logging is disabled on this server")
		return
	}
	kind := r.PathValue("kind")
	known := false
	for _, k := range s.cfg.AnalysisKinds {
		if k == kind {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, "unknown analysis kind %q (have %s)",
			kind, strings.Join(s.cfg.AnalysisKinds, ", "))
		return
	}
	key := info.ID + "." + kind
	fromCache := true
	for {
		if data, hit := s.cacheGet(key); hit {
			if !json.Valid(data) {
				// Torn disk write: drop the entry and recompute instead of
				// serving garbage with a 200.
				s.logf("serve: %s: dropping corrupt cached %s analysis", info.Path, kind)
				s.cache.Delete(key)
				fromCache = false
			} else {
				setCache(w, fromCache)
				w.Header().Set("Content-Type", "application/json")
				w.Write(data) //nolint:errcheck // nothing to do about a failed write
				return
			}
		}
		// Single-flight: exactly one request computes each uncached
		// (dataset, kind); the rest wait for it and re-check the cache.
		s.analysisMu.Lock()
		ch, busy := s.analysisBusy[key]
		if !busy {
			ch = make(chan struct{})
			s.analysisBusy[key] = ch
			s.analysisMu.Unlock()
			break // this request is the runner
		}
		s.analysisMu.Unlock()
		fromCache = false // this request waited on a computation
		select {
		case <-ch:
		case <-r.Context().Done():
			return // client gone; the runner still publishes to the cache
		case <-s.stop:
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
	}
	data, status, err := s.runAnalysis(info, key, kind)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // nothing to do about a failed write
}

// runAnalysis computes one analysis as the single-flight runner,
// publishing to the cache and always releasing waiters (who re-check
// the cache; after a failure the next waiter becomes the runner).
func (s *Server) runAnalysis(info JobInfo, key, kind string) (data []byte, errStatus int, err error) {
	defer func() {
		s.analysisMu.Lock()
		ch := s.analysisBusy[key]
		delete(s.analysisBusy, key)
		s.analysisMu.Unlock()
		close(ch)
	}()
	if s.cfg.Analyze == nil {
		return nil, http.StatusNotImplemented, fmt.Errorf("analysis is not configured on this server")
	}
	logPath := s.outcomePath(info.ID)
	if logPath == "" {
		return nil, http.StatusNotFound, fmt.Errorf("outcome logging is disabled on this server")
	}
	if _, err := os.Stat(logPath); err != nil {
		return nil, http.StatusNotFound, fmt.Errorf("no outcome log retained for dataset %q", info.ID)
	}
	data, aerr := s.cfg.Analyze(logPath, kind)
	if aerr != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("analysis failed: %v", aerr)
	}
	s.sm.analyses.Inc()
	s.cachePut(key, data)
	s.logf("serve: %s: computed %s analysis (%s)", info.Path, kind, shortID(info.ID))
	return data, 0, nil
}

// healthzBody is the liveness response.
type healthzBody struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// handleHealthz is the liveness probe; the body carries the build
// version so a probe can also tell what is deployed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzBody{Status: "ok", Version: obs.Version})
}

// handleMetrics serves the instrument registry in Prometheus text
// exposition format. Every counter name the old hand-printed endpoint
// exposed survives with identical value semantics (pinned by the
// back-compat test); the exposition adds HELP/TYPE metadata,
// histograms, per-route HTTP metrics, and — when a span collector is
// configured — per-stage pipeline timings.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sm.reg.WritePrometheus(w) //nolint:errcheck // nothing to do about a failed write
}
