package serve

// HTTP surface of the validation service. Endpoints (full reference
// with curl examples in docs/API.md):
//
//	POST /v1/datasets                 upload a dataset file (?wait=1 blocks)
//	GET  /v1/datasets                 list jobs in arrival order
//	GET  /v1/datasets/{id}            job status + full StreamResult when done
//	GET  /v1/datasets/{id}/partition  the Figure 1 partition only
//	GET  /v1/datasets/{id}/taxonomy   the §5.1 taxonomy only
//	GET  /healthz                     liveness probe
//	GET  /metrics                     plain-text counters
//
// All JSON responses are encoded exactly like geovalidate -json
// (two-space indent), so service output and CLI output on the same
// dataset are byte-comparable. The X-Cache header on result endpoints
// is "hit" when the request was served from the result cache without
// waiting on a validation, "miss" otherwise.

import (
	"errors"
	"fmt"
	"net/http"

	"geosocial/internal/core"
)

// maxUploadBytes caps an upload request body (1 GiB, far above any
// study-scale dataset; a sharded corpus should be spooled, not
// uploaded).
const maxUploadBytes = 1 << 30

// initMux wires the HTTP routes. Called once by New.
func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDataset)
	mux.HandleFunc("GET /v1/datasets/{id}/partition", s.handlePartition)
	mux.HandleFunc("GET /v1/datasets/{id}/taxonomy", s.handleTaxonomy)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v in the shared presentation encoding
// (core.WriteIndentedJSON — the same call geovalidate -json makes), so
// the two surfaces emit byte-identical documents for equal values.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	core.WriteIndentedJSON(w, v) //nolint:errcheck // nothing to do about a failed write
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// datasetResponse is the GET /v1/datasets/{id} body: job state plus the
// full result once available.
type datasetResponse struct {
	JobInfo
	// Result is the full validation result; present only when the job
	// is done and its result is cached.
	Result *core.StreamResult `json:"result,omitempty"`
}

// wantWait reports the ?wait=1 request flag.
func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleUpload accepts a dataset file as the raw request body.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	info, err := s.Upload(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		// Upload failures are server faults (spool I/O) unless the body
		// exceeded the cap or the server is draining.
		status := http.StatusInternalServerError
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			status = http.StatusRequestEntityTooLarge
		case errors.Is(err, ErrClosed):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	cacheState := "miss"
	if info.Status == StatusDone || info.Status == StatusFailed {
		cacheState = "hit" // no validation ran for this request
	} else if wantWait(r) {
		info, _ = s.wait(info.ID, r.Context().Done())
	}
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("Location", "/v1/datasets/"+info.ID)
	status := http.StatusAccepted
	if info.Status == StatusDone || info.Status == StatusFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// handleList lists every job in arrival order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Datasets []JobInfo `json:"datasets"`
	}{Datasets: s.Jobs()})
}

// loadResult resolves {id} to its job state and decoded result,
// honouring ?wait=1 — including across an eviction-triggered
// revalidation, so a waiting client always leaves with a result (or a
// failure), never a transient 202. ok=false means the response has
// been written.
func (s *Server) loadResult(w http.ResponseWriter, r *http.Request) (info JobInfo, res *core.StreamResult, fromCache bool, ok bool) {
	id := r.PathValue("id")
	info, exists := s.Job(id)
	if !exists {
		writeError(w, http.StatusNotFound, "unknown dataset %q", id)
		return info, nil, false, false
	}
	fromCache = true
	// Bounded retries: each pass either returns, waits for a terminal
	// state, or observes an eviction re-queue (which the next pass
	// waits out). More than a few passes means the cache is thrashing
	// faster than we can read it; give up with the transient state.
	for attempt := 0; attempt < 4; attempt++ {
		if info.Status != StatusDone && info.Status != StatusFailed {
			if !wantWait(r) {
				return info, nil, fromCache, true
			}
			var finished bool
			info, finished = s.wait(id, r.Context().Done())
			fromCache = false // this request waited on a validation
			if !finished {
				if _, exists := s.Job(id); !exists {
					// The job vanished mid-wait: its file was claimed as
					// a shard by a manifest and the standalone dataset
					// withdrawn.
					writeError(w, http.StatusGone, "dataset %q was withdrawn (claimed by a shard manifest)", id)
					return info, nil, fromCache, false
				}
				return info, nil, fromCache, true // cancelled or shutdown
			}
		}
		if info.Status != StatusDone {
			return info, nil, fromCache, true // failed
		}
		var data []byte
		data, info, _ = s.result(id)
		if data == nil {
			// Evicted; result() re-queued a revalidation. A waiting
			// client loops to wait it out, others get the transient
			// state.
			fromCache = false
			if !wantWait(r) {
				return info, nil, false, true
			}
			continue
		}
		res, err := core.DecodeStreamResult(data)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "corrupt cached result: %v", err)
			return info, nil, fromCache, false
		}
		return info, res, fromCache, true
	}
	return info, nil, false, true
}

// setCache writes the X-Cache header.
func setCache(w http.ResponseWriter, fromCache bool) {
	state := "miss"
	if fromCache {
		state = "hit"
	}
	w.Header().Set("X-Cache", state)
}

// handleDataset serves job status plus the full result when done.
func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	info, res, fromCache, ok := s.loadResult(w, r)
	if !ok {
		return
	}
	setCache(w, fromCache && res != nil)
	status := http.StatusOK
	if info.Status == StatusPending || info.Status == StatusRunning {
		status = http.StatusAccepted
	}
	writeJSON(w, status, datasetResponse{JobInfo: info, Result: res})
}

// handleNotReady reports a job that cannot serve a result yet (or ever,
// for failed jobs).
func handleNotReady(w http.ResponseWriter, info JobInfo) {
	if info.Status == StatusFailed {
		writeError(w, http.StatusUnprocessableEntity, "validation failed: %s", info.Error)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

// handlePartition serves only the Figure 1 partition of a validated
// dataset — the endpoint the byte-identity contract is pinned against
// (geoserve partition JSON == geovalidate -json partition field).
func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	info, res, fromCache, ok := s.loadResult(w, r)
	if !ok {
		return
	}
	if res == nil {
		handleNotReady(w, info)
		return
	}
	setCache(w, fromCache)
	writeJSON(w, http.StatusOK, res.Partition)
}

// handleTaxonomy serves only the §5.1 taxonomy counts.
func (s *Server) handleTaxonomy(w http.ResponseWriter, r *http.Request) {
	info, res, fromCache, ok := s.loadResult(w, r)
	if !ok {
		return
	}
	if res == nil {
		handleNotReady(w, info)
		return
	}
	setCache(w, fromCache)
	writeJSON(w, http.StatusOK, res.Taxonomy)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the plain-text counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "geoserve_datasets_validated_total %d\n", m.DatasetsValidated)
	fmt.Fprintf(w, "geoserve_validate_failures_total %d\n", m.ValidateFailures)
	fmt.Fprintf(w, "geoserve_users_validated_total %d\n", m.UsersValidated)
	fmt.Fprintf(w, "geoserve_users_per_second %.1f\n", m.UsersPerSecond)
	fmt.Fprintf(w, "geoserve_uploads_total %d\n", m.Uploads)
	fmt.Fprintf(w, "geoserve_cache_hits_total %d\n", m.CacheHits)
	fmt.Fprintf(w, "geoserve_cache_misses_total %d\n", m.CacheMisses)
	fmt.Fprintf(w, "geoserve_cache_entries %d\n", m.CacheEntries)
	fmt.Fprintf(w, "geoserve_cache_capacity %d\n", m.CacheCapacity)
	fmt.Fprintf(w, "geoserve_jobs_pending %d\n", m.JobsPending)
	fmt.Fprintf(w, "geoserve_jobs_running %d\n", m.JobsRunning)
	fmt.Fprintf(w, "geoserve_uptime_seconds %.1f\n", m.Uptime.Seconds())
}
