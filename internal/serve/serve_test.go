package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// fakeValidate is a ValidateFunc for unit tests: the "result" is
// derived from the dataset bytes (Users = byte count), so different
// contents yield different results and identical contents identical
// ones — enough to exercise caching without the real pipeline. Files
// whose content starts with "FAIL" fail validation.
func fakeValidate(calls *atomic.Int64) ValidateFunc {
	return func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error) {
		calls.Add(1)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if bytes.HasPrefix(data, []byte("FAIL")) {
			return nil, errors.New("synthetic validation failure")
		}
		return &core.StreamResult{
			Name:      "fake",
			Users:     len(data),
			Partition: core.Partition{Checkins: len(data), Honest: 1},
			Taxonomy:  map[string]int{"honest": 1, "workers": workers},
		}, nil
	}
}

// newTestServer builds a watcher-less server over a fresh spool.
func newTestServer(t *testing.T, calls *atomic.Int64, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		SpoolDir:     t.TempDir(),
		Validate:     fakeValidate(calls),
		PollInterval: -1,   // watcher off unless a test opts in
		NoDiskCache:  true, // eviction semantics under test are the memory tier's
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// waitDone blocks until the job leaves pending/running or times out.
func waitDone(t *testing.T, s *Server, id string) JobInfo {
	t.Helper()
	deadline := time.After(10 * time.Second)
	info, ok := s.wait(id, deadline2chan(deadline))
	if !ok && info.Status != StatusDone && info.Status != StatusFailed {
		t.Fatalf("job %s did not finish: %+v", id, info)
	}
	return info
}

// deadline2chan adapts a time channel to the wait cancel channel.
func deadline2chan(t <-chan time.Time) <-chan struct{} {
	c := make(chan struct{})
	go func() {
		<-t
		close(c)
	}()
	return c
}

func TestAddValidatesAndDedupes(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)

	path := filepath.Join(s.cfg.SpoolDir, "a.bin")
	if err := os.WriteFile(path, []byte("hello dataset"), 0o666); err != nil {
		t.Fatal(err)
	}
	info, err := s.Add(path)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	info = waitDone(t, s, info.ID)
	if info.Status != StatusDone || info.Users != len("hello dataset") {
		t.Fatalf("unexpected job state: %+v", info)
	}
	if info.Path != "a.bin" {
		t.Fatalf("path not spool-relative: %q", info.Path)
	}

	// Re-adding the same path is a no-op.
	again, err := s.Add(path)
	if err != nil {
		t.Fatalf("Add again: %v", err)
	}
	if again.ID != info.ID || calls.Load() != 1 {
		t.Fatalf("re-add revalidated: %+v calls=%d", again, calls.Load())
	}

	// A different path with identical bytes completes from cache.
	copyPath := filepath.Join(s.cfg.SpoolDir, "b.bin")
	if err := os.WriteFile(copyPath, []byte("hello dataset"), 0o666); err != nil {
		t.Fatal(err)
	}
	cached, err := s.Add(copyPath)
	if err != nil {
		t.Fatalf("Add copy: %v", err)
	}
	if cached.ID != info.ID {
		t.Fatalf("identical content got a different ID: %s vs %s", cached.ID, info.ID)
	}
	if calls.Load() != 1 {
		t.Fatalf("identical content was revalidated (%d calls)", calls.Load())
	}
}

func TestUploadIdempotent(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)

	info, err := s.Upload(strings.NewReader("payload-1"))
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	info = waitDone(t, s, info.ID)
	if info.Status != StatusDone {
		t.Fatalf("upload job: %+v", info)
	}

	// Identical bytes: same job, no new validation, no stray files.
	again, err := s.Upload(strings.NewReader("payload-1"))
	if err != nil {
		t.Fatalf("Upload again: %v", err)
	}
	if again.ID != info.ID || calls.Load() != 1 {
		t.Fatalf("duplicate upload revalidated: %+v calls=%d", again, calls.Load())
	}
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spool has %d entries after duplicate upload, want 1", len(entries))
	}

	m := s.Snapshot()
	if m.Uploads != 2 || m.DatasetsValidated != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestFailedValidationReported(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)
	info, err := s.Upload(strings.NewReader("FAIL on purpose"))
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	info = waitDone(t, s, info.ID)
	if info.Status != StatusFailed || !strings.Contains(info.Error, "synthetic") {
		t.Fatalf("want failed job, got %+v", info)
	}
	if m := s.Snapshot(); m.ValidateFailures != 1 || m.DatasetsValidated != 0 {
		t.Fatalf("metrics after failure: %+v", m)
	}
}

// TestFailedJobRetriesOnReupload: a failed validation must not pin its
// checksum forever — transient failures (I/O, mid-copy reads) are
// retried when the same bytes are explicitly added again.
func TestFailedJobRetriesOnReupload(t *testing.T) {
	var calls atomic.Int64
	var failing atomic.Bool
	failing.Store(true)
	s := newTestServer(t, &calls, func(c *Config) {
		inner := fakeValidate(&calls)
		c.Validate = func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error) {
			if failing.Load() {
				calls.Add(1)
				return nil, errors.New("transient failure")
			}
			return inner(path, workers, outcomeLog, checkpointDir)
		}
	})

	info, err := s.Upload(strings.NewReader("flaky dataset"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s, info.ID)
	if info.Status != StatusFailed {
		t.Fatalf("want failed first attempt, got %+v", info)
	}

	failing.Store(false)
	retry, err := s.Upload(strings.NewReader("flaky dataset"))
	if err != nil {
		t.Fatal(err)
	}
	if retry.ID != info.ID {
		t.Fatalf("retry got a different ID")
	}
	retry = waitDone(t, s, retry.ID)
	if retry.Status != StatusDone || retry.Error != "" {
		t.Fatalf("re-upload did not retry the failed job: %+v", retry)
	}
	if calls.Load() != 2 {
		t.Fatalf("want 2 validation attempts, got %d", calls.Load())
	}
}

// TestEvictionRevalidatesFromSurvivingPath: when a dataset is
// registered under several paths and the sort-lowest one has been
// deleted, an eviction-triggered revalidation must use a path that
// still exists.
func TestEvictionRevalidatesFromSurvivingPath(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.CacheCapacity = 1 })

	a := filepath.Join(s.cfg.SpoolDir, "a.bin")
	b := filepath.Join(s.cfg.SpoolDir, "b.bin")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte("twin content"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)
	if _, err := s.Add(b); err != nil { // second path, same checksum
		t.Fatal(err)
	}

	// Evict the twin's result, then delete the sort-lowest path.
	ev, err := s.Upload(strings.NewReader("evictor"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, ev.ID)
	if err := os.Remove(a); err != nil {
		t.Fatal(err)
	}

	if data, _, ok := s.result(info.ID); !ok || data != nil {
		t.Fatalf("expected evicted result, got %v %v", data, ok)
	}
	got := waitDone(t, s, info.ID)
	if got.Status != StatusDone {
		t.Fatalf("revalidation from the surviving path failed: %+v", got)
	}
}

// TestEvictionWithoutSpoolCopyFailsTheJob: when a result is evicted and
// every registered path for its bytes has been deleted, the job must
// turn failed (retryable by re-adding) instead of reporting "done" with
// no result forever.
func TestEvictionWithoutSpoolCopyFailsTheJob(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.CacheCapacity = 1 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	a, err := s.Upload(strings.NewReader("doomed dataset"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, a.ID)
	if err := os.Remove(filepath.Join(s.cfg.SpoolDir, "upload-"+a.ID+".dataset")); err != nil {
		t.Fatal(err)
	}
	b, err := s.Upload(strings.NewReader("the evictor")) // evicts A
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, b.ID)

	resp := get(t, ts.URL+"/v1/datasets/"+a.ID+"/partition")
	code := resp.StatusCode
	var envelope struct {
		Error string `json:"error"`
	}
	decodeBody(t, resp, &envelope)
	if code != http.StatusUnprocessableEntity || !strings.Contains(envelope.Error, "no spool copy") {
		t.Fatalf("unrecoverable eviction: code=%d body=%+v", code, envelope)
	}
	if info, _ := s.Job(a.ID); info.Status != StatusFailed {
		t.Fatalf("job should be failed: %+v", info)
	}

	// And the failure is retryable: re-uploading the bytes revives it.
	again, err := s.Upload(strings.NewReader("doomed dataset"))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, s, again.ID); got.Status != StatusDone {
		t.Fatalf("re-upload did not revive the job: %+v", got)
	}
}

func TestEvictionRevalidates(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.CacheCapacity = 1 })

	a, err := s.Upload(strings.NewReader("dataset A"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, a.ID)
	b, err := s.Upload(strings.NewReader("dataset B")) // evicts A
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, b.ID)

	// A's result is gone; requesting it re-queues a validation from the
	// spooled bytes.
	data, info, ok := s.result(a.ID)
	if !ok || data != nil {
		t.Fatalf("expected evicted result, got data=%v ok=%v", data, ok)
	}
	if info.Status != StatusPending {
		t.Fatalf("eviction should re-queue, job is %+v", info)
	}
	info = waitDone(t, s, a.ID)
	if info.Status != StatusDone {
		t.Fatalf("revalidation failed: %+v", info)
	}
	if data, _, _ = s.result(a.ID); data == nil {
		t.Fatal("result still missing after revalidation")
	}
	if calls.Load() != 3 {
		t.Fatalf("want 3 validations (A, B, A again), got %d", calls.Load())
	}
}

func TestSpoolWatcherPicksUpStableFiles(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.PollInterval = 5 * time.Millisecond })

	// Temp-looking files must never be ingested.
	if err := os.WriteFile(filepath.Join(s.cfg.SpoolDir, "x.bin.tmp-1-2"), []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.cfg.SpoolDir, "ready.bin"), []byte("spooled bytes"), 0o666); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs := s.Jobs()
		if len(jobs) == 1 && jobs[0].Status == StatusDone {
			if jobs[0].Path != "ready.bin" {
				t.Fatalf("watcher ingested %q", jobs[0].Path)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never ingested the file: %+v", jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpoolWatcherManifest covers the sharded-corpus spool flow: the
// manifest becomes one job and the shard files it claims are never
// registered as standalone datasets.
func TestSpoolWatcherManifest(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.PollInterval = 5 * time.Millisecond })

	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := ds.SaveShards(s.cfg.SpoolDir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs := s.Jobs()
		if len(jobs) == 1 && jobs[0].Status == StatusDone {
			if jobs[0].Path != filepath.Base(manifest) {
				t.Fatalf("watcher registered %q, want the manifest", jobs[0].Path)
			}
			break
		}
		if len(jobs) > 1 {
			t.Fatalf("shard files leaked into the job list: %+v", jobs)
		}
		if time.Now().After(deadline) {
			t.Fatalf("manifest never ingested: %+v", jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The manifest checksum is semantic: rewriting the manifest with
	// different JSON formatting must not change the dataset ID.
	sum1, err := DatasetChecksum(manifest)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(doc) // same content, different bytes
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, compact, 0o666); err != nil {
		t.Fatal(err)
	}
	sum2, err := DatasetChecksum(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatalf("manifest reformatting changed the checksum: %s vs %s", sum1, sum2)
	}
}

// TestSpoolWatcherReleasesShardsWhenManifestRemoved: deleting a
// manifest releases its shard claims, so a kept shard file becomes an
// ordinary standalone dataset instead of being ignored forever.
func TestSpoolWatcherReleasesShardsWhenManifestRemoved(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.PollInterval = 5 * time.Millisecond })

	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := ds.SaveShards(s.cfg.SpoolDir, trace.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "manifest ingested", func() bool {
		jobs := s.Jobs()
		return len(jobs) == 1 && jobs[0].Status == StatusDone
	})

	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "released shard ingested standalone", func() bool {
		jobs := s.Jobs()
		return len(jobs) == 2 && jobs[1].Status == StatusDone &&
			jobs[1].Path == "primary-0000.bin"
	})
}

// TestSpoolWatcherShardBeforeManifest reproduces the real shard-write
// order — shard files land first, the manifest last — with the shards
// stable long enough to be ingested standalone. Once the manifest
// appears it must claim them and the standalone jobs must be dropped.
func TestSpoolWatcherShardBeforeManifest(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.PollInterval = 5 * time.Millisecond })

	// Build a shard set elsewhere, then stage its files into the spool
	// in publication order with a long gap.
	staging := t.TempDir()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := ds.SaveShards(staging, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	copyFile := func(name string) {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(staging, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(s.cfg.SpoolDir, name), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	copyFile("primary-0000.bin")
	waitFor(t, "shard ingested standalone", func() bool {
		jobs := s.Jobs()
		return len(jobs) == 1 && jobs[0].Status == StatusDone && jobs[0].Path == "primary-0000.bin"
	})

	copyFile("primary-0001.bin")
	copyFile(filepath.Base(manifest))
	waitFor(t, "manifest claimed its shards", func() bool {
		jobs := s.Jobs()
		return len(jobs) == 1 && jobs[0].Status == StatusDone &&
			jobs[0].Path == filepath.Base(manifest)
	})
}

// TestSpoolWatcherReingestsRewrittenFile: overwriting a registered
// spool file must, once the new bytes are stable, produce a new job for
// the new content instead of silently serving the old result forever.
func TestSpoolWatcherReingestsRewrittenFile(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.PollInterval = 5 * time.Millisecond })

	path := filepath.Join(s.cfg.SpoolDir, "mut.bin")
	if err := os.WriteFile(path, []byte("first contents"), 0o666); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first ingest", func() bool {
		jobs := s.Jobs()
		return len(jobs) == 1 && jobs[0].Status == StatusDone
	})
	firstID := s.Jobs()[0].ID

	if err := os.WriteFile(path, []byte("rewritten, longer contents"), 0o666); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rewrite ingested", func() bool {
		jobs := s.Jobs()
		return len(jobs) == 2 && jobs[1].Status == StatusDone
	})
	jobs := s.Jobs()
	if jobs[1].ID == firstID {
		t.Fatalf("rewritten file kept the old checksum: %+v", jobs)
	}
	if jobs[1].Users != len("rewritten, longer contents") {
		t.Fatalf("new job validated stale bytes: %+v", jobs[1])
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointRunDirLifecycle covers the checkpoint tier's retention
// contract: every job gets a per-dataset run directory, a successful
// job's directory is removed, a failed job's survives for the retry,
// and MaxCheckpointRuns prunes the oldest surviving runs.
func TestCheckpointRunDirLifecycle(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) {
		c.RetainCheckpoints = true
		c.MaxCheckpointRuns = 1
		inner := fakeValidate(&calls)
		c.Validate = func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error) {
			if checkpointDir == "" {
				t.Error("job ran without a checkpoint dir")
			} else {
				// Simulate the engine leaving a fragment behind.
				if err := os.MkdirAll(checkpointDir, 0o777); err != nil {
					t.Error(err)
				}
				if err := os.WriteFile(filepath.Join(checkpointDir, "ckpt-x.gsf"), []byte("frag"), 0o666); err != nil {
					t.Error(err)
				}
			}
			return inner(path, workers, outcomeLog, checkpointDir)
		}
	})

	ok, err := s.Upload(strings.NewReader("fine payload"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, ok.ID)
	if _, err := os.Stat(s.checkpointPath(ok.ID)); !os.IsNotExist(err) {
		t.Fatalf("completed job's checkpoint dir survived: %v", err)
	}

	fail1, err := s.Upload(strings.NewReader("FAIL first"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, fail1.ID)
	dir1 := s.checkpointPath(fail1.ID)
	if _, err := os.Stat(dir1); err != nil {
		t.Fatalf("failed job's checkpoint dir missing: %v", err)
	}
	// Age the first run so the prune ordering is deterministic.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(dir1, old, old); err != nil {
		t.Fatal(err)
	}

	fail2, err := s.Upload(strings.NewReader("FAIL second"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, fail2.ID)
	if _, err := os.Stat(dir1); !os.IsNotExist(err) {
		t.Fatalf("oldest run dir survived the cap: %v", err)
	}
	if _, err := os.Stat(s.checkpointPath(fail2.ID)); err != nil {
		t.Fatalf("newest run dir pruned: %v", err)
	}
}

// gatedReader blocks its first Read until released, signalling entry —
// it parks an Upload mid-copy so a test can run Close underneath it.
type gatedReader struct {
	data    io.Reader
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (r *gatedReader) Read(p []byte) (int, error) {
	r.once.Do(func() { close(r.entered) })
	<-r.release
	return r.data.Read(p)
}

// spoolFiles lists the regular files currently in the spool.
func spoolFiles(t *testing.T, s *Server) []string {
	t.Helper()
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestUploadRacingCloseLeavesNoStrandedFile covers the Upload/Close
// race: an upload that passes the entry check but reaches register
// after Close has begun gets ErrClosed — and must not strand its staged
// upload-<sum>.dataset in the spool, where no job references it and the
// next start would silently ingest it.
func TestUploadRacingCloseLeavesNoStrandedFile(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)

	gate := &gatedReader{
		data:    strings.NewReader("raced payload"),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Upload(gate)
		errc <- err
	}()
	<-gate.entered // Upload is past the closed check, mid-copy
	s.Close()
	close(gate.release)
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("racing upload returned %v, want ErrClosed", err)
	}
	if left := spoolFiles(t, s); len(left) != 0 {
		t.Fatalf("racing upload stranded spool files: %v", left)
	}
}

// TestUploadRacingCloseKeepsEstablishedFile is the ownership flip side:
// when the raced upload's bytes were already uploaded earlier, the
// established spool file belongs to that prior job and must survive the
// failed re-upload's cleanup.
func TestUploadRacingCloseKeepsEstablishedFile(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)

	info, err := s.Upload(strings.NewReader("kept payload"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)
	before := spoolFiles(t, s)
	if len(before) != 1 {
		t.Fatalf("spool after first upload: %v", before)
	}

	gate := &gatedReader{
		data:    strings.NewReader("kept payload"),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	errc := make(chan error, 1)
	go func() {
		_, err := s.Upload(gate)
		errc <- err
	}()
	<-gate.entered
	s.Close()
	close(gate.release)
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("racing upload returned %v, want ErrClosed", err)
	}
	if left := spoolFiles(t, s); len(left) != 1 || left[0] != before[0] {
		t.Fatalf("established upload %v became %v", before, left)
	}
}

func TestCloseLeavesQueuedJobsPending(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s := newTestServer(t, &calls, func(c *Config) {
		c.MaxJobs = 1
		c.Validate = func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error) {
			started <- struct{}{}
			<-release
			return &core.StreamResult{Name: "slow", Users: 1, Taxonomy: map[string]int{}}, nil
		}
	})

	first, err := s.Upload(strings.NewReader("slow A"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // first job is running, holding the only slot
	second, err := s.Upload(strings.NewReader("slow B"))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	// Only release the running job once shutdown has begun, so the
	// queued job deterministically observes the closed flag.
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release) // let the running job finish draining
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}

	a, _ := s.Job(first.ID)
	b, _ := s.Job(second.ID)
	if a.Status != StatusDone {
		t.Fatalf("running job should have drained: %+v", a)
	}
	if b.Status != StatusPending {
		t.Fatalf("queued job should stay pending across shutdown: %+v", b)
	}
	if _, err := s.Upload(strings.NewReader("late")); err == nil {
		t.Fatal("Upload after Close should fail")
	}
}

// --- HTTP surface ---

func TestHTTPLifecycle(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Upload with wait=1 completes in one request.
	resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream",
		strings.NewReader("http dataset"))
	if err != nil {
		t.Fatal(err)
	}
	var up JobInfo
	decodeBody(t, resp, &up)
	if resp.StatusCode != http.StatusOK || up.Status != StatusDone {
		t.Fatalf("upload: code=%d info=%+v", resp.StatusCode, up)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first upload X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/datasets/"+up.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Full status document embeds the result.
	var ds struct {
		JobInfo
		Result *core.StreamResult `json:"result"`
	}
	resp = get(t, ts.URL+"/v1/datasets/"+up.ID)
	decodeBody(t, resp, &ds)
	if ds.Result == nil || ds.Result.Users != len("http dataset") {
		t.Fatalf("dataset document: %+v", ds)
	}

	// Partition and taxonomy sub-resources.
	var part core.Partition
	resp = get(t, ts.URL+"/v1/datasets/"+up.ID+"/partition")
	decodeBody(t, resp, &part)
	if part.Checkins != len("http dataset") {
		t.Fatalf("partition: %+v", part)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("partition X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	var tax map[string]int
	resp = get(t, ts.URL+"/v1/datasets/"+up.ID+"/taxonomy")
	decodeBody(t, resp, &tax)
	if tax["honest"] != 1 {
		t.Fatalf("taxonomy: %+v", tax)
	}

	// Listing shows the one job.
	var list struct {
		Datasets []JobInfo `json:"datasets"`
	}
	resp = get(t, ts.URL+"/v1/datasets")
	decodeBody(t, resp, &list)
	if len(list.Datasets) != 1 || list.Datasets[0].ID != up.ID {
		t.Fatalf("list: %+v", list)
	}

	// Unknown dataset is a 404 with the error envelope.
	resp = get(t, ts.URL+"/v1/datasets/deadbeef")
	var envelope struct {
		Error string `json:"error"`
	}
	code := resp.StatusCode
	decodeBody(t, resp, &envelope)
	if code != http.StatusNotFound || envelope.Error == "" {
		t.Fatalf("unknown id: code=%d body=%+v", code, envelope)
	}

	// Liveness and metrics.
	resp = get(t, ts.URL+"/healthz")
	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	healthCode := resp.StatusCode
	decodeBody(t, resp, &health)
	if healthCode != http.StatusOK || health.Status != "ok" || health.Version == "" {
		t.Fatalf("healthz: %d %+v", healthCode, health)
	}
	resp = get(t, ts.URL+"/metrics")
	metrics := string(readBody(t, resp))
	for _, want := range []string{
		"geoserve_datasets_validated_total 1",
		"geoserve_uploads_total 1",
		"geoserve_cache_capacity 64",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestHTTPWaitSurvivesEviction: a waiting partition fetch for a job
// whose cached result was evicted must block through the automatic
// revalidation and return the result, not a transient 202.
func TestHTTPWaitSurvivesEviction(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) { c.CacheCapacity = 1 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	a, err := s.Upload(strings.NewReader("evictee"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, a.ID)
	b, err := s.Upload(strings.NewReader("the other dataset")) // evicts A
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, b.ID)

	resp := get(t, ts.URL+"/v1/datasets/"+a.ID+"/partition?wait=1")
	var part core.Partition
	code := resp.StatusCode
	decodeBody(t, resp, &part)
	if code != http.StatusOK {
		t.Fatalf("waiting fetch across eviction returned %d", code)
	}
	if part.Checkins != len("evictee") {
		t.Fatalf("revalidated partition wrong: %+v", part)
	}
	if calls.Load() != 3 {
		t.Fatalf("want 3 validations (A, B, A revalidated), got %d", calls.Load())
	}
}

func TestHTTPFailedDataset(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream",
		strings.NewReader("FAIL this one"))
	if err != nil {
		t.Fatal(err)
	}
	var up JobInfo
	decodeBody(t, resp, &up)
	if up.Status != StatusFailed {
		t.Fatalf("want failed, got %+v", up)
	}
	resp = get(t, ts.URL+"/v1/datasets/"+up.ID+"/partition")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("partition of failed dataset: %d", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// The served result document must use exactly the StreamResult schema —
// the field-name contract shared with geovalidate -json (see the
// matching test in internal/core and the round trip in cmd/geovalidate).
func TestHTTPResultFieldNames(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream",
		strings.NewReader("schema check"))
	if err != nil {
		t.Fatal(err)
	}
	var up JobInfo
	decodeBody(t, resp, &up)

	resp = get(t, ts.URL+"/v1/datasets/"+up.ID)
	var doc map[string]json.RawMessage
	decodeBody(t, resp, &doc)
	var result map[string]json.RawMessage
	if err := json.Unmarshal(doc["result"], &result); err != nil {
		t.Fatalf("result field: %v", err)
	}
	for _, k := range []string{"name", "format", "users", "partition", "taxonomy"} {
		if _, ok := result[k]; !ok {
			t.Errorf("served result is missing StreamResult key %q (have %v)", k, result)
		}
	}
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s response: %v", resp.Request.URL, err)
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{SpoolDir: t.TempDir()}); err == nil {
		t.Fatal("New accepted a nil Validate")
	}
	var calls atomic.Int64
	if _, err := New(Config{Validate: fakeValidate(&calls)}); err == nil {
		t.Fatal("New accepted an empty SpoolDir")
	}
}

func TestDatasetChecksumStableAndContentAddressed(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	c := filepath.Join(dir, "c.bin")
	os.WriteFile(a, []byte("same"), 0o666)
	os.WriteFile(b, []byte("same"), 0o666)
	os.WriteFile(c, []byte("different"), 0o666)

	sumA, err := DatasetChecksum(a)
	if err != nil {
		t.Fatal(err)
	}
	sumB, _ := DatasetChecksum(b)
	sumC, _ := DatasetChecksum(c)
	if sumA != sumB {
		t.Fatalf("identical content, different checksums: %s vs %s", sumA, sumB)
	}
	if sumA == sumC {
		t.Fatal("different content, same checksum")
	}
	if len(sumA) != 64 {
		t.Fatalf("checksum %q is not hex sha256", sumA)
	}
	if _, err := DatasetChecksum(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("checksum of missing file should fail")
	}
}
