package serve

// Tests for the instrumented service surface: the Prometheus /metrics
// exposition must keep every counter name and value semantic the old
// hand-printed endpoint had, stay structurally valid under the shared
// linter, and hold together under concurrent upload / validate /
// append / scrape load (run with -race in CI).

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"geosocial/internal/core"
	"geosocial/internal/obs"
)

// scrapeMetrics fetches /metrics through the full handler chain.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp := get(t, ts.URL+"/metrics")
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want exposition format 0.0.4", ct)
	}
	return string(body)
}

// sampleValue extracts the value of an unlabeled sample line.
func sampleValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("sample %s has unparseable value %q", name, rest)
		}
		return v
	}
	t.Fatalf("sample %s not found in exposition:\n%s", name, metrics)
	return 0
}

// TestMetricsBackCompat: every metric name the pre-registry /metrics
// endpoint printed must survive the migration with the same value
// semantics — asserted against Snapshot, which reads the same
// instruments.
func TestMetricsBackCompat(t *testing.T) {
	var calls, updates atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) {
		c.RetainOutcomes = true
		c.Validate = loggingValidate(t, &calls)
		c.Update = func(path string, prev *core.StreamResult, prevLog string, workers int, outcomeLog string) (*core.StreamResult, error) {
			updates.Add(1)
			if outcomeLog != "" {
				if err := os.WriteFile(outcomeLog, []byte("LOG2"), 0o666); err != nil {
					t.Error(err)
				}
			}
			return &core.StreamResult{Name: "fake", Users: prev.Users + 1, Taxonomy: map[string]int{}}, nil
		}
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Exercise every counter: a validated upload, a duplicate upload
	// (cache hit), a failing upload, and an incremental append.
	info, err := s.Upload(strings.NewReader("back-compat dataset"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)
	if _, err := s.Upload(strings.NewReader("back-compat dataset")); err != nil {
		t.Fatal(err)
	}
	// A result fetch reads the cache — the memory-hit counter's source.
	readBody(t, get(t, ts.URL+"/v1/datasets/"+info.ID))
	bad, err := s.Upload(strings.NewReader("FAIL on purpose"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, bad.ID)
	ds, manifest := spoolShardSet(t, s)
	base, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, base.ID)
	grown, err := s.Append(base.ID, deltaStream(t, ds, freshUser(ds)))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, grown.ID)

	m := s.Snapshot()
	metrics := scrapeMetrics(t, ts)
	exact := map[string]float64{
		"geoserve_datasets_validated_total":  float64(m.DatasetsValidated),
		"geoserve_validate_failures_total":   float64(m.ValidateFailures),
		"geoserve_users_validated_total":     float64(m.UsersValidated),
		"geoserve_users_per_second":          m.UsersPerSecond,
		"geoserve_uploads_total":             float64(m.Uploads),
		"geoserve_analyses_total":            float64(m.AnalysesRun),
		"geoserve_incremental_updates_total": float64(m.IncrementalUpdates),
		"geoserve_cache_hits_total":          float64(m.CacheHits),
		"geoserve_cache_memory_hits_total":   float64(m.CacheMemoryHits),
		"geoserve_cache_disk_hits_total":     float64(m.CacheDiskHits),
		"geoserve_cache_misses_total":        float64(m.CacheMisses),
		"geoserve_cache_entries":             float64(m.CacheEntries),
		"geoserve_cache_capacity":            float64(m.CacheCapacity),
		"geoserve_jobs_pending":              float64(m.JobsPending),
		"geoserve_jobs_running":              float64(m.JobsRunning),
	}
	for name, want := range exact {
		if got := sampleValue(t, metrics, name); got != want {
			t.Errorf("%s = %v, want %v (Snapshot: %+v)", name, got, want, m)
		}
	}
	// Uptime keeps ticking between Snapshot and scrape; only its
	// presence and ordering are stable.
	if up := sampleValue(t, metrics, "geoserve_uptime_seconds"); up < m.Uptime.Seconds() {
		t.Errorf("geoserve_uptime_seconds = %v went backwards from %v", up, m.Uptime.Seconds())
	}
	// Sanity on the flow itself: something was validated, failed,
	// uploaded, cache-hit, and incrementally updated above.
	if m.DatasetsValidated == 0 || m.ValidateFailures == 0 || m.Uploads != 3 ||
		m.CacheHits == 0 || m.IncrementalUpdates != 1 {
		t.Fatalf("test flow did not exercise the counters: %+v", m)
	}
}

// TestMetricsExpositionValid: the payload served on /metrics must pass
// the shared exposition linter and carry the new instrument families —
// build info, at least three histograms, and per-route HTTP metrics.
func TestMetricsExpositionValid(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Upload over HTTP so the POST route lands in the request metrics.
	resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream",
		strings.NewReader("lint me"))
	if err != nil {
		t.Fatal(err)
	}
	var info JobInfo
	decodeBody(t, resp, &info)
	waitDone(t, s, info.ID)
	// Drive labeled routes: a listing, a result fetch, and a 404.
	readBody(t, get(t, ts.URL+"/v1/datasets"))
	readBody(t, get(t, ts.URL+"/v1/datasets/"+info.ID))
	readBody(t, get(t, ts.URL+"/v1/datasets/nope"))
	readBody(t, get(t, ts.URL+"/no/such/route"))

	metrics := scrapeMetrics(t, ts)
	for _, err := range obs.LintExposition([]byte(metrics)) {
		t.Errorf("exposition lint: %v", err)
	}

	histograms := 0
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "# TYPE ") && strings.HasSuffix(line, " histogram") {
			histograms++
		}
	}
	if histograms < 3 {
		t.Errorf("exposition has %d histogram families, want >= 3:\n%s", histograms, metrics)
	}
	for _, want := range []string{
		`geoserve_build_info{version="`,
		`geoserve_http_requests_total{route="GET /v1/datasets",status="200"} 1`,
		`geoserve_http_requests_total{route="GET /v1/datasets/{id}",status="200"} 1`,
		`geoserve_http_requests_total{route="GET /v1/datasets/{id}",status="404"} 1`,
		`geoserve_http_requests_total{route="unmatched",status="404"} 1`,
		`geoserve_http_requests_total{route="POST /v1/datasets",status="`,
		`geoserve_http_request_duration_seconds_bucket{route="GET /v1/datasets",status="200",le="+Inf"} 1`,
		`geoserve_upload_bytes_bucket{le="1024"} 1`,
		`geoserve_validation_duration_seconds_count 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("exposition missing %q:\n%s", want, metrics)
		}
	}
}

// TestMetricsSharedRegistryAndSpans: a caller-supplied registry and
// span collector surface the server's own stages — cache tiers and
// append-apply — on /metrics as the geoserve_stage_*_total families.
func TestMetricsSharedRegistryAndSpans(t *testing.T) {
	var calls atomic.Int64
	reg := obs.NewRegistry()
	spans := obs.NewCollector()
	s := newTestServer(t, &calls, func(c *Config) {
		c.RetainOutcomes = true
		c.Validate = loggingValidate(t, &calls)
		c.Registry = reg
		c.Spans = spans
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ds, manifest := spoolShardSet(t, s)
	base, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, base.ID)
	grown, err := s.Append(base.ID, deltaStream(t, ds, freshUser(ds)))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, grown.ID)

	metrics := scrapeMetrics(t, ts)
	for _, err := range obs.LintExposition([]byte(metrics)) {
		t.Errorf("exposition lint: %v", err)
	}
	for _, want := range []string{
		`geoserve_stage_ops_total{stage="append-apply",shard="serve"} 1`,
		`geoserve_stage_ops_total{stage="cache-tier",shard="get"}`,
		`geoserve_stage_seconds_total{stage="append-apply",shard="serve"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("exposition missing span family %q:\n%s", want, metrics)
		}
	}
}

// TestMetricsUnderConcurrentLoad hammers the server with parallel
// uploads, appends, result fetches, scrapes and snapshots; afterwards
// the exposition must still lint clean (histograms cumulative and
// consistent) and the counters must account for every operation.
// The -race runs in CI make this the torn-state detector.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) {
		c.RetainOutcomes = true
		c.Validate = loggingValidate(t, &calls)
		c.MaxJobs = 4
		c.Spans = obs.NewCollector()
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ds, manifest := spoolShardSet(t, s)
	base, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	base = waitDone(t, s, base.ID)

	const uploaders, appends, scrapers = 8, 4, 4
	var wg sync.WaitGroup
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := s.Upload(strings.NewReader(fmt.Sprintf("load dataset %d", i)))
			if err != nil {
				t.Errorf("upload %d: %v", i, err)
				return
			}
			waitDone(t, s, info.ID)
			readBody(t, get(t, ts.URL+"/v1/datasets/"+info.ID+"?wait=1"))
		}(i)
	}
	appendID := base.ID
	var appendMu sync.Mutex
	for i := 0; i < appends; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Appends serialize on one lineage: each waits the newest
			// generation to completion before handing it to the next
			// (Append requires a done job).
			appendMu.Lock()
			grown, err := s.Append(appendID, deltaStream(t, ds, freshUser(ds)))
			if err == nil {
				grown = waitDone(t, s, grown.ID)
				appendID = grown.ID
			}
			appendMu.Unlock()
			if err != nil {
				t.Errorf("append: %v", err)
			}
		}()
	}
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 10; n++ {
				payload := scrapeMetrics(t, ts)
				for _, err := range obs.LintExposition([]byte(payload)) {
					t.Errorf("mid-load exposition lint: %v", err)
				}
				s.Snapshot()
			}
		}()
	}
	wg.Wait()

	metrics := scrapeMetrics(t, ts)
	for _, err := range obs.LintExposition([]byte(metrics)) {
		t.Errorf("final exposition lint: %v", err)
	}
	m := s.Snapshot()
	if m.Uploads != uploaders {
		t.Errorf("uploads = %d, want %d", m.Uploads, uploaders)
	}
	// Base + per-append validations, all successful, none failed.
	if m.ValidateFailures != 0 {
		t.Errorf("unexpected validation failures: %+v", m)
	}
	if got := sampleValue(t, metrics, "geoserve_uploads_total"); got != uploaders {
		t.Errorf("geoserve_uploads_total = %v, want %d", got, uploaders)
	}
	if got := sampleValue(t, metrics, "geoserve_upload_bytes_count"); got != uploaders {
		t.Errorf("geoserve_upload_bytes_count = %v, want %d", got, uploaders)
	}
	if got := sampleValue(t, metrics, "geoserve_datasets_validated_total"); got != float64(m.DatasetsValidated) {
		t.Errorf("scrape (%v) and Snapshot (%d) disagree on validations", got, m.DatasetsValidated)
	}
}
