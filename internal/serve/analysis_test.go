package serve

// Tests for the disk-persistent result cache and the outcome-log /
// analysis HTTP surface, against injected fakes (the facade-level
// integration is covered by server_test.go and cmd/geoserve).

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geosocial/internal/core"
)

// fakeValidateWithLog is fakeValidate plus outcome-log emission: when
// asked for a log it writes a recognizable per-dataset document.
func fakeValidateWithLog(calls *atomic.Int64) ValidateFunc {
	inner := fakeValidate(calls)
	return func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error) {
		res, err := inner(path, workers, outcomeLog, checkpointDir)
		if err == nil && outcomeLog != "" {
			data, _ := os.ReadFile(path)
			if werr := os.WriteFile(outcomeLog, append([]byte("LOG:"), data...), 0o666); werr != nil {
				return nil, werr
			}
		}
		return res, err
	}
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	spool := t.TempDir()
	var calls atomic.Int64
	newServer := func() *Server {
		t.Helper()
		s, err := New(Config{
			SpoolDir:     spool,
			Validate:     fakeValidate(&calls),
			PollInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := newServer()
	info, err := s1.Upload(strings.NewReader("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s1, info.ID)
	if info.Status != StatusDone || calls.Load() != 1 {
		t.Fatalf("first validation: %+v calls=%d", info, calls.Load())
	}
	data1, _, ok := s1.result(info.ID)
	if !ok || data1 == nil {
		t.Fatal("result not served")
	}
	s1.Close()

	// A fresh server over the same spool must answer for the same bytes
	// without revalidating: the disk tier is its memory of past lives.
	s2 := newServer()
	defer s2.Close()
	info2, err := s2.Add(filepath.Join(spool, "upload-"+info.ID+".dataset"))
	if err != nil {
		t.Fatal(err)
	}
	if info2.Status != StatusDone || !info2.Cached {
		t.Fatalf("restarted server revalidated: %+v", info2)
	}
	if calls.Load() != 1 {
		t.Fatalf("validations after restart = %d, want 1", calls.Load())
	}
	data2, _, ok := s2.result(info.ID)
	if !ok || string(data2) != string(data1) {
		t.Fatalf("restarted result differs: %q vs %q", data2, data1)
	}
}

func TestDiskCacheServesEvictedResults(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) {
		c.NoDiskCache = false // this test wants the disk tier
		c.CacheCapacity = 1
	})
	a, err := s.Upload(strings.NewReader("dataset A"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, a.ID)
	b, err := s.Upload(strings.NewReader("dataset BB"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, b.ID)
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
	// A's result was evicted from the memory LRU by B; the disk tier
	// must serve it without a revalidation.
	data, info, ok := s.result(a.ID)
	if !ok || data == nil {
		t.Fatalf("evicted result not served from disk: %+v", info)
	}
	if calls.Load() != 2 {
		t.Fatalf("disk fall-through revalidated: calls = %d", calls.Load())
	}
}

// analysisServer builds a server with outcome retention and a counting
// fake analyzer for one kind.
func analysisServer(t *testing.T, analyzeCalls *atomic.Int64) *Server {
	t.Helper()
	var calls atomic.Int64
	s, err := New(Config{
		SpoolDir:       t.TempDir(),
		Validate:       fakeValidateWithLog(&calls),
		PollInterval:   -1,
		RetainOutcomes: true,
		AnalysisKinds:  []string{"summary", "levy"},
		Analyze: func(logPath, kind string) ([]byte, error) {
			analyzeCalls.Add(1)
			data, err := os.ReadFile(logPath)
			if err != nil {
				return nil, err
			}
			return []byte(fmt.Sprintf("{\n  \"kind\": %q,\n  \"log\": %q\n}\n", kind, data)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHTTPOutcomesAndAnalysis(t *testing.T) {
	var analyzeCalls atomic.Int64
	s := analysisServer(t, &analyzeCalls)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream",
		strings.NewReader("outcome dataset"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := strings.TrimPrefix(resp.Header.Get("Location"), "/v1/datasets/")

	// The outcomes endpoint serves the raw log bytes.
	resp, err = http.Get(ts.URL + "/v1/datasets/" + id + "/outcomes")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "LOG:outcome dataset" {
		t.Fatalf("outcomes endpoint: %d %q", resp.StatusCode, body)
	}

	// First analysis fetch computes, second hits the cache.
	get := func(kind string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/datasets/" + id + "/analysis/" + kind)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("X-Cache"), string(body)
	}
	code, cache, body1 := get("summary")
	if code != http.StatusOK || cache != "miss" || !strings.Contains(body1, `"summary"`) {
		t.Fatalf("first analysis: %d %s %q", code, cache, body1)
	}
	code, cache, body2 := get("summary")
	if code != http.StatusOK || cache != "hit" || body2 != body1 {
		t.Fatalf("second analysis: %d %s (equal=%v)", code, cache, body2 == body1)
	}
	if analyzeCalls.Load() != 1 {
		t.Fatalf("analyze ran %d times, want 1", analyzeCalls.Load())
	}

	// A different kind is its own cache entry.
	if code, cache, _ := get("levy"); code != http.StatusOK || cache != "miss" {
		t.Fatalf("levy analysis: %d %s", code, cache)
	}
	if analyzeCalls.Load() != 2 {
		t.Fatalf("analyze ran %d times, want 2", analyzeCalls.Load())
	}

	// Unknown kinds and unknown datasets are 404s.
	if code, _, _ := get("nonsense"); code != http.StatusNotFound {
		t.Fatalf("unknown kind = %d, want 404", code)
	}
	resp, err = http.Get(ts.URL + "/v1/datasets/feedbeef/analysis/summary")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset = %d, want 404", resp.StatusCode)
	}

	// The metrics counter reflects the two computed analyses.
	if m := s.Snapshot(); m.AnalysesRun != 2 {
		t.Fatalf("AnalysesRun = %d, want 2", m.AnalysesRun)
	}
}

// TestParamsTagNamespacesPersistence pins the staleness guard: a
// server restarted with a different validation-parameter tag must not
// reuse results persisted under the old parameters.
func TestParamsTagNamespacesPersistence(t *testing.T) {
	spool := t.TempDir()
	var calls atomic.Int64
	newServer := func(tag string) *Server {
		t.Helper()
		s, err := New(Config{
			SpoolDir:     spool,
			Validate:     fakeValidate(&calls),
			PollInterval: -1,
			ParamsTag:    tag,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := newServer("alpha500")
	info, err := s1.Upload(strings.NewReader("params matter"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s1, info.ID)
	s1.Close()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	spoolFile := filepath.Join(spool, "upload-"+info.ID+".dataset")

	// Same tag: served from the persisted tier, no revalidation.
	s2 := newServer("alpha500")
	if got, err := s2.Add(spoolFile); err != nil || !got.Cached {
		t.Fatalf("same-tag restart: %+v err=%v", got, err)
	}
	s2.Close()
	if calls.Load() != 1 {
		t.Fatalf("same tag revalidated: calls = %d", calls.Load())
	}

	// Different tag: fresh namespace, must revalidate.
	s3 := newServer("alpha250")
	defer s3.Close()
	got, err := s3.Add(spoolFile)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatalf("different tag served stale result: %+v", got)
	}
	waitDone(t, s3, info.ID)
	if calls.Load() != 2 {
		t.Fatalf("different tag: calls = %d, want 2", calls.Load())
	}
}

// TestDiskTiersPruned pins the retention caps: the persisted cache and
// outcome-log tiers stay bounded at their configured file counts.
func TestDiskTiersPruned(t *testing.T) {
	spool := t.TempDir()
	var calls atomic.Int64
	s, err := New(Config{
		SpoolDir:            spool,
		Validate:            fakeValidateWithLog(&calls),
		PollInterval:        -1,
		RetainOutcomes:      true,
		MaxDiskCacheEntries: 2,
		MaxOutcomeLogs:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		info, err := s.Upload(strings.NewReader(fmt.Sprintf("dataset number %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, info.ID)
	}
	count := func(dir, suffix string) int {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), suffix) {
				n++
			}
		}
		return n
	}
	if got := count(filepath.Join(spool, "cache"), ".json"); got > 2 {
		t.Fatalf("disk cache holds %d entries, cap 2", got)
	}
	if got := count(filepath.Join(spool, "outcomes"), ".gso"); got > 2 {
		t.Fatalf("outcome dir holds %d logs, cap 2", got)
	}
}

// TestPrunedOutcomeLogRegenerates pins the pruning recovery path: a
// dataset whose outcome log was pruned (or otherwise lost) revalidates
// on re-add — a cached result alone never short-circuits log
// regeneration.
func TestPrunedOutcomeLogRegenerates(t *testing.T) {
	spool := t.TempDir()
	var calls atomic.Int64
	s, err := New(Config{
		SpoolDir:       spool,
		Validate:       fakeValidateWithLog(&calls),
		PollInterval:   -1,
		RetainOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	info, err := s.Upload(strings.NewReader("log will vanish"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s, info.ID)
	logPath := filepath.Join(spool, "outcomes", info.ID+".gso")
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("log not written: %v", err)
	}
	if err := os.Remove(logPath); err != nil {
		t.Fatal(err)
	}
	// Re-adding the same bytes must revalidate (regenerating the log),
	// not serve the cached result with the endpoints broken.
	got, err := s.Add(filepath.Join(spool, "upload-"+info.ID+".dataset"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status == StatusDone && got.Cached {
		t.Fatalf("cached result short-circuited log regeneration: %+v", got)
	}
	waitDone(t, s, info.ID)
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one regeneration)", calls.Load())
	}
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("log not regenerated: %v", err)
	}
}

// TestLogIncapableValidatorNotRetried pins the regeneration guard's
// other half: a ValidateFunc that ignores the outcome-log request
// (permitted by its contract) must not cause endless revalidation of
// already-done datasets just because their log is missing.
func TestLogIncapableValidatorNotRetried(t *testing.T) {
	spool := t.TempDir()
	var calls atomic.Int64
	s, err := New(Config{
		SpoolDir:       spool,
		Validate:       fakeValidate(&calls), // never writes a log
		PollInterval:   -1,
		RetainOutcomes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	info, err := s.Upload(strings.NewReader("no log ever"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s, info.ID)
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	for i := 0; i < 3; i++ {
		got, err := s.Add(filepath.Join(spool, "upload-"+info.ID+".dataset"))
		if err != nil {
			t.Fatal(err)
		}
		got = waitDone(t, s, got.ID)
		if got.Status != StatusDone {
			t.Fatalf("re-add %d: %+v", i, got)
		}
	}
	// The first validation already revealed the validator produces no
	// log, so no re-add triggers a regeneration attempt.
	if calls.Load() != 1 {
		t.Fatalf("calls after re-adds = %d, want 1 (log-incapable validator latched)", calls.Load())
	}
}

// TestCorruptDiskCacheEntryRevalidates pins the recovery path: a torn
// disk-cache write (crash mid-rename, power loss) must not poison its
// dataset — the corrupt entry is dropped and the dataset revalidated
// from the spool, exactly as for an eviction.
func TestCorruptDiskCacheEntryRevalidates(t *testing.T) {
	spool := t.TempDir()
	var calls atomic.Int64
	newServer := func() *Server {
		t.Helper()
		s, err := New(Config{SpoolDir: spool, Validate: fakeValidate(&calls), PollInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := newServer()
	info, err := s1.Upload(strings.NewReader("soon to be torn"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s1, info.ID)
	s1.Close()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}

	// Tear the persisted entry, then restart over the same spool.
	entry := filepath.Join(spool, "cache", info.ID+".json")
	if err := os.WriteFile(entry, []byte(`{"name": "torn`), 0o666); err != nil {
		t.Fatal(err)
	}
	s2 := newServer()
	defer s2.Close()
	if _, err := s2.Add(filepath.Join(spool, "upload-"+info.ID+".dataset")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/datasets/" + info.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"result"`) {
		t.Fatalf("corrupt entry not recovered: %d %s", resp.StatusCode, body)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls after recovery = %d, want 2 (one revalidation)", calls.Load())
	}
	// The rewritten disk entry must be intact for the next life.
	if data, err := os.ReadFile(entry); err != nil || len(data) == 0 {
		t.Fatalf("disk entry not rewritten: %v (%d bytes)", err, len(data))
	}
	if _, err := core.DecodeStreamResult(mustReadFile(t, entry)); err != nil {
		t.Fatalf("rewritten disk entry corrupt: %v", err)
	}
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAnalysisSingleFlight pins the dedupe: N concurrent requests for
// the same uncached (dataset, kind) run the analysis exactly once.
func TestAnalysisSingleFlight(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	var analyzeCalls atomic.Int64
	s, err := New(Config{
		SpoolDir:       t.TempDir(),
		Validate:       fakeValidateWithLog(&calls),
		PollInterval:   -1,
		RetainOutcomes: true,
		AnalysisKinds:  []string{"summary"},
		Analyze: func(logPath, kind string) ([]byte, error) {
			analyzeCalls.Add(1)
			<-release
			return []byte(`{"kind":"summary"}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	info, err := s.Upload(strings.NewReader("single flight"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s, info.ID)

	const n = 6
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/datasets/" + info.ID + "/analysis/summary")
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	// Wait until the runner is inside Analyze, then let it finish.
	for analyzeCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	for i := 0; i < n; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if got := analyzeCalls.Load(); got != 1 {
		t.Fatalf("analysis ran %d times for %d concurrent requests, want 1", got, n)
	}
}

func TestHTTPOutcomesDisabled(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil) // RetainOutcomes off
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/datasets?wait=1", "application/octet-stream",
		strings.NewReader("no logs here"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := strings.TrimPrefix(resp.Header.Get("Location"), "/v1/datasets/")
	for _, ep := range []string{"/outcomes", "/analysis/summary"} {
		resp, err := http.Get(ts.URL + "/v1/datasets/" + id + ep)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with outcomes disabled = %d, want 404", ep, resp.StatusCode)
		}
	}
}

// TestAnalysisSurvivesRestart pins the satellite behaviour end to end:
// a restarted server serves both the cached result and the cached
// analysis for a dataset validated in a previous life, without
// revalidating or re-analyzing.
func TestAnalysisSurvivesRestart(t *testing.T) {
	spool := t.TempDir()
	var analyzeCalls, validateCalls atomic.Int64
	newServer := func() *Server {
		t.Helper()
		s, err := New(Config{
			SpoolDir:       spool,
			Validate:       fakeValidateWithLog(&validateCalls),
			PollInterval:   -1,
			RetainOutcomes: true,
			AnalysisKinds:  []string{"summary"},
			Analyze: func(logPath, kind string) ([]byte, error) {
				analyzeCalls.Add(1)
				return []byte(`{"kind":"summary"}`), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := newServer()
	info, err := s1.Upload(strings.NewReader("restart analysis"))
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s1, info.ID)
	ts1 := httptest.NewServer(s1)
	resp, err := http.Get(ts1.URL + "/v1/datasets/" + info.ID + "/analysis/summary")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ts1.Close()
	s1.Close()
	if validateCalls.Load() != 1 || analyzeCalls.Load() != 1 {
		t.Fatalf("first life: validate=%d analyze=%d", validateCalls.Load(), analyzeCalls.Load())
	}

	s2 := newServer()
	defer s2.Close()
	if _, err := s2.Add(filepath.Join(spool, "upload-"+info.ID+".dataset")); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/datasets/" + info.ID + "/analysis/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("restarted analysis: %d %s %q", resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}
	if validateCalls.Load() != 1 || analyzeCalls.Load() != 1 {
		t.Fatalf("restart recomputed: validate=%d analyze=%d", validateCalls.Load(), analyzeCalls.Load())
	}
}
