package serve

// Tests for the append endpoint and the incremental-update plumbing:
// which validation path runs for an appended dataset, how the new job
// relates to the old one, and how the HTTP surface exposes both. The
// byte-identity of incremental and full validation is the engine's
// contract, pinned end-to-end in the root package's tests; here
// Validate and Update are injected fakes so the scheduling itself is
// observable.

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// spoolShardSet generates a small corpus and saves it as a 2-shard set
// in the server's spool, returning the dataset and its manifest path.
func spoolShardSet(t *testing.T, s *Server) (*trace.Dataset, string) {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := ds.SaveShards(s.cfg.SpoolDir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ds, manifest
}

// deltaStream encodes users as a GSB1 delta stream for ds — the append
// endpoint's wire format.
func deltaStream(t *testing.T, ds *trace.Dataset, users ...*trace.User) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	sw, err := trace.NewStreamWriter(&buf, ds.Name, ds.POIs)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if err := sw.WriteUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// freshUser builds a brand-new (empty-trace) user with an ID beyond
// every existing one.
func freshUser(ds *trace.Dataset) *trace.User {
	maxID := 0
	for _, u := range ds.Users {
		if u.ID > maxID {
			maxID = u.ID
		}
	}
	return &trace.User{ID: maxID + 1, Days: 7}
}

// loggingValidate wraps fakeValidate so the outcome log is actually
// written — the incremental path requires the previous generation's log
// on disk.
func loggingValidate(t *testing.T, calls *atomic.Int64) ValidateFunc {
	inner := fakeValidate(calls)
	return func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error) {
		if outcomeLog != "" {
			if err := os.WriteFile(outcomeLog, []byte("LOG"), 0o666); err != nil {
				t.Error(err)
			}
		}
		return inner(path, workers, outcomeLog, checkpointDir)
	}
}

// TestAppendRunsIncrementalUpdate: appending to a done shard-set job
// registers a new job under the grown corpus's checksum, and — with the
// previous result cached and its outcome log retained — that job runs
// through Config.Update, not Validate. The old job keeps serving the
// superseded generation.
func TestAppendRunsIncrementalUpdate(t *testing.T) {
	var calls, updates atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) {
		c.RetainOutcomes = true
		c.Validate = loggingValidate(t, &calls)
		c.Update = func(path string, prev *core.StreamResult, prevLog string, workers int, outcomeLog string) (*core.StreamResult, error) {
			updates.Add(1)
			if prev == nil {
				t.Error("update ran without the previous result")
			}
			if _, err := os.Stat(prevLog); err != nil {
				t.Errorf("update ran without the previous log: %v", err)
			}
			if outcomeLog != "" {
				if err := os.WriteFile(outcomeLog, []byte("LOG2"), 0o666); err != nil {
					t.Error(err)
				}
			}
			return &core.StreamResult{Name: "fake", Users: prev.Users + 1, Taxonomy: map[string]int{}}, nil
		}
	})
	ds, manifest := spoolShardSet(t, s)
	info, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	info = waitDone(t, s, info.ID)
	if info.Status != StatusDone {
		t.Fatalf("base job: %+v", info)
	}

	grown, err := s.Append(info.ID, deltaStream(t, ds, freshUser(ds)))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if grown.ID == info.ID {
		t.Fatal("append did not change the dataset ID")
	}
	grown = waitDone(t, s, grown.ID)
	if grown.Status != StatusDone {
		t.Fatalf("grown job: %+v", grown)
	}
	if updates.Load() != 1 {
		t.Fatalf("want exactly 1 incremental update, got %d (validations: %d)", updates.Load(), calls.Load())
	}
	m := s.Snapshot()
	if m.IncrementalUpdates != 1 {
		t.Fatalf("metrics missed the update: %+v", m)
	}
	if m.CacheHits != 0 {
		t.Fatalf("internal previous-result lookup counted as a client cache hit: %+v", m)
	}
	if old, ok := s.Job(info.ID); !ok || old.Status != StatusDone {
		t.Fatalf("old generation's job disturbed: %+v", old)
	}
}

// TestConcurrentAppendsSerialize: concurrent appends to one dataset
// must serialize into successive generations — every acknowledged
// append's data reaches a delta shard on disk, none silently lost to a
// delta-shard or manifest overwrite. An append that resolves the spool
// path only after another append already re-bound it to the grown
// corpus's checksum may be refused, but it must fail loudly, never
// acknowledge and drop data.
func TestConcurrentAppendsSerialize(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)
	ds, manifest := spoolShardSet(t, s)
	info, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)

	const n = 4
	base := freshUser(ds).ID
	// Pre-encode the streams: the race under test is Append itself.
	streams := make([]*bytes.Reader, n)
	for i := range streams {
		streams[i] = deltaStream(t, ds, &trace.User{ID: base + i, Days: 7})
	}
	infos := make([]JobInfo, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			infos[i], errs[i] = s.Append(info.ID, streams[i])
		}()
	}
	close(start)
	wg.Wait()

	acked := make(map[int]bool) // delta user IDs of acknowledged appends
	seen := make(map[string]bool)
	for i, err := range errs {
		if err != nil {
			// The only legitimate refusal: the dataset had already moved
			// on under this ID before the path was resolved.
			if !strings.Contains(err.Error(), "no spool copy") {
				t.Fatalf("append %d: %v", i, err)
			}
			continue
		}
		acked[base+i] = true
		if seen[infos[i].ID] {
			t.Fatalf("two acknowledged appends share dataset ID %s", infos[i].ID)
		}
		seen[infos[i].ID] = true
	}
	if len(acked) == 0 {
		t.Fatal("no append succeeded")
	}

	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Manifest.Generation != len(acked) {
		t.Fatalf("generation %d after %d acknowledged appends", ss.Manifest.Generation, len(acked))
	}
	deltas, err := trace.MergeSets(ss)
	if err != nil {
		t.Fatalf("delta shards do not decode: %v", err)
	}
	for _, id := range deltas.IDs() {
		if !acked[id] {
			t.Errorf("delta user %d on disk was never acknowledged", id)
		}
		delete(acked, id)
	}
	if len(acked) > 0 {
		t.Fatalf("acknowledged appends missing from disk: %v", acked)
	}
}

// TestAppendFallsBackToFullValidation covers both degraded paths: with
// no retained outcome log the incremental inputs are unavailable and
// Update must not run at all; with inputs available but Update failing,
// the full Validate decides and the job still completes.
func TestAppendFallsBackToFullValidation(t *testing.T) {
	t.Run("no inputs", func(t *testing.T) {
		var calls, updates atomic.Int64
		s := newTestServer(t, &calls, func(c *Config) {
			// RetainOutcomes off: no previous log can exist.
			c.Update = func(path string, prev *core.StreamResult, prevLog string, workers int, outcomeLog string) (*core.StreamResult, error) {
				updates.Add(1)
				return nil, errors.New("must not run")
			}
		})
		ds, manifest := spoolShardSet(t, s)
		info, err := s.Add(manifest)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, info.ID)
		grown, err := s.Append(info.ID, deltaStream(t, ds, freshUser(ds)))
		if err != nil {
			t.Fatal(err)
		}
		grown = waitDone(t, s, grown.ID)
		if grown.Status != StatusDone {
			t.Fatalf("grown job: %+v", grown)
		}
		if updates.Load() != 0 {
			t.Fatalf("update ran without its inputs (%d times)", updates.Load())
		}
		if calls.Load() != 2 {
			t.Fatalf("want 2 full validations (base + grown), got %d", calls.Load())
		}
	})
	t.Run("update fails", func(t *testing.T) {
		var calls, updates atomic.Int64
		s := newTestServer(t, &calls, func(c *Config) {
			c.RetainOutcomes = true
			c.Validate = loggingValidate(t, &calls)
			c.Update = func(path string, prev *core.StreamResult, prevLog string, workers int, outcomeLog string) (*core.StreamResult, error) {
				updates.Add(1)
				return nil, errors.New("synthetic update failure")
			}
		})
		ds, manifest := spoolShardSet(t, s)
		info, err := s.Add(manifest)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, s, info.ID)
		grown, err := s.Append(info.ID, deltaStream(t, ds, freshUser(ds)))
		if err != nil {
			t.Fatal(err)
		}
		grown = waitDone(t, s, grown.ID)
		if grown.Status != StatusDone {
			t.Fatalf("grown job after update failure: %+v", grown)
		}
		if updates.Load() != 1 || calls.Load() != 2 {
			t.Fatalf("want 1 failed update then a full validation: updates=%d calls=%d",
				updates.Load(), calls.Load())
		}
		if m := s.Snapshot(); m.IncrementalUpdates != 0 {
			t.Fatalf("failed update counted as incremental: %+v", m)
		}
	})
}

// TestAppendErrors pins the refusal cases: unknown dataset, a dataset
// that is not a shard set, and a delta stream for the wrong dataset —
// all without mutating anything on disk.
func TestAppendErrors(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, &calls, nil)

	if _, err := s.Append("deadbeef", strings.NewReader("x")); err == nil ||
		!strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("unknown id: %v", err)
	}

	plain, err := s.Upload(strings.NewReader("not a shard set"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, plain.ID)
	if _, err := s.Append(plain.ID, strings.NewReader("x")); err == nil {
		t.Fatal("append to a plain dataset succeeded")
	}

	ds, manifest := spoolShardSet(t, s)
	info, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)
	wrong := &trace.Dataset{Name: "other", POIs: ds.POIs}
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(info.ID, deltaStream(t, wrong, freshUser(ds))); err == nil ||
		!strings.Contains(err.Error(), "dataset") {
		t.Fatalf("wrong-dataset stream: %v", err)
	}
	if again, _ := os.ReadFile(manifest); !bytes.Equal(raw, again) {
		t.Fatal("failed append mutated the manifest")
	}
}

// TestHTTPAppend drives the append flow over the wire: POST the delta
// stream with ?wait=1, follow the Location to the new dataset, and see
// the incremental-update and cache-tier counters on /metrics.
func TestHTTPAppend(t *testing.T) {
	var calls, updates atomic.Int64
	s := newTestServer(t, &calls, func(c *Config) {
		c.RetainOutcomes = true
		c.Validate = loggingValidate(t, &calls)
		c.Update = func(path string, prev *core.StreamResult, prevLog string, workers int, outcomeLog string) (*core.StreamResult, error) {
			updates.Add(1)
			if outcomeLog != "" {
				os.WriteFile(outcomeLog, []byte("LOG2"), 0o666)
			}
			return &core.StreamResult{Name: "fake", Users: prev.Users + 1, Taxonomy: map[string]int{}}, nil
		}
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ds, manifest := spoolShardSet(t, s)
	info, err := s.Add(manifest)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)

	stream := deltaStream(t, ds, freshUser(ds))
	resp, err := http.Post(ts.URL+"/v1/datasets/"+info.ID+"/append?wait=1",
		"application/octet-stream", stream)
	if err != nil {
		t.Fatal(err)
	}
	var grown JobInfo
	code := resp.StatusCode
	loc := resp.Header.Get("Location")
	decodeBody(t, resp, &grown)
	if code != http.StatusOK || grown.Status != StatusDone {
		t.Fatalf("append: code=%d info=%+v", code, grown)
	}
	if grown.ID == info.ID || loc != "/v1/datasets/"+grown.ID {
		t.Fatalf("append location: id=%s loc=%q", grown.ID, loc)
	}
	if updates.Load() != 1 {
		t.Fatalf("want 1 incremental update, got %d", updates.Load())
	}

	// Appending to an unknown dataset is a 404 on the resolve step.
	resp, err = http.Post(ts.URL+"/v1/datasets/feedface/append", "application/octet-stream",
		strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	code = resp.StatusCode
	decodeBody(t, resp, &envelope)
	if code != http.StatusNotFound || envelope.Error == "" {
		t.Fatalf("unknown append: code=%d body=%+v", code, envelope)
	}

	metrics := string(readBody(t, get(t, ts.URL+"/metrics")))
	for _, want := range []string{
		"geoserve_incremental_updates_total 1",
		"geoserve_cache_memory_hits_total ",
		"geoserve_cache_disk_hits_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
