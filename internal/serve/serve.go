// Package serve is the long-running validation service layer: it turns
// the repository's batch validation pipeline into a daemon that ingests
// datasets continuously and serves cached results over HTTP.
//
// A Server watches a spool directory (and accepts HTTP uploads into it)
// for dataset files — JSON, binary GSB1, or shard-set manifests — and
// validates each one through an injected ValidateFunc, which the
// geosocial facade wires to the same streaming engine geovalidate uses
// (core.ValidateStream / core.ValidateShards on the par worker pool).
// Because the service and the CLI share one engine and validation is
// deterministic for any worker count, serving a dataset yields results
// byte-identical to running geovalidate on the same file.
//
// Results are cached in a fixed-capacity LRU keyed by dataset checksum
// (sha256 over the file bytes; for shard sets, over the manifest's
// semantic content plus every shard's bytes), so re-uploading or
// re-spooling identical bytes never revalidates, and repeat fetches are
// served straight from memory. Cached entries are the deterministic
// encoding of core.StreamResult, which keeps cached and freshly
// computed responses byte-comparable.
//
// Concurrency model: every dataset becomes a job; at most
// Config.MaxJobs validations run at once (each using Config.Workers
// pipeline workers), later jobs queue on a semaphore, and Close drains
// running jobs before returning. The HTTP API is documented in
// docs/API.md and served by Server.ServeHTTP.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"geosocial/internal/checkpoint"
	"geosocial/internal/core"
	"geosocial/internal/obs"
	"geosocial/internal/trace"
)

// ErrClosed is returned by Add and Upload once Close has begun.
var ErrClosed = errors.New("serve: server is closed")

// ValidateFunc validates one dataset path (a plain file, a shard-set
// manifest, or a directory holding one) with the given worker count.
// When outcomeLog is non-empty the validation must additionally write a
// GSO1 outcome log there (implementations that cannot may ignore it —
// the analysis endpoints then report the log as unavailable). When
// checkpointDir is non-empty the validation should persist per-shard
// checkpoints there and resume from any it finds, so a job interrupted
// by a crash or restart re-runs only its unfinished shards
// (implementations that cannot may ignore it — checkpointing is an
// optimization, never a correctness requirement). The geosocial facade
// supplies the canonical implementation; tests may inject fakes. It
// must be safe for concurrent calls.
type ValidateFunc func(path string, workers int, outcomeLog, checkpointDir string) (*core.StreamResult, error)

// UpdateFunc incrementally revalidates an appended shard set: prev is
// the result of validating the set at its previous generation and
// prevLog the GSO1 outcome log that run wrote. The implementation must
// return a result — and, when outcomeLog is non-empty, write a log —
// byte-identical to a full ValidateFunc run on the same path. The
// geosocial facade wires it to UpdateValidation. It must be safe for
// concurrent calls.
type UpdateFunc func(path string, prev *core.StreamResult, prevLog string, workers int, outcomeLog string) (*core.StreamResult, error)

// AnalyzeFunc runs one analysis kind over an outcome log and returns
// the presentation-encoded JSON document to serve and cache. The
// geosocial facade wires it to AnalyzeOutcomes. It must be safe for
// concurrent calls.
type AnalyzeFunc func(logPath, kind string) ([]byte, error)

// Config configures a Server. Validate and SpoolDir are required; zero
// values elsewhere select the documented defaults.
type Config struct {
	// SpoolDir is the watched dataset directory. Uploads are written
	// here too, so a restarted server rediscovers everything it has ever
	// accepted. Created if missing.
	SpoolDir string
	// Validate runs one validation (required; see ValidateFunc).
	Validate ValidateFunc
	// Update runs one incremental revalidation of an appended dataset
	// (see UpdateFunc). Optional: without it — or whenever the previous
	// generation's result or outcome log is no longer available — an
	// appended dataset is revalidated in full through Validate, which is
	// always correct, only slower.
	Update UpdateFunc
	// Workers is the per-job pipeline worker count passed to Validate
	// (<= 0 selects GOMAXPROCS, exactly as everywhere else).
	Workers int
	// MaxJobs caps concurrent validations; further jobs queue in
	// arrival order. <= 0 selects 2.
	MaxJobs int
	// CacheCapacity is the LRU result-cache size in entries; <= 0
	// selects 64.
	CacheCapacity int
	// CacheDir is the disk tier of the result cache: every result (and
	// analysis document) is persisted there content-addressed by
	// checksum and lazily reloaded after a restart, so identical bytes
	// are never revalidated across server lifetimes. Empty selects
	// "cache" under the spool; NoDiskCache disables the tier.
	CacheDir string
	// NoDiskCache keeps the result cache memory-only (evicted results
	// then revalidate from the spool).
	NoDiskCache bool
	// ParamsTag fingerprints the validation configuration. The
	// persisted tiers (disk cache, outcome logs) are namespaced by it,
	// so a server restarted with different validation parameters never
	// serves results computed under the old ones — dataset bytes alone
	// do not determine a result; the parameters do too. The facade
	// derives it from the resolved matching and visit-detection
	// parameters. Empty uses the un-namespaced directories.
	ParamsTag string
	// MaxDiskCacheEntries caps the disk cache tier in files; the oldest
	// entries are pruned as new ones are written. <= 0 means unbounded.
	// A pruned result transparently revalidates from the spool on next
	// request, exactly as for a memory eviction.
	MaxDiskCacheEntries int
	// RetainOutcomes makes every validation write a GSO1 outcome log
	// under "outcomes" in the spool, content-addressed by dataset
	// checksum — the input of the outcomes and analysis endpoints.
	RetainOutcomes bool
	// MaxOutcomeLogs caps retained outcome logs in files, pruned oldest
	// first. <= 0 means unbounded. The outcomes/analysis endpoints
	// answer 404 for a pruned log; re-adding or re-uploading the
	// dataset revalidates it and regenerates the log (a cached result
	// alone never short-circuits that regeneration).
	MaxOutcomeLogs int
	// RetainCheckpoints gives every validation a per-dataset checkpoint
	// directory under "checkpoints" in the spool (namespaced by
	// ParamsTag like the other persisted tiers). A validation
	// interrupted by a crash or server restart then resumes from its
	// completed shards instead of starting over. The directory of a
	// successfully completed job is removed — checkpoints only outlive
	// failed or interrupted runs.
	RetainCheckpoints bool
	// MaxCheckpointRuns caps retained per-dataset checkpoint run
	// directories, pruned oldest first after a failed validation.
	// <= 0 means unbounded. Pruning costs only the pruned run's partial
	// progress.
	MaxCheckpointRuns int
	// Analyze runs one log-backed analysis (required for the analysis
	// endpoints; they answer 501 without it).
	Analyze AnalyzeFunc
	// AnalysisKinds are the kinds the analysis endpoint accepts
	// (unlisted kinds answer 404). The facade passes
	// geosocial.AnalysisKinds.
	AnalysisKinds []string
	// PollInterval is the spool scan period. 0 selects 2s; < 0 disables
	// the watcher entirely (uploads still work).
	PollInterval time.Duration
	// Logf, when non-nil, receives one line per lifecycle event
	// (discovered, validated, failed, cache hit).
	Logf func(format string, args ...any)
	// Registry, when non-nil, receives every geoserve_* instrument and
	// backs the /metrics exposition. Each Server registers its metric
	// names once, so a Registry serves at most one Server; nil makes a
	// private registry.
	Registry *obs.Registry
	// Spans, when non-nil, collects the server's own cache-tier and
	// append-apply span timings and is exported on /metrics as the
	// geoserve_stage_ops_total / geoserve_stage_seconds_total families.
	// The facade shares one collector between this and the validation
	// pipeline, so pipeline stages appear on /metrics too.
	Spans *obs.Collector
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states, in order. A job moves pending → running →
// done | failed; a done job whose cached result was evicted moves back
// to pending when its result is next requested.
const (
	StatusPending Status = "pending"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// JobInfo is the externally visible state of one dataset job, as served
// by the HTTP API.
type JobInfo struct {
	// ID is the dataset checksum (hex sha256) — the cache key and the
	// {id} of every per-dataset endpoint.
	ID string `json:"id"`
	// Path is the dataset's spool path, relative to the spool directory
	// when it lives inside it.
	Path string `json:"path"`
	// Status is the job's lifecycle state.
	Status Status `json:"status"`
	// Error holds the validation failure message when Status is failed.
	Error string `json:"error,omitempty"`
	// Cached reports that the job completed without running a
	// validation, because an identical dataset had already been
	// validated and its result was still cached.
	Cached bool `json:"cached"`
	// Users is the validated user count (done jobs only).
	Users int `json:"users,omitempty"`
	// ElapsedMS is the wall-clock validation time in milliseconds (done
	// and failed jobs that actually ran; 0 for cache-satisfied jobs).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// job is the internal mutable job record. All fields are guarded by
// Server.mu; done is closed exactly once per pending→terminal
// transition (a fresh channel is made if an evicted job is re-queued).
type job struct {
	info JobInfo
	done chan struct{}
	// noLog records that a completed validation was asked for an
	// outcome log and produced none — the injected ValidateFunc is not
	// log-capable (its doc contract permits ignoring the parameter), so
	// a missing log must not trigger regeneration attempts forever.
	noLog bool
	// appendFrom, when non-empty, is the dataset ID this job's manifest
	// was appended from: runJob may then revalidate incrementally via
	// Config.Update, reusing that job's cached result and outcome log.
	appendFrom string
}

// Server is the validation service. Construct with New, expose with
// ServeHTTP (it implements http.Handler), and stop with Close.
type Server struct {
	cfg            Config
	outcomesDir    string // "" when outcome retention is off
	checkpointsDir string // "" when checkpoint retention is off
	poll           time.Duration
	mux            *http.ServeMux

	mu         sync.Mutex
	jobs       map[string]*job   // checksum -> job
	order      []string          // job IDs in arrival order, for listing
	byPath     map[string]string // dataset path -> checksum
	shardFiles map[string]bool   // spool paths claimed as shards by a manifest
	closed     bool

	// appendLocks serializes appends per manifest path: two concurrent
	// appends to one shard set would otherwise both build generation
	// N+1 — racing on the delta shard file and the manifest, with the
	// last manifest write silently discarding the other acknowledged
	// append's data. One mutex per path, created on first use and never
	// removed (the map is bounded by the distinct shard sets appended
	// to over the server's life).
	appendLocks struct {
		sync.Mutex
		m map[string]*sync.Mutex
	}

	// analysisBusy single-flights analysis computations per cache key:
	// concurrent requests for the same uncached (dataset, kind) wait on
	// the first runner's channel instead of burning N× CPU.
	analysisMu   sync.Mutex
	analysisBusy map[string]chan struct{}

	// outcomeLogs approximates the retained-log count so the O(entries)
	// prune walk runs only when MaxOutcomeLogs is actually exceeded.
	outcomeLogs struct {
		sync.Mutex
		count int
	}

	cache *resultCache
	sem   chan struct{} // MaxJobs tickets
	stop  chan struct{}
	wg    sync.WaitGroup
	start time.Time

	// sm holds the registered service instruments (see metrics.go).
	sm *serverMetrics

	// Span cells for the server's own stages (nil without Config.Spans;
	// a nil cell is a no-op). Cache cells are keyed by operation in the
	// shard dimension so /metrics attributes cache traffic per call
	// kind.
	spanCacheGet  *obs.Cell
	spanCachePut  *obs.Cell
	spanCachePeek *obs.Cell
	spanAppend    *obs.Cell
}

// New validates the configuration, creates the spool directory, and
// starts the spool watcher (unless disabled). The caller owns binding
// the returned Server to an HTTP listener and must Close it when done.
func New(cfg Config) (*Server, error) {
	if cfg.Validate == nil {
		return nil, fmt.Errorf("serve: Config.Validate is required")
	}
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("serve: Config.SpoolDir is required")
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o777); err != nil {
		return nil, fmt.Errorf("serve: create spool: %w", err)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 64
	}
	cacheDir := ""
	if !cfg.NoDiskCache {
		cacheDir = cfg.CacheDir
		if cacheDir == "" {
			cacheDir = filepath.Join(cfg.SpoolDir, "cache")
		}
		if cfg.ParamsTag != "" {
			cacheDir = filepath.Join(cacheDir, cfg.ParamsTag)
		}
	}
	cache, err := newResultCache(cfg.CacheCapacity, cacheDir)
	if err != nil {
		return nil, fmt.Errorf("serve: create cache dir: %w", err)
	}
	cache.maxDiskEntries = cfg.MaxDiskCacheEntries
	outcomesDir := ""
	if cfg.RetainOutcomes {
		outcomesDir = filepath.Join(cfg.SpoolDir, "outcomes")
		if cfg.ParamsTag != "" {
			outcomesDir = filepath.Join(outcomesDir, cfg.ParamsTag)
		}
		if err := os.MkdirAll(outcomesDir, 0o777); err != nil {
			return nil, fmt.Errorf("serve: create outcomes dir: %w", err)
		}
	}
	checkpointsDir := ""
	if cfg.RetainCheckpoints {
		checkpointsDir = filepath.Join(cfg.SpoolDir, "checkpoints")
		if cfg.ParamsTag != "" {
			checkpointsDir = filepath.Join(checkpointsDir, cfg.ParamsTag)
		}
		if err := os.MkdirAll(checkpointsDir, 0o777); err != nil {
			return nil, fmt.Errorf("serve: create checkpoints dir: %w", err)
		}
	}
	logCount := countFiles(outcomesDir, ".gso")
	s := &Server{
		cfg:            cfg,
		outcomesDir:    outcomesDir,
		checkpointsDir: checkpointsDir,
		poll:           cfg.PollInterval,
		jobs:           make(map[string]*job),
		byPath:         make(map[string]string),
		shardFiles:     make(map[string]bool),
		analysisBusy:   make(map[string]chan struct{}),
		cache:          cache,
		sem:            make(chan struct{}, cfg.MaxJobs),
		stop:           make(chan struct{}),
		start:          time.Now(),
	}
	s.outcomeLogs.count = logCount
	if s.poll == 0 {
		s.poll = 2 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.sm = newServerMetrics(reg, s, cfg.Spans)
	s.spanCacheGet = cfg.Spans.Stage("cache-tier", "get")
	s.spanCachePut = cfg.Spans.Stage("cache-tier", "put")
	s.spanCachePeek = cfg.Spans.Stage("cache-tier", "peek")
	s.spanAppend = cfg.Spans.Stage("append-apply", "serve")
	s.initMux()
	if s.poll > 0 {
		s.wg.Add(1)
		go s.watch()
	}
	return s, nil
}

// logf forwards to Config.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Close stops the spool watcher, waits for running validations to
// finish, and leaves queued jobs pending. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	return nil
}

// DatasetChecksum fingerprints a dataset on disk: hex sha256 over the
// file bytes for a plain dataset file; for a shard-set manifest (or a
// directory holding one) over the manifest's semantic content — dataset
// name and POI-table checksum — followed by every shard's bytes in
// manifest order. Two corpora with identical content hash identically
// even if their manifest JSON is formatted differently. The checksum is
// the service's dataset ID and cache key.
func DatasetChecksum(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("serve: checksum: %w", err)
	}
	if !info.IsDir() && !strings.HasSuffix(path, trace.ManifestSuffix) {
		return fileChecksum(path)
	}
	ss, err := trace.OpenShardSet(path)
	if err != nil {
		return "", fmt.Errorf("serve: checksum: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "gsb1-shards\x00%s\x00%s\x00", ss.Manifest.Name, ss.Manifest.POIChecksum)
	for _, sh := range ss.Manifest.Shards {
		f, err := os.Open(filepath.Join(ss.Dir, sh.File))
		if err != nil {
			return "", fmt.Errorf("serve: checksum: %w", err)
		}
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("serve: checksum shard %s: %w", sh.File, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fileChecksum is hex sha256 over one file's bytes.
func fileChecksum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("serve: checksum: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("serve: checksum %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Add registers a dataset path (plain file, manifest, or directory
// holding one) and returns its job state. Adding a path whose checksum
// matches an already-cached result completes instantly without a
// validation; adding a path already registered returns the current
// state. Validation runs asynchronously — poll Job or wait on the HTTP
// API.
func (s *Server) Add(path string) (JobInfo, error) {
	sum, err := DatasetChecksum(path)
	if err != nil {
		return JobInfo{}, err
	}
	return s.register(path, sum, "")
}

// Append applies a GSB1 delta stream to a completed shard-set dataset:
// the stream becomes the manifest's next generation on disk (a new
// delta shard; the base shards are untouched), and the grown corpus is
// registered as a new job under its new checksum. The new job carries
// the old dataset's ID, so its validation can run incrementally via
// Config.Update when the old result and outcome log are still
// available; the old job keeps serving the superseded generation's
// (cached) result. Nothing on disk changes when the append fails.
func (s *Server) Append(id string, r io.Reader) (JobInfo, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: append: unknown dataset %q", id)
	}
	if j.info.Status != StatusDone {
		status := j.info.Status
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: append: dataset %q is %s, not done", id, status)
	}
	path := s.pathForLocked(id)
	s.mu.Unlock()
	if path == "" {
		return JobInfo{}, fmt.Errorf("serve: append: no spool copy of dataset %q remains", id)
	}
	// Serialize with every other append to the same shard set, held
	// through DatasetChecksum and register so the checksum bound to the
	// new job is computed from exactly the generation this append
	// produced. A concurrent append that waited here opens the manifest
	// at the generation the winner published and lands as the one
	// after it — both appends' data survives, in sequence.
	lock := s.appendLock(path)
	lock.Lock()
	defer lock.Unlock()
	var t0 time.Time
	if s.spanAppend != nil {
		t0 = time.Now()
	}
	aw, err := trace.OpenAppend(path)
	if err != nil {
		return JobInfo{}, fmt.Errorf("serve: append: %w", err)
	}
	if err := aw.AppendStream(r); err != nil {
		return JobInfo{}, fmt.Errorf("serve: append: %w", err)
	}
	if err := aw.Close(); err != nil {
		return JobInfo{}, fmt.Errorf("serve: append: %w", err)
	}
	sum, err := DatasetChecksum(path)
	if s.spanAppend != nil {
		s.spanAppend.Observe(1, time.Since(t0))
	}
	if err != nil {
		return JobInfo{}, err
	}
	s.logf("serve: %s: appended generation %d (%s -> %s)",
		s.displayPath(path), aw.Generation(), shortID(id), shortID(sum))
	return s.register(path, sum, id)
}

// appendLock returns the mutex serializing appends to one manifest
// path, creating it on first use.
func (s *Server) appendLock(path string) *sync.Mutex {
	s.appendLocks.Lock()
	defer s.appendLocks.Unlock()
	if s.appendLocks.m == nil {
		s.appendLocks.m = make(map[string]*sync.Mutex)
	}
	mu, ok := s.appendLocks.m[path]
	if !ok {
		mu = new(sync.Mutex)
		s.appendLocks.m[path] = mu
	}
	return mu
}

// displayPath returns path relative to the spool directory when it
// lives inside it, so API responses don't leak server-local prefixes.
func (s *Server) displayPath(path string) string {
	if rel, err := filepath.Rel(s.cfg.SpoolDir, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// register binds path to the job for checksum sum, creating and
// enqueueing the job if it does not exist. A checksum whose result is
// still cached completes instantly (a cache hit). appendFrom, when
// non-empty, marks a freshly created job as appended from that dataset
// ID (see job.appendFrom); it never overwrites an existing job's
// provenance.
func (s *Server) register(path, sum, appendFrom string) (JobInfo, error) {
	// When outcome retention is on, a missing log disqualifies every
	// shortcut below: the cached result alone cannot serve the outcomes
	// and analysis endpoints, so a re-add of the dataset revalidates to
	// regenerate the log (the documented recovery from log pruning).
	logMissing := false
	if p := s.outcomePath(sum); p != "" {
		if _, err := os.Stat(p); err != nil {
			logMissing = true
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	s.byPath[path] = sum
	if j, ok := s.jobs[sum]; ok {
		defer s.mu.Unlock()
		// A failed job is not a permanent verdict on the checksum:
		// failures can be transient (I/O, a file caught mid-copy), so an
		// explicit re-add or re-upload of the same bytes retries. A done
		// job whose outcome log was pruned revalidates the same way —
		// unless a previous validation already showed the validator
		// produces no log, in which case revalidating cannot help.
		if j.info.Status == StatusFailed || (j.info.Status == StatusDone && logMissing && !j.noLog) {
			reason := "retrying failed validation"
			if j.info.Status == StatusDone {
				reason = "outcome log pruned, revalidating"
			}
			j.info.Status = StatusPending
			j.info.Error = ""
			j.info.Cached = false
			j.info.ElapsedMS = 0
			j.done = make(chan struct{})
			s.logf("serve: %s: %s (%s)", j.info.Path, reason, shortID(sum))
			s.enqueueLocked(j, path)
		}
		return j.info, nil
	}
	s.mu.Unlock()

	// The cache lookup may touch the disk tier, so it runs outside s.mu
	// (a slow disk must not stall every handler behind this register).
	data, hit := s.cacheGet(sum)
	if logMissing {
		hit = false // a result without its outcome log is not complete
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobInfo{}, ErrClosed
	}
	if j, ok := s.jobs[sum]; ok {
		// Another register won the race while the lock was dropped; its
		// freshly created job is authoritative.
		return j.info, nil
	}
	j := &job{
		info:       JobInfo{ID: sum, Path: s.displayPath(path), Status: StatusPending},
		done:       make(chan struct{}),
		appendFrom: appendFrom,
	}
	s.jobs[sum] = j
	s.order = append(s.order, sum)
	if hit {
		// An identical dataset was validated earlier (under another
		// path, or in a previous server life): serve its cached result,
		// skip the recomputation.
		j.info.Status = StatusDone
		j.info.Cached = true
		if res, err := core.DecodeStreamResult(data); err == nil {
			j.info.Users = res.Users
		}
		close(j.done)
		s.logf("serve: %s: cache hit (%s)", j.info.Path, shortID(sum))
		return j.info, nil
	}
	s.logf("serve: %s: queued (%s)", j.info.Path, shortID(sum))
	s.enqueueLocked(j, path)
	return j.info, nil
}

// cacheGet / cachePut / cachePeek wrap the result cache so the
// cache-tier span (when a collector is configured) attributes time and
// traffic per operation. A nil cell costs nothing — not even a clock
// read.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	var t0 time.Time
	if s.spanCacheGet != nil {
		t0 = time.Now()
	}
	data, hit := s.cache.Get(key)
	if s.spanCacheGet != nil {
		s.spanCacheGet.Observe(1, time.Since(t0))
	}
	return data, hit
}

func (s *Server) cachePut(key string, data []byte) {
	var t0 time.Time
	if s.spanCachePut != nil {
		t0 = time.Now()
	}
	s.cache.Put(key, data)
	if s.spanCachePut != nil {
		s.spanCachePut.Observe(1, time.Since(t0))
	}
}

func (s *Server) cachePeek(key string) ([]byte, bool) {
	var t0 time.Time
	if s.spanCachePeek != nil {
		t0 = time.Now()
	}
	data, hit := s.cache.Peek(key)
	if s.spanCachePeek != nil {
		s.spanCachePeek.Observe(1, time.Since(t0))
	}
	return data, hit
}

// shortID abbreviates a checksum for log lines.
func shortID(sum string) string {
	if len(sum) > 12 {
		return sum[:12]
	}
	return sum
}

// enqueueLocked starts the job's validation goroutine. Caller holds
// s.mu; the job must be pending with an open done channel.
func (s *Server) enqueueLocked(j *job, path string) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-s.stop:
			return // shutdown: leave the job pending
		}
		// A slot freed by a draining job can be won after Close has
		// begun; re-check so shutdown never starts new validations.
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		s.runJob(j, path)
	}()
}

// runJob executes one validation — incrementally via Config.Update for
// an appended dataset whose previous generation's result and outcome
// log are still at hand, in full otherwise — and publishes the result
// to the cache and the job record.
func (s *Server) runJob(j *job, path string) {
	s.mu.Lock()
	j.info.Status = StatusRunning
	appendFrom := j.appendFrom
	s.mu.Unlock()

	t0 := time.Now()
	logPath := s.outcomePath(j.info.ID)
	ckDir := s.checkpointPath(j.info.ID)
	var res *core.StreamResult
	var err error
	updated := false
	if appendFrom != "" && s.cfg.Update != nil {
		if prev, prevLog, ok := s.previousRun(appendFrom); ok {
			if res, err = s.cfg.Update(path, prev, prevLog, s.cfg.Workers, logPath); err == nil {
				updated = true
			} else {
				// An incremental failure is not a verdict on the dataset
				// (the previous log may be stale or torn); the full path
				// decides.
				s.logf("serve: %s: incremental update failed (%v), revalidating in full", j.info.Path, err)
				res, err = nil, nil
			}
		}
	}
	if !updated {
		res, err = s.cfg.Validate(path, s.cfg.Workers, logPath, ckDir)
	}
	elapsed := time.Since(t0)

	if ckDir != "" {
		if err == nil {
			// The run completed; its fragments have nothing left to
			// resume and would only hold disk until pruned.
			os.RemoveAll(ckDir)
		} else if s.cfg.MaxCheckpointRuns > 0 {
			// The run's progress stays for the retry, but the tier as a
			// whole is bounded: oldest interrupted runs go first.
			pruneSubdirs(s.checkpointsDir, s.cfg.MaxCheckpointRuns)
		}
	}

	noLog := false
	if err == nil && logPath != "" {
		if _, serr := os.Stat(logPath); serr != nil {
			noLog = true // the validator ignored the outcome-log request
		}
	}

	var encoded []byte
	if err == nil {
		encoded, err = res.Encode()
	}

	if err != nil {
		s.sm.failures.Inc()
	} else {
		s.sm.validated.Inc()
		s.sm.users.Add(int64(res.Users))
		s.sm.validateNanos.Add(int64(elapsed))
		s.sm.validateSeconds.Observe(elapsed.Seconds())
		if secs := elapsed.Seconds(); secs > 0 {
			s.sm.validateRate.Observe(float64(res.Users) / secs)
		}
		if updated {
			s.sm.updates.Inc()
		}
	}

	if err == nil {
		// Publish to the cache (which may write the disk tier) before
		// taking s.mu: by the time the job flips to done, the result is
		// fetchable, and the file write never blocks other handlers.
		s.cachePut(j.info.ID, encoded)
		if s.outcomesDir != "" && !noLog {
			s.outcomeLogs.Lock()
			s.outcomeLogs.count++
			prune := s.cfg.MaxOutcomeLogs > 0 && s.outcomeLogs.count > s.cfg.MaxOutcomeLogs
			s.outcomeLogs.Unlock()
			if prune {
				n := pruneDir(s.outcomesDir, ".gso", s.cfg.MaxOutcomeLogs)
				s.outcomeLogs.Lock()
				s.outcomeLogs.count = n
				s.outcomeLogs.Unlock()
			}
		}
	}

	s.mu.Lock()
	j.info.ElapsedMS = elapsed.Milliseconds()
	if err != nil {
		j.info.Status = StatusFailed
		j.info.Error = err.Error()
		s.logf("serve: %s: failed after %v: %v", j.info.Path, elapsed.Round(time.Millisecond), err)
	} else {
		j.info.Status = StatusDone
		j.info.Users = res.Users
		j.noLog = noLog
		s.logf("serve: %s: validated %d users in %v (%s)",
			j.info.Path, res.Users, elapsed.Round(time.Millisecond), shortID(j.info.ID))
	}
	close(j.done)
	s.mu.Unlock()
}

// previousRun fetches the decoded result and retained outcome log of a
// completed dataset job — the inputs the incremental update path needs.
// ok is false when either is gone (evicted and pruned, or retention is
// off); the caller then falls back to a full validation.
func (s *Server) previousRun(id string) (prev *core.StreamResult, prevLog string, ok bool) {
	prevLog = s.outcomePath(id)
	if prevLog == "" {
		return nil, "", false
	}
	if _, err := os.Stat(prevLog); err != nil {
		return nil, "", false
	}
	// Peek, not Get: this lookup is the server talking to itself, so it
	// must not inflate the client-facing hit counters or reorder the
	// LRU.
	data, hit := s.cachePeek(id)
	if !hit {
		return nil, "", false
	}
	prev, err := core.DecodeStreamResult(data)
	if err != nil {
		return nil, "", false
	}
	return prev, prevLog, true
}

// outcomePath is the content-addressed outcome-log location for a
// dataset checksum, or "" when outcome retention is off. Because the
// name is the checksum, a job satisfied from the result cache still
// finds the log a previous validation of the same bytes wrote.
func (s *Server) outcomePath(id string) string {
	if s.outcomesDir == "" {
		return ""
	}
	return filepath.Join(s.outcomesDir, id+".gso")
}

// checkpointPath is the per-dataset checkpoint run directory for a
// dataset checksum, or "" when checkpoint retention is off. Keyed by
// the dataset checksum, so a retried job resumes exactly its own run.
func (s *Server) checkpointPath(id string) string {
	if s.checkpointsDir == "" {
		return ""
	}
	return filepath.Join(s.checkpointsDir, id)
}

// Job returns the current state of a dataset job by ID.
func (s *Server) Job(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info, true
}

// Jobs returns every job in arrival order.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].info)
	}
	return out
}

// result returns the cached encoded result for a done job. When the
// job is done but its result has been evicted, it re-queues the
// validation (the spool still holds the bytes) and reports not-ready.
func (s *Server) result(id string) (data []byte, info JobInfo, ok bool) {
	s.mu.Lock()
	j, exists := s.jobs[id]
	if !exists {
		s.mu.Unlock()
		return nil, JobInfo{}, false
	}
	info = j.info
	if j.info.Status != StatusDone {
		s.mu.Unlock()
		return nil, info, true
	}
	s.mu.Unlock()

	// The cache lookup may read the disk tier; never under s.mu.
	if data, ok = s.cacheGet(id); ok {
		return data, info, true
	}

	s.mu.Lock()
	// Re-resolve: the job may have changed while the lock was dropped
	// (withdrawn by a manifest claim, or already re-queued by a
	// concurrent reader that observed the same miss).
	j, exists = s.jobs[id]
	if !exists {
		s.mu.Unlock()
		return nil, JobInfo{}, false
	}
	info = j.info
	if j.info.Status != StatusDone {
		s.mu.Unlock()
		return nil, info, true
	}
	// Evicted: revalidate from the spool.
	if s.closed {
		s.mu.Unlock()
		return nil, info, true // shutdown: transient, no state change
	}
	path := s.pathForLocked(id)
	if path == "" {
		// No spool copy survives to recompute from: the result is gone
		// for good. Flip to failed (retryable by re-adding the bytes)
		// instead of reporting "done" with no result forever.
		j.info.Status = StatusFailed
		j.info.Error = "cached result evicted and no spool copy remains"
		info = j.info
		s.logf("serve: %s: %s", j.info.Path, j.info.Error)
		s.mu.Unlock()
		return nil, info, true
	}
	j.info.Status = StatusPending
	j.info.Cached = false
	j.info.Users = 0
	j.info.ElapsedMS = 0
	j.done = make(chan struct{})
	info = j.info
	s.logf("serve: %s: result evicted, revalidating", j.info.Path)
	s.enqueueLocked(j, path)
	s.mu.Unlock()
	return nil, info, true
}

// pathForLocked finds a registered path for a checksum that still
// exists on disk (caller holds s.mu) — a revalidation must not be sent
// to a path the operator has since deleted while the same bytes remain
// under another name. The lowest surviving path in sort order wins, for
// determinism when several spool files share content.
func (s *Server) pathForLocked(id string) string {
	var paths []string
	for p, sum := range s.byPath {
		if sum == id {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return ""
}

// wait blocks until the job reaches a terminal state, the request
// context is cancelled, or the server stops. It returns the job's
// latest state and whether a terminal state was reached.
func (s *Server) wait(id string, cancel <-chan struct{}) (JobInfo, bool) {
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return JobInfo{}, false
		}
		info := j.info
		done := j.done
		s.mu.Unlock()
		switch info.Status {
		case StatusDone, StatusFailed:
			return info, true
		}
		select {
		case <-done:
		case <-cancel:
			return info, false
		case <-s.stop:
			return info, false
		}
	}
}

// Upload streams a dataset into the spool directory, computing its
// checksum on the way in, and registers it like a spooled file. The
// stored file is named by the full checksum, so uploads are
// content-addressed: re-uploading identical bytes lands on the same
// file and the same job (and retries it if the previous attempt
// failed), never a duplicate validation of cached content.
func (s *Server) Upload(r io.Reader) (JobInfo, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(s.cfg.SpoolDir, ".upload-*")
	if err != nil {
		return JobInfo{}, fmt.Errorf("serve: upload: %w", err)
	}
	tmpPath := tmp.Name()
	h := sha256.New()
	size, err := io.Copy(io.MultiWriter(tmp, h), r)
	// The spool file is the upload's only durable copy, so its bytes
	// must reach the disk before the rename can publish the name: a
	// crash after an unsynced rename could leave the name pointing at
	// lost content.
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return JobInfo{}, fmt.Errorf("serve: upload: %w", err)
	}
	sum := hex.EncodeToString(h.Sum(nil))

	s.sm.uploads.Inc()
	s.sm.uploadBytes.Observe(float64(size))

	// The full checksum names the file, so renaming over an existing
	// upload can only replace identical bytes. Whether the name already
	// existed decides cleanup ownership below: a freshly staged file is
	// this call's to remove on failure, an established spool file is not.
	final := filepath.Join(s.cfg.SpoolDir, "upload-"+sum+".dataset")
	_, statErr := os.Stat(final)
	preexisted := statErr == nil
	if err := os.Rename(tmpPath, final); err != nil {
		os.Remove(tmpPath)
		return JobInfo{}, fmt.Errorf("serve: upload: %w", err)
	}
	if err := checkpoint.SyncDir(s.cfg.SpoolDir); err != nil {
		if !preexisted {
			os.Remove(final)
		}
		return JobInfo{}, fmt.Errorf("serve: upload: %w", err)
	}
	info, err := s.register(final, sum, "")
	if err != nil && !preexisted {
		// register refused the file (the server is closing). Left in
		// place it would be a stranded upload no job ever references,
		// silently ingested as a surprise dataset on the next start.
		os.Remove(final)
	}
	return info, err
}

// --- spool watcher ---

// datasetSuffixes are the spool file endings the watcher considers
// datasets. ".dataset" is the neutral suffix Upload stores under (the
// codec sniffs the real encoding from magic bytes, never the name).
var datasetSuffixes = []string{
	".json", ".json.gz", ".bin", ".bin.gz", ".dataset", trace.ManifestSuffix,
}

// spoolCandidate reports whether a spool file name looks like a
// dataset. Temporary files (upload staging, atomic-save temps) are
// excluded.
func spoolCandidate(name string) bool {
	if strings.HasPrefix(name, ".") || strings.Contains(name, ".tmp-") {
		return false
	}
	for _, suf := range datasetSuffixes {
		if strings.HasSuffix(name, suf) {
			return true
		}
	}
	return false
}

// scanState is the watcher's stability memory: a file is only ingested
// once its size and mtime are unchanged across two consecutive scans,
// so a dataset still being copied into the spool is never read early.
type scanState struct {
	size  int64
	mtime time.Time
}

// spoolMemory is the watcher's per-path state across scans.
type spoolMemory struct {
	// prev is each path's last observed size/mtime (stability check).
	prev map[string]scanState
	// ingested is the state a path had when it was last handed to Add
	// (successfully or not): a path at its ingested state is settled —
	// neither revalidated nor re-checksummed — until it is rewritten.
	ingested map[string]scanState
	// manifests memoizes each manifest's parse, keyed by path, so a
	// settled manifest is not re-read and re-parsed on every tick.
	manifests map[string]manifestMemo
}

// manifestMemo is one manifest's cached parse: the file state it was
// parsed at and the shard paths it claims (nil when the document was
// malformed — rewriting the file re-parses).
type manifestMemo struct {
	state  scanState
	shards []string
}

// watch polls the spool directory until Close.
func (s *Server) watch() {
	defer s.wg.Done()
	mem := &spoolMemory{
		prev:      make(map[string]scanState),
		ingested:  make(map[string]scanState),
		manifests: make(map[string]manifestMemo),
	}
	t := time.NewTicker(s.poll)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.scanSpool(mem)
		}
	}
}

// scanSpool performs one watcher pass: refresh the shard-exclusion set
// from every manifest present, then hand stable unclaimed dataset files
// to Add. Manifests are registered as a whole — their shards are
// validated through them, never individually — and a file rewritten in
// place is re-ingested once it is stable again (its new checksum maps
// to a new job; the old job's history remains listed).
func (s *Server) scanSpool(mem *spoolMemory) {
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if err != nil {
		s.logf("serve: spool scan: %v", err)
		return
	}

	// Pass 1: manifests claim their shard files. A shard that was
	// ingested standalone before its manifest appeared (shards are
	// published first, the manifest last) is un-registered here, so the
	// set converges to one job per corpus. Claims are rebuilt from the
	// manifests present each scan — deleting a manifest releases its
	// shards, so a kept shard file can later be ingested standalone —
	// and parses are memoized by file state, so settled manifests cost
	// one Stat per tick, not a read + parse.
	claimed := make(map[string]bool)
	seenManifests := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), trace.ManifestSuffix) {
			continue
		}
		path := filepath.Join(s.cfg.SpoolDir, e.Name())
		seenManifests[path] = true
		info, err := e.Info()
		if err != nil {
			continue
		}
		st := scanState{size: info.Size(), mtime: info.ModTime()}
		memo, ok := mem.manifests[path]
		if !ok || memo.state != st {
			memo = manifestMemo{state: st}
			if ss, err := trace.OpenShardSet(path); err == nil {
				for _, sh := range ss.Manifest.Shards {
					memo.shards = append(memo.shards, filepath.Join(ss.Dir, sh.File))
				}
			} // else: malformed document, claims nothing until rewritten
			mem.manifests[path] = memo
		}
		for _, p := range memo.shards {
			claimed[p] = true
		}
	}
	for path := range mem.manifests {
		if !seenManifests[path] {
			delete(mem.manifests, path)
		}
	}
	s.mu.Lock()
	for p := range claimed {
		if !s.shardFiles[p] {
			s.dropPathLocked(p)
			// Forget the path's settled state: if it is ever released
			// again it must re-ingest from scratch.
			delete(mem.ingested, p)
			delete(mem.prev, p)
		}
	}
	for p := range s.shardFiles {
		if !claimed[p] {
			// Released (its manifest is gone): a kept file becomes an
			// ordinary ingest candidate with fresh stability tracking.
			delete(mem.ingested, p)
			delete(mem.prev, p)
		}
	}
	s.shardFiles = claimed
	s.mu.Unlock()

	// Pass 2: stable, unclaimed candidates not yet ingested at their
	// current state become jobs.
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.IsDir() || !spoolCandidate(e.Name()) {
			continue
		}
		path := filepath.Join(s.cfg.SpoolDir, e.Name())
		seen[path] = true
		s.mu.Lock()
		claimed := s.shardFiles[path]
		s.mu.Unlock()
		if claimed {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st := scanState{size: info.Size(), mtime: info.ModTime()}
		last, sighted := mem.prev[path]
		mem.prev[path] = st
		if !sighted || last != st {
			continue // first sighting or still changing; wait a scan
		}
		if mem.ingested[path] == st {
			continue // settled: already ingested (or failed) at this state
		}
		// Record the state before Add so a persistently broken file is
		// checksummed once, not on every scan; rewriting it changes the
		// state and retries.
		mem.ingested[path] = st
		if _, err := s.Add(path); err != nil {
			s.logf("serve: spool %s: %v", e.Name(), err)
		}
	}
	for path := range mem.prev {
		if !seen[path] {
			delete(mem.prev, path)
			delete(mem.ingested, path)
		}
	}
}

// dropPathLocked removes a path's standalone registration (caller holds
// s.mu): the path-to-checksum binding goes away, and the job itself is
// removed when no other path shares its dataset. Used when a manifest
// claims a file that had been ingested as its own dataset.
func (s *Server) dropPathLocked(path string) {
	sum, ok := s.byPath[path]
	if !ok {
		return
	}
	delete(s.byPath, path)
	for _, other := range s.byPath {
		if other == sum {
			return // the dataset is still reachable via another path
		}
	}
	delete(s.jobs, sum)
	for i, id := range s.order {
		if id == sum {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.logf("serve: %s: claimed as a shard, standalone job dropped", s.displayPath(path))
}

// Metrics is a point-in-time snapshot of the service counters, exposed
// as plain text by /metrics.
type Metrics struct {
	DatasetsValidated  int64         // validations run to completion
	ValidateFailures   int64         // validations that errored
	UsersValidated     int64         // users across completed validations
	ValidateTime       time.Duration // wall-clock spent validating
	UsersPerSecond     float64       // UsersValidated / ValidateTime
	Uploads            int64         // HTTP uploads accepted
	AnalysesRun        int64         // log-backed analyses computed (cache misses)
	IncrementalUpdates int64         // appended datasets revalidated incrementally
	CacheHits          int64         // results served without recomputation (all tiers)
	CacheMemoryHits    int64         // cache hits answered from the memory LRU
	CacheDiskHits      int64         // cache hits promoted from the disk tier
	CacheMisses        int64         // cache lookups that missed
	CacheEntries       int           // results currently cached
	CacheCapacity      int           // LRU capacity
	JobsPending        int64         // jobs waiting for a slot
	JobsRunning        int64         // validations in flight
	Uptime             time.Duration // since New
}

// Snapshot collects the current Metrics. It reads the same registered
// instruments /metrics serves, so the two views can never disagree.
func (s *Server) Snapshot() Metrics {
	var m Metrics
	m.DatasetsValidated = s.sm.validated.Value()
	m.ValidateFailures = s.sm.failures.Value()
	m.UsersValidated = s.sm.users.Value()
	m.ValidateTime = time.Duration(s.sm.validateNanos.Load())
	m.Uploads = s.sm.uploads.Value()
	m.AnalysesRun = s.sm.analyses.Value()
	m.IncrementalUpdates = s.sm.updates.Value()
	if m.ValidateTime > 0 {
		m.UsersPerSecond = float64(m.UsersValidated) / m.ValidateTime.Seconds()
	}
	m.CacheMemoryHits, m.CacheDiskHits, m.CacheMisses, m.CacheEntries, m.CacheCapacity = s.cache.Stats()
	m.CacheHits = m.CacheMemoryHits + m.CacheDiskHits
	m.JobsPending, m.JobsRunning = s.jobCounts()
	m.Uptime = time.Since(s.start)
	return m
}
