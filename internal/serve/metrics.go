package serve

// Service instrumentation: every counter the old /metrics endpoint
// printed by hand lives in an obs.Registry now, emitted in Prometheus
// text exposition format. The pre-existing metric names and value
// semantics are preserved exactly (the back-compat test in obs_test.go
// pins every one of them); what the registry adds is HELP/TYPE
// metadata, histograms, per-route HTTP metrics, and — when the server
// is given a span collector — per-stage pipeline timings.

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"geosocial/internal/obs"
)

// serverMetrics owns the server's registered instruments. Counters are
// incremented at the same sites the old mutex-guarded struct was;
// gauges that used to be computed inside Snapshot (cache stats, job
// queue depths, uptime) are registered as scrape-time functions, so
// /metrics and Snapshot read the same live values.
type serverMetrics struct {
	reg *obs.Registry

	validated *obs.Counter // validations actually run to completion
	failures  *obs.Counter // validations that returned an error
	users     *obs.Counter // users across completed validations
	uploads   *obs.Counter // HTTP uploads accepted
	analyses  *obs.Counter // log-backed analyses actually run
	updates   *obs.Counter // validations satisfied by the incremental path

	// validateNanos preserves Metrics.ValidateTime at full Duration
	// precision; the histogram's float-seconds sum would round it.
	validateNanos atomic.Int64

	validateSeconds *obs.Histogram // per-validation wall time
	validateRate    *obs.Histogram // per-validation users/second
	uploadBytes     *obs.Histogram // accepted upload body sizes

	httpRequests *obs.CounterVec   // {route, status}
	httpSeconds  *obs.HistogramVec // {route, status}
}

// newServerMetrics registers the server's instruments on reg. A
// registry accepts each metric name once, so one Server per Registry;
// when the caller shares no registry the server makes a private one.
// spans, when non-nil, is additionally exported as the
// geoserve_stage_*_total sample families.
func newServerMetrics(reg *obs.Registry, s *Server, spans *obs.Collector) *serverMetrics {
	m := &serverMetrics{reg: reg}

	m.validated = reg.NewCounter("geoserve_datasets_validated_total",
		"Validations run to completion.")
	m.failures = reg.NewCounter("geoserve_validate_failures_total",
		"Validations that returned an error.")
	m.users = reg.NewCounter("geoserve_users_validated_total",
		"Users validated across completed validations.")
	m.uploads = reg.NewCounter("geoserve_uploads_total",
		"Dataset uploads accepted over HTTP.")
	m.analyses = reg.NewCounter("geoserve_analyses_total",
		"Log-backed analyses computed (cache hits excluded).")
	m.updates = reg.NewCounter("geoserve_incremental_updates_total",
		"Appended datasets revalidated incrementally instead of in full.")

	reg.RegisterGaugeFunc("geoserve_users_per_second",
		"Validated users divided by cumulative validation wall time.",
		func() float64 {
			if ns := m.validateNanos.Load(); ns > 0 {
				return float64(m.users.Value()) / (float64(ns) / float64(time.Second))
			}
			return 0
		})

	// Cache-tier and job-queue gauges read live server state at scrape
	// time, exactly as Snapshot always has.
	reg.RegisterCounterFunc("geoserve_cache_hits_total",
		"Result-cache hits across all tiers.",
		func() int64 { mem, disk, _, _, _ := s.cache.Stats(); return mem + disk })
	reg.RegisterCounterFunc("geoserve_cache_memory_hits_total",
		"Result-cache hits answered from the memory LRU.",
		func() int64 { mem, _, _, _, _ := s.cache.Stats(); return mem })
	reg.RegisterCounterFunc("geoserve_cache_disk_hits_total",
		"Result-cache hits promoted from the disk tier.",
		func() int64 { _, disk, _, _, _ := s.cache.Stats(); return disk })
	reg.RegisterCounterFunc("geoserve_cache_misses_total",
		"Result-cache lookups that missed every tier.",
		func() int64 { _, _, miss, _, _ := s.cache.Stats(); return miss })
	reg.RegisterGaugeIntFunc("geoserve_cache_entries",
		"Results currently held in the memory LRU.",
		func() int64 { _, _, _, entries, _ := s.cache.Stats(); return int64(entries) })
	reg.RegisterGaugeIntFunc("geoserve_cache_capacity",
		"Memory LRU capacity in entries.",
		func() int64 { _, _, _, _, capacity := s.cache.Stats(); return int64(capacity) })
	reg.RegisterGaugeIntFunc("geoserve_jobs_pending",
		"Jobs waiting for a validation slot.",
		func() int64 { p, _ := s.jobCounts(); return p })
	reg.RegisterGaugeIntFunc("geoserve_jobs_running",
		"Validations in flight.",
		func() int64 { _, r := s.jobCounts(); return r })
	reg.RegisterGaugeFunc("geoserve_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })

	reg.RegisterSampleFunc("geoserve_build_info",
		"Build information; the value is always 1.", "gauge",
		func() []obs.Sample {
			return []obs.Sample{{
				Labels: []obs.Label{{Name: "version", Value: obs.Version}},
				Value:  1, Int: true,
			}}
		})

	m.validateSeconds = reg.NewHistogram("geoserve_validation_duration_seconds",
		"Wall time of each completed validation.", obs.DurationBuckets)
	m.validateRate = reg.NewHistogram("geoserve_validation_users_per_second",
		"Throughput of each completed validation.", obs.RateBuckets)
	m.uploadBytes = reg.NewHistogram("geoserve_upload_bytes",
		"Accepted upload body sizes in bytes.", obs.SizeBuckets)

	m.httpRequests = reg.NewCounterVec("geoserve_http_requests_total",
		"HTTP requests by route pattern and status code.", "route", "status")
	m.httpSeconds = reg.NewHistogramVec("geoserve_http_request_duration_seconds",
		"HTTP request latency by route pattern and status code.",
		obs.DurationBuckets, "route", "status")

	if spans != nil {
		reg.RegisterSampleFunc("geoserve_stage_ops_total",
			"Pipeline span operations by stage and shard.", "counter",
			func() []obs.Sample { return spanSamples(spans, false) })
		reg.RegisterSampleFunc("geoserve_stage_seconds_total",
			"Pipeline span wall time by stage and shard, summed across workers.", "counter",
			func() []obs.Sample { return spanSamples(spans, true) })
	}
	return m
}

// spanSamples renders the collector's current cells as labeled samples.
func spanSamples(spans *obs.Collector, seconds bool) []obs.Sample {
	stats := spans.Snapshot()
	out := make([]obs.Sample, 0, len(stats))
	for _, st := range stats {
		sm := obs.Sample{Labels: []obs.Label{
			{Name: "stage", Value: st.Stage},
			{Name: "shard", Value: st.Shard},
		}}
		if seconds {
			sm.Value = st.Elapsed.Seconds()
		} else {
			sm.Value = float64(st.Ops)
			sm.Int = true
		}
		out = append(out, sm)
	}
	return out
}

// jobCounts tallies the job table by lifecycle state.
func (s *Server) jobCounts() (pending, running int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		switch j.info.Status {
		case StatusPending:
			pending++
		case StatusRunning:
			running++
		}
	}
	return pending, running
}

// statusWriter captures the response status for the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// observeRequest records one finished HTTP request.
func (m *serverMetrics) observeRequest(route string, status int, elapsed time.Duration) {
	code := strconv.Itoa(status)
	m.httpRequests.With(route, code).Inc()
	m.httpSeconds.With(route, code).Observe(elapsed.Seconds())
}
