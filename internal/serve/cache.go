package serve

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over encoded validation results,
// keyed by dataset checksum. Entries are the serialized bytes of a
// core.StreamResult (core.StreamResult.Encode), so a cached entry can be
// served or decoded without touching the validator, and eviction frees
// the full weight of the result.
//
// The cache is safe for concurrent use. Hit/miss counters feed the
// /metrics endpoint.
type resultCache struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recently used
	byKey        map[string]*list.Element
	hits, misses int64
}

// cacheEntry is one key/value pair on the LRU list.
type cacheEntry struct {
	key string
	val []byte
}

// newResultCache returns an empty cache holding at most capacity
// entries; capacity < 1 is normalized to 1 (a cache that can hold
// nothing would make every repeat request a recomputation).
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and marks the entry most
// recently used. The returned slice is shared — callers must not
// mutate it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) key and evicts the least recently used
// entries beyond capacity.
func (c *resultCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the counters exported by /metrics.
func (c *resultCache) Stats() (hits, misses int64, entries, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.capacity
}
