package serve

import (
	"container/list"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// resultCache is a fixed-capacity memory LRU over encoded validation
// (and analysis) results, keyed by dataset checksum, optionally backed
// by a content-addressed disk tier. Entries are deterministic encodings
// (core.StreamResult.Encode bytes, or presentation-encoded analysis
// JSON), so a cached entry can be served or decoded without touching
// the validator, and eviction frees the full weight of the result.
//
// The disk tier, when configured, is the durable side of the cache:
// every Put also lands in dir as "<key>.json" (written atomically), and
// a Get that misses in memory falls through to the directory and
// promotes what it finds. Memory eviction never touches the files, so
// a restarted server finds its whole result history on disk — the lazy
// reload that lets it answer for bytes it validated in a previous life
// without revalidating them.
//
// The cache is safe for concurrent use. Hit/miss counters feed the
// /metrics endpoint, split by tier: a memory hit and a disk
// fall-through that succeeds are counted separately (the total hit
// count is their sum).
type resultCache struct {
	mu       sync.Mutex
	capacity int
	dir      string // disk tier, "" = memory only
	// maxDiskEntries caps the disk tier in files (oldest pruned on
	// Put); <= 0 means unbounded. diskCount approximates the current
	// file count (overwrites overcount, which only prunes early), so
	// the O(entries) directory walk runs only when the cap is actually
	// exceeded, not on every Put.
	maxDiskEntries int
	diskCount      int
	ll             *list.List // front = most recently used
	byKey          map[string]*list.Element
	// memHits counts Gets answered from the memory LRU, diskHits Gets
	// that fell through to the disk tier and promoted a file. The two
	// tiers have very different costs, so /metrics reports them
	// separately (their sum is the total hit count).
	memHits, diskHits, misses int64
}

// cacheEntry is one key/value pair on the LRU list.
type cacheEntry struct {
	key string
	val []byte
}

// newResultCache returns an empty cache holding at most capacity
// entries in memory, persisting every entry under dir when dir is
// non-empty (the directory is created). Capacity < 1 is normalized to
// 1 (a cache that can hold nothing would make every repeat request a
// recomputation).
func newResultCache(capacity int, dir string) (*resultCache, error) {
	if capacity < 1 {
		capacity = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, err
		}
		// Sweep temp files a crashed predecessor left mid-write; their
		// final entries either exist (rename happened) or will be
		// recomputed.
		if stale, err := filepath.Glob(filepath.Join(dir, "*.tmp-cache")); err == nil {
			for _, p := range stale {
				os.Remove(p)
			}
		}
	}
	return &resultCache{
		capacity:  capacity,
		dir:       dir,
		diskCount: countFiles(dir, ".json"),
		ll:        list.New(),
		byKey:     make(map[string]*list.Element),
	}, nil
}

// countFiles counts dir entries with the suffix (0 for empty dir).
func countFiles(dir, suffix string) int {
	if dir == "" {
		return 0
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), suffix) {
			n++
		}
	}
	return n
}

// entryPath is the disk-tier file for a key. Keys are hex checksums
// (possibly suffixed ".<kind>" for analyses), so they are safe file
// names as-is.
func (c *resultCache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached bytes for key and marks the entry most
// recently used, falling through to the disk tier on a memory miss.
// The mutex is never held across file I/O, so a slow disk read only
// delays its own caller, not every cache user. The returned slice is
// shared — callers must not mutate it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.memHits++
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if data, err := os.ReadFile(c.entryPath(key)); err == nil {
			c.mu.Lock()
			c.diskHits++
			c.insertLocked(key, data)
			c.mu.Unlock()
			return data, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Peek returns the cached bytes for key without touching the hit/miss
// counters, the LRU order, or the memory tier (a disk-tier entry is
// read but not promoted). It serves the server's internal lookups —
// the incremental-update path fetching a previous generation's result
// — so /metrics reflects only client-driven traffic. The returned
// slice is shared — callers must not mutate it.
func (c *resultCache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if data, err := os.ReadFile(c.entryPath(key)); err == nil {
			return data, true
		}
	}
	return nil, false
}

// Put inserts (or refreshes) key in memory, persists it to the disk
// tier (outside the lock), and evicts the least recently used memory
// entries beyond capacity (their disk copies stay).
func (c *resultCache) Put(key string, val []byte) {
	c.mu.Lock()
	c.insertLocked(key, val)
	c.mu.Unlock()
	if c.dir != "" {
		// Best-effort durability: the memory tier already holds the
		// entry, so a failed disk write only costs a future revalidation.
		// The write is atomic (temp + rename), so a concurrent Get of the
		// same key from disk can never observe a torn file.
		path := c.entryPath(key)
		tmp := path + ".tmp-cache"
		if err := os.WriteFile(tmp, val, 0o666); err != nil {
			os.Remove(tmp) // a partial write must not linger
		} else if os.Rename(tmp, path) != nil {
			os.Remove(tmp)
		}
		c.mu.Lock()
		c.diskCount++
		prune := c.maxDiskEntries > 0 && c.diskCount > c.maxDiskEntries
		c.mu.Unlock()
		if prune {
			n := pruneDir(c.dir, ".json", c.maxDiskEntries)
			c.mu.Lock()
			c.diskCount = n
			c.mu.Unlock()
		}
	}
}

// pruneDir bounds a persisted tier: when dir holds more than max files
// with the given suffix, the oldest (by mtime) are removed; the
// remaining count is returned. max <= 0 disables pruning. Pruned
// entries are recomputable — cache entries revalidate from the spool,
// outcome logs regenerate on revalidation — so pruning trades
// recomputation for disk, never correctness.
func pruneDir(dir, suffix string, max int) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	type aged struct {
		path  string
		mtime time.Time
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{filepath.Join(dir, e.Name()), info.ModTime()})
	}
	if max <= 0 || len(files) <= max {
		return len(files)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	removed := 0
	for _, f := range files[:len(files)-max] {
		if os.Remove(f.path) == nil {
			removed++
		}
	}
	return len(files) - removed
}

// pruneSubdirs is pruneDir for directory-valued entries (checkpoint
// run directories): when dir holds more than max subdirectories, the
// oldest (by mtime) are removed whole; the remaining count is
// returned. max <= 0 disables pruning. A pruned run directory only
// costs the interrupted run's partial progress — the next validation
// starts from scratch, never produces a wrong result.
func pruneSubdirs(dir string, max int) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	type aged struct {
		path  string
		mtime time.Time
	}
	var dirs []aged
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		dirs = append(dirs, aged{filepath.Join(dir, e.Name()), info.ModTime()})
	}
	if max <= 0 || len(dirs) <= max {
		return len(dirs)
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].mtime.Before(dirs[j].mtime) })
	removed := 0
	for _, d := range dirs[:len(dirs)-max] {
		if os.RemoveAll(d.path) == nil {
			removed++
		}
	}
	return len(dirs) - removed
}

// Delete drops key from both tiers. Consumers call it when cached
// bytes turn out corrupt (a torn disk write), so the entry never
// poisons its dataset: the next Get misses and the server recomputes
// from the spool, exactly as for an eviction.
func (c *resultCache) Delete(key string) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
	c.mu.Unlock()
	if c.dir != "" {
		if os.Remove(c.entryPath(key)) == nil {
			c.mu.Lock()
			if c.diskCount > 0 {
				c.diskCount--
			}
			c.mu.Unlock()
		}
	}
}

// insertLocked adds key to the memory LRU (caller holds c.mu).
func (c *resultCache) insertLocked(key string, val []byte) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the counters exported by /metrics. Hits are reported
// per tier; the total hit count is their sum.
func (c *resultCache) Stats() (memHits, diskHits, misses int64, entries, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memHits, c.diskHits, c.misses, c.ll.Len(), c.capacity
}
