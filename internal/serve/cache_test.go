package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// mustCache builds a memory-only cache (the disk tier has its own
// tests).
func mustCache(t *testing.T, capacity int) *resultCache {
	t.Helper()
	c, err := newResultCache(capacity, "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestResultCacheEvictsLRU(t *testing.T) {
	c := mustCache(t, 2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a: b is now oldest
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should survive", key)
		}
	}
}

func TestResultCachePutRefreshes(t *testing.T) {
	c := mustCache(t, 2)
	c.Put("a", []byte("A1"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("A2")) // refresh value and recency
	c.Put("c", []byte("C"))  // evicts b, not a
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A2")) {
		t.Fatalf("a = %q, %v", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestResultCacheStats(t *testing.T) {
	c := mustCache(t, 0) // normalized to 1
	c.Put("a", []byte("A"))
	c.Get("a")
	c.Get("nope")
	memHits, diskHits, misses, entries, capacity := c.Stats()
	if memHits != 1 || diskHits != 0 || misses != 1 || entries != 1 || capacity != 1 {
		t.Fatalf("stats = %d/%d/%d/%d/%d", memHits, diskHits, misses, entries, capacity)
	}
}

// TestResultCacheTierHitIndependence pins the per-tier hit split: a
// memory hit moves only the memory counter, a disk promotion only the
// disk counter, and a full miss only the miss counter — the three are
// independent, so /metrics can attribute cache traffic to the tier
// that actually served it.
func TestResultCacheTierHitIndependence(t *testing.T) {
	c, err := newResultCache(1, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B")) // evicts a from memory; both persist on disk
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b missing") // memory hit
	}
	if mem, disk, miss, _, _ := c.Stats(); mem != 1 || disk != 0 || miss != 0 {
		t.Fatalf("after memory hit: %d/%d/%d", mem, disk, miss)
	}
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("a = %q, %v", v, ok) // disk promotion
	}
	if mem, disk, miss, _, _ := c.Stats(); mem != 1 || disk != 1 || miss != 0 {
		t.Fatalf("after disk promotion: %d/%d/%d", mem, disk, miss)
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("phantom entry")
	}
	if mem, disk, miss, _, _ := c.Stats(); mem != 1 || disk != 1 || miss != 1 {
		t.Fatalf("after miss: %d/%d/%d", mem, disk, miss)
	}
}

func TestResultCacheManyKeys(t *testing.T) {
	c := mustCache(t, 8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	_, _, _, entries, _ := c.Stats()
	if entries != 8 {
		t.Fatalf("entries = %d, want 8", entries)
	}
	// Exactly the last 8 inserted survive.
	for i := 92; i < 100; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%03d", i)); !ok || v[0] != byte(i) {
			t.Fatalf("k%03d missing or wrong", i)
		}
	}
}
