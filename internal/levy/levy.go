// Package levy implements the Levy-walk mobility model used in the
// paper's application-impact study (§6.1, after Rhee et al., "On the
// Levy-walk nature of human mobility"): fitting the model's three inputs —
// movement (flight) distance, movement time, and pause time — to a trace,
// and generating synthetic node movement from a fitted model.
//
// Following the paper, movement distance and pause time are fitted to
// Pareto (power-law) distributions and movement time to the relation
// t = k·d^ρexp (a power law of distance, §6.1's "t = k·d^(1-ρ)").
// Checkin-derived traces carry no pause information, so their models
// borrow the GPS-fitted pause distribution — exactly the "conservative
// approach" the paper takes.
package levy

import (
	"fmt"
	"math"

	"geosocial/internal/rng"
	"geosocial/internal/stats"
)

// Flight is one movement leg: a displacement of Dist kilometers taking
// Time minutes.
type Flight struct {
	Dist float64 // km
	Time float64 // minutes
}

// Sample is the trace-derived input to model fitting.
type Sample struct {
	Flights []Flight
	// Pauses are stay durations in minutes; may be empty (checkin traces).
	Pauses []float64
}

// Model is a fitted Levy-walk model.
type Model struct {
	// Name labels the training trace ("gps", "honest-checkin",
	// "all-checkin").
	Name string
	// FlightDist is the Pareto fit of flight length in km.
	FlightDist stats.ParetoFit
	// FlightMax truncates generated flights (km); it is the longest
	// flight observed during fitting.
	FlightMax float64
	// MoveTime is the power-law fit of movement time (min) against
	// distance (km): t = K·d^Exp.
	MoveTime stats.PowerLawFit
	// MoveTimeSpread is the multiplicative log-normal sigma of observed
	// movement times around the fitted relation.
	MoveTimeSpread float64
	// Pause is the Pareto fit of pause time in minutes.
	Pause stats.ParetoFit
	// PauseMax truncates generated pauses (minutes).
	PauseMax float64
}

// FitOptions tune model fitting.
type FitOptions struct {
	// MinFlightKm drops flights shorter than this before fitting (GPS
	// noise floor). Default 0.01 km.
	MinFlightKm float64
	// MinPauseMin drops pauses shorter than this. Default 6 (the visit
	// threshold).
	MinPauseMin float64
	// XmQuantile anchors the Pareto scale parameter at this sample
	// quantile (clamped below by MinFlightKm). Anchoring at a low
	// quantile instead of the global minimum keeps the fitted shape
	// sensitive to where each trace's flight mass actually sits — the
	// mechanism by which the three §6.1 models differ. Default 0.10.
	XmQuantile float64
}

// DefaultFitOptions returns the defaults used throughout the repository.
func DefaultFitOptions() FitOptions {
	return FitOptions{MinFlightKm: 0.01, MinPauseMin: 6, XmQuantile: 0.10}
}

// Fit fits a Levy-walk model to the sample. When the sample has no pauses
// the caller must graft one from a GPS model via WithPauseFrom.
func Fit(name string, sm Sample, opt FitOptions) (*Model, error) {
	if opt.MinFlightKm <= 0 {
		opt.MinFlightKm = 0.01
	}
	if opt.MinPauseMin <= 0 {
		opt.MinPauseMin = 6
	}
	var dists, times []float64
	maxD := 0.0
	for _, f := range sm.Flights {
		if f.Dist < opt.MinFlightKm || f.Time <= 0 {
			continue
		}
		dists = append(dists, f.Dist)
		times = append(times, f.Time)
		if f.Dist > maxD {
			maxD = f.Dist
		}
	}
	if len(dists) < 10 {
		return nil, fmt.Errorf("levy: too few usable flights (%d) fitting %q", len(dists), name)
	}
	xm := opt.MinFlightKm
	if opt.XmQuantile > 0 {
		if q := stats.Quantile(dists, opt.XmQuantile); q > xm {
			xm = q
		}
	}
	fd, err := stats.FitPareto(dists, xm)
	if err != nil {
		return nil, fmt.Errorf("levy: flight fit for %q: %w", name, err)
	}
	mt, err := stats.FitPowerLaw(dists, times)
	if err != nil {
		return nil, fmt.Errorf("levy: move-time fit for %q: %w", name, err)
	}
	m := &Model{
		Name:       name,
		FlightDist: fd,
		FlightMax:  maxD,
		MoveTime:   mt,
	}
	// Residual spread of log(t) around the fit.
	var ss float64
	for i := range dists {
		r := math.Log(times[i]) - math.Log(mt.Eval(dists[i]))
		ss += r * r
	}
	m.MoveTimeSpread = math.Sqrt(ss / float64(len(dists)))

	if len(sm.Pauses) > 0 {
		var ps []float64
		maxP := 0.0
		for _, p := range sm.Pauses {
			if p < opt.MinPauseMin {
				continue
			}
			ps = append(ps, p)
			if p > maxP {
				maxP = p
			}
		}
		if len(ps) >= 10 {
			pf, err := stats.FitPareto(ps, opt.MinPauseMin)
			if err != nil {
				return nil, fmt.Errorf("levy: pause fit for %q: %w", name, err)
			}
			m.Pause = pf
			m.PauseMax = maxP
		}
	}
	return m, nil
}

// HasPause reports whether the model carries a fitted pause distribution.
func (m *Model) HasPause() bool { return m.Pause.Alpha > 0 }

// WithPauseFrom returns a copy of m using the pause distribution of o —
// the paper's treatment of checkin-trained models, which have no pause
// information of their own.
func (m *Model) WithPauseFrom(o *Model) *Model {
	cp := *m
	cp.Pause = o.Pause
	cp.PauseMax = o.PauseMax
	return &cp
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("levy[%s]: flight=%v (max %.1fkm) moveTime=%v pause=%v (max %.0fmin)",
		m.Name, m.FlightDist, m.FlightMax, m.MoveTime, m.Pause, m.PauseMax)
}

// Waypoint is a node position (km in a planar arena) at time T (seconds).
type Waypoint struct {
	T    float64 // seconds since simulation start
	X, Y float64 // km
}

// GenOptions configure synthetic trace generation.
type GenOptions struct {
	// AreaKm is the side length of the square arena.
	AreaKm float64
	// SpawnKm is the side of the central square nodes start in. Zero
	// means spawn across the whole arena.
	SpawnKm float64
	// Duration is the trace length in seconds.
	Duration float64
	// MinSpeedKmh floors implied flight speeds to keep degenerate fits
	// from freezing nodes; zero disables.
	MinSpeedKmh float64
	// MaxSpeedKmh caps implied flight speeds; zero disables. The paper's
	// all-checkin model produces "many more fast moving segments" — this
	// cap mirrors physical plausibility limits without hiding them.
	MaxSpeedKmh float64
}

// DefaultGenOptions returns the MANET experiment's arena: the paper's
// 100 km × 100 km area, one hour of movement, nodes spawned in a central
// 12 km box (a population cluster; with uniform spawning over 10^4 km²
// and a 1 km radio range the network would be born partitioned).
func DefaultGenOptions() GenOptions {
	return GenOptions{
		AreaKm:      100,
		SpawnKm:     12,
		Duration:    3600,
		MinSpeedKmh: 0.5,
		MaxSpeedKmh: 160,
	}
}

// Generate produces per-node waypoint schedules by alternating pause and
// flight phases: pause ~ fitted Pareto, flight length ~ fitted truncated
// Pareto, flight direction uniform, flight duration from the movement-time
// relation with log-normal spread. Flights reflect off arena walls.
func (m *Model) Generate(nodes int, opt GenOptions, s *rng.Stream) ([][]Waypoint, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("levy: nodes must be positive, got %d", nodes)
	}
	if opt.AreaKm <= 0 || opt.Duration <= 0 {
		return nil, fmt.Errorf("levy: invalid generation options %+v", opt)
	}
	if m.FlightDist.Alpha <= 0 {
		return nil, fmt.Errorf("levy: model %q has no flight distribution", m.Name)
	}
	if !m.HasPause() {
		return nil, fmt.Errorf("levy: model %q has no pause distribution (use WithPauseFrom)", m.Name)
	}
	spawn := opt.SpawnKm
	if spawn <= 0 || spawn > opt.AreaKm {
		spawn = opt.AreaKm
	}
	off := (opt.AreaKm - spawn) / 2
	out := make([][]Waypoint, nodes)
	for n := 0; n < nodes; n++ {
		ns := s.Split(fmt.Sprintf("node-%d", n))
		x := off + ns.Float64()*spawn
		y := off + ns.Float64()*spawn
		t := 0.0
		wps := []Waypoint{{T: 0, X: x, Y: y}}
		// Start mid-pause so nodes don't all move at t=0.
		t += m.samplePause(ns) * 60 * ns.Float64()
		wps = append(wps, Waypoint{T: t, X: x, Y: y})
		for t < opt.Duration {
			// Flight.
			d := ns.TruncPareto(m.FlightDist.Xm, m.FlightDist.Alpha, maxF(m.FlightMax, m.FlightDist.Xm*1.01))
			dur := m.sampleMoveTime(d, ns) * 60 // seconds
			if opt.MaxSpeedKmh > 0 {
				if sp := d / (dur / 3600); sp > opt.MaxSpeedKmh {
					dur = d / opt.MaxSpeedKmh * 3600
				}
			}
			if opt.MinSpeedKmh > 0 {
				if sp := d / (dur / 3600); sp < opt.MinSpeedKmh {
					dur = d / opt.MinSpeedKmh * 3600
				}
			}
			theta := ns.Range(0, 2*math.Pi)
			nx, ny := reflect(x+d*math.Cos(theta), opt.AreaKm), reflect(y+d*math.Sin(theta), opt.AreaKm)
			t += dur
			x, y = nx, ny
			wps = append(wps, Waypoint{T: t, X: x, Y: y})
			// Pause.
			t += m.samplePause(ns) * 60
			wps = append(wps, Waypoint{T: t, X: x, Y: y})
		}
		out[n] = wps
	}
	return out, nil
}

func (m *Model) samplePause(s *rng.Stream) float64 {
	max := m.PauseMax
	if max <= m.Pause.Xm {
		max = m.Pause.Xm * 10
	}
	return s.TruncPareto(m.Pause.Xm, m.Pause.Alpha, max)
}

// sampleMoveTime returns the movement time in minutes for a flight of d
// km, from the fitted relation with log-normal residual spread.
func (m *Model) sampleMoveTime(d float64, s *rng.Stream) float64 {
	t := m.MoveTime.Eval(d)
	if m.MoveTimeSpread > 0 {
		t *= math.Exp(s.Norm(0, m.MoveTimeSpread))
	}
	if t < 0.05 {
		t = 0.05
	}
	return t
}

// reflect folds a coordinate back into [0, area] by mirror reflection.
func reflect(v, area float64) float64 {
	for v < 0 || v > area {
		if v < 0 {
			v = -v
		}
		if v > area {
			v = 2*area - v
		}
	}
	return v
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// PositionAt returns the interpolated position of a waypoint schedule at
// time t (clamped to the schedule's ends).
func PositionAt(wps []Waypoint, t float64) (x, y float64) {
	if len(wps) == 0 {
		return 0, 0
	}
	if t <= wps[0].T {
		return wps[0].X, wps[0].Y
	}
	last := wps[len(wps)-1]
	if t >= last.T {
		return last.X, last.Y
	}
	// Binary search for the segment containing t.
	lo, hi := 0, len(wps)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if wps[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := wps[lo], wps[hi]
	if b.T == a.T {
		return b.X, b.Y
	}
	f := (t - a.T) / (b.T - a.T)
	return a.X + (b.X-a.X)*f, a.Y + (b.Y-a.Y)*f
}
