package levy

import (
	"testing"

	"geosocial/internal/geo"
	"geosocial/internal/trace"
)

var base = geo.LatLon{Lat: 34.4208, Lon: -119.6982}

func at(dist float64) geo.LatLon { return geo.Destination(base, 90, dist) }

func TestSampleFromVisits(t *testing.T) {
	vs := []trace.Visit{
		{Start: 0, End: 600, Loc: at(0)},
		{Start: 1200, End: 2400, Loc: at(3000)},
		{Start: 3000, End: 3600, Loc: at(3100)},
	}
	sm := SampleFromVisits(vs)
	if len(sm.Flights) != 2 {
		t.Fatalf("flights = %d, want 2", len(sm.Flights))
	}
	if sm.Flights[0].Dist < 2.9 || sm.Flights[0].Dist > 3.1 {
		t.Errorf("flight 0 dist %.3f km, want ~3", sm.Flights[0].Dist)
	}
	if sm.Flights[0].Time != 10 {
		t.Errorf("flight 0 time %.1f min, want 10", sm.Flights[0].Time)
	}
	if len(sm.Pauses) != 3 {
		t.Fatalf("pauses = %d, want 3", len(sm.Pauses))
	}
	if sm.Pauses[0] != 10 || sm.Pauses[1] != 20 {
		t.Errorf("pauses = %v", sm.Pauses)
	}
}

func TestSampleFromVisitsDropsOvernight(t *testing.T) {
	vs := []trace.Visit{
		{Start: 0, End: 600, Loc: at(0)},
		{Start: 600 + 9*3600, End: 600 + 9*3600 + 600, Loc: at(5000)}, // 9h gap
	}
	sm := SampleFromVisits(vs)
	if len(sm.Flights) != 0 {
		t.Fatalf("overnight leg kept: %+v", sm.Flights)
	}
}

func TestSampleFromCheckins(t *testing.T) {
	cks := trace.CheckinTrace{
		{T: 0, Loc: at(0)},
		{T: 1200, Loc: at(2000)},
		{T: 1800, Loc: at(2000)}, // zero distance: dropped
		{T: 3600, Loc: at(4000)},
	}
	sm := SampleFromCheckins(cks, nil)
	if len(sm.Flights) != 2 {
		t.Fatalf("flights = %d, want 2 (zero-distance leg dropped)", len(sm.Flights))
	}
	if len(sm.Pauses) != 0 {
		t.Error("checkin sample has pauses")
	}
	if sm.Flights[0].Time != 20 {
		t.Errorf("flight 0 time %.1f, want 20", sm.Flights[0].Time)
	}
}

func TestSampleFromCheckinsKeepFilter(t *testing.T) {
	cks := trace.CheckinTrace{
		{T: 0, Loc: at(0)},
		{T: 600, Loc: at(1000)},
		{T: 1200, Loc: at(2000)},
	}
	// Keep only indices 0 and 2: one flight spanning them.
	sm := SampleFromCheckins(cks, func(i int) bool { return i != 1 })
	if len(sm.Flights) != 1 {
		t.Fatalf("flights = %d, want 1", len(sm.Flights))
	}
	if sm.Flights[0].Dist < 1.9 || sm.Flights[0].Dist > 2.1 {
		t.Errorf("flight dist %.3f, want ~2", sm.Flights[0].Dist)
	}
}

func TestSampleFromCheckinsEmpty(t *testing.T) {
	if sm := SampleFromCheckins(nil, nil); len(sm.Flights) != 0 {
		t.Error("empty trace produced flights")
	}
	one := trace.CheckinTrace{{T: 0, Loc: at(0)}}
	if sm := SampleFromCheckins(one, nil); len(sm.Flights) != 0 {
		t.Error("single checkin produced flights")
	}
}
