package levy

import (
	"math"
	"testing"
	"testing/quick"

	"geosocial/internal/rng"
)

// syntheticSample draws flights from a known Pareto with a known
// time-distance power law, plus Pareto pauses.
func syntheticSample(n int, alpha, k, exp float64, seed uint64) Sample {
	s := rng.New(seed)
	sm := Sample{}
	for i := 0; i < n; i++ {
		d := s.Pareto(0.1, alpha)
		tmove := k * math.Pow(d, exp) * math.Exp(s.Norm(0, 0.2))
		sm.Flights = append(sm.Flights, Flight{Dist: d, Time: tmove})
		sm.Pauses = append(sm.Pauses, s.Pareto(6, 1.2))
	}
	return sm
}

func TestFitRecoversParameters(t *testing.T) {
	sm := syntheticSample(30000, 1.5, 3.0, 0.7, 1)
	m, err := Fit("test", sm, FitOptions{MinFlightKm: 0.1, MinPauseMin: 6, XmQuantile: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.FlightDist.Alpha-1.5) > 0.05 {
		t.Errorf("flight alpha %.3f, want ~1.5", m.FlightDist.Alpha)
	}
	if math.Abs(m.MoveTime.Exp-0.7) > 0.05 {
		t.Errorf("move-time exp %.3f, want ~0.7", m.MoveTime.Exp)
	}
	if math.Abs(m.MoveTime.K-3.0)/3.0 > 0.1 {
		t.Errorf("move-time k %.3f, want ~3", m.MoveTime.K)
	}
	if math.Abs(m.Pause.Alpha-1.2) > 0.05 {
		t.Errorf("pause alpha %.3f, want ~1.2", m.Pause.Alpha)
	}
	if !m.HasPause() {
		t.Error("pause distribution missing")
	}
}

func TestFitXmQuantile(t *testing.T) {
	sm := syntheticSample(5000, 1.2, 2, 0.6, 2)
	m, err := Fit("q", sm, FitOptions{MinFlightKm: 0.01, MinPauseMin: 6, XmQuantile: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// Pareto(0.1, 1.2) 25th percentile = 0.1 / 0.75^(1/1.2) ~= 0.127.
	if m.FlightDist.Xm < 0.11 || m.FlightDist.Xm > 0.15 {
		t.Errorf("xm %.3f, want ~0.127", m.FlightDist.Xm)
	}
}

func TestFitTooFewFlights(t *testing.T) {
	sm := Sample{Flights: []Flight{{Dist: 1, Time: 5}}}
	if _, err := Fit("tiny", sm, DefaultFitOptions()); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestWithPauseFrom(t *testing.T) {
	full := syntheticSample(2000, 1.3, 2, 0.6, 3)
	noPause := Sample{Flights: full.Flights}
	m1, err := Fit("nopause", noPause, DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m1.HasPause() {
		t.Fatal("pause present without pause data")
	}
	m2, err := Fit("withpause", full, DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	grafted := m1.WithPauseFrom(m2)
	if !grafted.HasPause() {
		t.Fatal("graft failed")
	}
	if grafted.Pause != m2.Pause {
		t.Error("grafted pause differs")
	}
	if m1.HasPause() {
		t.Error("graft mutated the original")
	}
}

func TestGenerateBasics(t *testing.T) {
	sm := syntheticSample(5000, 1.4, 2, 0.6, 4)
	m, err := Fit("gen", sm, DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := GenOptions{AreaKm: 50, SpawnKm: 10, Duration: 1800, MinSpeedKmh: 0.5, MaxSpeedKmh: 160}
	wps, err := m.Generate(20, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(wps) != 20 {
		t.Fatalf("nodes = %d", len(wps))
	}
	for n, sched := range wps {
		if len(sched) < 2 {
			t.Fatalf("node %d: schedule too short", n)
		}
		last := -1.0
		for _, w := range sched {
			if w.T < last {
				t.Fatalf("node %d: waypoint times not monotone", n)
			}
			last = w.T
			if w.X < 0 || w.X > opt.AreaKm || w.Y < 0 || w.Y > opt.AreaKm {
				t.Fatalf("node %d: waypoint outside arena: %+v", n, w)
			}
		}
		// Schedule must cover the duration.
		if sched[len(sched)-1].T < opt.Duration {
			t.Fatalf("node %d: schedule ends at %.0f < %.0f", n, sched[len(sched)-1].T, opt.Duration)
		}
		// Spawn inside the spawn box.
		off := (opt.AreaKm - opt.SpawnKm) / 2
		if sched[0].X < off || sched[0].X > off+opt.SpawnKm {
			t.Fatalf("node %d spawned outside the box", n)
		}
	}
}

func TestGenerateSpeedCaps(t *testing.T) {
	sm := syntheticSample(5000, 0.9, 0.01, 0.1, 6) // absurdly fast fits
	m, err := Fit("fast", sm, DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := GenOptions{AreaKm: 100, SpawnKm: 20, Duration: 1200, MaxSpeedKmh: 100, MinSpeedKmh: 0.5}
	wps, err := m.Generate(10, opt, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for n, sched := range wps {
		for i := 1; i < len(sched); i++ {
			dt := sched[i].T - sched[i-1].T
			if dt <= 0 {
				continue
			}
			dd := math.Hypot(sched[i].X-sched[i-1].X, sched[i].Y-sched[i-1].Y)
			// Reflection can shorten net displacement, so only the cap
			// (not the floor) is checkable from waypoints.
			if sp := dd / (dt / 3600); sp > 101 {
				t.Fatalf("node %d: speed %.1f km/h exceeds cap", n, sp)
			}
		}
	}
}

func TestGenerateRequiresPause(t *testing.T) {
	sm := Sample{Flights: syntheticSample(2000, 1.3, 2, 0.6, 8).Flights}
	m, err := Fit("np", sm, DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Generate(5, DefaultGenOptions(), rng.New(9)); err == nil {
		t.Fatal("generation without pause distribution accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	sm := syntheticSample(2000, 1.3, 2, 0.6, 10)
	m, _ := Fit("e", sm, DefaultFitOptions())
	if _, err := m.Generate(0, DefaultGenOptions(), rng.New(1)); err == nil {
		t.Error("nodes=0 accepted")
	}
	bad := DefaultGenOptions()
	bad.AreaKm = 0
	if _, err := m.Generate(5, bad, rng.New(1)); err == nil {
		t.Error("area=0 accepted")
	}
}

func TestPositionAt(t *testing.T) {
	wps := []Waypoint{
		{T: 0, X: 0, Y: 0},
		{T: 10, X: 10, Y: 0},
		{T: 20, X: 10, Y: 20},
	}
	x, y := PositionAt(wps, -5)
	if x != 0 || y != 0 {
		t.Error("before-start clamp failed")
	}
	x, y = PositionAt(wps, 5)
	if math.Abs(x-5) > 1e-9 || y != 0 {
		t.Errorf("midpoint = (%g, %g)", x, y)
	}
	x, y = PositionAt(wps, 15)
	if x != 10 || math.Abs(y-10) > 1e-9 {
		t.Errorf("second segment = (%g, %g)", x, y)
	}
	x, y = PositionAt(wps, 99)
	if x != 10 || y != 20 {
		t.Error("after-end clamp failed")
	}
	if x, y := PositionAt(nil, 0); x != 0 || y != 0 {
		t.Error("empty schedule not zero")
	}
}

func TestPositionAtContinuityProperty(t *testing.T) {
	sm := syntheticSample(3000, 1.4, 2, 0.6, 11)
	m, err := Fit("cont", sm, DefaultFitOptions())
	if err != nil {
		t.Fatal(err)
	}
	wps, err := m.Generate(1, GenOptions{AreaKm: 40, SpawnKm: 10, Duration: 900, MinSpeedKmh: 0.5, MaxSpeedKmh: 120}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	sched := wps[0]
	err = quick.Check(func(raw uint16) bool {
		tq := float64(raw) / 65535 * 900
		x1, y1 := PositionAt(sched, tq)
		x2, y2 := PositionAt(sched, tq+0.1)
		// 120 km/h = 0.0333 km in 0.1 s; allow slack.
		return math.Hypot(x2-x1, y2-y1) < 0.05
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReflect(t *testing.T) {
	tests := []struct{ v, area, want float64 }{
		{5, 10, 5},
		{-3, 10, 3},
		{13, 10, 7},
		{25, 10, 5},
		{-12, 10, 8},
	}
	for _, tc := range tests {
		if got := reflect(tc.v, tc.area); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("reflect(%g, %g) = %g, want %g", tc.v, tc.area, got, tc.want)
		}
	}
}

func TestMergeSamples(t *testing.T) {
	a := Sample{Flights: []Flight{{1, 2}}, Pauses: []float64{7}}
	b := Sample{Flights: []Flight{{3, 4}, {5, 6}}}
	m := Merge(a, b)
	if len(m.Flights) != 3 || len(m.Pauses) != 1 {
		t.Fatalf("merge = %+v", m)
	}
}
