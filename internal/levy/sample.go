package levy

import (
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/trace"
	"geosocial/internal/visits"
)

// maxLegGap bounds the inter-event gap treated as one movement: longer
// gaps (overnight, tracking outages) are not flights. Standard Levy-walk
// trace preparation; the paper inherits it from Rhee et al.
const maxLegGap = 8 * time.Hour

// SampleFromVisits builds a fitting sample from one user's detected
// visits: flights between consecutive visits and pauses from visit
// durations. Append samples across users with Merge.
func SampleFromVisits(vs []trace.Visit) Sample {
	segs := visits.Segments(vs, 10, maxLegGap)
	sm := Sample{Flights: make([]Flight, 0, len(segs))}
	for _, sg := range segs {
		sm.Flights = append(sm.Flights, Flight{
			Dist: sg.Dist / 1000,
			Time: sg.Dur.Minutes(),
		})
	}
	sm.Pauses = visits.Pauses(vs)
	return sm
}

// SampleFromCheckins builds a fitting sample from one user's checkin
// trace, treating consecutive checkins as movement endpoints — all the
// location information a checkin trace carries. keep selects the checkin
// indices to include (nil keeps all); pass the honest set to train the
// honest-checkin model. Checkin traces yield no pauses.
func SampleFromCheckins(ck trace.CheckinTrace, keep func(i int) bool) Sample {
	var sm Sample
	prev := -1
	for i := range ck {
		if keep != nil && !keep(i) {
			continue
		}
		if prev >= 0 {
			gap := time.Duration(ck[i].T-ck[prev].T) * time.Second
			if gap > 0 && gap <= maxLegGap {
				d := geo.Distance(ck[prev].Loc, ck[i].Loc)
				if d >= 10 {
					sm.Flights = append(sm.Flights, Flight{
						Dist: d / 1000,
						Time: gap.Minutes(),
					})
				}
			}
		}
		prev = i
	}
	return sm
}

// Merge concatenates samples (per-user samples into a population sample).
func Merge(samples ...Sample) Sample {
	var out Sample
	for _, s := range samples {
		out.Flights = append(out.Flights, s.Flights...)
		out.Pauses = append(out.Pauses, s.Pauses...)
	}
	return out
}
