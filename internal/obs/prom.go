package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): `# HELP` and `# TYPE` lines
// followed by that family's samples, families sorted by name, label
// values escaped per the spec. Histograms emit cumulative
// `_bucket{le="..."}` series ending in `le="+Inf"` equal to `_count`,
// plus `_sum` and `_count`.
//
// Integer-backed samples render as plain decimals (so a test looking
// for `geoserve_uploads_total 1` keeps matching); float samples render
// with %g.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		sb.Reset()
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counter != nil:
			writeIntSample(&sb, f.name, nil, f.counter.Value())
		case f.gauge != nil:
			writeFloatSample(&sb, f.name, nil, f.gauge.Value())
		case f.intFunc != nil:
			writeIntSample(&sb, f.name, nil, f.intFunc())
		case f.floatFunc != nil:
			writeFloatSample(&sb, f.name, nil, f.floatFunc())
		case f.sampleFunc != nil:
			for _, s := range f.sampleFunc() {
				if s.Int {
					writeIntSample(&sb, f.name, s.Labels, int64(s.Value))
				} else {
					writeFloatSample(&sb, f.name, s.Labels, s.Value)
				}
			}
		case f.counterVec != nil:
			for _, k := range f.counterVec.vec.sortedKeys() {
				c := f.counterVec.With(strings.Split(k, "\x00")...)
				writeIntSample(&sb, f.name, f.counterVec.vec.labelsFor(k), c.Value())
			}
		case f.gaugeVec != nil:
			for _, k := range f.gaugeVec.vec.sortedKeys() {
				g := f.gaugeVec.With(strings.Split(k, "\x00")...)
				writeFloatSample(&sb, f.name, f.gaugeVec.vec.labelsFor(k), g.Value())
			}
		case f.histVec != nil:
			hv := f.histVec
			for _, k := range hv.vec.sortedKeys() {
				var base []Label
				var h *Histogram
				if hv.vec.names == nil { // plain histogram registered via NewHistogram
					h = hv.vec.children[k].(*Histogram)
				} else {
					base = hv.vec.labelsFor(k)
					h = hv.With(strings.Split(k, "\x00")...)
				}
				snap := h.Snapshot()
				var cum int64
				for i, ub := range snap.Uppers {
					cum += snap.Counts[i]
					writeIntSample(&sb, f.name+"_bucket", append(append([]Label(nil), base...), Label{"le", formatLe(ub)}), cum)
				}
				writeIntSample(&sb, f.name+"_bucket", append(append([]Label(nil), base...), Label{"le", "+Inf"}), snap.Count)
				writeFloatSample(&sb, f.name+"_sum", base, snap.Sum)
				writeIntSample(&sb, f.name+"_count", base, snap.Count)
			}
		}
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeIntSample(sb *strings.Builder, name string, labels []Label, v int64) {
	sb.WriteString(name)
	writeLabels(sb, labels)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(v, 10))
	sb.WriteByte('\n')
}

func writeFloatSample(sb *strings.Builder, name string, labels []Label, v float64) {
	sb.WriteString(name)
	writeLabels(sb, labels)
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
}

func writeLabels(sb *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// formatFloat renders a sample value: NaN/±Inf per spec, else %g.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound for the le label. Integral bounds
// render without an exponent so buckets read naturally (e.g. 1024).
func formatLe(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
