package obs

// Version identifies the build. It defaults to "dev" and is injected
// at link time for release builds:
//
//	go build -ldflags "-X geosocial/internal/obs.Version=v1.2.3" ./cmd/...
//
// Every cmd binary's -version flag prints it, geoserve exposes it as
// the geoserve_build_info gauge's version label, and /healthz carries
// it in the version field.
var Version = "dev"

// VersionString renders the standard "-version" output for a tool.
func VersionString(tool string) string {
	return tool + " " + Version
}
