// Package obs is the pipeline-wide observability layer: a leveled
// structured logger, a lock-cheap span collector for per-stage /
// per-shard wall-time accounting, and a metrics registry (counters,
// gauges, fixed-bucket histograms) rendered in Prometheus exposition
// format.
//
// The package has no dependencies outside the standard library and no
// dependencies on the rest of this module, so any layer — trace, core,
// serve, the cmd tools — can use it without import cycles.
//
// Everything is nil-safe and zero-cost when disabled: a nil *Logger
// drops every call after one pointer check, a nil *Collector hands out
// nil *Cells whose Observe is a no-op, and the instrumented code paths
// are written so that when observability is off no clock is read and no
// allocation happens. That discipline is what lets instrumentation live
// inside the validation hot path without perturbing the byte-identity
// or performance contracts (see docs/OBSERVABILITY.md).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities. The zero value is LevelInfo, so a
// zero-configured logger behaves like the pre-structured stderr output.
type Level int8

// Log levels, least to most severe. LevelOff is above every level and
// silences the logger entirely.
const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none", "quiet":
		return LevelOff, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error, or off)", s)
}

// LogFormat selects the logger's wire format.
type LogFormat int8

// Logger output formats: key=value text (the default) or one JSON
// object per line.
const (
	FormatText LogFormat = iota
	FormatJSON
)

// ParseLogFormat maps a -log-format flag value to a LogFormat.
func ParseLogFormat(s string) (LogFormat, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("obs: unknown log format %q (want text or json)", s)
}

// Logger is a leveled, structured logger. Construct with NewLogger; a
// nil *Logger is valid and drops everything, which is how callers
// disable logging without branching at every call site.
//
// Lines carry a timestamp, the level, the component name, the message,
// and any key=value fields, in the configured format. Writes are
// serialized by an internal mutex, so one Logger may be shared across
// goroutines (the validation worker pool, HTTP handlers, the spool
// watcher).
type Logger struct {
	mu        sync.Mutex
	w         io.Writer
	level     Level
	format    LogFormat
	component string
	// now is the clock, swappable in tests for deterministic output.
	now func() time.Time
}

// NewLogger builds a Logger writing to w. Component names the emitting
// binary or subsystem and appears on every line; lines below level are
// dropped before any formatting work.
func NewLogger(w io.Writer, level Level, format LogFormat, component string) *Logger {
	return &Logger{w: w, level: level, format: format, component: component, now: time.Now}
}

// Enabled reports whether lines at lv would be emitted. Call sites with
// expensive field construction should gate on it.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.level && l.level < LevelOff
}

// Log emits one line at lv: a message plus alternating key, value
// pairs (values are rendered with %v; a trailing key without a value
// gets "(missing)"). No-op on a nil logger or a suppressed level.
func (l *Logger) Log(lv Level, msg string, keyvals ...any) {
	if !l.Enabled(lv) {
		return
	}
	l.emit(lv, msg, keyvals)
}

// Debugf, Infof, Warnf and Errorf format a message at the respective
// level with no structured fields beyond the standard ones.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args) }

// Infof logs a formatted message at LevelInfo.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args) }

// Warnf logs a formatted message at LevelWarn.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args) }

// Errorf logs a formatted message at LevelError.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args) }

// Printf logs at LevelInfo. Its signature matches the pre-existing
// Logf hooks (serve.Config.Logf, StreamOptions.Logf), so routing the
// old ad-hoc progress lines through the structured logger is one
// assignment: opts.Logf = logger.Printf.
func (l *Logger) Printf(format string, args ...any) { l.logf(LevelInfo, format, args) }

func (l *Logger) logf(lv Level, format string, args []any) {
	if !l.Enabled(lv) {
		return
	}
	l.emit(lv, fmt.Sprintf(format, args...), nil)
}

// emit renders and writes one line. Rendering happens outside the
// mutex; only the write is serialized.
func (l *Logger) emit(lv Level, msg string, keyvals []any) {
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var line []byte
	switch l.format {
	case FormatJSON:
		obj := make(map[string]any, 4+len(keyvals)/2)
		obj["ts"] = ts
		obj["level"] = lv.String()
		if l.component != "" {
			obj["component"] = l.component
		}
		obj["msg"] = msg
		for i := 0; i+1 < len(keyvals); i += 2 {
			obj[fmt.Sprint(keyvals[i])] = jsonValue(keyvals[i+1])
		}
		if len(keyvals)%2 == 1 {
			obj[fmt.Sprint(keyvals[len(keyvals)-1])] = "(missing)"
		}
		// A map marshals with sorted keys, so JSON lines are
		// deterministic for equal inputs.
		b, err := json.Marshal(obj)
		if err != nil { // unmarshalable field value; degrade, never drop
			b, _ = json.Marshal(map[string]any{"ts": ts, "level": lv.String(), "msg": msg, "marshal_error": err.Error()})
		}
		line = append(b, '\n')
	default:
		var sb strings.Builder
		sb.Grow(64 + len(msg))
		sb.WriteString("ts=")
		sb.WriteString(ts)
		sb.WriteString(" level=")
		sb.WriteString(lv.String())
		if l.component != "" {
			sb.WriteString(" component=")
			sb.WriteString(textValue(l.component))
		}
		sb.WriteString(" msg=")
		sb.WriteString(textValue(msg))
		for i := 0; i+1 < len(keyvals); i += 2 {
			sb.WriteByte(' ')
			sb.WriteString(fmt.Sprint(keyvals[i]))
			sb.WriteByte('=')
			sb.WriteString(textValue(fmt.Sprint(keyvals[i+1])))
		}
		if len(keyvals)%2 == 1 {
			sb.WriteByte(' ')
			sb.WriteString(fmt.Sprint(keyvals[len(keyvals)-1]))
			sb.WriteString("=(missing)")
		}
		sb.WriteByte('\n')
		line = []byte(sb.String())
	}
	l.mu.Lock()
	l.w.Write(line) //nolint:errcheck // nothing to do about a failed log write
	l.mu.Unlock()
}

// jsonValue passes JSON-native values through and stringifies the rest
// (errors, Stringers, durations) so lines stay greppable.
func jsonValue(v any) any {
	switch x := v.(type) {
	case nil, bool, string, float64, float32,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64:
		return x
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}

// textValue quotes a key=value text field when it contains whitespace,
// quotes, or control characters; plain tokens stay bare.
func textValue(s string) string {
	for _, r := range s {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			return strconv.Quote(s)
		}
	}
	if s == "" {
		return `""`
	}
	return s
}
