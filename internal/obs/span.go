package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Collector accumulates pipeline spans: per-(stage,shard) operation
// counts and wall time. It is built for the validation hot path — a
// worker fetches its *Cell once per shard (one mutex acquisition) and
// from then on records with two atomic adds per observation, no locks,
// no allocation, no clock reads beyond the caller's own.
//
// A nil *Collector is valid: Stage returns a nil *Cell whose Observe is
// a no-op, so instrumented code needs no enabled/disabled branches.
type Collector struct {
	mu    sync.Mutex
	cells map[cellKey]*Cell
}

type cellKey struct {
	stage, shard string
}

// NewCollector returns an empty span collector.
func NewCollector() *Collector {
	return &Collector{cells: make(map[cellKey]*Cell)}
}

// Stage returns the accumulation cell for a (stage, shard) pair,
// creating it on first use. Callers should hoist this out of loops:
// fetch once per shard, then Observe per record. Returns nil on a nil
// collector.
func (c *Collector) Stage(stage, shard string) *Cell {
	if c == nil {
		return nil
	}
	k := cellKey{stage, shard}
	c.mu.Lock()
	cell := c.cells[k]
	if cell == nil {
		cell = &Cell{stage: stage, shard: shard}
		c.cells[k] = cell
	}
	c.mu.Unlock()
	return cell
}

// Cell accumulates one (stage, shard) pair. All methods are safe for
// concurrent use and safe on a nil receiver.
type Cell struct {
	stage, shard string
	ops          atomic.Int64
	nanos        atomic.Int64
}

// Observe records n operations taking d of wall time. No-op on nil.
func (c *Cell) Observe(n int, d time.Duration) {
	if c == nil {
		return
	}
	c.ops.Add(int64(n))
	c.nanos.Add(int64(d))
}

// SpanStat is one (stage, shard) measurement in a snapshot.
type SpanStat struct {
	Stage   string        `json:"stage"`
	Shard   string        `json:"shard"`
	Ops     int64         `json:"ops"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Snapshot returns every cell's current totals, sorted by stage then
// shard for deterministic output. Cells keep accumulating; the snapshot
// is a consistent-enough point-in-time read (each cell's ops and nanos
// are read independently, which is fine for reporting). Nil-safe.
func (c *Collector) Snapshot() []SpanStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]SpanStat, 0, len(c.cells))
	for _, cell := range c.cells {
		out = append(out, SpanStat{
			Stage:   cell.stage,
			Shard:   cell.shard,
			Ops:     cell.ops.Load(),
			Elapsed: time.Duration(cell.nanos.Load()),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// StageTotal aggregates one stage across every shard.
type StageTotal struct {
	Stage   string        `json:"stage"`
	Ops     int64         `json:"ops"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ShardTotal aggregates one shard across every stage.
type ShardTotal struct {
	Shard   string        `json:"shard"`
	Ops     int64         `json:"ops"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Report is the post-run stage/shard breakdown rendered by
// `geovalidate -report`. Elapsed figures are summed wall time across
// workers, so with W workers a stage's total can exceed run wall time.
type Report struct {
	Spans        []SpanStat    `json:"spans"`
	Stages       []StageTotal  `json:"stages"`
	Shards       []ShardTotal  `json:"shards"`
	SlowestStage string        `json:"slowest_stage,omitempty"`
	SlowestShard string        `json:"slowest_shard,omitempty"`
	TotalOps     int64         `json:"total_ops"`
	TotalElapsed time.Duration `json:"total_elapsed_ns"`
}

// Report aggregates the collector into per-stage and per-shard totals
// and names the slowest of each by summed wall time. Nil-safe; an empty
// collector yields an empty report.
func (c *Collector) Report() Report {
	spans := c.Snapshot()
	var r Report
	r.Spans = spans
	stageIdx := map[string]int{}
	shardIdx := map[string]int{}
	for _, s := range spans {
		i, ok := stageIdx[s.Stage]
		if !ok {
			i = len(r.Stages)
			stageIdx[s.Stage] = i
			r.Stages = append(r.Stages, StageTotal{Stage: s.Stage})
		}
		r.Stages[i].Ops += s.Ops
		r.Stages[i].Elapsed += s.Elapsed
		j, ok := shardIdx[s.Shard]
		if !ok {
			j = len(r.Shards)
			shardIdx[s.Shard] = j
			r.Shards = append(r.Shards, ShardTotal{Shard: s.Shard})
		}
		r.Shards[j].Ops += s.Ops
		r.Shards[j].Elapsed += s.Elapsed
		r.TotalOps += s.Ops
		r.TotalElapsed += s.Elapsed
	}
	sort.Slice(r.Stages, func(i, j int) bool { return r.Stages[i].Elapsed > r.Stages[j].Elapsed })
	sort.Slice(r.Shards, func(i, j int) bool { return r.Shards[i].Elapsed > r.Shards[j].Elapsed })
	if len(r.Stages) > 0 {
		r.SlowestStage = r.Stages[0].Stage
	}
	if len(r.Shards) > 0 {
		r.SlowestShard = r.Shards[0].Shard
	}
	return r
}

// WriteText renders the report as an aligned human-readable breakdown.
func (r Report) WriteText(w io.Writer) error {
	if len(r.Spans) == 0 {
		_, err := fmt.Fprintln(w, "span report: no spans recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "span report: %d ops, %v summed wall time across workers\n", r.TotalOps, r.TotalElapsed.Round(time.Microsecond)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  slowest stage: %s\n  slowest shard: %s\n", r.SlowestStage, r.SlowestShard); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  by stage:"); err != nil {
		return err
	}
	for _, s := range r.Stages {
		if _, err := fmt.Fprintf(w, "    %-18s ops=%-10d elapsed=%v\n", s.Stage, s.Ops, s.Elapsed.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "  by shard:"); err != nil {
		return err
	}
	for _, s := range r.Shards {
		if _, err := fmt.Fprintf(w, "    %-18s ops=%-10d elapsed=%v\n", s.Shard, s.Ops, s.Elapsed.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
