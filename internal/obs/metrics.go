package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric instruments and renders them in
// Prometheus exposition format (see WritePrometheus in prom.go).
// Registration is not hot-path; reads and instrument updates are.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric name: HELP, TYPE, and its samples. Exactly one
// of the sample sources is set.
type family struct {
	name, help, typ string

	counter    *Counter
	gauge      *Gauge
	intFunc    func() int64
	floatFunc  func() float64
	counterVec *CounterVec
	gaugeVec   *GaugeVec
	histVec    *HistogramVec
	sampleFunc func() []Sample
}

// Sample is one labeled sample emitted at scrape time, used by
// RegisterSampleFunc for dynamic label sets (e.g. span exports).
type Sample struct {
	Labels []Label
	Value  float64
	// Int renders the value as a decimal integer instead of %g.
	Int bool
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric registration %q", f.name))
	}
	r.fams[f.name] = f
}

// Counter is a monotonically increasing int64. The zero value is ready
// to use; register it to expose it.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative for the value to stay monotonic.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.add(&family{name: name, help: help, typ: "counter", counter: c})
	return c
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d atomically.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.add(&family{name: name, help: help, typ: "gauge", gauge: g})
	return g
}

// RegisterCounterFunc exposes fn as a counter sampled at scrape time,
// rendered as a decimal integer. Use for values already tracked
// elsewhere (cache hit totals, etc.).
func (r *Registry) RegisterCounterFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, typ: "counter", intFunc: fn})
}

// RegisterGaugeFunc exposes fn as a gauge sampled at scrape time.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, typ: "gauge", floatFunc: fn})
}

// RegisterGaugeIntFunc exposes fn as a gauge rendered as a decimal
// integer (queue depths, entry counts).
func (r *Registry) RegisterGaugeIntFunc(name, help string, fn func() int64) {
	r.add(&family{name: name, help: help, typ: "gauge", intFunc: fn})
}

// RegisterSampleFunc exposes fn as a family of typ ("counter" or
// "gauge") whose labeled samples are produced fresh at each scrape.
// Used for dynamic label sets such as per-stage span totals.
func (r *Registry) RegisterSampleFunc(name, help, typ string, fn func() []Sample) {
	r.add(&family{name: name, help: help, typ: typ, sampleFunc: fn})
}

// labeledVec is the shared child-cache for the *Vec types.
type labeledVec struct {
	mu       sync.Mutex
	names    []string
	children map[string]any
}

func (v *labeledVec) child(values []string, mk func() any) any {
	if len(values) != len(v.names) {
		panic(fmt.Sprintf("obs: got %d label values for %d labels %v", len(values), len(v.names), v.names))
	}
	k := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[k]
	if c == nil {
		c = mk()
		v.children[k] = c
	}
	return c
}

// sortedKeys returns child keys in deterministic order.
func (v *labeledVec) sortedKeys() []string {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.Unlock()
	sort.Strings(keys)
	return keys
}

func (v *labeledVec) labelsFor(key string) []Label {
	values := strings.Split(key, "\x00")
	ls := make([]Label, len(v.names))
	for i, n := range v.names {
		ls[i] = Label{Name: n, Value: values[i]}
	}
	return ls
}

// CounterVec is a counter family with a fixed label-name set.
type CounterVec struct{ vec labeledVec }

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{vec: labeledVec{names: labelNames, children: make(map[string]any)}}
	r.add(&family{name: name, help: help, typ: "counter", counterVec: cv})
	return cv
}

// With returns the counter for the given label values (positional,
// matching the registered label names), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.vec.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with a fixed label-name set.
type GaugeVec struct{ vec labeledVec }

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	gv := &GaugeVec{vec: labeledVec{names: labelNames, children: make(map[string]any)}}
	r.add(&family{name: name, help: help, typ: "gauge", gaugeVec: gv})
	return gv
}

// With returns the gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.vec.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram is a fixed-bucket histogram. Observations and snapshots are
// mutex-guarded so a scrape never sees a torn state: in every snapshot
// Count equals the sum of all bucket counts plus overflow, and Sum is
// consistent with the same set of observations.
type Histogram struct {
	mu sync.Mutex
	// uppers are bucket upper bounds, strictly increasing. counts[i]
	// is the number of observations <= uppers[i] and > uppers[i-1]
	// (per-bucket, cumulated only at render time). overflow counts
	// observations above the last bound (the +Inf bucket's own share).
	uppers   []float64
	counts   []int64
	overflow int64
	sum      float64
	count    int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	placed := false
	for i, ub := range h.uppers {
		if v <= ub {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.overflow++
	}
	h.mu.Unlock()
}

// HistSnapshot is a consistent point-in-time view of a histogram.
type HistSnapshot struct {
	Uppers []float64 // bucket upper bounds
	Counts []int64   // per-bucket (non-cumulative) counts
	// Overflow is the count above the last bound; Count includes it.
	Overflow int64
	Sum      float64
	Count    int64
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	s := HistSnapshot{
		Uppers:   append([]float64(nil), h.uppers...),
		Counts:   append([]int64(nil), h.counts...),
		Overflow: h.overflow,
		Sum:      h.sum,
		Count:    h.count,
	}
	h.mu.Unlock()
	return s
}

func newHistogram(uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing: %v", uppers))
		}
	}
	return &Histogram{uppers: append([]float64(nil), uppers...), counts: make([]int64, len(uppers))}
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, uppers []float64) *Histogram {
	h := newHistogram(uppers)
	hv := &HistogramVec{uppers: h.uppers, vec: labeledVec{children: map[string]any{"": h}}}
	r.add(&family{name: name, help: help, typ: "histogram", histVec: hv})
	return h
}

// HistogramVec is a histogram family with a fixed label-name set. All
// children share one bucket layout.
type HistogramVec struct {
	uppers []float64
	vec    labeledVec
}

// NewHistogramVec registers and returns a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, uppers []float64, labelNames ...string) *HistogramVec {
	hv := &HistogramVec{uppers: append([]float64(nil), uppers...), vec: labeledVec{names: labelNames, children: make(map[string]any)}}
	// Validate bounds once up front.
	newHistogram(hv.uppers)
	r.add(&family{name: name, help: help, typ: "histogram", histVec: hv})
	return hv
}

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	return hv.vec.child(values, func() any { return newHistogram(hv.uppers) }).(*Histogram)
}

// DurationBuckets is a general-purpose latency layout in seconds, from
// 1ms to ~4m, roughly ×4 per step — wide enough for both HTTP requests
// and whole-corpus validation runs.
var DurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 240}

// SizeBuckets is a byte-size layout from 1KiB to 1GiB, ×8 per step.
var SizeBuckets = []float64{1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 25, 1 << 28, 1 << 30}

// RateBuckets is a users-per-second throughput layout.
var RateBuckets = []float64{100, 1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000}
