package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text-exposition payload for the
// structural rules a scraper relies on and returns every violation
// found. It is shared by cmd/metriclint (the CI smoke checker) and the
// serve tests, so the format served on /metrics and the format CI
// accepts can never drift apart.
//
// Checks:
//   - metric and label names match the Prometheus grammar
//   - every sample is preceded by HELP/TYPE lines for its family, each
//     appearing at most once, and families are contiguous
//   - label syntax: quoted values with only \\, \" and \n escapes
//   - sample values parse as Go floats (NaN/+Inf/-Inf allowed)
//   - no duplicate sample (same name + label set)
//   - histogram families: cumulative buckets are monotonically
//     non-decreasing, end in le="+Inf", and the +Inf bucket equals the
//     family's _count sample (per label set)
func LintExposition(payload []byte) []error {
	l := &linter{
		seenSamples: map[string]int{},
		families:    map[string]*lintFamily{},
	}
	lines := strings.Split(string(payload), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			if i != len(lines)-1 {
				l.errf(ln, "blank line inside exposition body")
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			l.meta(ln, line)
			continue
		}
		l.sample(ln, line)
	}
	l.finishHistograms()
	return l.errs
}

type lintFamily struct {
	help, typ bool
	typName   string
	closed    bool // a different family appeared after this one
	// histogram accounting, keyed by non-le label signature
	buckets map[string][]bucketSample
	counts  map[string]float64
	hasCnt  map[string]bool
}

type bucketSample struct {
	le    float64
	leRaw string
	val   float64
	line  int
}

type linter struct {
	errs        []error
	seenSamples map[string]int
	families    map[string]*lintFamily
	current     string // family of the most recent line
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

// fam returns the family record for a base name, creating it.
func (l *linter) fam(name string) *lintFamily {
	f := l.families[name]
	if f == nil {
		f = &lintFamily{buckets: map[string][]bucketSample{}, counts: map[string]float64{}, hasCnt: map[string]bool{}}
		l.families[name] = f
	}
	return f
}

// enter tracks family contiguity: once we move on from a family, it
// must not reappear.
func (l *linter) enter(line int, name string) *lintFamily {
	if l.current != "" && l.current != name {
		l.families[l.current].closed = true
	}
	f := l.fam(name)
	if f.closed {
		l.errf(line, "family %q is not contiguous (reappears after other families)", name)
		f.closed = false // report once
	}
	l.current = name
	return f
}

func (l *linter) meta(line int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		// Plain comments are legal; ignore.
		if strings.HasPrefix(s, "# HELP") || strings.HasPrefix(s, "# TYPE") {
			l.errf(line, "malformed metadata line: %q", s)
		}
		return
	}
	name := fields[2]
	if !metricNameRE.MatchString(name) {
		l.errf(line, "invalid metric name %q in %s line", name, fields[1])
		return
	}
	f := l.enter(line, name)
	switch fields[1] {
	case "HELP":
		if f.help {
			l.errf(line, "duplicate HELP for %q", name)
		}
		f.help = true
	case "TYPE":
		if f.typ {
			l.errf(line, "duplicate TYPE for %q", name)
		}
		if !f.help {
			l.errf(line, "TYPE for %q precedes its HELP line", name)
		}
		f.typ = true
		if len(fields) < 4 {
			l.errf(line, "TYPE line for %q missing type", name)
			return
		}
		f.typName = fields[4-1]
		switch f.typName {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(line, "unknown metric type %q for %q", f.typName, name)
		}
	}
}

// sample parses one sample line: name[{labels}] value [timestamp].
func (l *linter) sample(line int, s string) {
	name := s
	labelPart := ""
	rest := ""
	if i := strings.IndexByte(s, '{'); i >= 0 {
		name = s[:i]
		j := strings.LastIndexByte(s, '}')
		if j < i {
			l.errf(line, "unterminated label set: %q", s)
			return
		}
		labelPart = s[i+1 : j]
		rest = strings.TrimSpace(s[j+1:])
	} else if i := strings.IndexByte(s, ' '); i >= 0 {
		name = s[:i]
		rest = strings.TrimSpace(s[i+1:])
	}
	if !metricNameRE.MatchString(name) {
		l.errf(line, "invalid metric name %q", name)
		return
	}
	base := familyBase(name)
	f := l.enter(line, base)
	if !f.help || !f.typ {
		l.errf(line, "sample %q not preceded by HELP and TYPE for family %q", name, base)
	}
	labels, le, ok := l.parseLabels(line, labelPart)
	if !ok {
		return
	}
	valStr := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 { // optional timestamp
		valStr = rest[:i]
	}
	val, err := parseSampleValue(valStr)
	if err != nil {
		l.errf(line, "sample %q has unparseable value %q", name, valStr)
		return
	}
	sig := name + "{" + labels + "}"
	if le != nil {
		sig += `{le=` + *le + `}`
	}
	if prev, dup := l.seenSamples[sig]; dup {
		l.errf(line, "duplicate sample %s (first at line %d)", sig, prev)
	} else {
		l.seenSamples[sig] = line
	}

	if f.typName == "histogram" {
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == nil {
				l.errf(line, "histogram bucket %q missing le label", name)
				return
			}
			lv, err := parseSampleValue(*le)
			if err != nil {
				l.errf(line, "histogram bucket %q has unparseable le=%q", name, *le)
				return
			}
			f.buckets[labels] = append(f.buckets[labels], bucketSample{le: lv, leRaw: *le, val: val, line: line})
		case strings.HasSuffix(name, "_count"):
			f.counts[labels] = val
			f.hasCnt[labels] = true
		}
	}
}

// parseLabels validates label syntax and returns a canonical signature
// of the non-le labels plus the le value if present.
func (l *linter) parseLabels(line int, s string) (sig string, le *string, ok bool) {
	if s == "" {
		return "", nil, true
	}
	var parts []string
	rest := s
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			l.errf(line, "malformed label pair in %q", s)
			return "", nil, false
		}
		name := rest[:eq]
		if !labelNameRE.MatchString(name) {
			l.errf(line, "invalid label name %q", name)
			return "", nil, false
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			l.errf(line, "label %q value not quoted", name)
			return "", nil, false
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					l.errf(line, "dangling escape in label %q", name)
					return "", nil, false
				}
				nxt := rest[i+1]
				if nxt != '\\' && nxt != '"' && nxt != 'n' {
					l.errf(line, "invalid escape \\%c in label %q", nxt, name)
					return "", nil, false
				}
				val.WriteByte(nxt)
				i++
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			l.errf(line, "unterminated label value for %q", name)
			return "", nil, false
		}
		if name == "le" {
			v := val.String()
			le = &v
		} else {
			parts = append(parts, name+"="+val.String())
		}
		rest = strings.TrimPrefix(rest, ",")
	}
	return strings.Join(parts, ","), le, true
}

// finishHistograms runs the cross-sample histogram checks once every
// line has been seen.
func (l *linter) finishHistograms() {
	for name, f := range l.families {
		if f.typName != "histogram" {
			continue
		}
		for labels, bs := range f.buckets {
			where := name
			if labels != "" {
				where += "{" + labels + "}"
			}
			last := math.Inf(-1)
			prevVal := -1.0
			for _, b := range bs {
				if b.le <= last {
					l.errf(b.line, "histogram %s bucket bounds not increasing (le=%s)", where, b.leRaw)
				}
				last = b.le
				if b.val < prevVal {
					l.errf(b.line, "histogram %s cumulative bucket counts decrease at le=%s", where, b.leRaw)
				}
				prevVal = b.val
			}
			final := bs[len(bs)-1]
			if !math.IsInf(final.le, +1) {
				l.errf(final.line, "histogram %s buckets do not end in le=\"+Inf\"", where)
				continue
			}
			if f.hasCnt[labels] && final.val != f.counts[labels] {
				l.errf(final.line, "histogram %s +Inf bucket (%g) != _count (%g)", where, final.val, f.counts[labels])
			}
			if !f.hasCnt[labels] {
				l.errf(final.line, "histogram %s has buckets but no _count sample", where)
			}
		}
	}
}

// parseSampleValue parses a sample or le value per the exposition spec.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyBase strips the histogram/summary sample suffixes so _bucket,
// _sum and _count lines group under their family name.
func familyBase(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}
