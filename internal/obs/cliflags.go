package obs

// Shared command-line surface: every tool that logs registers the same
// -log-level / -log-format / -quiet / -version flags through CLIFlags,
// so the flags parse identically across binaries and a tool's logger is
// built in one call.

import (
	"flag"
	"fmt"
	"io"
)

// CLIFlags holds the observability flag values for one tool after
// parsing. Register with RegisterCLIFlags, then call PrintVersion and
// Logger once flags are parsed.
type CLIFlags struct {
	tool    string
	level   string
	format  string
	quiet   bool
	version bool
}

// RegisterCLIFlags registers the shared observability flags on fs.
func RegisterCLIFlags(fs *flag.FlagSet, tool string) *CLIFlags {
	c := &CLIFlags{tool: tool}
	fs.StringVar(&c.level, "log-level", "info", "log verbosity: debug, info, warn, error, off")
	fs.StringVar(&c.format, "log-format", "text", "log line format: text (key=value) or json")
	fs.BoolVar(&c.quiet, "quiet", false, "suppress all log output (same as -log-level off)")
	fs.BoolVar(&c.version, "version", false, "print the tool version and exit")
	return c
}

// RegisterVersionFlag registers only -version, for tools that have no
// log output of their own. Pair with PrintVersionIf after parsing.
func RegisterVersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print the tool version and exit")
}

// PrintVersionIf writes "tool version" to w when requested and reports
// whether the caller should exit.
func PrintVersionIf(requested bool, w io.Writer, tool string) bool {
	if requested {
		fmt.Fprintln(w, VersionString(tool))
	}
	return requested
}

// PrintVersion writes "tool version" to w when -version was given and
// reports whether the caller should exit.
func (c *CLIFlags) PrintVersion(w io.Writer) bool {
	return PrintVersionIf(c.version, w, c.tool)
}

// Logger builds the configured logger writing to w (conventionally
// stderr, so reports and JSON documents on stdout stay clean). -quiet
// wins over -log-level.
func (c *CLIFlags) Logger(w io.Writer) (*Logger, error) {
	lv, err := ParseLevel(c.level)
	if err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	if c.quiet {
		lv = LevelOff
	}
	format, err := ParseLogFormat(c.format)
	if err != nil {
		return nil, fmt.Errorf("-log-format: %w", err)
	}
	return NewLogger(w, lv, format, c.tool), nil
}
