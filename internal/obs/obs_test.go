package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
}

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, FormatText, "geotest")
	l.now = fixedClock
	l.Log(LevelInfo, "shard committed", "shard", 3, "users", 1500, "path", "/tmp/a b.gsb")
	got := buf.String()
	want := `ts=2026-08-08T12:00:00.123456789Z level=info component=geotest msg="shard committed" shard=3 users=1500 path="/tmp/a b.gsb"` + "\n"
	if got != want {
		t.Fatalf("text line mismatch\n got: %q\nwant: %q", got, want)
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, FormatJSON, "geotest")
	l.now = fixedClock
	l.Log(LevelWarn, "slow shard", "elapsed", 1500*time.Millisecond, "shard", "shard-0007")
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("JSON line does not parse: %v\nline: %s", err, buf.String())
	}
	for k, want := range map[string]any{
		"level":     "warn",
		"component": "geotest",
		"msg":       "slow shard",
		"elapsed":   "1.5s",
		"shard":     "shard-0007",
	} {
		if obj[k] != want {
			t.Errorf("field %q = %v, want %v", k, obj[k], want)
		}
	}
}

func TestLoggerLevelsAndNil(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, FormatText, "t")
	l.Infof("dropped %d", 1)
	l.Debugf("dropped")
	if buf.Len() != 0 {
		t.Fatalf("below-level lines emitted: %q", buf.String())
	}
	l.Errorf("kept")
	if !strings.Contains(buf.String(), "level=error") {
		t.Fatalf("error line missing: %q", buf.String())
	}
	var nilLogger *Logger
	nilLogger.Infof("must not panic")
	nilLogger.Log(LevelError, "must not panic")
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	off := NewLogger(&buf, LevelOff, FormatText, "t")
	if off.Enabled(LevelError) {
		t.Fatal("LevelOff logger reports enabled at error")
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "": LevelInfo, "warning": LevelWarn, "ERROR": LevelError, "off": LevelOff} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
	if f, err := ParseLogFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseLogFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Error("ParseLogFormat(xml) should fail")
	}
}

func TestCollectorReport(t *testing.T) {
	c := NewCollector()
	c.Stage("match", "shard-0000").Observe(100, 2*time.Second)
	c.Stage("match", "shard-0001").Observe(100, 5*time.Second)
	c.Stage("decode", "shard-0000").Observe(200, time.Second)
	// Re-fetching a cell accumulates into the same counters.
	c.Stage("decode", "shard-0000").Observe(50, time.Second)

	r := c.Report()
	if r.SlowestStage != "match" {
		t.Errorf("slowest stage = %q, want match", r.SlowestStage)
	}
	if r.SlowestShard != "shard-0001" {
		t.Errorf("slowest shard = %q, want shard-0001", r.SlowestShard)
	}
	if r.TotalOps != 450 || r.TotalElapsed != 9*time.Second {
		t.Errorf("totals = %d ops %v, want 450 ops 9s", r.TotalOps, r.TotalElapsed)
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slowest stage: match", "slowest shard: shard-0001", "decode"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if back.TotalOps != 450 {
		t.Errorf("round-tripped TotalOps = %d", back.TotalOps)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	cell := c.Stage("match", "s")
	if cell != nil {
		t.Fatal("nil collector returned non-nil cell")
	}
	cell.Observe(1, time.Second) // must not panic
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector snapshot = %v", got)
	}
	r := c.Report()
	if r.TotalOps != 0 || r.SlowestStage != "" {
		t.Fatalf("nil collector report = %+v", r)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cell := c.Stage("match", "shard")
			for i := 0; i < 1000; i++ {
				cell.Observe(1, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Ops != 8000 || snap[0].Elapsed != 8000*time.Microsecond {
		t.Fatalf("concurrent accumulation lost updates: %+v", snap)
	}
}

func TestHistogramConsistency(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 1, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	var sum int64
	for _, n := range s.Counts {
		sum += n
	}
	if sum+s.Overflow != s.Count {
		t.Fatalf("bucket sum %d + overflow %d != count %d", sum, s.Overflow, s.Count)
	}
	if want := []int64{2, 2, 1}; s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] {
		t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", s.Overflow)
	}
	if s.Sum != 566.5 {
		t.Fatalf("sum = %g, want 566.5", s.Sum)
	}
}

// TestHistogramNoTornReads hammers a histogram from writers while a
// reader snapshots, asserting every snapshot is internally consistent
// (count == Σ buckets + overflow). Run under -race this also proves the
// locking discipline.
func TestHistogramNoTornReads(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64(i % 5))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var sum int64
		for _, n := range s.Counts {
			sum += n
		}
		if sum+s.Overflow != s.Count {
			t.Fatalf("torn snapshot: buckets %d + overflow %d != count %d", sum, s.Overflow, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_events_total", "Total events.")
	c.Add(1000000) // must render as 1000000, not 1e+06
	g := r.NewGauge("test_temperature", "Current temperature.")
	g.Set(36.6)
	r.RegisterCounterFunc("test_func_total", "Sampled at scrape.", func() int64 { return 42 })
	r.RegisterGaugeIntFunc("test_queue_depth", "Queue depth.", func() int64 { return 7 })
	cv := r.NewCounterVec("test_requests_total", "Requests by route.", "route", "status")
	cv.With("/v1/datasets", "200").Add(3)
	cv.With(`/weird"path\n`, "500").Inc()
	h := r.NewHistogram("test_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.RegisterSampleFunc("test_stage_seconds_total", "Span seconds.", "counter", func() []Sample {
		return []Sample{{Labels: []Label{{"stage", "match"}}, Value: 1.25}}
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_events_total Total events.\n# TYPE test_events_total counter\ntest_events_total 1000000\n",
		"test_temperature 36.6\n",
		"test_func_total 42\n",
		"test_queue_depth 7\n",
		`test_requests_total{route="/v1/datasets",status="200"} 3`,
		`test_requests_total{route="/weird\"path\\n",status="500"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55\n",
		"test_latency_seconds_count 3\n",
		`test_stage_seconds_total{stage="match"} 1.25`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
	if errs := LintExposition(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("self-lint failed: %v\n--- payload:\n%s", errs, out)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.NewHistogramVec("test_http_seconds", "Latency by route.", []float64{0.1, 1}, "route", "status")
	hv.With("/a", "200").Observe(0.05)
	hv.With("/a", "200").Observe(2)
	hv.With("/b", "404").Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_http_seconds_bucket{route="/a",status="200",le="+Inf"} 2`,
		`test_http_seconds_count{route="/a",status="200"} 2`,
		`test_http_seconds_bucket{route="/b",status="404",le="0.1"} 0`,
		`test_http_seconds_bucket{route="/b",status="404",le="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got:\n%s", want, out)
		}
	}
	if errs := LintExposition(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("self-lint failed: %v\n--- payload:\n%s", errs, out)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 4000 {
		t.Fatalf("gauge = %g, want 4000", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup_total", "y")
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"missing HELP/TYPE": "orphan_total 1\n",
		"duplicate sample":  "# HELP a_total x\n# TYPE a_total counter\na_total 1\na_total 2\n",
		"non-contiguous family": "# HELP a_total x\n# TYPE a_total counter\na_total 1\n" +
			"# HELP b_total y\n# TYPE b_total counter\nb_total 1\na_total 3\n",
		"bad escape": "# HELP a_total x\n# TYPE a_total counter\n" + `a_total{l="\q"} 1` + "\n",
		"decreasing cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"no +Inf bucket": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\nh_sum 1\nh_count 5\n",
		"+Inf != count": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 1\nh_count 5\n",
		"bad value":      "# HELP a_total x\n# TYPE a_total counter\na_total abc\n",
		"bad name":       "# HELP a_total x\n# TYPE a_total counter\n9bad_total 1\n",
		"duplicate TYPE": "# HELP a_total x\n# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n",
	}
	for name, payload := range cases {
		if errs := LintExposition([]byte(payload)); len(errs) == 0 {
			t.Errorf("%s: lint accepted invalid payload:\n%s", name, payload)
		}
	}
	valid := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total 1\n"
	if errs := LintExposition([]byte(valid)); len(errs) != 0 {
		t.Errorf("lint rejected valid payload: %v", errs)
	}
}

func TestFormatLe(t *testing.T) {
	if got := formatLe(1024); got != "1024" {
		t.Errorf("formatLe(1024) = %q", got)
	}
	if got := formatLe(0.005); got != "0.005" {
		t.Errorf("formatLe(0.005) = %q", got)
	}
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
}

func TestVersionString(t *testing.T) {
	if got := VersionString("geotool"); got != "geotool "+Version {
		t.Errorf("VersionString = %q", got)
	}
}
