package eval

import (
	"fmt"
	"sort"
)

// Runner executes one experiment against a prepared context.
type Runner func(ctx *Context) (*Report, error)

// Registry maps experiment IDs to runners. Fig 8 takes scale parameters;
// the registry entry uses QuickMANET at scales below 0.5 and the paper's
// full setup otherwise.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": Table1,
		"fig1":   Fig1,
		"fig2":   Fig2,
		"fig3":   Fig3,
		"fig4":   Fig4,
		"table2": Table2,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8": func(ctx *Context) (*Report, error) {
			scale := QuickMANET()
			if ctx.Scale >= 0.5 {
				scale = FullMANET()
			}
			return Fig8(ctx, scale, ctx.Seed)
		},
	}
}

// IDs returns the experiment IDs in presentation order.
func IDs() []string {
	ids := []string{"table1", "fig1", "fig2", "fig3", "fig4", "table2", "fig5", "fig6", "fig7", "fig8"}
	reg := Registry()
	if len(ids) != len(reg) {
		// Guard against registry drift.
		var missing []string
		for id := range reg {
			found := false
			for _, known := range ids {
				if id == known {
					found = true
					break
				}
			}
			if !found {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		ids = append(ids, missing...)
	}
	return ids
}

// Run executes one experiment by ID.
func Run(ctx *Context, id string) (*Report, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("eval: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(ctx)
}
