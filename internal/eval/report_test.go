package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"a", "long-column"},
		Rows: [][]string{
			{"x", "1"},
			{"longer-cell", "2"},
		},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	// The "1" and "2" cells must start at the same column.
	h := strings.Index(lines[3], "1")
	r := strings.Index(lines[4], "2")
	if h != r {
		t.Errorf("columns misaligned: %d vs %d\n%s", h, r, buf.String())
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title:  "Fig",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{1, 10, 100},
		Series: []Series{
			{Name: "s1", Y: []float64{0, 50, 100}},
			{Name: "short", Y: []float64{5}}, // shorter than X: renders "-"
		},
	}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"s1", "short", "100", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestReportRender(t *testing.T) {
	r := Report{
		ID:    "test",
		Title: "A title",
		Tables: []Table{{
			Header: []string{"k", "v"},
			Rows:   [][]string{{"a", "b"}},
		}},
		Figures: []Figure{{
			Title: "f", XLabel: "x", YLabel: "y",
			X:      []float64{1},
			Series: []Series{{Name: "s", Y: []float64{2}}},
		}},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== test: A title ===", "note: hello", "k", "s"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFmtNum(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.5, "0.5000"},
		{5, "5.00"},
		{123.4, "123.4"},
		{12345, "1.23e+04"},
		{0.0001, "0.0001"},
	}
	for _, tc := range tests {
		if got := fmtNum(tc.in); got != tc.want {
			t.Errorf("fmtNum(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatalf("IDs (%d) and Registry (%d) out of sync", len(ids), len(Registry()))
	}
	if ids[0] != "table1" || ids[len(ids)-1] != "fig8" {
		t.Errorf("presentation order broken: %v", ids)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run(&Context{}, "nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestNewContextRejectsBadScale(t *testing.T) {
	if _, err := NewContext(0, 1); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if _, err := NewContext(-1, 1); err == nil {
		t.Fatal("negative scale accepted")
	}
}
