package eval

import (
	"fmt"
	"sort"

	"geosocial/internal/classify"
	"geosocial/internal/core"

	"geosocial/internal/poi"
	"geosocial/internal/stats"
	"geosocial/internal/trace"
)

// Paper-published values for side-by-side comparison. All from the
// HotNets'13 text, Table 1/2 and Figures 1–6.
var (
	paperTable1 = map[string][5]float64{
		"primary":  {244, 14.2, 14297, 30835, 2600000},
		"baseline": {47, 20.8, 665, 6300, 558000},
	}
	paperFig1   = struct{ honest, extraneous, missing float64 }{3525, 10772, 27310}
	paperTable2 = map[classify.Kind][4]float64{
		classify.Superfluous: {0.22, 0.07, 0.34, 0.15},
		classify.Remote:      {0.18, 0.49, 0.16, 0.15},
		classify.Driveby:     {-0.10, -0.21, -0.08, 0.21},
		classify.Honest:      {-0.09, -0.42, -0.23, -0.40},
	}
)

// Table1 regenerates Table 1: the dataset statistics rows.
func Table1(ctx *Context) (*Report, error) {
	r := &Report{ID: "table1", Title: "Statistics of the primary and baseline datasets"}
	t := Table{
		Title:  "Table 1",
		Header: []string{"Dataset", "#users", "avg days/user", "#checkins", "#visits", "#GPS points"},
	}
	for _, spec := range []struct {
		ds   *trace.Dataset
		part core.Partition
	}{
		{ctx.Primary, ctx.PrimaryPart},
		{ctx.Baseline, ctx.BaselinePart},
	} {
		visitCount := spec.part.Visits
		sum := spec.ds.Summarize(nil)
		t.Rows = append(t.Rows, []string{
			spec.ds.Name,
			fmt.Sprintf("%d", sum.Users),
			fmt.Sprintf("%.1f", sum.AvgDays),
			fmt.Sprintf("%d", sum.Checkins),
			fmt.Sprintf("%d", visitCount),
			fmt.Sprintf("%d", sum.GPSPoints),
		})
		paper := paperTable1[spec.ds.Name]
		days := UserDays(spec.ds)
		if days > 0 && paper[1] > 0 {
			paperDays := paper[0] * paper[1]
			r.Notes = append(r.Notes,
				note(spec.ds.Name+" checkins/user-day", float64(sum.Checkins)/days, paper[2]/paperDays),
				note(spec.ds.Name+" visits/user-day", float64(visitCount)/days, paper[3]/paperDays),
				note(spec.ds.Name+" GPS points/user-day", float64(sum.GPSPoints)/days, paper[4]/paperDays),
			)
		}
	}
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig1 regenerates Figure 1: the matching Venn partition.
func Fig1(ctx *Context) (*Report, error) {
	p := ctx.PrimaryPart
	r := &Report{ID: "fig1", Title: "Matching results of the primary dataset (Venn partition)"}
	t := Table{
		Title:  "Figure 1",
		Header: []string{"Class", "Count", "Share", "Paper"},
	}
	paperTotalCk := paperFig1.honest + paperFig1.extraneous
	paperTotalVis := paperFig1.honest + paperFig1.missing
	t.Rows = append(t.Rows,
		[]string{"honest checkins", fmt.Sprintf("%d", p.Honest),
			fmt.Sprintf("%.1f%% of checkins", 100*float64(p.Honest)/maxF(float64(p.Checkins), 1)),
			fmt.Sprintf("%.1f%%", 100*paperFig1.honest/paperTotalCk)},
		[]string{"extraneous checkins", fmt.Sprintf("%d", p.Extraneous),
			fmt.Sprintf("%.1f%% of checkins", 100*p.ExtraneousRatio()),
			fmt.Sprintf("%.1f%%", 100*paperFig1.extraneous/paperTotalCk)},
		[]string{"missing checkins (unmatched visits)", fmt.Sprintf("%d", p.Missing),
			fmt.Sprintf("%.1f%% of visits", 100*p.MissingRatio()),
			fmt.Sprintf("%.1f%%", 100*paperFig1.missing/paperTotalVis)},
	)
	r.Tables = append(r.Tables, t)
	r.Notes = append(r.Notes,
		note("extraneous ratio", p.ExtraneousRatio(), 0.753),
		note("visit coverage", p.CoverageRatio(), 0.114),
	)
	if sc, err := core.ScoreAgainstTruth(ctx.PrimaryOuts); err == nil {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"matcher vs generator ground truth: accuracy %.3f, honest precision %.3f, honest recall %.3f (no paper analogue — real data has no labels)",
			sc.Accuracy, sc.HonestP, sc.HonestR))
	}
	return r, nil
}

// interArrivalMinutes extracts consecutive-event gaps (minutes) from one
// user's event times.
func interArrivalMinutes(ts []int64) []float64 {
	var out []float64
	for i := 1; i < len(ts); i++ {
		d := float64(ts[i]-ts[i-1]) / 60
		if d > 0 {
			out = append(out, d)
		}
	}
	return out
}

// Fig2 regenerates Figure 2: CDFs of inter-arrival time for the five
// trace slices. The paper's validation claim: the baseline's full checkin
// trace coincides with the primary's honest subset, while the primary's
// full checkin trace deviates sharply.
func Fig2(ctx *Context) (*Report, error) {
	gather := func(outs []core.UserOutcome, sel func(o core.UserOutcome) []int64) []float64 {
		var all []float64
		for _, o := range outs {
			all = append(all, interArrivalMinutes(sel(o))...)
		}
		return all
	}
	checkinTimes := func(o core.UserOutcome) []int64 {
		ts := make([]int64, len(o.User.Checkins))
		for i, c := range o.User.Checkins {
			ts[i] = c.T
		}
		return ts
	}
	gpsTimes := func(o core.UserOutcome) []int64 {
		ts := make([]int64, len(o.User.GPS))
		for i, p := range o.User.GPS {
			ts[i] = p.T
		}
		return ts
	}
	honestTimes := func(o core.UserOutcome) []int64 {
		matched := make(map[int]bool, len(o.Match.Matches))
		for _, m := range o.Match.Matches {
			matched[m.CheckinIdx] = true
		}
		var ts []int64
		for i, c := range o.User.Checkins {
			if matched[i] {
				ts = append(ts, c.T)
			}
		}
		return ts
	}

	x := stats.LogSpace(0.1, 1000, 30)
	fig := Figure{
		Title:  "Figure 2: CDF of inter-arrival time",
		XLabel: "minutes",
		YLabel: "CDF %",
		X:      x,
	}
	type slice struct {
		name string
		data []float64
	}
	allCkPrimary := gather(ctx.PrimaryOuts, checkinTimes)
	honestPrimary := gather(ctx.PrimaryOuts, honestTimes)
	allCkBaseline := gather(ctx.BaselineOuts, checkinTimes)
	gpsPrimary := gather(ctx.PrimaryOuts, gpsTimes)
	gpsBaseline := gather(ctx.BaselineOuts, gpsTimes)
	for _, s := range []slice{
		{"All Checkin, Primary", allCkPrimary},
		{"GPS, Primary", gpsPrimary},
		{"GPS, Baseline", gpsBaseline},
		{"Honest, Primary", honestPrimary},
		{"All Checkin, Baseline", allCkBaseline},
	} {
		fig.Series = append(fig.Series, Series{Name: s.name, Y: stats.NewCDF(s.data).Points(x)})
	}
	r := &Report{ID: "fig2", Title: "CDF of inter-arrival time (trace validation)"}
	r.Figures = append(r.Figures, fig)

	// KS distances quantify the paper's visual claims.
	ksHonestBaseline := stats.NewCDF(honestPrimary).KS(stats.NewCDF(allCkBaseline))
	ksAllHonest := stats.NewCDF(allCkPrimary).KS(stats.NewCDF(honestPrimary))
	ksGPS := stats.NewCDF(gpsPrimary).KS(stats.NewCDF(gpsBaseline))
	r.Notes = append(r.Notes,
		fmt.Sprintf("KS(honest primary, all-checkin baseline) = %.3f (paper: curves coincide)", ksHonestBaseline),
		fmt.Sprintf("KS(all-checkin primary, honest primary) = %.3f (paper: clearly separated)", ksAllHonest),
		fmt.Sprintf("KS(GPS primary, GPS baseline) = %.3f (paper: near-perfect match)", ksGPS),
	)
	return r, nil
}

// missingSharesTopN returns, per user, the fraction of her missing
// checkins (unmatched visits) located at her top-n most visited POIs.
func missingSharesTopN(outs []core.UserOutcome, n int) []float64 {
	var shares []float64
	for _, o := range outs {
		visitCount := map[int]int{}
		for _, v := range o.Visits {
			visitCount[visitPlaceKey(v)]++
		}
		if len(visitCount) == 0 || len(o.Match.MissingIdx) == 0 {
			continue
		}
		type pc struct{ place, count int }
		var pcs []pc
		for p, c := range visitCount {
			pcs = append(pcs, pc{p, c})
		}
		sort.Slice(pcs, func(i, j int) bool {
			if pcs[i].count != pcs[j].count {
				return pcs[i].count > pcs[j].count
			}
			return pcs[i].place < pcs[j].place
		})
		top := map[int]bool{}
		for i := 0; i < n && i < len(pcs); i++ {
			top[pcs[i].place] = true
		}
		hit := 0
		for _, vi := range o.Match.MissingIdx {
			if top[visitPlaceKey(o.Visits[vi])] {
				hit++
			}
		}
		shares = append(shares, float64(hit)/float64(len(o.Match.MissingIdx)))
	}
	return shares
}

// visitPlaceKey identifies the place of a visit: the snapped POI, or a
// ~200 m location grid cell when no POI was near.
func visitPlaceKey(v trace.Visit) int {
	if v.POIID >= 0 {
		return v.POIID
	}
	const cell = 0.002 // ~200 m in degrees
	gx := int(v.Loc.Lat / cell)
	gy := int(v.Loc.Lon / cell)
	return -(gx*100000 + gy + 1<<20)
}

// Fig3 regenerates Figure 3: CDF across users of the missing-checkin
// share at their top-n most visited POIs, n = 1..5.
func Fig3(ctx *Context) (*Report, error) {
	x := stats.LinSpace(0, 1, 21)
	fig := Figure{
		Title:  "Figure 3: missing-checkin share at top-n POIs",
		XLabel: "share",
		YLabel: "CDF % of users",
		X:      x,
	}
	var top1, top5 []float64
	for n := 1; n <= 5; n++ {
		shares := missingSharesTopN(ctx.PrimaryOuts, n)
		if n == 1 {
			top1 = shares
		}
		if n == 5 {
			top5 = shares
		}
		fig.Series = append(fig.Series, Series{
			Name: fmt.Sprintf("Top-%d", n),
			Y:    stats.NewCDF(shares).Points(x),
		})
	}
	r := &Report{ID: "fig3", Title: "Missing checkins concentrate at top POIs"}
	r.Figures = append(r.Figures, fig)
	fracHalf := fracAtLeast(top5, 0.5)
	frac40 := fracAtLeast(top1, 0.4)
	r.Notes = append(r.Notes,
		note("users with >=50% of missing checkins at top-5 POIs", fracHalf, 0.60),
		note("users with >=40% of missing checkins at top-1 POI", frac40, 0.20),
	)
	return r, nil
}

func fracAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Fig4 regenerates Figure 4: the breakdown of missing checkins over the
// nine POI categories.
func Fig4(ctx *Context) (*Report, error) {
	hist := stats.NewCategoryHistogram(poi.CategoryNames())
	unsnapped := 0
	for _, o := range ctx.PrimaryOuts {
		for _, vi := range o.Match.MissingIdx {
			v := o.Visits[vi]
			if v.POIID < 0 {
				unsnapped++
				continue
			}
			if err := hist.Add(v.Category.String()); err != nil {
				return nil, fmt.Errorf("eval: fig4: %w", err)
			}
		}
	}
	r := &Report{ID: "fig4", Title: "Missing checkins by POI category"}
	t := Table{Title: "Figure 4", Header: []string{"Category", "Share %"}}
	percs := hist.Percentages()
	type kv struct {
		name string
		pct  float64
	}
	var kvs []kv
	for i, name := range hist.Categories() {
		kvs = append(kvs, kv{name, percs[i]})
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%.1f", percs[i])})
	}
	r.Tables = append(r.Tables, t)
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].pct > kvs[j].pct })
	top3 := []string{kvs[0].name, kvs[1].name, kvs[2].name}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"top-3 categories: %v (paper: [Professional Shop Food])", top3))
	if unsnapped > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("%d missing visits had no POI within snap radius (excluded)", unsnapped))
	}
	return r, nil
}

// Table2 regenerates Table 2: Pearson correlations between per-user
// checkin-type ratios and profile features.
func Table2(ctx *Context) (*Report, error) {
	fc, err := classify.CorrelateFeatures(ctx.PrimaryOuts, ctx.Cls)
	if err != nil {
		return nil, fmt.Errorf("eval: table2: %w", err)
	}
	r := &Report{ID: "table2", Title: "Correlation between checkin-type ratio and profile features"}
	t := Table{Title: "Table 2", Header: append([]string{"Checkin type"}, classify.FeatureNames()...)}
	pt := Table{Title: "Table 2 (paper)", Header: t.Header}
	for _, k := range []classify.Kind{classify.Superfluous, classify.Remote, classify.Driveby, classify.Honest} {
		row := []string{k.String()}
		prow := []string{k.String()}
		for i := 0; i < 4; i++ {
			row = append(row, fmt.Sprintf("%+.2f", fc.Rows[k][i]))
			prow = append(prow, fmt.Sprintf("%+.2f", paperTable2[k][i]))
		}
		t.Rows = append(t.Rows, row)
		pt.Rows = append(pt.Rows, prow)
	}
	r.Tables = append(r.Tables, t, pt)

	signAgree := 0
	for _, k := range []classify.Kind{classify.Superfluous, classify.Remote, classify.Driveby, classify.Honest} {
		for i := 0; i < 4; i++ {
			if (fc.Rows[k][i] >= 0) == (paperTable2[k][i] >= 0) {
				signAgree++
			}
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf("sign agreement with paper: %d/16 cells (users: %d)", signAgree, fc.Users))
	return r, nil
}

// Fig5 regenerates Figure 5: the CDF across users of per-kind extraneous
// checkin ratios.
func Fig5(ctx *Context) (*Report, error) {
	x := stats.LinSpace(0, 1, 21)
	fig := Figure{
		Title:  "Figure 5: per-user extraneous checkin ratio",
		XLabel: "ratio",
		YLabel: "CDF % of users",
		X:      x,
	}
	for _, spec := range []struct {
		name string
		k    classify.Kind
	}{
		{"Driveby", classify.Driveby},
		{"Superfluous", classify.Superfluous},
		{"Remote", classify.Remote},
		{"All Extraneous", classify.Kind(-1)},
	} {
		fig.Series = append(fig.Series, Series{
			Name: spec.name,
			Y:    stats.NewCDF(classify.PerUserRatios(ctx.Cls, spec.k)).Points(x),
		})
	}
	r := &Report{ID: "fig5", Title: "Extraneous checkins are widespread across users"}
	r.Figures = append(r.Figures, fig)

	all := classify.PerUserRatios(ctx.Cls, classify.Kind(-1))
	r.Notes = append(r.Notes,
		note("users with extraneous ratio >= 0.8", fracAtLeast(all, 0.8), 0.20),
		note("users with any extraneous checkin", fracAtLeast(all, 1e-9), 0.95),
	)
	ft := classify.ComputeFilterTradeoff(ctx.Cls)
	dropped, honestLost := ft.HonestLossAt(0.8)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"filtering users behind 80%% of extraneous checkins drops %d users and loses %.0f%% of honest checkins (paper: 53%%)",
		dropped, 100*honestLost))
	return r, nil
}

// Fig6 regenerates Figure 6: burstiness — the CDF of inter-arrival time
// per checkin type.
func Fig6(ctx *Context) (*Report, error) {
	x := stats.LogSpace(0.1, 1000, 30)
	fig := Figure{
		Title:  "Figure 6: inter-arrival time by checkin type",
		XLabel: "minutes",
		YLabel: "CDF %",
		X:      x,
	}
	var remoteGaps []float64
	var extraneousUnder1 []float64
	for _, spec := range []struct {
		name string
		k    classify.Kind
	}{
		{"Remote", classify.Remote},
		{"Superfluous", classify.Superfluous},
		{"Driveby", classify.Driveby},
		{"Honest", classify.Honest},
	} {
		gaps := classify.InterArrivals(ctx.PrimaryOuts, ctx.Cls, spec.k)
		if spec.k == classify.Remote {
			remoteGaps = gaps
		}
		if spec.k != classify.Honest {
			extraneousUnder1 = append(extraneousUnder1, gaps...)
		}
		fig.Series = append(fig.Series, Series{Name: spec.name, Y: stats.NewCDF(gaps).Points(x)})
	}
	r := &Report{ID: "fig6", Title: "Extraneous checkins are temporally bursty"}
	r.Figures = append(r.Figures, fig)
	honestGaps := classify.InterArrivals(ctx.PrimaryOuts, ctx.Cls, classify.Honest)
	r.Notes = append(r.Notes,
		note("extraneous inter-arrivals < 1 min", stats.NewCDF(extraneousUnder1).Eval(1), 0.35),
		note("extraneous inter-arrivals < 10 min", stats.NewCDF(extraneousUnder1).Eval(10), 0.55),
		note("honest inter-arrivals < 10 min", stats.NewCDF(honestGaps).Eval(10), 0.10),
		fmt.Sprintf("remote gap sample size: %d", len(remoteGaps)),
	)
	return r, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
