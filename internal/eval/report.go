// Package eval is the experiment harness: one runner per table and figure
// in the paper's evaluation, producing the same rows and series the paper
// reports, with the paper's published values alongside for comparison.
//
// Experiment IDs: table1, fig1, fig2, fig3, fig4, table2, fig5, fig6,
// fig7, fig8 — see DESIGN.md §4 for the index.
package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named line of a figure: y values over the shared x grid.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a set of series over a common x axis, rendered as columns.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Render writes the figure as an aligned column listing (x followed by
// one column per series).
func (f *Figure) Render(w io.Writer) error {
	t := Table{Title: fmt.Sprintf("%s   [y: %s]", f.Title, f.YLabel)}
	t.Header = append(t.Header, f.XLabel)
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Name)
	}
	for i, x := range f.X {
		row := []string{fmtNum(x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmtNum(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t.Render(w)
}

func fmtNum(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1000 || av < 0.001:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Report is the outcome of one experiment runner.
type Report struct {
	ID      string
	Title   string
	Tables  []Table
	Figures []Figure
	// Notes carries measured-vs-paper comparison lines.
	Notes []string
}

// Render writes the full report.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %s ===\n", r.ID, r.Title); err != nil {
		return err
	}
	for i := range r.Tables {
		if err := r.Tables[i].Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for i := range r.Figures {
		if err := r.Figures[i].Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// note formats a measured-vs-paper comparison line.
func note(what string, measured, paper float64) string {
	return fmt.Sprintf("%s: measured %.3g (paper %.3g)", what, measured, paper)
}
