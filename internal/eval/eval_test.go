package eval

import (
	"bytes"
	"strings"
	"testing"
)

// sharedCtx is built once: context construction dominates test time.
var sharedCtx *Context

func getCtx(t *testing.T) *Context {
	t.Helper()
	if sharedCtx == nil {
		ctx, err := NewContext(0.15, 11)
		if err != nil {
			t.Fatal(err)
		}
		sharedCtx = ctx
	}
	return sharedCtx
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is slow")
	}
	ctx := getCtx(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Errorf("report ID %q, want %q", rep.ID, id)
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("empty rendering")
			}
			for _, n := range rep.Notes {
				t.Log(n)
			}
			if strings.Contains(buf.String(), "WARNING") {
				t.Errorf("paper shape violated:\n%s", strings.Join(rep.Notes, "\n"))
			}
		})
	}
}

func TestFig1Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	p := ctx.PrimaryPart
	if er := p.ExtraneousRatio(); er < 0.6 || er > 0.88 {
		t.Errorf("extraneous ratio %.3f outside paper band [0.60, 0.88]", er)
	}
	if cov := p.CoverageRatio(); cov < 0.05 || cov > 0.22 {
		t.Errorf("coverage %.3f outside paper band [0.05, 0.22]", cov)
	}
	if mr := p.MissingRatio(); mr < 0.78 || mr > 0.95 {
		t.Errorf("missing ratio %.3f outside paper band [0.78, 0.95]", mr)
	}
}

func TestFig2HonestMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	rep, err := Fig2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core validation: honest-primary and all-checkin-baseline
	// inter-arrival distributions coincide, while all-checkin-primary
	// deviates. KS distances appear in the notes; recompute them directly
	// off the figure series for a sharper check: at every x, honest
	// primary must be closer to the baseline than all-checkin primary is.
	fig := rep.Figures[0]
	var allP, honP, allB []float64
	for _, s := range fig.Series {
		switch s.Name {
		case "All Checkin, Primary":
			allP = s.Y
		case "Honest, Primary":
			honP = s.Y
		case "All Checkin, Baseline":
			allB = s.Y
		}
	}
	var devHonest, devAll float64
	for i := range allB {
		devHonest += abs(honP[i] - allB[i])
		devAll += abs(allP[i] - allB[i])
	}
	if devHonest >= devAll {
		t.Errorf("honest-primary deviates more from baseline (%.1f) than all-checkin (%.1f)", devHonest, devAll)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig3Concentration(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	top5 := missingSharesTopN(ctx.PrimaryOuts, 5)
	if got := fracAtLeast(top5, 0.5); got < 0.35 {
		t.Errorf("only %.2f of users have half their missing checkins at top-5 POIs (paper ~0.60)", got)
	}
	top1 := missingSharesTopN(ctx.PrimaryOuts, 1)
	if got := fracAtLeast(top1, 0.4); got < 0.05 {
		t.Errorf("only %.2f of users have 40%% of missing checkins at top-1 POI (paper ~0.20)", got)
	}
}

func TestTable2SignStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	ctx := getCtx(t)
	rep, err := Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The note reports sign agreement; demand a solid majority. Small
	// populations make individual weak cells (|r| < 0.1 in the paper)
	// noisy, so 11/16 is the floor.
	var agree int
	if _, err := fmtSscanf(rep.Notes[len(rep.Notes)-1], &agree); err != nil {
		t.Fatalf("cannot parse sign agreement from %q", rep.Notes[len(rep.Notes)-1])
	}
	if agree < 11 {
		t.Errorf("sign agreement %d/16 below 11", agree)
	}
}

// fmtSscanf extracts the leading integer of the "sign agreement with
// paper: N/16 cells" note.
func fmtSscanf(s string, out *int) (int, error) {
	idx := strings.Index(s, ": ")
	if idx < 0 {
		return 0, errParse
	}
	var n int
	_, err := sscan(s[idx+2:], &n)
	if err != nil {
		return 0, err
	}
	*out = n
	return 1, nil
}

var errParse = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "parse error" }

func sscan(s string, out *int) (int, error) {
	n := 0
	seen := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
			seen = true
			continue
		}
		break
	}
	if !seen {
		return 0, errParse
	}
	*out = n
	return 1, nil
}
