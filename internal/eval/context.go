package eval

import (
	"fmt"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// Context holds the generated datasets and the shared pipeline outputs
// (visits, matches, classifications) every experiment consumes. Building
// it once amortizes the expensive stages across experiments.
type Context struct {
	// Scale is the population scale relative to the paper's study
	// (1.0 = 244 primary + 47 baseline users).
	Scale float64
	Seed  uint64

	Primary  *trace.Dataset
	Baseline *trace.Dataset

	PrimaryOuts  []core.UserOutcome
	PrimaryPart  core.Partition
	BaselineOuts []core.UserOutcome
	BaselinePart core.Partition

	Cls []*classify.Classification // primary, parallel to PrimaryOuts
}

// NewContext generates both datasets at the given scale and runs the full
// §4–§5 pipeline on them.
func NewContext(scale float64, seed uint64) (*Context, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("eval: scale must be positive, got %g", scale)
	}
	ctx := &Context{Scale: scale, Seed: seed}
	root := rng.New(seed)

	var err error
	ctx.Primary, err = synth.Generate(synth.PrimaryConfig().Scale(scale), root.Split("primary"))
	if err != nil {
		return nil, fmt.Errorf("eval: generate primary: %w", err)
	}
	ctx.Baseline, err = synth.Generate(synth.BaselineConfig().Scale(scale), root.Split("baseline"))
	if err != nil {
		return nil, fmt.Errorf("eval: generate baseline: %w", err)
	}

	v := core.NewValidator()
	ctx.PrimaryOuts, ctx.PrimaryPart, err = v.ValidateDataset(ctx.Primary)
	if err != nil {
		return nil, fmt.Errorf("eval: validate primary: %w", err)
	}
	ctx.BaselineOuts, ctx.BaselinePart, err = v.ValidateDataset(ctx.Baseline)
	if err != nil {
		return nil, fmt.Errorf("eval: validate baseline: %w", err)
	}

	ctx.Cls, err = classify.ClassifyAll(ctx.PrimaryOuts, classify.DefaultParams())
	if err != nil {
		return nil, fmt.Errorf("eval: classify primary: %w", err)
	}
	return ctx, nil
}

// UserDays returns the total user-days of a dataset.
func UserDays(ds *trace.Dataset) float64 {
	var days float64
	for _, u := range ds.Users {
		days += u.Days
	}
	return days
}
