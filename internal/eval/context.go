package eval

import (
	"fmt"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/par"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// Context holds the generated datasets and the shared pipeline outputs
// (visits, matches, classifications) every experiment consumes. Building
// it once amortizes the expensive stages across experiments.
type Context struct {
	// Scale is the population scale relative to the paper's study
	// (1.0 = 244 primary + 47 baseline users).
	Scale float64
	Seed  uint64

	Primary  *trace.Dataset
	Baseline *trace.Dataset

	PrimaryOuts  []core.UserOutcome
	PrimaryPart  core.Partition
	BaselineOuts []core.UserOutcome
	BaselinePart core.Partition

	Cls []*classify.Classification // primary, parallel to PrimaryOuts
}

// NewContext generates both datasets at the given scale and runs the full
// §4–§5 pipeline on them, with the default worker count (GOMAXPROCS).
func NewContext(scale float64, seed uint64) (*Context, error) {
	return NewContextWorkers(scale, seed, 0)
}

// NewContextWorkers is NewContext with an explicit worker count for every
// pipeline stage (<= 0 selects GOMAXPROCS, 1 the serial path). The context
// is identical for any value: random streams are split serially before any
// fan-out, and the two datasets are validated concurrently but reduced
// into fixed fields.
func NewContextWorkers(scale float64, seed uint64, workers int) (*Context, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("eval: scale must be positive, got %g", scale)
	}
	root := rng.New(seed)

	primaryCfg := synth.PrimaryConfig().Scale(scale)
	primaryCfg.Parallelism = workers
	baselineCfg := synth.BaselineConfig().Scale(scale)
	baselineCfg.Parallelism = workers

	primary, err := synth.Generate(primaryCfg, root.Split("primary"))
	if err != nil {
		return nil, fmt.Errorf("eval: generate primary: %w", err)
	}
	baseline, err := synth.Generate(baselineCfg, root.Split("baseline"))
	if err != nil {
		return nil, fmt.Errorf("eval: generate baseline: %w", err)
	}
	ctx, err := NewContextFromDatasets(primary, baseline, workers)
	if err != nil {
		return nil, err
	}
	ctx.Scale, ctx.Seed = scale, seed
	return ctx, nil
}

// NewContextFromDatasets runs the shared §4–§5 pipeline (validation of
// both datasets, classification of the primary) over already-generated
// datasets. The two datasets are validated concurrently, each with the
// worker budget split so the total stays within an explicit cap; results
// are identical for any worker count.
func NewContextFromDatasets(primary, baseline *trace.Dataset, workers int) (*Context, error) {
	ctx := &Context{Primary: primary, Baseline: baseline}

	v := core.NewValidator()
	datasets := []*trace.Dataset{primary, baseline}
	v.Parallelism = par.SplitBudget(workers, len(datasets))
	outs := make([][]core.UserOutcome, len(datasets))
	parts := make([]core.Partition, len(datasets))
	err := par.ForErr(workers, len(datasets), func(i int) error {
		var err error
		outs[i], parts[i], err = v.ValidateDataset(datasets[i])
		if err != nil {
			return fmt.Errorf("eval: validate %s: %w", datasets[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.PrimaryOuts, ctx.PrimaryPart = outs[0], parts[0]
	ctx.BaselineOuts, ctx.BaselinePart = outs[1], parts[1]

	clsParams := classify.DefaultParams()
	clsParams.Parallelism = workers
	ctx.Cls, err = classify.ClassifyAll(ctx.PrimaryOuts, clsParams)
	if err != nil {
		return nil, fmt.Errorf("eval: classify primary: %w", err)
	}
	return ctx, nil
}

// UserDays returns the total user-days of a dataset.
func UserDays(ds *trace.Dataset) float64 {
	var days float64
	for _, u := range ds.Users {
		days += u.Days
	}
	return days
}
