package eval

import (
	"fmt"
	"math"

	"geosocial/internal/levy"
	"geosocial/internal/manet"
	"geosocial/internal/rng"
	"geosocial/internal/stats"
)

// MANETScale shrinks the Figure 8 experiment for fast runs: 1.0 is the
// paper's full setup (200 nodes, 100 flows, 3600 s).
type MANETScale struct {
	Nodes    int
	Flows    int
	Duration float64
}

// FullMANET is the paper's §6.2 configuration.
func FullMANET() MANETScale { return MANETScale{Nodes: 200, Flows: 100, Duration: 3600} }

// QuickMANET is a reduced configuration for tests and examples.
func QuickMANET() MANETScale { return MANETScale{Nodes: 60, Flows: 25, Duration: 600} }

// MANETResult bundles one model's simulation outcome.
type MANETResult struct {
	Model   string
	Metrics *manet.Metrics
}

// RunMANET fits the three mobility models, generates synthetic movement
// for each, and runs the AODV simulation three times (§6.2).
func RunMANET(ctx *Context, scale MANETScale, seed uint64) ([]MANETResult, error) {
	models, err := FitModels(ctx.PrimaryOuts)
	if err != nil {
		return nil, err
	}
	var out []MANETResult
	for _, m := range []*levy.Model{models.GPS, models.Honest, models.All} {
		root := rng.New(seed).Split("manet-" + m.Name)
		gen := levy.DefaultGenOptions()
		gen.Duration = scale.Duration
		// Spawn density targets ~5 initial neighbors per node regardless
		// of the node-count scale (the paper's 200-node cluster): dense
		// enough for a giant component, sparse enough that the GPS
		// model's dispersal visibly degrades connectivity over the run.
		gen.SpawnKm = math.Sqrt(float64(scale.Nodes) * math.Pi / 5.0)
		wps, err := m.Generate(scale.Nodes, gen, root.Split("mobility"))
		if err != nil {
			return nil, fmt.Errorf("eval: generate mobility for %q: %w", m.Name, err)
		}
		cfg := manet.DefaultConfig()
		cfg.Nodes = scale.Nodes
		cfg.Flows = scale.Flows
		cfg.Duration = scale.Duration
		sm, err := manet.NewSimulator(cfg, &manet.WaypointMobility{Schedules: wps}, root.Split("sim"))
		if err != nil {
			return nil, fmt.Errorf("eval: simulator for %q: %w", m.Name, err)
		}
		metrics, err := sm.Run()
		if err != nil {
			return nil, fmt.Errorf("eval: run for %q: %w", m.Name, err)
		}
		out = append(out, MANETResult{Model: m.Name, Metrics: metrics})
	}
	return out, nil
}

// Fig8 regenerates Figure 8: the MANET application metrics under the
// three fitted mobility models — (a) route change frequency, (b) route
// availability ratio, (c) routing overhead.
func Fig8(ctx *Context, scale MANETScale, seed uint64) (*Report, error) {
	results, err := RunMANET(ctx, scale, seed)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig8", Title: fmt.Sprintf("MANET performance (%d nodes, %d flows, %.0fs)", scale.Nodes, scale.Flows, scale.Duration)}

	xa := stats.LinSpace(0, 0.8, 17)
	figA := Figure{Title: "Figure 8(a): route change frequency", XLabel: "changes/min", YLabel: "CDF %", X: xa}
	xb := stats.LinSpace(0, 1, 21)
	figB := Figure{Title: "Figure 8(b): route availability ratio", XLabel: "ratio", YLabel: "CDF %", X: xb}
	xc := stats.LinSpace(0, 50, 26)
	figC := Figure{Title: "Figure 8(c): routing overhead", XLabel: "route pkts per data pkt", YLabel: "CDF %", X: xc}

	// Summary statistics per model: [mean changes/min, mean availability,
	// median overhead]. The overhead comparison uses the median because
	// Figure 8(c)'s axis spans 0–50 route packets per data packet — the
	// visible mass — while the mean is dominated by permanently
	// partitioned flows whose per-delivered ratio diverges.
	summ := map[string][3]float64{}
	for _, res := range results {
		m := res.Metrics
		figA.Series = append(figA.Series, Series{Name: res.Model, Y: stats.NewCDF(m.RouteChangesPerMin).Points(xa)})
		figB.Series = append(figB.Series, Series{Name: res.Model, Y: stats.NewCDF(m.Availability).Points(xb)})
		figC.Series = append(figC.Series, Series{Name: res.Model, Y: stats.NewCDF(m.Overhead).Points(xc)})
		summ[res.Model] = [3]float64{
			stats.Mean(m.RouteChangesPerMin),
			stats.Mean(m.Availability),
			stats.Quantile(m.Overhead, 0.5),
		}
		r.Notes = append(r.Notes, fmt.Sprintf("%s: %v", res.Model, m))
	}
	r.Figures = append(r.Figures, figA, figB, figC)

	gps, honest, all := summ["gps"], summ["honest-checkin"], summ["all-checkin"]
	r.Notes = append(r.Notes,
		fmt.Sprintf("mean route changes/min: gps=%.3f honest=%.3f all=%.3f (paper: honest lowest)", gps[0], honest[0], all[0]),
		fmt.Sprintf("mean availability: gps=%.3f honest=%.3f all=%.3f (paper: honest ~2x GPS)", gps[1], honest[1], all[1]),
		fmt.Sprintf("median overhead: gps=%.3f honest=%.3f all=%.3f (paper: GPS highest, honest lowest)", gps[2], honest[2], all[2]),
	)
	if honest[1] <= gps[1] {
		r.Notes = append(r.Notes, "WARNING: honest-checkin availability not above GPS (paper shape violated)")
	}
	if honest[2] >= gps[2] {
		r.Notes = append(r.Notes, "WARNING: honest-checkin median overhead not below GPS (paper shape violated)")
	}
	if honest[0] >= gps[0] {
		r.Notes = append(r.Notes, "WARNING: honest-checkin route changes not below GPS (paper shape violated)")
	}
	return r, nil
}
