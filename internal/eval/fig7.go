package eval

import (
	"fmt"
	"math"
	"sort"

	"geosocial/internal/core"
	"geosocial/internal/levy"
	"geosocial/internal/stats"
)

// Models bundles the three fitted Levy-walk models of §6.1.
type Models struct {
	GPS    *levy.Model
	Honest *levy.Model
	All    *levy.Model
}

// FitModels trains the three mobility models exactly as §6.1 describes:
// the GPS model from detected visits (flights, pauses), the
// honest-checkin model from matched checkins only, and the all-checkin
// model from the full checkin trace; the checkin models borrow the GPS
// pause distribution.
func FitModels(outs []core.UserOutcome) (*Models, error) {
	gpsSm, honestSm, allSm := modelSamples(outs)
	return FitModelsFromSamples(gpsSm, honestSm, allSm)
}

// modelSamples builds the three §6.1 fitting samples from per-user
// outcomes, merging users in slice order.
func modelSamples(outs []core.UserOutcome) (gpsSm, honestSm, allSm levy.Sample) {
	for _, o := range outs {
		gpsSm = levy.Merge(gpsSm, levy.SampleFromVisits(o.Visits))
		matched := make(map[int]bool, len(o.Match.Matches))
		for _, m := range o.Match.Matches {
			matched[m.CheckinIdx] = true
		}
		honestSm = levy.Merge(honestSm, levy.SampleFromCheckins(o.User.Checkins,
			func(i int) bool { return matched[i] }))
		allSm = levy.Merge(allSm, levy.SampleFromCheckins(o.User.Checkins, nil))
	}
	return gpsSm, honestSm, allSm
}

// FitModelsFromSamples is FitModels over pre-built samples — the entry
// point for callers that assemble the per-user flight and pause samples
// themselves, such as the outcome-log analysis path, which stores
// exactly these samples per user. Fitting a sample assembled in the
// same user order as FitModels yields exactly the same models.
func FitModelsFromSamples(gpsSm, honestSm, allSm levy.Sample) (*Models, error) {
	opt := levy.DefaultFitOptions()
	gps, err := levy.Fit("gps", gpsSm, opt)
	if err != nil {
		return nil, fmt.Errorf("eval: fit gps model: %w", err)
	}
	honest, err := levy.Fit("honest-checkin", honestSm, opt)
	if err != nil {
		return nil, fmt.Errorf("eval: fit honest model: %w", err)
	}
	all, err := levy.Fit("all-checkin", allSm, opt)
	if err != nil {
		return nil, fmt.Errorf("eval: fit all-checkin model: %w", err)
	}
	return &Models{
		GPS:    gps,
		Honest: honest.WithPauseFrom(gps),
		All:    all.WithPauseFrom(gps),
	}, nil
}

// Fig7 regenerates Figure 7: the mobility-model fitting plots — (a)
// movement distance PDF with Pareto fits, (b) movement time vs distance
// with power-law fits, (c) pause time PDF with its fit.
func Fig7(ctx *Context) (*Report, error) {
	gpsSm, honestSm, allSm := modelSamples(ctx.PrimaryOuts)
	return Fig7FromSamples(gpsSm, honestSm, allSm)
}

// Fig7FromSamples is Fig7 over pre-built fitting samples (see
// FitModelsFromSamples); the outcome-log path regenerates the figure
// without per-user outcomes in memory.
func Fig7FromSamples(gpsSm, honestSm, allSm levy.Sample) (*Report, error) {
	models, err := FitModelsFromSamples(gpsSm, honestSm, allSm)
	if err != nil {
		return nil, err
	}
	gpsFl, honestFl, allFl := gpsSm.Flights, honestSm.Flights, allSm.Flights

	r := &Report{ID: "fig7", Title: "Levy-walk model fitting on honest-checkin, all-checkin and GPS traces"}

	// (a) Movement distance PDF, log-binned 0.01–1000 km, plus fits.
	xa := stats.LogSpace(0.01, 1000, 25)
	figA := Figure{Title: "Figure 7(a): movement distance PDF", XLabel: "km", YLabel: "PDF", X: xa}
	for _, spec := range []struct {
		name    string
		flights []levy.Flight
		model   *levy.Model
	}{
		{"Honest-Ckin", honestFl, models.Honest},
		{"GPS", gpsFl, models.GPS},
		{"All-Ckin", allFl, models.All},
	} {
		hist := stats.NewLogHistogram(0.01, 1000, 24)
		for _, f := range spec.flights {
			hist.Add(f.Dist)
		}
		pdf := hist.PDF()
		centers := hist.Centers()
		// Interpolate histogram PDF onto the x grid (nearest bin).
		y := make([]float64, len(xa))
		for i, x := range xa {
			y[i] = nearestBinValue(centers, pdf, x)
		}
		figA.Series = append(figA.Series, Series{Name: spec.name, Y: y})
		fitY := make([]float64, len(xa))
		for i, x := range xa {
			fitY[i] = spec.model.FlightDist.PDF(x)
		}
		figA.Series = append(figA.Series, Series{Name: spec.name + " Fit", Y: fitY})
	}
	r.Figures = append(r.Figures, figA)

	// (b) Movement time vs distance: per-distance-bin median plus fits.
	xb := stats.LogSpace(0.01, 1000, 25)
	figB := Figure{Title: "Figure 7(b): movement time vs distance", XLabel: "km", YLabel: "minutes", X: xb}
	for _, spec := range []struct {
		name    string
		flights []levy.Flight
		model   *levy.Model
	}{
		{"Honest-Ckin", honestFl, models.Honest},
		{"All-Ckin", allFl, models.All},
		{"GPS", gpsFl, models.GPS},
	} {
		figB.Series = append(figB.Series,
			Series{Name: spec.name, Y: binnedMedianTime(spec.flights, xb)},
			Series{Name: spec.name + " Fit", Y: evalFit(spec.model.MoveTime.Eval, xb)},
		)
	}
	r.Figures = append(r.Figures, figB)

	// (c) Pause time PDF (GPS only) with fit, 10–1000 minutes.
	xc := stats.LogSpace(6, 1000, 20)
	figC := Figure{Title: "Figure 7(c): pause time PDF (GPS)", XLabel: "minutes", YLabel: "PDF", X: xc}
	pauses := gpsSm.Pauses
	histC := stats.NewLogHistogram(6, 1000, 19)
	histC.AddAll(pauses)
	pdfC := histC.PDF()
	centersC := histC.Centers()
	yC := make([]float64, len(xc))
	for i, x := range xc {
		yC[i] = nearestBinValue(centersC, pdfC, x)
	}
	figC.Series = append(figC.Series,
		Series{Name: "GPS", Y: yC},
		Series{Name: "GPS Fit", Y: evalFit(models.GPS.Pause.PDF, xc)},
	)
	r.Figures = append(r.Figures, figC)

	// Shape notes: the paper's observations about the three models.
	medGPS := medianDist(gpsFl)
	medHonest := medianDist(honestFl)
	medAll := medianDist(allFl)
	fastGPS := fastSegmentShare(gpsFl)
	fastAll := fastSegmentShare(allFl)
	r.Notes = append(r.Notes,
		fmt.Sprintf("median flight km: gps=%.2f honest=%.2f all=%.2f (paper: checkin models lower than GPS)", medGPS, medHonest, medAll),
		fmt.Sprintf("fast segments (>40 km/h implied): gps=%.3f all=%.3f (paper: all-checkin has many more)", fastGPS, fastAll),
		fmt.Sprintf("flight Pareto alpha: gps=%.2f honest=%.2f all=%.2f", models.GPS.FlightDist.Alpha, models.Honest.FlightDist.Alpha, models.All.FlightDist.Alpha),
		fmt.Sprintf("move-time fit: gps %v | honest %v | all %v", models.GPS.MoveTime, models.Honest.MoveTime, models.All.MoveTime),
		fmt.Sprintf("pause Pareto: %v", models.GPS.Pause),
	)
	if medHonest >= medGPS {
		r.Notes = append(r.Notes, "WARNING: honest-checkin median flight not below GPS (paper shape violated)")
	}
	if fastAll <= fastGPS {
		r.Notes = append(r.Notes, "WARNING: all-checkin fast-segment share not above GPS (paper shape violated)")
	}
	return r, nil
}

// nearestBinValue returns the histogram value of the bin whose center is
// closest to x (0 when the histogram is empty).
func nearestBinValue(centers, values []float64, x float64) float64 {
	if len(centers) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(centers, x)
	if i == 0 {
		return values[0]
	}
	if i >= len(centers) {
		return values[len(values)-1]
	}
	if x-centers[i-1] < centers[i]-x {
		return values[i-1]
	}
	return values[i]
}

// binnedMedianTime computes the median movement time per distance bin
// around each grid point (NaN-free: zero when a bin is empty).
func binnedMedianTime(flights []levy.Flight, grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i := range grid {
		lo := grid[i] / 1.6
		hi := grid[i] * 1.6
		var ts []float64
		for _, f := range flights {
			if f.Dist >= lo && f.Dist < hi {
				ts = append(ts, f.Time)
			}
		}
		if len(ts) > 0 {
			out[i] = stats.Quantile(ts, 0.5)
		}
	}
	return out
}

func evalFit(f func(float64) float64, xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		v := f(x)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = v
	}
	return out
}

func medianDist(fl []levy.Flight) float64 {
	ds := make([]float64, len(fl))
	for i, f := range fl {
		ds[i] = f.Dist
	}
	return stats.Quantile(ds, 0.5)
}

// fastSegmentShare returns the fraction of flights whose implied speed
// exceeds 40 km/h — the "fast moving segments" the paper attributes to
// extraneous checkins.
func fastSegmentShare(fl []levy.Flight) float64 {
	if len(fl) == 0 {
		return 0
	}
	n := 0
	for _, f := range fl {
		if f.Time > 0 && f.Dist/(f.Time/60) > 40 {
			n++
		}
	}
	return float64(n) / float64(len(fl))
}
