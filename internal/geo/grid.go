package geo

import "math"

// GridIndex is a uniform spatial hash over lat/lon points supporting
// radius queries. It is the workhorse behind checkin-to-visit candidate
// lookup (α-radius search over tens of thousands of visits) and MANET
// neighbor discovery.
//
// The index buckets points into cells of cellMeters on a side in a local
// equirectangular projection; a radius query scans only the cells
// overlapping the query disk and verifies candidates with an exact
// distance check.
type GridIndex struct {
	proj  *Projection
	cell  float64
	cells map[gridKey][]int32
	pts   []LatLon
}

type gridKey struct{ cx, cy int32 }

// NewGridIndex builds an index over pts with the given cell size in
// meters. cellMeters should be on the order of the typical query radius;
// values <= 0 default to 500 m. The slice is not retained beyond copying.
func NewGridIndex(pts []LatLon, cellMeters float64) *GridIndex {
	if cellMeters <= 0 {
		cellMeters = 500
	}
	origin := LatLon{}
	if len(pts) > 0 {
		origin = BoundsOf(pts).Center()
	}
	g := &GridIndex{
		proj:  NewProjection(origin),
		cell:  cellMeters,
		cells: make(map[gridKey][]int32, len(pts)/4+1),
		pts:   append([]LatLon(nil), pts...),
	}
	for i, p := range g.pts {
		k := g.keyFor(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

func (g *GridIndex) keyFor(p LatLon) gridKey {
	x, y := g.proj.ToXY(p)
	return gridKey{cx: int32(math.Floor(x / g.cell)), cy: int32(math.Floor(y / g.cell))}
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

// Point returns the indexed point at position i.
func (g *GridIndex) Point(i int) LatLon { return g.pts[i] }

// Within appends to dst the indices of all points within radius meters of
// q (great-circle distance) and returns the extended slice. Order is
// unspecified.
func (g *GridIndex) Within(q LatLon, radius float64, dst []int) []int {
	if radius < 0 || len(g.pts) == 0 {
		return dst
	}
	qx, qy := g.proj.ToXY(q)
	r := int32(math.Ceil(radius / g.cell))
	ck := g.keyFor(q)
	for cy := ck.cy - r; cy <= ck.cy+r; cy++ {
		for cx := ck.cx - r; cx <= ck.cx+r; cx++ {
			for _, idx := range g.cells[gridKey{cx, cy}] {
				p := g.pts[idx]
				// Cheap planar prefilter before the exact test.
				px, py := g.proj.ToXY(p)
				dx, dy := px-qx, py-qy
				if dx*dx+dy*dy > (radius+g.cell)*(radius+g.cell) {
					continue
				}
				if Distance(q, p) <= radius {
					dst = append(dst, int(idx))
				}
			}
		}
	}
	return dst
}

// Nearest returns the index of the point closest to q and its distance in
// meters, or (-1, +Inf) when the index is empty. It expands the search
// ring by ring so typical queries touch only a few cells.
func (g *GridIndex) Nearest(q LatLon) (int, float64) {
	if len(g.pts) == 0 {
		return -1, math.Inf(1)
	}
	best := -1
	bestDist := math.Inf(1)
	ck := g.keyFor(q)
	maxRing := int32(1)
	// Upper bound on rings: enough to cover the whole indexed extent.
	for k := range g.cells {
		dx := k.cx - ck.cx
		if dx < 0 {
			dx = -dx
		}
		dy := k.cy - ck.cy
		if dy < 0 {
			dy = -dy
		}
		if dx > maxRing {
			maxRing = dx
		}
		if dy > maxRing {
			maxRing = dy
		}
	}
	for ring := int32(0); ring <= maxRing; ring++ {
		found := false
		for cy := ck.cy - ring; cy <= ck.cy+ring; cy++ {
			for cx := ck.cx - ring; cx <= ck.cx+ring; cx++ {
				// Only the ring perimeter; inner cells were already scanned.
				if ring > 0 && cx != ck.cx-ring && cx != ck.cx+ring &&
					cy != ck.cy-ring && cy != ck.cy+ring {
					continue
				}
				for _, idx := range g.cells[gridKey{cx, cy}] {
					d := Distance(q, g.pts[idx])
					if d < bestDist {
						bestDist = d
						best = int(idx)
					}
					found = true
				}
			}
		}
		// Once something is found, one extra ring guarantees correctness
		// (a nearer point can hide in the next ring due to cell geometry).
		if found && best >= 0 && bestDist <= float64(ring)*g.cell {
			break
		}
	}
	return best, bestDist
}
