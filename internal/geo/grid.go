package geo

import "math"

// GridIndex is a uniform spatial hash over lat/lon points supporting
// radius queries. It is the workhorse behind checkin-to-visit candidate
// lookup (α-radius search over tens of thousands of visits) and MANET
// neighbor discovery.
//
// The index buckets points into cells of cellMeters on a side in a local
// equirectangular projection; a radius query scans only the cells
// overlapping the query disk and verifies candidates with an exact
// distance check.
//
// Storage is struct-of-arrays: point indices grouped cell by cell in one
// flat slice (order), with a small span per occupied cell, plus per-point
// projected coordinates, E7 latitudes and latitude cosines precomputed at
// build time. Queries therefore walk contiguous arrays and decide most
// candidates with integer and certified fast-bound tests (see
// fastdist.go), calling the trigonometric haversine only for borderline
// candidates — results are bit-identical to checking Distance directly.
type GridIndex struct {
	proj *Projection
	cell float64
	pts  []LatLon

	spans  map[gridKey]cellSpan
	order  []int32   // point indices grouped by cell, ascending within a cell
	px, py []float64 // projected planar meters per point
	cosLat []float64 // CosLat per point
	latE7  []int32   // E7 latitude per point

	// Occupied-cell extent, precomputed so Nearest can bound its ring
	// expansion in O(1) instead of scanning every cell per query.
	minCX, maxCX, minCY, maxCY int32
}

type gridKey struct{ cx, cy int32 }

// cellSpan is a [start, end) range into GridIndex.order.
type cellSpan struct{ start, end int32 }

// NewGridIndex builds an index over pts with the given cell size in
// meters. cellMeters should be on the order of the typical query radius;
// values <= 0 default to 500 m. The slice is not retained beyond copying.
func NewGridIndex(pts []LatLon, cellMeters float64) *GridIndex {
	if cellMeters <= 0 {
		cellMeters = 500
	}
	origin := LatLon{}
	if len(pts) > 0 {
		origin = BoundsOf(pts).Center()
	}
	g := &GridIndex{
		proj: NewProjection(origin),
		cell: cellMeters,
		pts:  append([]LatLon(nil), pts...),
	}
	n := len(g.pts)
	g.px = make([]float64, n)
	g.py = make([]float64, n)
	g.cosLat = make([]float64, n)
	g.latE7 = make([]int32, n)
	g.order = make([]int32, n)
	keys := make([]gridKey, n)
	counts := make(map[gridKey]int32, n/4+1)
	for i, p := range g.pts {
		x, y := g.proj.ToXY(p)
		g.px[i], g.py[i] = x, y
		g.cosLat[i] = CosLat(p)
		g.latE7[i] = E7(p.Lat)
		k := gridKey{cx: int32(math.Floor(x / g.cell)), cy: int32(math.Floor(y / g.cell))}
		keys[i] = k
		counts[k]++
		if i == 0 {
			g.minCX, g.maxCX = k.cx, k.cx
			g.minCY, g.maxCY = k.cy, k.cy
			continue
		}
		if k.cx < g.minCX {
			g.minCX = k.cx
		}
		if k.cx > g.maxCX {
			g.maxCX = k.cx
		}
		if k.cy < g.minCY {
			g.minCY = k.cy
		}
		if k.cy > g.maxCY {
			g.maxCY = k.cy
		}
	}
	// Assign each occupied cell a contiguous span, then fill it using the
	// span end as a cursor. Points land in ascending index order within
	// their cell because the fill walks points in order.
	g.spans = make(map[gridKey]cellSpan, len(counts))
	var off int32
	for i := 0; i < n; i++ {
		k := keys[i]
		if _, ok := g.spans[k]; !ok {
			g.spans[k] = cellSpan{start: off, end: off}
			off += counts[k]
		}
	}
	for i := 0; i < n; i++ {
		k := keys[i]
		sp := g.spans[k]
		g.order[sp.end] = int32(i)
		sp.end++
		g.spans[k] = sp
	}
	return g
}

func (g *GridIndex) keyFor(p LatLon) gridKey {
	x, y := g.proj.ToXY(p)
	return gridKey{cx: int32(math.Floor(x / g.cell)), cy: int32(math.Floor(y / g.cell))}
}

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return len(g.pts) }

// Point returns the indexed point at position i.
func (g *GridIndex) Point(i int) LatLon { return g.pts[i] }

// Within appends to dst the indices of all points within radius meters of
// q (great-circle distance) and returns the extended slice. Order is
// unspecified.
func (g *GridIndex) Within(q LatLon, radius float64, dst []int) []int {
	if radius < 0 || len(g.pts) == 0 {
		return dst
	}
	qx, qy := g.proj.ToXY(q)
	cosQ := CosLat(q)
	qLatE7 := E7(q.Lat)
	maxDLat := MaxE7LatDiff(radius)
	planar := (radius + g.cell) * (radius + g.cell)
	r := int32(math.Ceil(radius / g.cell))
	ck := g.keyFor(q)
	for cy := ck.cy - r; cy <= ck.cy+r; cy++ {
		for cx := ck.cx - r; cx <= ck.cx+r; cx++ {
			sp, ok := g.spans[gridKey{cx, cy}]
			if !ok {
				continue
			}
			for _, idx := range g.order[sp.start:sp.end] {
				// Integer bounding-box reject: certified farther than
				// radius on latitude separation alone.
				dE7 := g.latE7[idx] - qLatE7
				if dE7 < 0 {
					dE7 = -dE7
				}
				if dE7 > maxDLat {
					continue
				}
				// Cheap planar prefilter before the exact test.
				dx, dy := g.px[idx]-qx, g.py[idx]-qy
				if dx*dx+dy*dy > planar {
					continue
				}
				p := g.pts[idx]
				lb, ub := DistBounds(q, p, cosQ*g.cosLat[idx])
				if lb > radius {
					continue
				}
				if ub <= radius || Distance(q, p) <= radius {
					dst = append(dst, int(idx))
				}
			}
		}
	}
	return dst
}

// Nearest returns the index of the point closest to q and its distance in
// meters, or (-1, +Inf) when the index is empty. It expands the search
// ring by ring so typical queries touch only a few cells.
func (g *GridIndex) Nearest(q LatLon) (int, float64) {
	if len(g.pts) == 0 {
		return -1, math.Inf(1)
	}
	best := -1
	bestDist := math.Inf(1)
	cosQ := CosLat(q)
	ck := g.keyFor(q)
	// Upper bound on rings: enough to cover the whole indexed extent.
	maxRing := int32(1)
	for _, d := range [4]int32{g.minCX - ck.cx, g.maxCX - ck.cx, g.minCY - ck.cy, g.maxCY - ck.cy} {
		if d < 0 {
			d = -d
		}
		if d > maxRing {
			maxRing = d
		}
	}
	for ring := int32(0); ring <= maxRing; ring++ {
		found := false
		for cy := ck.cy - ring; cy <= ck.cy+ring; cy++ {
			for cx := ck.cx - ring; cx <= ck.cx+ring; cx++ {
				// Only the ring perimeter; inner cells were already scanned.
				if ring > 0 && cx != ck.cx-ring && cx != ck.cx+ring &&
					cy != ck.cy-ring && cy != ck.cy+ring {
					continue
				}
				sp, ok := g.spans[gridKey{cx, cy}]
				if !ok {
					continue
				}
				for _, idx := range g.order[sp.start:sp.end] {
					found = true
					p := g.pts[idx]
					// A candidate whose certified lower bound already
					// meets the incumbent cannot beat it (d >= lb >=
					// bestDist fails d < bestDist); skip the haversine.
					lb, _ := DistBounds(q, p, cosQ*g.cosLat[idx])
					if lb >= bestDist {
						continue
					}
					d := Distance(q, p)
					if d < bestDist {
						bestDist = d
						best = int(idx)
					}
				}
			}
		}
		// Once something is found, one extra ring guarantees correctness
		// (a nearer point can hide in the next ring due to cell geometry).
		if found && best >= 0 && bestDist <= float64(ring)*g.cell {
			break
		}
	}
	return best, bestDist
}
