package geo

import "math"

// This file implements certified fast bounds on the haversine distance:
// cheap expressions LB and UB with LB <= Distance(a,b) <= UB that need no
// trigonometry beyond latitude cosines (which callers precompute once per
// point). Threshold comparisons — "is Distance <= radius?" — are decided
// by the bounds alone for all but borderline pairs, where the exact
// haversine is still the decider. Decisions are therefore bit-identical
// to calling Distance directly; the bounds only skip work, never change
// an accept/reject outcome.
//
// Derivation. Distance computes d = 2R·asin(√h) with
// h = sin²(Δφ/2) + cosφ₁·cosφ₂·sin²(Δλ/2) (clamped to 1). Writing
// x = |Δφ|/2, y = |Δλ|/2 and cc = cosφ₁·cosφ₂ (both cosines are
// nonnegative for latitudes in [-90°, 90°]):
//
//   - Lower bound: asin(s) >= s and sin(t) >= t·(1 - t²/6) for t >= 0
//     (alternating Taylor series; the truncation t·(1-t²/6) is also
//     nonnegative throughout t <= π). Hence
//       d >= 2R·√( sl(x)² + ccLo·sl(y)² ),  sl(t) = max(0, t - t³/6).
//   - Upper bound: sin(t) <= t and asin(s) <= s + s³ for s <= 1/2
//     (asin s = s + s³/6 + 3s⁵/40 + … <= s + s³ on [0, ½]). Hence with
//     hu = x² + ccHi·y², whenever √hu <= ½:
//       d <= 2R·(√hu + √hu³).
//     For √hu > ½ (separations beyond ~6600 km) no finite upper bound is
//     claimed; every radius used in this repository is far smaller, so
//     the accept shortcut simply never fires there.
//
// Both bounds are scaled by (1 ∓ boundSlack) so that floating-point
// rounding in their evaluation — and in Distance itself — can never flip
// the sandwich: the mathematical margin of the series truncations is
// zero only at Δ = 0, while accumulated rounding across the ~15 flops
// involved stays below 1e-14 relative; boundSlack = 1e-12 dominates it
// by two orders of magnitude. TestDistBoundsSandwich sweeps random E7
// pairs (including near-threshold adversarial radii) to enforce this.

// boundSlack is the relative safety margin applied to the certified
// bounds to absorb floating-point rounding (see file comment).
const boundSlack = 1e-12

// MetersPerE7Lat is the meridional length in meters of one E7 latitude
// unit (1e-7 degree). Pure latitude separation bounds the great-circle
// distance from below: d >= R·|Δφ|, so two points whose E7 latitudes
// differ by k units are at least ~(k-1)·MetersPerE7Lat meters apart
// (one unit of slack covers rounding to the E7 grid).
const MetersPerE7Lat = EarthRadius * math.Pi / 180 * 1e-7

// E7 returns the coordinate (in degrees) rounded to fixed-point E7
// (units of 1e-7 degree), the grid the binary codec stores coordinates
// on. Valid latitudes and longitudes fit comfortably in int32.
func E7(deg float64) int32 { return int32(math.Round(deg * 1e7)) }

// CosLat returns the cosine of p's latitude in radians — the only
// per-point trigonometry the fast bounds need. Index structures
// precompute it once per stored point.
func CosLat(p LatLon) float64 { return math.Cos(deg2rad(p.Lat)) }

// MaxE7LatDiff returns the largest E7 latitude difference (in units)
// that is NOT certainly farther than radius meters: any pair whose E7
// latitudes differ by more than the returned value has great-circle
// distance strictly greater than radius, regardless of longitude. This
// is the exact integer bounding-box prefilter — a single integer
// compare per candidate.
func MaxE7LatDiff(radius float64) int32 {
	if radius < 0 {
		return 0
	}
	f := radius / (MetersPerE7Lat * (1 - boundSlack))
	if f >= math.MaxInt32-2 {
		return math.MaxInt32
	}
	// +2: one unit for E7 rounding of each endpoint, one for the float
	// truncation here. Rejection beyond this is certified; acceptance
	// inside it decides nothing (later stages do).
	return int32(f) + 2
}

// distBounds returns certified bounds lb <= Distance(a,b) <= ub given
// the absolute coordinate deltas in degrees and an interval
// [ccLo, ccHi] bracketing cosφ₁·cosφ₂. ccLo must be >= 0. ub may be
// +Inf for separations beyond the small-angle regime.
func distBounds(absDLat, absDLon, ccLo, ccHi float64) (lb, ub float64) {
	x := deg2rad(absDLat) / 2
	y := deg2rad(absDLon) / 2

	sx := x * (1 - x*x/6)
	if sx < 0 {
		sx = 0
	}
	sy := y * (1 - y*y/6)
	if sy < 0 {
		sy = 0
	}
	hl := sx*sx + ccLo*sy*sy
	if hl > 1 {
		hl = 1
	}
	lb = 2 * EarthRadius * math.Sqrt(hl) * (1 - boundSlack)

	hu := x*x + ccHi*y*y
	if hu > 0.25 {
		return lb, math.Inf(1)
	}
	s := math.Sqrt(hu)
	ub = 2 * EarthRadius * (s + s*s*s) * (1 + boundSlack)
	return lb, ub
}

// DistBounds returns certified bounds lb <= Distance(a, b) <= ub, where
// cc is the exact product CosLat(a)*CosLat(b). ub may be +Inf beyond
// the small-angle regime (separations over ~6600 km).
func DistBounds(a, b LatLon, cc float64) (lb, ub float64) {
	return distBounds(math.Abs(a.Lat-b.Lat), math.Abs(a.Lon-b.Lon), cc, cc)
}

// WithinRadius reports whether Distance(a, b) <= radius, with the exact
// haversine evaluated only when the certified fast bounds cannot decide.
// cosA must be CosLat(a); the other latitude's cosine is bracketed via
// |cos u - cos v| <= |u - v|, so callers pay one cosine per anchor point
// instead of one per comparison. The result is bit-identical to
// Distance(a, b) <= radius for all inputs.
func WithinRadius(a, b LatLon, cosA, radius float64) bool {
	absDLat := math.Abs(a.Lat - b.Lat)
	dphi := deg2rad(absDLat)
	ccLo := cosA - dphi
	if ccLo < 0 {
		ccLo = 0
	}
	ccHi := cosA + dphi
	if ccHi > 1 {
		ccHi = 1
	}
	lb, ub := distBounds(absDLat, math.Abs(a.Lon-b.Lon), cosA*ccLo, cosA*ccHi)
	if lb > radius {
		return false
	}
	if ub <= radius {
		return true
	}
	return Distance(a, b) <= radius
}
