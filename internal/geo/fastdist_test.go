package geo

import (
	"math"
	"math/rand"
	"testing"
)

// randE7LatLon returns a point on the E7 grid inside a band around the
// given center, mirroring coordinates that went through the binary
// codec.
func randE7LatLon(r *rand.Rand, center LatLon, spanDeg float64) LatLon {
	lat := center.Lat + (r.Float64()*2-1)*spanDeg
	lon := center.Lon + (r.Float64()*2-1)*spanDeg
	return LatLon{Lat: fromE7grid(lat), Lon: fromE7grid(lon)}
}

func fromE7grid(deg float64) float64 { return float64(E7(deg)) / 1e7 }

// TestDistBoundsSandwich is the property test behind the prefilter's
// correctness claim: for random E7 coordinate pairs — city-scale,
// continental and adversarially co-located — the certified bounds
// sandwich the haversine distance, and every threshold decision taken
// through the fast paths (WithinRadius, DistBounds, MaxE7LatDiff) is
// identical to comparing Distance directly, at every α in the sweep
// including radii placed exactly at and one ulp around the true
// distance.
func TestDistBoundsSandwich(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	centers := []struct {
		c    LatLon
		span float64
	}{
		{LatLon{Lat: 40.74, Lon: -73.99}, 0.02}, // city blocks
		{LatLon{Lat: 40.74, Lon: -73.99}, 0.3},  // metro area
		{LatLon{Lat: -33.87, Lon: 151.21}, 0.1}, // southern hemisphere
		{LatLon{Lat: 64.15, Lon: -21.94}, 0.2},  // high latitude
		{LatLon{Lat: 0.0, Lon: 0.0}, 0.1},       // equator
		{LatLon{Lat: 35.0, Lon: 139.0}, 5.0},    // continental
		{LatLon{Lat: 0.01, Lon: -179.99}, 0.05}, // near the antimeridian
	}
	alphas := []float64{25, 100, 150, 500, 1500, 5000, 50000}
	checked := 0
	for _, c := range centers {
		for i := 0; i < 4000; i++ {
			a := randE7LatLon(r, c.c, c.span)
			b := randE7LatLon(r, c.c, c.span)
			if i%17 == 0 {
				b = a // exact co-location must never be rejected
			}
			d := Distance(a, b)
			cosA, cosB := CosLat(a), CosLat(b)

			lb, ub := DistBounds(a, b, cosA*cosB)
			if lb > d {
				t.Fatalf("lower bound %v exceeds Distance %v for %v %v", lb, d, a, b)
			}
			if !math.IsInf(ub, 1) && ub < d {
				t.Fatalf("upper bound %v below Distance %v for %v %v", ub, d, a, b)
			}

			// Sweep fixed radii plus radii pinned to the decision
			// boundary: d itself and one ulp to either side.
			sweep := append(append([]float64{}, alphas...),
				d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)))
			for _, alpha := range sweep {
				want := d <= alpha
				if got := WithinRadius(a, b, cosA, alpha); got != want {
					t.Fatalf("WithinRadius(%v, %v, %g) = %v, Distance %v says %v", a, b, alpha, got, d, want)
				}
				// Integer bounding-box prefilter: a rejection must imply
				// the haversine rejects too.
				dE7 := E7(a.Lat) - E7(b.Lat)
				if dE7 < 0 {
					dE7 = -dE7
				}
				if dE7 > MaxE7LatDiff(alpha) && want {
					t.Fatalf("E7 prefilter rejects pair at distance %v within α=%g (ΔlatE7=%d)", d, alpha, dE7)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("property sweep ran no checks")
	}
}

// TestGridIndexMatchesBruteForce cross-checks the optimized grid (SoA
// storage, integer and certified prefilters) against brute-force scans
// of Distance, for Within and Nearest, over random point sets and
// radii.
func TestGridIndexMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	center := LatLon{Lat: 40.74, Lon: -73.99}
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(300)
		pts := make([]LatLon, n)
		for i := range pts {
			pts[i] = randE7LatLon(r, center, 0.05)
		}
		cell := []float64{50, 250, 500, 2000}[trial%4]
		g := NewGridIndex(pts, cell)
		for q := 0; q < 40; q++ {
			query := randE7LatLon(r, center, 0.06)
			radius := r.Float64() * 3000

			got := g.Within(query, radius, nil)
			inGot := make(map[int]bool, len(got))
			for _, i := range got {
				inGot[i] = true
			}
			for i, p := range pts {
				// The grid's documented planar prefilter can exclude a
				// point the haversine accepts only outside radius+cell
				// planar distance; within the scanned cells the accept
				// set must match Distance exactly. Check one direction
				// strictly (no false positives) and spot the other via
				// Nearest below.
				if inGot[i] && Distance(query, p) > radius {
					t.Fatalf("Within returned point %d at distance %v > radius %v", i, Distance(query, p), radius)
				}
				if !inGot[i] && Distance(query, p) <= radius {
					// Must only happen when the legacy planar prefilter
					// would also have excluded it.
					x1, y1 := g.proj.ToXY(query)
					x2, y2 := g.proj.ToXY(p)
					dx, dy := x2-x1, y2-y1
					if dx*dx+dy*dy <= (radius+cell)*(radius+cell) {
						t.Fatalf("Within missed point %d at distance %v <= radius %v", i, Distance(query, p), radius)
					}
				}
			}

			bi, bd := g.Nearest(query)
			wantI, wantD := -1, math.Inf(1)
			for i, p := range pts {
				if d := Distance(query, p); d < wantD {
					wantI, wantD = i, d
				}
			}
			if bi != wantI || bd != wantD {
				t.Fatalf("Nearest = (%d, %v), brute force says (%d, %v)", bi, bd, wantI, wantD)
			}
		}
	}
}
