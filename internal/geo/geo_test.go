package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// sb is downtown Santa Barbara, the paper's home turf.
var sb = LatLon{Lat: 34.4208, Lon: -119.6982}

func TestDistanceKnown(t *testing.T) {
	tests := []struct {
		name string
		a, b LatLon
		want float64 // meters
		tol  float64
	}{
		{"zero", sb, sb, 0, 0.001},
		{"LA-SF", LatLon{34.0522, -118.2437}, LatLon{37.7749, -122.4194}, 559000, 6000},
		{"1 deg lat at equator", LatLon{0, 0}, LatLon{1, 0}, 111195, 200},
		{"1 deg lon at equator", LatLon{0, 0}, LatLon{0, 1}, 111195, 200},
		{"antipodal-ish", LatLon{0, 0}, LatLon{0, 180}, math.Pi * EarthRadius, 2000},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Distance(tc.a, tc.b)
			if math.Abs(got-tc.want) > tc.tol {
				t.Errorf("Distance = %.1f, want %.1f +- %.1f", got, tc.want, tc.tol)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	err := quick.Check(func(a, b LatLon) bool {
		a = clampPoint(a)
		b = clampPoint(b)
		d1 := Distance(a, b)
		d2 := Distance(b, a)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistanceNonNegativeAndIdentity(t *testing.T) {
	err := quick.Check(func(a LatLon) bool {
		a = clampPoint(a)
		return Distance(a, a) < 1e-6 && Distance(a, LatLon{0, 0}) >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	err := quick.Check(func(a, b, c LatLon) bool {
		a, b, c = clampPoint(a), clampPoint(b), clampPoint(c)
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFastDistanceMatchesHaversineLocally(t *testing.T) {
	// Within a 50 km region the equirectangular error must stay below 1 %.
	err := quick.Check(func(dx, dy uint16) bool {
		b := Destination(sb, float64(dx%360), float64(dy%50000))
		exact := Distance(sb, b)
		fast := FastDistance(sb, b)
		if exact < 10 {
			return math.Abs(exact-fast) < 1
		}
		return math.Abs(exact-fast)/exact < 0.01
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	err := quick.Check(func(brRaw, distRaw uint32) bool {
		bearing := float64(brRaw % 360)
		dist := float64(distRaw%100000) + 1
		q := Destination(sb, bearing, dist)
		got := Distance(sb, q)
		return math.Abs(got-dist) < 0.01*dist+0.5
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	north := Destination(sb, 0, 10000)
	if br := Bearing(sb, north); math.Abs(br) > 0.5 && math.Abs(br-360) > 0.5 {
		t.Errorf("bearing to north point = %g, want ~0", br)
	}
	east := Destination(sb, 90, 10000)
	if br := Bearing(sb, east); math.Abs(br-90) > 0.5 {
		t.Errorf("bearing to east point = %g, want ~90", br)
	}
}

func TestMidpoint(t *testing.T) {
	b := Destination(sb, 45, 20000)
	mid := Midpoint(sb, b)
	d1 := Distance(sb, mid)
	d2 := Distance(mid, b)
	if math.Abs(d1-d2) > 1 {
		t.Errorf("midpoint not equidistant: %g vs %g", d1, d2)
	}
}

func TestInterpolate(t *testing.T) {
	b := Destination(sb, 10, 5000)
	if got := Interpolate(sb, b, 0); got != sb {
		t.Errorf("Interpolate(,,0) = %v, want a", got)
	}
	if got := Interpolate(sb, b, 1); got != b {
		t.Errorf("Interpolate(,,1) = %v, want b", got)
	}
	half := Interpolate(sb, b, 0.5)
	if d := Distance(sb, half); math.Abs(d-2500) > 30 {
		t.Errorf("halfway distance %g, want ~2500", d)
	}
}

func TestValid(t *testing.T) {
	tests := []struct {
		p    LatLon
		want bool
	}{
		{LatLon{0, 0}, true},
		{LatLon{90, 180}, true},
		{LatLon{-90, -180}, true},
		{LatLon{91, 0}, false},
		{LatLon{0, 181}, false},
		{LatLon{math.NaN(), 0}, false},
	}
	for _, tc := range tests {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBBox(t *testing.T) {
	pts := []LatLon{{34.40, -119.70}, {34.45, -119.65}, {34.42, -119.72}}
	b := BoundsOf(pts)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox does not contain %v", p)
		}
	}
	if b.Contains(LatLon{34.50, -119.70}) {
		t.Error("bbox contains point outside")
	}
	eb := b.Expand(1000)
	if !eb.Contains(LatLon{34.4585, -119.65}) {
		t.Error("expanded bbox missing point ~950m north")
	}
	if eb.Contains(LatLon{34.47, -119.65}) {
		t.Error("expanded bbox contains point ~2.2km north")
	}
}

func TestBoundsOfEmpty(t *testing.T) {
	if b := BoundsOf(nil); b != (BBox{}) {
		t.Errorf("BoundsOf(nil) = %+v, want zero", b)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(sb)
	err := quick.Check(func(dx, dy int16) bool {
		x := float64(dx) * 3 // up to ~100 km
		y := float64(dy) * 3
		p := pr.ToLatLon(x, y)
		gx, gy := pr.ToXY(p)
		return math.Abs(gx-x) < 0.01 && math.Abs(gy-y) < 0.01
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestProjectionDistanceConsistency(t *testing.T) {
	pr := NewProjection(sb)
	a := pr.ToLatLon(1000, 2000)
	b := pr.ToLatLon(-500, 700)
	planar := math.Hypot(1000-(-500), 2000-700)
	geod := Distance(a, b)
	if math.Abs(planar-geod)/geod > 0.01 {
		t.Errorf("projection distance %g vs geodesic %g", planar, geod)
	}
}

// clampPoint maps arbitrary quick-generated values into valid coordinates
// away from the poles (where bearings degenerate).
func clampPoint(p LatLon) LatLon {
	lat := math.Mod(math.Abs(p.Lat), 160) - 80
	lon := math.Mod(math.Abs(p.Lon), 360) - 180
	if math.IsNaN(lat) {
		lat = 0
	}
	if math.IsNaN(lon) {
		lon = 0
	}
	return LatLon{Lat: lat, Lon: lon}
}

func BenchmarkDistance(b *testing.B) {
	p := Destination(sb, 37, 1234)
	for i := 0; i < b.N; i++ {
		_ = Distance(sb, p)
	}
}

func BenchmarkFastDistance(b *testing.B) {
	p := Destination(sb, 37, 1234)
	for i := 0; i < b.N; i++ {
		_ = FastDistance(sb, p)
	}
}
