package geo

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"geosocial/internal/rng"
)

func randomPoints(n int, spreadMeters float64, seed uint64) []LatLon {
	s := rng.New(seed)
	pts := make([]LatLon, n)
	for i := range pts {
		pts[i] = Destination(sb, s.Range(0, 360), s.Range(0, spreadMeters))
	}
	return pts
}

func bruteWithin(pts []LatLon, q LatLon, radius float64) []int {
	var out []int
	for i, p := range pts {
		if Distance(q, p) <= radius {
			out = append(out, i)
		}
	}
	return out
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	pts := randomPoints(2000, 20000, 1)
	g := NewGridIndex(pts, 500)
	s := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		q := Destination(sb, s.Range(0, 360), s.Range(0, 22000))
		radius := s.Range(10, 3000)
		got := g.Within(q, radius, nil)
		want := bruteWithin(pts, q, radius)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d: got idx %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestGridWithinProperty(t *testing.T) {
	pts := randomPoints(300, 5000, 3)
	g := NewGridIndex(pts, 250)
	err := quick.Check(func(brRaw, distRaw, radRaw uint16) bool {
		q := Destination(sb, float64(brRaw%360), float64(distRaw%6000))
		radius := float64(radRaw%2000) + 1
		got := g.Within(q, radius, nil)
		want := bruteWithin(pts, q, radius)
		if len(got) != len(want) {
			return false
		}
		sort.Ints(got)
		sort.Ints(want)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 10000, 4)
	g := NewGridIndex(pts, 400)
	s := rng.New(5)
	for trial := 0; trial < 100; trial++ {
		q := Destination(sb, s.Range(0, 360), s.Range(0, 12000))
		gotIdx, gotDist := g.Nearest(q)
		wantIdx, wantDist := -1, math.Inf(1)
		for i, p := range pts {
			if d := Distance(q, p); d < wantDist {
				wantDist = d
				wantIdx = i
			}
		}
		if gotIdx != wantIdx && math.Abs(gotDist-wantDist) > 1e-9 {
			t.Fatalf("trial %d: nearest got (%d, %.3f), want (%d, %.3f)",
				trial, gotIdx, gotDist, wantIdx, wantDist)
		}
	}
}

func TestGridEmpty(t *testing.T) {
	g := NewGridIndex(nil, 500)
	if got := g.Within(sb, 1000, nil); len(got) != 0 {
		t.Errorf("Within on empty index returned %v", got)
	}
	idx, dist := g.Nearest(sb)
	if idx != -1 || !math.IsInf(dist, 1) {
		t.Errorf("Nearest on empty index = (%d, %g)", idx, dist)
	}
}

func TestGridNegativeRadius(t *testing.T) {
	g := NewGridIndex(randomPoints(10, 100, 6), 500)
	if got := g.Within(sb, -5, nil); len(got) != 0 {
		t.Errorf("negative radius returned %v", got)
	}
}

func TestGridDefaultCell(t *testing.T) {
	g := NewGridIndex(randomPoints(10, 100, 7), 0)
	if g.cell != 500 {
		t.Errorf("default cell = %g, want 500", g.cell)
	}
}

func TestGridSinglePoint(t *testing.T) {
	g := NewGridIndex([]LatLon{sb}, 500)
	idx, dist := g.Nearest(Destination(sb, 90, 12345))
	if idx != 0 {
		t.Fatalf("Nearest idx = %d, want 0", idx)
	}
	if math.Abs(dist-12345) > 15 {
		t.Fatalf("Nearest dist = %g, want ~12345", dist)
	}
}

func TestGridLenAndPoint(t *testing.T) {
	pts := randomPoints(17, 1000, 8)
	g := NewGridIndex(pts, 500)
	if g.Len() != 17 {
		t.Fatalf("Len = %d, want 17", g.Len())
	}
	for i, p := range pts {
		if g.Point(i) != p {
			t.Fatalf("Point(%d) mismatch", i)
		}
	}
}

func BenchmarkGridWithin(b *testing.B) {
	pts := randomPoints(30000, 30000, 9)
	g := NewGridIndex(pts, 500)
	buf := make([]int, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(sb, 500, buf[:0])
	}
}

func BenchmarkBruteWithin(b *testing.B) {
	pts := randomPoints(30000, 30000, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bruteWithin(pts, sb, 500)
	}
}
