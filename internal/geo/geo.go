// Package geo provides the geodesic substrate for the geosocial validator:
// latitude/longitude points, great-circle and fast equirectangular
// distances, bearings, destination-point computation, bounding boxes and a
// uniform grid index for radius queries over large point sets.
//
// All distances are in meters, all angles in degrees unless noted. The
// Earth is modeled as a sphere of radius EarthRadius, which introduces
// < 0.5 % error versus the WGS-84 ellipsoid — far below the 500 m matching
// threshold the paper uses.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in meters (IUGG).
const EarthRadius = 6371008.8

// LatLon is a geographic coordinate in decimal degrees.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// String implements fmt.Stringer.
func (p LatLon) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies inside the conventional coordinate
// domain: latitude in [-90, 90], longitude in [-180, 180].
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// Distance returns the great-circle (haversine) distance in meters between
// a and b.
func Distance(a, b LatLon) float64 {
	lat1 := deg2rad(a.Lat)
	lat2 := deg2rad(b.Lat)
	dLat := lat2 - lat1
	dLon := deg2rad(b.Lon - a.Lon)
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// FastDistance returns the equirectangular-approximation distance in
// meters between a and b. It is accurate to well under 1 % for separations
// below tens of kilometers, which covers every threshold comparison in this
// repository, and is several times faster than Distance.
func FastDistance(a, b LatLon) float64 {
	lat1 := deg2rad(a.Lat)
	lat2 := deg2rad(b.Lat)
	x := deg2rad(b.Lon-a.Lon) * math.Cos((lat1+lat2)/2)
	y := lat2 - lat1
	return EarthRadius * math.Sqrt(x*x+y*y)
}

// Bearing returns the initial great-circle bearing in degrees (0 = north,
// 90 = east) from a toward b.
func Bearing(a, b LatLon) float64 {
	lat1 := deg2rad(a.Lat)
	lat2 := deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	br := rad2deg(math.Atan2(y, x))
	if br < 0 {
		br += 360
	}
	return br
}

// Destination returns the point reached by traveling dist meters from p on
// the given initial bearing (degrees).
func Destination(p LatLon, bearingDeg, dist float64) LatLon {
	ad := dist / EarthRadius
	br := deg2rad(bearingDeg)
	lat1 := deg2rad(p.Lat)
	lon1 := deg2rad(p.Lon)
	sinLat2 := math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(br)
	lat2 := math.Asin(sinLat2)
	y := math.Sin(br) * math.Sin(ad) * math.Cos(lat1)
	x := math.Cos(ad) - math.Sin(lat1)*sinLat2
	lon2 := lon1 + math.Atan2(y, x)
	out := LatLon{Lat: rad2deg(lat2), Lon: rad2deg(lon2)}
	// Normalize longitude to [-180, 180].
	for out.Lon > 180 {
		out.Lon -= 360
	}
	for out.Lon < -180 {
		out.Lon += 360
	}
	return out
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b LatLon) LatLon {
	lat1 := deg2rad(a.Lat)
	lon1 := deg2rad(a.Lon)
	lat2 := deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return LatLon{Lat: rad2deg(lat3), Lon: rad2deg(lon3)}
}

// Interpolate returns the point a fraction f of the way from a to b along
// the straight (equirectangular) segment. f outside [0,1] extrapolates.
// For the sub-100 km hops in this repository the planar interpolation error
// is negligible.
func Interpolate(a, b LatLon, f float64) LatLon {
	return LatLon{
		Lat: a.Lat + (b.Lat-a.Lat)*f,
		Lon: a.Lon + (b.Lon-a.Lon)*f,
	}
}

// BBox is a latitude/longitude axis-aligned bounding box.
type BBox struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p LatLon) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() LatLon {
	return LatLon{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Expand grows the box by the given margin in meters on every side.
func (b BBox) Expand(margin float64) BBox {
	dLat := rad2deg(margin / EarthRadius)
	// Longitude degrees shrink with latitude; use the worst (widest) case.
	lat := math.Max(math.Abs(b.MinLat), math.Abs(b.MaxLat))
	cos := math.Cos(deg2rad(lat))
	if cos < 1e-6 {
		cos = 1e-6
	}
	dLon := rad2deg(margin / (EarthRadius * cos))
	return BBox{
		MinLat: b.MinLat - dLat, MinLon: b.MinLon - dLon,
		MaxLat: b.MaxLat + dLat, MaxLon: b.MaxLon + dLon,
	}
}

// BoundsOf returns the tight bounding box of pts. It returns a zero box if
// pts is empty.
func BoundsOf(pts []LatLon) BBox {
	if len(pts) == 0 {
		return BBox{}
	}
	b := BBox{MinLat: pts[0].Lat, MaxLat: pts[0].Lat, MinLon: pts[0].Lon, MaxLon: pts[0].Lon}
	for _, p := range pts[1:] {
		if p.Lat < b.MinLat {
			b.MinLat = p.Lat
		}
		if p.Lat > b.MaxLat {
			b.MaxLat = p.Lat
		}
		if p.Lon < b.MinLon {
			b.MinLon = p.Lon
		}
		if p.Lon > b.MaxLon {
			b.MaxLon = p.Lon
		}
	}
	return b
}

// Projection is a local equirectangular (east-north) projection anchored at
// an origin, converting lat/lon to planar meters. It is accurate for
// regions up to ~100 km across, which matches the synthetic city and MANET
// arena sizes used here.
type Projection struct {
	origin LatLon
	cosLat float64
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin LatLon) *Projection {
	c := math.Cos(deg2rad(origin.Lat))
	if c < 1e-9 {
		c = 1e-9
	}
	return &Projection{origin: origin, cosLat: c}
}

// Origin returns the projection anchor.
func (pr *Projection) Origin() LatLon { return pr.origin }

// ToXY converts p to planar meters east (x) and north (y) of the origin.
func (pr *Projection) ToXY(p LatLon) (x, y float64) {
	x = deg2rad(p.Lon-pr.origin.Lon) * EarthRadius * pr.cosLat
	y = deg2rad(p.Lat-pr.origin.Lat) * EarthRadius
	return x, y
}

// ToLatLon converts planar meters back to a geographic coordinate.
func (pr *Projection) ToLatLon(x, y float64) LatLon {
	return LatLon{
		Lat: pr.origin.Lat + rad2deg(y/EarthRadius),
		Lon: pr.origin.Lon + rad2deg(x/(EarthRadius*pr.cosLat)),
	}
}
