package outcome

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/detect"
)

// recIdx locates one spooled record: the user ID it belongs to and the
// byte range it occupies in the spool file.
type recIdx struct {
	id   int
	off  int64
	size int32
}

// Writer builds an outcome log on disk. Records arrive in whatever
// order validation delivers them (which depends on sharding); the
// Writer spools each encoded record to a temp file immediately — memory
// stays O(users) index entries, never O(records) bytes — and Close
// re-sequences them into canonical user-ID order, writes the final
// header/records/trailer, and atomically renames the result into
// place. A path ending in ".gz" is gzip-compressed.
//
// Use Add (or a Sink adapter) to capture live validation outcomes, or
// Write to append pre-built records. A Writer that will not be
// completed must be Discarded so its temp files are removed.
type Writer struct {
	path      string
	name      string
	spool     *os.File
	spoolPath string
	bw        *bufio.Writer
	enc       recEnc
	index     []recIdx
	off       int64
	maxSize   int32
	closed    bool
}

// Create opens a log writer that will publish to path on Close. The
// dataset name is recorded in the header. The spool and the final
// temp file live next to path, so the rename is atomic.
func Create(path, name string) (*Writer, error) {
	spoolPath := path + ".spool"
	spool, err := os.Create(spoolPath)
	if err != nil {
		return nil, fmt.Errorf("outcome: create log: %w", err)
	}
	return &Writer{
		path:      path,
		name:      name,
		spool:     spool,
		spoolPath: spoolPath,
		bw:        bufio.NewWriterSize(spool, 1<<16),
	}, nil
}

// Users returns the number of records written so far.
func (w *Writer) Users() int { return len(w.index) }

// Write validates and spools one record.
func (w *Writer) Write(rec *Record) error {
	if w.spool == nil {
		return fmt.Errorf("outcome: write: log writer closed")
	}
	if err := rec.validate(classify.NumKinds); err != nil {
		return err
	}
	w.enc.reset()
	if err := encodeRecord(&w.enc, rec); err != nil {
		return err
	}
	if len(w.enc.buf) > maxRecordBytes {
		return fmt.Errorf("outcome: record for user %d exceeds %d bytes", rec.UserID, maxRecordBytes)
	}
	if _, err := w.bw.Write(w.enc.buf); err != nil {
		return fmt.Errorf("outcome: spool record: %w", err)
	}
	size := int32(len(w.enc.buf))
	w.index = append(w.index, recIdx{id: rec.UserID, off: w.off, size: size})
	w.off += int64(size)
	if size > w.maxSize {
		w.maxSize = size
	}
	return nil
}

// Add distills and writes one validated, classified user.
func (w *Writer) Add(o core.UserOutcome, cls *classify.Classification) error {
	rec, err := NewRecord(o, cls)
	if err != nil {
		return err
	}
	return w.Write(rec)
}

// Sink adapts the writer to core.Validator.ValidateStream's outcome
// sink: each outcome is classified with the given parameters and
// captured. Zero params select classify.DefaultParams.
func (w *Writer) Sink(p classify.Params) func(core.UserOutcome) error {
	if p == (classify.Params{}) {
		p = classify.DefaultParams()
	}
	return func(o core.UserOutcome) error {
		cl, err := classify.ClassifyUser(o, p)
		if err != nil {
			return fmt.Errorf("outcome: classify user %d: %w", o.User.ID, err)
		}
		return w.Add(o, cl)
	}
}

// ShardSink is Sink for core.Validator.ValidateShards (the shard index
// is irrelevant to the log: Close canonicalizes the order).
func (w *Writer) ShardSink(p classify.Params) func(int, core.UserOutcome) error {
	sink := w.Sink(p)
	return func(_ int, o core.UserOutcome) error { return sink(o) }
}

// Discard abandons the log: temp files are removed and nothing is
// published. Safe to call after Close (it then does nothing).
func (w *Writer) Discard() {
	if w.closed || w.spool == nil {
		return
	}
	w.spool.Close()
	os.Remove(w.spoolPath)
	w.spool = nil
}

// Close re-sequences the spooled records into canonical user-ID order,
// writes the final log, and renames it into place. Duplicate user IDs
// are rejected here (the only point where the whole ID set is known).
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if w.spool == nil {
		return fmt.Errorf("outcome: close: log writer discarded")
	}
	err := w.finish()
	w.Discard() // remove the spool whether or not publication succeeded
	if err == nil {
		w.closed = true
	}
	return err
}

// finish performs the Close work against the open spool.
func (w *Writer) finish() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("outcome: flush spool: %w", err)
	}
	sort.Slice(w.index, func(i, j int) bool { return w.index[i].id < w.index[j].id })
	for i := 1; i < len(w.index); i++ {
		if w.index[i].id == w.index[i-1].id {
			return fmt.Errorf("outcome: duplicate user ID %d", w.index[i].id)
		}
	}

	tmpPath := w.path + ".tmp-gso"
	f, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("outcome: create log: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	var out io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(w.path, ".gz") {
		gz = gzip.NewWriter(f)
		out = gz
	}
	bw := bufio.NewWriterSize(out, 1<<16)

	if err := w.writeLog(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("outcome: write log: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return fmt.Errorf("outcome: write log: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("outcome: write log: %w", err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return fmt.Errorf("outcome: publish log: %w", err)
	}
	return nil
}

// writeLog emits header, records in index order, and trailer.
func (w *Writer) writeLog(bw *bufio.Writer) error {
	if _, err := bw.Write(logMagic[:]); err != nil {
		return fmt.Errorf("outcome: write header: %w", err)
	}
	var hdr recEnc
	hdr.uvarint(logVersion)
	hdr.str(w.name)
	hdr.uvarint(uint64(detect.FeatureDim))
	hdr.uvarint(uint64(classify.NumKinds))
	if _, err := bw.Write(hdr.buf); err != nil {
		return fmt.Errorf("outcome: write header: %w", err)
	}

	buf := make([]byte, w.maxSize)
	var lenBuf [binary.MaxVarintLen64]byte
	for _, ix := range w.index {
		rec := buf[:ix.size]
		if _, err := w.spool.ReadAt(rec, ix.off); err != nil {
			return fmt.Errorf("outcome: reread spool: %w", err)
		}
		n := binary.PutUvarint(lenBuf[:], uint64(ix.size))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return fmt.Errorf("outcome: write record: %w", err)
		}
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("outcome: write record: %w", err)
		}
	}

	var tail recEnc
	tail.uvarint(0) // sentinel: no more records
	tail.uvarint(uint64(len(w.index)))
	if _, err := bw.Write(tail.buf); err != nil {
		return fmt.Errorf("outcome: write trailer: %w", err)
	}
	return nil
}
