package outcome_test

// Round-trip, canonical-order, corruption and streaming-contract tests
// for the GSO1 outcome log. They live in an external test package so
// they can exercise the log against real synthetic datasets.

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/outcome"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// genRecords validates and classifies a small synthetic dataset and
// returns the per-user records in dataset order.
func genRecords(t *testing.T, seed uint64, scale float64) []*outcome.Record {
	t.Helper()
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(scale), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()
	outs, _, err := v.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := classify.ClassifyAll(outs, classify.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*outcome.Record, len(outs))
	for i := range outs {
		if recs[i], err = outcome.NewRecord(outs[i], cls[i]); err != nil {
			t.Fatal(err)
		}
	}
	return recs
}

// writeLog writes records to a fresh log file and returns its path.
func writeLog(t *testing.T, recs []*outcome.Record, name, file string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), file)
	w, err := outcome.Create(path, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// readAll decodes every record of a log.
func readAll(t *testing.T, path string) (string, []*outcome.Record) {
	t.Helper()
	lf, err := outcome.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	var recs []*outcome.Record
	for {
		rec, err := lf.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return lf.Name(), recs
}

func TestLogRoundTrip(t *testing.T) {
	recs := genRecords(t, 42, 0.03)
	if len(recs) < 3 {
		t.Fatalf("want several users, got %d", len(recs))
	}
	for _, file := range []string{"out.gso", "out.gso.gz"} {
		t.Run(file, func(t *testing.T) {
			path := writeLog(t, recs, "primary", file)
			name, got := readAll(t, path)
			if name != "primary" {
				t.Fatalf("name = %q", name)
			}
			if len(got) != len(recs) {
				t.Fatalf("decoded %d records, wrote %d", len(got), len(recs))
			}
			// Records come back in user-ID order regardless of write order;
			// the generator emits IDs in increasing order already.
			for i := range recs {
				if !reflect.DeepEqual(got[i], recs[i]) {
					t.Fatalf("record %d (user %d) did not round-trip:\n got %+v\nwant %+v",
						i, recs[i].UserID, got[i], recs[i])
				}
			}
		})
	}
}

// TestLogCanonicalOrder writes the same records in several insertion
// orders and expects byte-identical logs — the contract that makes
// outcome logs comparable across worker and shard counts.
func TestLogCanonicalOrder(t *testing.T) {
	recs := genRecords(t, 7, 0.03)
	ref, err := os.ReadFile(writeLog(t, recs, "primary", "ref.gso"))
	if err != nil {
		t.Fatal(err)
	}
	orders := map[string]func(i, n int) int{
		"reversed":   func(i, n int) int { return n - 1 - i },
		"interleave": func(i, n int) int { return (i*7 + 3) % n },
	}
	for oname, perm := range orders {
		t.Run(oname, func(t *testing.T) {
			n := len(recs)
			seen := make(map[int]bool, n)
			shuffled := make([]*outcome.Record, 0, n)
			for i := 0; i < n; i++ {
				j := perm(i, n)
				for seen[j] {
					j = (j + 1) % n
				}
				seen[j] = true
				shuffled = append(shuffled, recs[j])
			}
			got, err := os.ReadFile(writeLog(t, shuffled, "primary", "shuf.gso"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("log bytes differ for insertion order %q", oname)
			}
		})
	}
}

func TestLogDuplicateUserRejected(t *testing.T) {
	recs := genRecords(t, 42, 0.02)
	path := filepath.Join(t.TempDir(), "dup.gso")
	w, err := outcome.Create(path, "primary")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(recs[0]); err != nil {
		t.Fatal(err) // spooling cannot see the duplicate yet
	}
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "duplicate user") {
		t.Fatalf("Close on duplicate user = %v, want duplicate-user error", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("rejected log must not be published (stat err %v)", err)
	}
}

func TestLogDiscardRemovesSpool(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone.gso")
	w, err := outcome.Create(path, "primary")
	if err != nil {
		t.Fatal(err)
	}
	w.Discard()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Discard left files behind: %v", entries)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after Discard must error")
	}
}

// TestLogTruncationRejected cuts a valid log at every prefix length and
// expects every cut to surface as an error — a truncated log must never
// read as a silently smaller analysis input.
func TestLogTruncationRejected(t *testing.T) {
	recs := genRecords(t, 42, 0.02)
	data, err := os.ReadFile(writeLog(t, recs[:3], "primary", "trunc.gso"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := scanBytes(data[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(data))
		}
	}
	if err := scanBytes(data); err != nil {
		t.Fatalf("full log failed: %v", err)
	}
}

// scanBytes decodes a log held in memory end to end.
func scanBytes(data []byte) error {
	rd, err := outcome.NewReader(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for {
		if _, err := rd.Next(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
	}
}

// TestLogCorruptHeaderRejected covers the header failure modes: bad
// magic, unsupported version, absurd sizes, and a feature-dimension
// mismatch.
func TestLogCorruptHeaderRejected(t *testing.T) {
	recs := genRecords(t, 42, 0.02)
	data, err := os.ReadFile(writeLog(t, recs[:2], "primary", "hdr.gso"))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), data...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"bad-magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"gsb-magic", mutate(func(b []byte) []byte { copy(b, "GSB1"); return b })},
		{"bad-version", mutate(func(b []byte) []byte { b[4] = 99; return b })},
		{"huge-name", mutate(func(b []byte) []byte {
			// Replace the name length with an absurd uvarint.
			return append(b[:5], 0xff, 0xff, 0xff, 0xff, 0x7f)
		})},
		{"empty", nil},
		{"magic-only", data[:4]},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := scanBytes(c.data); err == nil {
				t.Fatal("corrupt header decoded without error")
			}
		})
	}

	// Feature-dim mismatch: rebuild the header with dim+1. The header is
	// magic(4) version(1) namelen(1) name(7) dim(1) kinds(1) for this
	// dataset, so the dim byte sits right after the name.
	dimOff := 4 + 1 + 1 + len("primary")
	bad := append([]byte(nil), data...)
	bad[dimOff]++
	if err := scanBytes(bad); err == nil || !strings.Contains(err.Error(), "features") {
		t.Fatalf("feature-dim mismatch = %v, want features error", err)
	}
}

// TestLogCorruptRecordRejected flips record bytes and expects decode or
// validation errors, never silent acceptance of skewed analysis inputs.
func TestLogCorruptRecordRejected(t *testing.T) {
	recs := genRecords(t, 42, 0.02)
	var some []*outcome.Record
	for _, r := range recs {
		if r.Checkins() > 0 {
			some = append(some, r)
		}
		if len(some) == 2 {
			break
		}
	}
	if len(some) < 2 {
		t.Skip("no users with checkins at this scale")
	}
	data, err := os.ReadFile(writeLog(t, some, "primary", "rec.gso"))
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single byte after the header must either fail decode
	// or still satisfy every record invariant (float payload bits can
	// flip freely); it must never panic or mis-frame the stream.
	headerLen := 4 + 1 + 1 + len("primary") + 2
	rejected := 0
	for off := headerLen; off < len(data); off++ {
		b := append([]byte(nil), data...)
		b[off] ^= 0xff
		if err := scanBytes(b); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no byte flip was ever rejected — framing checks are dead")
	}
}

// TestLogSummarizeMatchesValidation pins the log's self-check: the
// partition, taxonomy and truth score reassembled from records equal
// the aggregates of the validation that produced them.
func TestLogSummarizeMatchesValidation(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.03), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()
	outs, part, err := v.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := classify.ClassifyAll(outs, classify.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sum.gso")
	w, err := outcome.Create(path, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	checkins := 0
	for i := range outs {
		checkins += len(outs[i].User.Checkins)
		if err := w.Add(outs[i], cls[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sm, err := outcome.Summarize(path)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Users != len(outs) || sm.Checkins != checkins {
		t.Fatalf("summary counts users=%d checkins=%d, want %d/%d", sm.Users, sm.Checkins, len(outs), checkins)
	}
	if sm.Partition != part {
		t.Fatalf("summary partition %+v != validation partition %+v", sm.Partition, part)
	}
	wantTax := make(map[string]int)
	for _, c := range cls {
		for _, k := range c.Kinds {
			wantTax[k.String()]++
		}
	}
	if !reflect.DeepEqual(sm.Taxonomy, wantTax) {
		t.Fatalf("summary taxonomy %v != %v", sm.Taxonomy, wantTax)
	}
	truth, err := core.ScoreAgainstTruth(outs)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Truth == nil || *sm.Truth != truth {
		t.Fatalf("summary truth %+v != %+v", sm.Truth, truth)
	}
}

// TestSinkMatchesAdd pins the ValidateStream plumbing: the Sink
// adapter (classify-then-add) produces the same log as explicit
// classification.
func TestSinkMatchesAdd(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	db, err := ds.DB()
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()

	dir := t.TempDir()
	viaSink := filepath.Join(dir, "sink.gso")
	w, err := outcome.Create(viaSink, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	sink := w.Sink(classify.Params{})
	for _, u := range ds.Users {
		o, err := v.ValidateUser(u, db)
		if err != nil {
			t.Fatal(err)
		}
		if err := sink(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	outs, _, err := v.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := classify.ClassifyAll(outs, classify.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*outcome.Record, len(outs))
	for i := range outs {
		if recs[i], err = outcome.NewRecord(outs[i], cls[i]); err != nil {
			t.Fatal(err)
		}
	}
	viaAdd := writeLog(t, recs, ds.Name, "add.gso")

	a, err := os.ReadFile(viaSink)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(viaAdd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Sink-built log differs from explicit-classification log")
	}
}

// TestShardSinkMatchesSink pins the ValidateShards plumbing: the same
// dataset validated as a 3-shard corpus through ShardSink produces a
// log byte-identical to the single-stream Sink path (canonical order
// erases the merged shard interleaving).
func TestShardSinkMatchesSink(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.03), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := ds.SaveShards(t.TempDir(), trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]trace.FrameSource, len(ss.Manifest.Shards))
	for i := range srcs {
		r, err := ss.OpenShard(i)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		srcs[i] = r
	}
	db, err := poi.NewDB(srcs[0].(*trace.ShardReader).POIs())
	if err != nil {
		t.Fatal(err)
	}
	shardLog := filepath.Join(t.TempDir(), "shards.gso")
	w, err := outcome.Create(shardLog, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()
	v.Parallelism = 4
	if _, err := v.ValidateShards(db, srcs, w.ShardSink(classify.Params{})); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the same users through the serial single-stream sink.
	// Shard users are E7-quantized by the binary codec, so the reference
	// must read them back from the shards too — use the single-file save
	// of the same dataset.
	binPath := filepath.Join(t.TempDir(), "ds.bin.gz")
	if err := ds.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	stream, err := trace.OpenStream(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	sdb, err := stream.DB()
	if err != nil {
		t.Fatal(err)
	}
	refLog := filepath.Join(t.TempDir(), "ref.gso")
	rw, err := outcome.Create(refLog, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ValidateStream(sdb, stream, rw.Sink(classify.Params{})); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(shardLog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(refLog)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("ShardSink log differs from single-stream Sink log")
	}
}

func TestOpenRejectsMissingAndForeign(t *testing.T) {
	if _, err := outcome.Open(filepath.Join(t.TempDir(), "nope.gso")); err == nil {
		t.Fatal("Open on a missing file must error")
	}
	p := filepath.Join(t.TempDir(), "foreign.gso")
	if err := os.WriteFile(p, []byte("GSB1not-an-outcome-log"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := outcome.Open(p); err == nil || !strings.Contains(err.Error(), "not an outcome log") {
		t.Fatalf("Open on foreign magic = %v", err)
	}
}

func TestEmptyLogRoundTrips(t *testing.T) {
	path := writeLog(t, nil, "empty", "empty.gso")
	name, recs := readAll(t, path)
	if name != "empty" || len(recs) != 0 {
		t.Fatalf("empty log: name=%q records=%d", name, len(recs))
	}
	sm, err := outcome.Summarize(path)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Users != 0 || sm.Truth != nil {
		t.Fatalf("empty summary: %+v", sm)
	}
}

func TestNewRecordRejectsMismatchedClassification(t *testing.T) {
	ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.02), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()
	outs, _, err := v.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	var withCheckins *core.UserOutcome
	for i := range outs {
		if len(outs[i].User.Checkins) > 0 {
			withCheckins = &outs[i]
			break
		}
	}
	if withCheckins == nil {
		t.Skip("no users with checkins")
	}
	if _, err := outcome.NewRecord(*withCheckins, nil); err == nil {
		t.Fatal("nil classification accepted")
	}
	if _, err := outcome.NewRecord(*withCheckins, &classify.Classification{}); err == nil {
		t.Fatal("short classification accepted")
	}
}
