package outcome

import (
	"fmt"
)

// Append rewrites the log at src into dst with the given records folded
// in: a source record whose user also appears in updates is superseded
// (dropped in favour of the update), every other source record is
// carried over unchanged, and updates for users absent from the source
// are appended as new users. The destination is built through the
// ordinary Writer, so it is compacted to canonical form — records
// strictly increasing by user ID, one record per user, no tombstones —
// and its bytes are exactly what a cold validation of the updated
// corpus writes, because carried-over records are byte-for-byte the
// same deterministic encodings and the Writer re-sequences everything
// at Close.
//
// observe, which may be nil, sees every source record in log order
// together with whether it was superseded — the hook the incremental
// updater uses to subtract superseded contributions (and keep truth
// counts) in the same single pass that compacts the log. src and dst
// may name the same file: the source is fully read before the Writer
// publishes over it.
func Append(src, dst string, updates []*Record, observe func(old *Record, superseded bool) error) error {
	superseding := make(map[int]bool, len(updates))
	for _, rec := range updates {
		if superseding[rec.UserID] {
			return fmt.Errorf("outcome: append: duplicate update for user %d", rec.UserID)
		}
		superseding[rec.UserID] = true
	}

	lf, err := Open(src)
	if err != nil {
		return err
	}
	defer lf.Close()

	w, err := Create(dst, lf.Name())
	if err != nil {
		return err
	}
	defer w.Discard()

	if err := each(lf, func(rec *Record) error {
		superseded := superseding[rec.UserID]
		if observe != nil {
			if err := observe(rec, superseded); err != nil {
				return err
			}
		}
		if superseded {
			return nil
		}
		return w.Write(rec)
	}); err != nil {
		return err
	}
	for _, rec := range updates {
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Close()
}
