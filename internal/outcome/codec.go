package outcome

// GSO1 wire encoding: the varint/float primitives plus the record and
// header codecs. See the package comment for the byte-level layout.

import (
	"encoding/binary"
	"fmt"
	"math"

	"geosocial/internal/classify"
	"geosocial/internal/detect"
	"geosocial/internal/levy"
	"geosocial/internal/trace"
)

// logMagic identifies the outcome-log format ("GeoSocial Outcomes").
var logMagic = [4]byte{'G', 'S', 'O', '1'}

// logVersion is the current header version.
const logVersion = 1

const (
	// maxRecordBytes caps a single record so a corrupt length prefix
	// cannot trigger a multi-gigabyte allocation.
	maxRecordBytes = 1 << 28
	// maxStringBytes caps an encoded string for the same reason.
	maxStringBytes = 1 << 20
	// maxKindCount bounds the header kind count: kinds are stored as
	// single bytes, so anything larger is structurally impossible.
	maxKindCount = 256
	// allocHint caps speculative slice preallocation from untrusted
	// counts; slices grow past it by appending.
	allocHint = 1 << 16
)

// labelTable enumerates the known ground-truth labels; the index is the
// wire encoding. Unknown labels are written as len(labelTable) + string.
var labelTable = [...]trace.Label{
	trace.LabelNone, trace.LabelHonest, trace.LabelSuperfluous,
	trace.LabelRemote, trace.LabelDriveby, trace.LabelOther,
}

// --- encoding helpers ---

// recEnc accumulates one record's payload in memory (records are
// length-prefixed, so the size must be known before the first byte
// reaches the stream).
type recEnc struct{ buf []byte }

func (e *recEnc) reset()           { e.buf = e.buf[:0] }
func (e *recEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *recEnc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *recEnc) f64(v float64)    { e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *recEnc) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *recEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *recEnc) label(l trace.Label) {
	for i, known := range labelTable {
		if l == known {
			e.uvarint(uint64(i))
			return
		}
	}
	e.uvarint(uint64(len(labelTable)))
	e.str(string(l))
}

// flights writes one Levy flight block as two float64 columns.
func (e *recEnc) flights(fl []levy.Flight) {
	e.uvarint(uint64(len(fl)))
	for _, f := range fl {
		e.f64(f.Dist)
	}
	for _, f := range fl {
		e.f64(f.Time)
	}
}

// encodeRecord appends the record's payload to e. The record must have
// passed validate.
func encodeRecord(e *recEnc, r *Record) error {
	e.varint(int64(r.UserID))
	e.varint(int64(r.Profile.Friends))
	e.varint(int64(r.Profile.Badges))
	e.varint(int64(r.Profile.Mayors))
	e.f64(r.Profile.CheckinsPerDay)
	e.uvarint(uint64(r.Visits))
	e.uvarint(uint64(r.Missing))

	e.uvarint(uint64(len(r.Times)))
	var prev int64
	for i, t := range r.Times {
		if i == 0 {
			e.varint(t)
		} else {
			if t < prev {
				return fmt.Errorf("outcome: user %d: checkin %d out of order", r.UserID, i)
			}
			e.uvarint(uint64(t - prev))
		}
		prev = t
	}
	for _, k := range r.Kinds {
		e.byte(byte(k))
	}
	for _, l := range r.Truth {
		e.label(l)
	}
	for j := 0; j < detect.FeatureDim; j++ {
		for i := range r.Features {
			e.f64(r.Features[i][j])
		}
	}
	e.flights(r.GPSFlights)
	e.flights(r.HonestFlights)
	e.flights(r.AllFlights)
	e.uvarint(uint64(len(r.Pauses)))
	for _, p := range r.Pauses {
		e.f64(p)
	}
	return nil
}

// EncodeRecord returns one record's GSO1 payload encoding (the bytes a
// log stores length-prefixed), validating it first. This is the unit
// the checkpoint store persists per user; DecodeRecord reverses it.
func EncodeRecord(r *Record) ([]byte, error) {
	if err := r.validate(classify.NumKinds); err != nil {
		return nil, err
	}
	var e recEnc
	if err := encodeRecord(&e, r); err != nil {
		return nil, err
	}
	if len(e.buf) > maxRecordBytes {
		return nil, fmt.Errorf("outcome: record for user %d exceeds %d bytes", r.UserID, maxRecordBytes)
	}
	return e.buf, nil
}

// DecodeRecord decodes and validates one payload produced by
// EncodeRecord (or stored in a current-version log).
func DecodeRecord(data []byte) (*Record, error) {
	return decodeRecord(data, classify.NumKinds)
}

// --- decoding helpers ---

// recDec decodes one record payload with a sticky error, so call sites
// stay linear and check failure once.
type recDec struct {
	data []byte
	pos  int
	err  error
}

func (d *recDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *recDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("outcome: record: bad uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *recDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("outcome: record: bad varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *recDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.data) {
		d.fail("outcome: record: truncated float at offset %d", d.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

func (d *recDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail("outcome: record: truncated byte at offset %d", d.pos)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *recDec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringBytes {
		d.fail("outcome: record: string length %d exceeds limit", n)
		return ""
	}
	if d.pos+int(n) > len(d.data) {
		d.fail("outcome: record: truncated string at offset %d", d.pos)
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *recDec) label() trace.Label {
	idx := d.uvarint()
	if d.err != nil {
		return trace.LabelNone
	}
	if idx < uint64(len(labelTable)) {
		return labelTable[idx]
	}
	if idx == uint64(len(labelTable)) {
		return trace.Label(d.str())
	}
	d.fail("outcome: record: bad label code %d", idx)
	return trace.LabelNone
}

// flights reads one Levy flight block (nil when empty — decoded
// records are in canonical form, see canon).
func (d *recDec) flights() []levy.Flight {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]levy.Flight, 0, min(n, allocHint))
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, levy.Flight{Dist: d.f64()})
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		out[i].Time = d.f64()
	}
	return out
}

// decodeRecord decodes and validates one record payload against the
// header's kind count. The feature dimension is fixed at
// detect.FeatureDim (the reader rejects headers with any other value).
func decodeRecord(data []byte, kindCount int) (*Record, error) {
	d := recDec{data: data}
	r := &Record{}
	r.UserID = int(d.varint())
	r.Profile.Friends = int(d.varint())
	r.Profile.Badges = int(d.varint())
	r.Profile.Mayors = int(d.varint())
	r.Profile.CheckinsPerDay = d.f64()
	r.Visits = int(d.uvarint())
	r.Missing = int(d.uvarint())

	nCk := d.uvarint()
	if d.err == nil && nCk > 0 {
		r.Times = make([]int64, 0, min(nCk, allocHint))
		var t int64
		for i := uint64(0); i < nCk && d.err == nil; i++ {
			if i == 0 {
				t = d.varint()
			} else {
				t += int64(d.uvarint())
			}
			r.Times = append(r.Times, t)
		}
		r.Kinds = make([]classify.Kind, 0, min(nCk, allocHint))
		for i := uint64(0); i < nCk && d.err == nil; i++ {
			r.Kinds = append(r.Kinds, classify.Kind(d.byte()))
		}
		r.Truth = make([]trace.Label, 0, min(nCk, allocHint))
		for i := uint64(0); i < nCk && d.err == nil; i++ {
			r.Truth = append(r.Truth, d.label())
		}
		if d.err == nil {
			// The columns are fixed-width, so bound the allocation by the
			// bytes actually present before trusting the untrusted count.
			if need := nCk * detect.FeatureDim * 8; uint64(len(d.data)-d.pos) < need {
				d.fail("outcome: record: %d checkins claim %d feature bytes, %d remain",
					nCk, need, len(d.data)-d.pos)
			} else {
				r.Features = make([][detect.FeatureDim]float64, nCk)
				for j := 0; j < detect.FeatureDim && d.err == nil; j++ {
					for i := uint64(0); i < nCk && d.err == nil; i++ {
						r.Features[i][j] = d.f64()
					}
				}
			}
		}
	}
	r.GPSFlights = d.flights()
	r.HonestFlights = d.flights()
	r.AllFlights = d.flights()
	nP := d.uvarint()
	if d.err == nil && nP > 0 {
		r.Pauses = make([]float64, 0, min(nP, allocHint))
		for i := uint64(0); i < nP && d.err == nil; i++ {
			r.Pauses = append(r.Pauses, d.f64())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("outcome: record for user %d has %d trailing bytes", r.UserID, len(d.data)-d.pos)
	}
	if err := r.validate(kindCount); err != nil {
		return nil, err
	}
	return r, nil
}
