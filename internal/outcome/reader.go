package outcome

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"geosocial/internal/detect"
)

// Reader decodes an outcome log one record at a time, holding only the
// current record in memory. The header is decoded and validated by
// NewReader; Next yields validated records in strictly increasing
// user-ID order (the canonical form every Writer produces — anything
// else is a corrupt or hand-mangled log) and io.EOF after the trailer
// has been verified. A truncated stream yields a non-EOF error, never a
// silently short analysis.
type Reader struct {
	r         *bufio.Reader
	name      string
	kindCount int
	buf       []byte
	users     uint64
	prevID    int
	done      bool
}

// NewReader decodes and validates the log header. The reader expects
// uncompressed bytes; Open handles files and gzip.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("outcome: read header: %w", noEOF(err))
	}
	if magic != logMagic {
		return nil, fmt.Errorf("outcome: not an outcome log (magic %q)", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("outcome: read header: %w", noEOF(err))
	}
	if version != logVersion {
		return nil, fmt.Errorf("outcome: unsupported log version %d (have %d)", version, logVersion)
	}
	rd := &Reader{r: br}
	if rd.name, err = readString(br); err != nil {
		return nil, fmt.Errorf("outcome: read header: %w", err)
	}
	dim, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("outcome: read header: %w", noEOF(err))
	}
	if dim != detect.FeatureDim {
		return nil, fmt.Errorf("outcome: log carries %d-dimensional features (have %d)", dim, detect.FeatureDim)
	}
	kinds, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("outcome: read header: %w", noEOF(err))
	}
	if kinds == 0 || kinds > maxKindCount {
		return nil, fmt.Errorf("outcome: invalid kind count %d", kinds)
	}
	rd.kindCount = int(kinds)
	return rd, nil
}

// Name returns the dataset name from the header.
func (rd *Reader) Name() string { return rd.name }

// Users returns the number of records decoded so far.
func (rd *Reader) Users() int { return int(rd.users) }

// Next decodes, validates and returns the next record, or io.EOF once
// the trailer has been read and verified. The record is freshly
// allocated and owned by the caller.
func (rd *Reader) Next() (*Record, error) {
	if rd.done {
		return nil, io.EOF
	}
	recLen, err := binary.ReadUvarint(rd.r)
	if err != nil {
		return nil, fmt.Errorf("outcome: read record: %w", noEOF(err))
	}
	if recLen == 0 {
		// Sentinel: verify the trailer then report a clean end.
		count, err := binary.ReadUvarint(rd.r)
		if err != nil {
			return nil, fmt.Errorf("outcome: read trailer: %w", noEOF(err))
		}
		if count != rd.users {
			return nil, fmt.Errorf("outcome: trailer record count %d, decoded %d", count, rd.users)
		}
		rd.done = true
		return nil, io.EOF
	}
	if recLen > maxRecordBytes {
		return nil, fmt.Errorf("outcome: record length %d exceeds limit", recLen)
	}
	if uint64(cap(rd.buf)) < recLen {
		rd.buf = make([]byte, recLen)
	}
	buf := rd.buf[:recLen]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return nil, fmt.Errorf("outcome: read record: %w", noEOF(err))
	}
	rec, err := decodeRecord(buf, rd.kindCount)
	if err != nil {
		return nil, err
	}
	if rd.users > 0 && rec.UserID <= rd.prevID {
		return nil, fmt.Errorf("outcome: user %d out of canonical order (after %d)", rec.UserID, rd.prevID)
	}
	rd.prevID = rec.UserID
	rd.users++
	return rec, nil
}

// LogFile is a Reader bound to an opened log file.
type LogFile struct {
	*Reader
	f  *os.File
	gz *gzip.Reader
}

// Open opens an outcome log file, transparently unwrapping gzip
// (detected from magic bytes, never the file name).
func Open(path string) (*LogFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("outcome: open log: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	lf := &LogFile{f: f}
	src := io.Reader(br)
	if head, perr := br.Peek(2); perr == nil && head[0] == 0x1f && head[1] == 0x8b {
		if lf.gz, err = gzip.NewReader(br); err != nil {
			f.Close()
			return nil, fmt.Errorf("outcome: open log: %w", err)
		}
		src = lf.gz
	}
	if lf.Reader, err = NewReader(src); err != nil {
		f.Close()
		return nil, err
	}
	return lf, nil
}

// Close releases the underlying file.
func (lf *LogFile) Close() error {
	if lf.gz != nil {
		lf.gz.Close()
	}
	return lf.f.Close()
}

// Scan streams every record of a log file through fn, in canonical
// user-ID order, holding one record in memory at a time. fn errors
// abort the scan.
func Scan(path string, fn func(*Record) error) error {
	lf, err := Open(path)
	if err != nil {
		return err
	}
	defer lf.Close()
	return each(lf, fn)
}

// readString reads a uvarint-prefixed string from a header stream.
func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", noEOF(err)
	}
	if n > maxStringBytes {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", noEOF(err)
	}
	return string(buf), nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// header or record, running out of bytes is truncation, not a clean
// end, and must never be mistaken for the iterator's end-of-stream
// signal.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
