package outcome

// Log-backed analysis drivers: each function makes one streaming pass
// over an outcome log and feeds the analysis layer's accumulator (or
// assembles the bounded sample the math needs), producing results
// exactly equal — to the last float bit — to the in-memory path over
// the same users in the same (canonical) order. Every driver also
// reports the pass's ScanStats, so callers (the facade's
// AnalyzeOutcomes, cmd/geoanalyze via it) get the log's user and
// checkin counts without a second pass — these functions are the one
// implementation of each log-backed analysis.

import (
	"io"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/detect"
	"geosocial/internal/levy"
)

// ScanStats describes one streaming pass over a log.
type ScanStats struct {
	// Name is the dataset name from the log header.
	Name string
	// Users and Checkins count the records and checkins scanned.
	Users, Checkins int
}

// Summary aggregates what a whole-log pass reveals: the same
// dataset-level quantities streaming validation reports, recomputed
// from the log alone — a cheap self-check that a log is faithful to
// the validation that produced it.
type Summary struct {
	// Name is the dataset name from the log header.
	Name string `json:"name"`
	// Users is the number of records.
	Users int `json:"users"`
	// Checkins is the total checkin count.
	Checkins int `json:"checkins"`
	// Partition is the Figure 1 split reassembled from the records.
	Partition core.Partition `json:"partition"`
	// Taxonomy holds the §5.1 per-kind checkin counts.
	Taxonomy map[string]int `json:"taxonomy"`
	// Truth scores the matcher against ground-truth labels; nil when
	// the log carries none (real data).
	Truth *core.TruthScore `json:"truth,omitempty"`
}

// Summarize rebuilds the dataset-level aggregates from a log.
func Summarize(path string) (*Summary, error) {
	sm := &Summary{Taxonomy: make(map[string]int, classify.NumKinds)}
	var truth core.TruthAccum
	st, err := scan(path, func(rec *Record) error {
		rec.AddTo(&sm.Partition)
		for _, k := range rec.Kinds {
			sm.Taxonomy[k.String()]++
		}
		rec.AddTruth(&truth)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sm.Name, sm.Users, sm.Checkins = st.Name, st.Users, st.Checkins
	if truth.Labeled() > 0 {
		sc, err := truth.Score()
		if err != nil {
			return nil, err
		}
		sm.Truth = &sc
	}
	return sm, nil
}

// Correlations computes the Table 2 feature-correlation matrix from a
// log in one pass (classify.CorrAccum holds four floats and four
// ratios per user — the bounded reservoir Pearson requires).
func Correlations(path string) (*classify.FeatureCorrelations, ScanStats, error) {
	var a classify.CorrAccum
	st, err := scan(path, func(rec *Record) error {
		a.Add(rec.Profile, rec.Counts())
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	fc, err := a.Correlations()
	return fc, st, err
}

// InterArrivals pools the Figure 6 inter-arrival gaps (minutes) of the
// given kind from a log; classify.Kind(-1) pools all checkins.
func InterArrivals(path string, k classify.Kind) ([]float64, ScanStats, error) {
	var gaps []float64
	st, err := scan(path, func(rec *Record) error {
		gaps = classify.AppendInterArrivals(gaps, rec.Times, rec.Kinds, k)
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	return gaps, st, nil
}

// FilterTradeoff builds the §5.3 user-filtering trade-off curve from a
// log in one pass (three numbers per user).
func FilterTradeoff(path string) (classify.FilterTradeoff, ScanStats, error) {
	var a classify.TradeoffAccum
	st, err := scan(path, func(rec *Record) error {
		a.Add(rec.Counts())
		return nil
	})
	if err != nil {
		return classify.FilterTradeoff{}, st, err
	}
	return a.Tradeoff(), st, nil
}

// Detector reassembles the §7 detector training set and scores the
// §5.3 burstiness baseline in a single pass. The examples are
// bit-identical to detect.ExtractAll over the same users in canonical
// order (the vectors were computed from the live outcomes and stored);
// only the compact vectors are held, never the traces.
func Detector(path string, d classify.BurstDetector) ([]detect.Example, classify.DetectorScore, ScanStats, error) {
	var all []detect.Example
	var burst classify.DetectorScore
	st, err := scan(path, func(rec *Record) error {
		all = append(all, rec.Examples()...)
		d.ScoreUser(&burst, rec.Times, rec.Kinds)
		return nil
	})
	if err != nil {
		return nil, classify.DetectorScore{}, st, err
	}
	return all, burst, st, nil
}

// Examples is Detector without the burstiness baseline.
func Examples(path string) ([]detect.Example, error) {
	all, _, _, err := Detector(path, classify.BurstDetector{})
	return all, err
}

// BurstScore evaluates the §5.3 burstiness detector against the log's
// classifications in one pass.
func BurstScore(path string, d classify.BurstDetector) (classify.DetectorScore, error) {
	_, sc, _, err := Detector(path, d)
	return sc, err
}

// Samples reassembles the three §6.1 Levy fitting samples from a log,
// merged in canonical user order — exactly the samples
// eval.FitModelsFromSamples and eval.Fig7FromSamples expect.
func Samples(path string) (gpsSm, honestSm, allSm levy.Sample, st ScanStats, err error) {
	st, err = scan(path, func(rec *Record) error {
		rec.AddSamples(&gpsSm, &honestSm, &allSm)
		return nil
	})
	if err != nil {
		return levy.Sample{}, levy.Sample{}, levy.Sample{}, st, err
	}
	return gpsSm, honestSm, allSm, st, nil
}

// scan streams a log through fn, counting users and checkins.
func scan(path string, fn func(*Record) error) (ScanStats, error) {
	var st ScanStats
	lf, err := Open(path)
	if err != nil {
		return st, err
	}
	defer lf.Close()
	st.Name = lf.Name()
	err = each(lf, func(rec *Record) error {
		st.Users++
		st.Checkins += rec.Checkins()
		return fn(rec)
	})
	return st, err
}

// each iterates an already-open log (the loop body shared by scan and
// Scan).
func each(lf *LogFile, fn func(*Record) error) error {
	for {
		rec, err := lf.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
