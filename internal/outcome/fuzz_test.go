package outcome

// Native fuzz target for the GSO1 record decoder: arbitrary bytes must
// decode cleanly or fail with an error — never panic, never allocate
// unboundedly — and a successful decode must re-encode to a payload
// that decodes to the same record (the codec's fixed point).

import (
	"math"
	"reflect"
	"testing"

	"geosocial/internal/classify"
	"geosocial/internal/detect"
	"geosocial/internal/levy"
	"geosocial/internal/trace"
)

// seedRecord builds a small hand-rolled record exercising every column.
func seedRecord() *Record {
	r := &Record{
		UserID:  7,
		Profile: trace.Profile{Friends: 12, Badges: 3, Mayors: 1, CheckinsPerDay: 4.25},
		Visits:  3,
		Missing: 1,
		Times:   []int64{1000, 1000, 1360},
		Kinds:   []classify.Kind{classify.Honest, classify.Superfluous, classify.Honest},
		Truth:   []trace.Label{trace.LabelHonest, trace.Label("weird"), trace.LabelNone},
		GPSFlights: []levy.Flight{
			{Dist: 1.5, Time: 12}, {Dist: 0.3, Time: 4},
		},
		HonestFlights: []levy.Flight{{Dist: 1.4, Time: 11}},
		AllFlights:    []levy.Flight{{Dist: 1.4, Time: 11}, {Dist: 0.01, Time: 1}},
		Pauses:        []float64{7, 42.5},
	}
	r.Features = make([][detect.FeatureDim]float64, len(r.Times))
	for i := range r.Features {
		for j := 0; j < detect.FeatureDim; j++ {
			r.Features[i][j] = float64(i*detect.FeatureDim+j) / 3
		}
	}
	return r
}

func FuzzRecordDecode(f *testing.F) {
	var e recEnc
	if err := encodeRecord(&e, seedRecord()); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), e.buf...))
	e.reset()
	if err := encodeRecord(&e, &Record{UserID: -3}); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), e.buf...))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeRecord(data, classify.NumKinds)
		if err != nil {
			return // rejected, fine
		}
		// A record the decoder accepted must re-encode and decode to an
		// identical record (NaN payloads break DeepEqual, so skip those).
		var enc recEnc
		if err := encodeRecord(&enc, rec); err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		again, err := decodeRecord(enc.buf, classify.NumKinds)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if hasNaN(rec) {
			return
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("decode/encode/decode not a fixed point:\n first %+v\nsecond %+v", rec, again)
		}
	})
}

// hasNaN reports whether any float column carries a NaN (bit patterns
// survive the codec but defeat DeepEqual).
func hasNaN(r *Record) bool {
	if math.IsNaN(r.Profile.CheckinsPerDay) {
		return true
	}
	for _, x := range r.Features {
		for _, v := range x {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	for _, fl := range [][]levy.Flight{r.GPSFlights, r.HonestFlights, r.AllFlights} {
		for _, f := range fl {
			if math.IsNaN(f.Dist) || math.IsNaN(f.Time) {
				return true
			}
		}
	}
	for _, p := range r.Pauses {
		if math.IsNaN(p) {
			return true
		}
	}
	return false
}
