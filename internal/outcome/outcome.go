// Package outcome implements the GSO1 columnar outcome log: a compact,
// versioned on-disk record of everything the §5–§7 analyses need about a
// validated user — and nothing they don't. Streaming validation
// (core.Validator.ValidateStream / ValidateShards and the facade's
// multi-source engine) discards per-user outcomes after aggregating
// them, which keeps memory bounded but leaves nothing for the analysis
// layer to run on. A Writer plugged in as the outcome sink captures a
// per-user Record while the outcome is still alive; the analyses then
// run over the log in a single streaming pass, retaining only what
// their math requires — O(users) aggregates for correlations and the
// filtering trade-off, the compact full sample (feature vectors,
// flights) for the detector and Levy fits — so feature correlations
// (Table 2), the extraneous-checkin detectors (§5.3, §7) and the Levy
// flight fits (§6.1) run on datasets whose traces never fit in RAM.
//
// A Record deliberately stores analysis inputs, not traces: checkin
// timestamps, classification kinds and ground-truth labels (one small
// column each per checkin), the detect feature vectors, the per-user
// visit statistics, and the three Levy flight samples the §6.1 models
// train on. GPS fixes — the overwhelming bulk of a dataset — never
// enter the log, which is why it is typically an order of magnitude
// smaller than the GSB1 stream it was derived from.
//
// Layout (all integers are varints unless noted; "GSO" = GeoSocial
// Outcomes, styled after the GSB1 dataset stream):
//
//	magic        4 bytes "GSO1"
//	version      uvarint (currently 1)
//	name         string (uvarint length + UTF-8 bytes)
//	feature dim  uvarint (detect.FeatureDim at write time)
//	kind count   uvarint (classify.NumKinds at write time)
//	records      per user: uvarint payload length (> 0), then the payload
//	sentinel     uvarint 0
//	trailer      uvarint record count (cross-checked by the reader)
//
// Record payload (columnar: each field of every checkin is stored as a
// contiguous block, so a scan that needs one column touches one run of
// bytes):
//
//	user id      zigzag varint
//	profile      friends/badges/mayors (zigzag), checkins/day (8-byte LE
//	             float64)
//	visits       uvarint detected-visit count
//	missing      uvarint unmatched-visit count
//	checkins     uvarint count nCk, then the per-checkin columns:
//	  times      first timestamp as zigzag varint, then uvarint deltas
//	             (checkins are time-ordered)
//	  kinds      nCk bytes (classify.Kind, < kind count)
//	  truth      nCk labels (enum, or enum escape + string)
//	  features   feature-dim columns of nCk 8-byte LE float64 each
//	             (column-major)
//	levy         three flight blocks (gps, honest, all): uvarint count,
//	             count dists, count times (8-byte LE float64 columns);
//	             then pauses: uvarint count + count float64
//
// Floats are stored as exact IEEE-754 bits — never quantized — because
// the package's contract is that log-backed analyses are *exactly*
// equal to in-memory analyses of the same users, to the last ulp.
//
// Canonical order. Records are stored sorted by user ID (strictly
// increasing — duplicate users are invalid), regardless of the order
// outcomes reached the Writer. Validation delivers outcomes in a merged
// order that depends on how a corpus is sharded; sorting at Close makes
// the log bytes a pure function of the dataset, so outcome logs are
// byte-identical for any worker count and any shard split — the same
// contract the partition aggregates satisfy. The Writer keeps only an
// O(users) index in memory to do this: records spool to a temp file as
// they arrive and are re-sequenced with positioned reads at Close.
package outcome

import (
	"fmt"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/detect"
	"geosocial/internal/levy"
	"geosocial/internal/trace"
)

// Record is one user's decoded outcome-log entry: the user-level
// analysis inputs distilled from a core.UserOutcome and its
// classification. All per-checkin slices are index-aligned with the
// user's checkin trace.
type Record struct {
	// UserID identifies the user; records in a log are strictly
	// increasing by ID.
	UserID int
	// Profile carries the Table 2 incentive features.
	Profile trace.Profile
	// Visits is the number of detected visits (stay points).
	Visits int
	// Missing is the number of visits not matched by any checkin.
	Missing int
	// Times holds the checkin timestamps (Unix seconds, non-decreasing).
	Times []int64
	// Kinds holds the §5.1 classification of each checkin.
	Kinds []classify.Kind
	// Truth holds the generator ground-truth label of each checkin
	// (LabelNone for real data).
	Truth []trace.Label
	// Features holds the detect feature vector of each checkin.
	Features [][detect.FeatureDim]float64
	// GPSFlights, HonestFlights and AllFlights are the user's §6.1 Levy
	// fitting samples from detected visits, matched checkins, and the
	// full checkin trace respectively.
	GPSFlights    []levy.Flight
	HonestFlights []levy.Flight
	AllFlights    []levy.Flight
	// Pauses are the visit stay durations in minutes (the GPS model's
	// pause sample).
	Pauses []float64
}

// NewRecord distills one validated, classified user into a Record. The
// classification must be parallel to the user's checkin trace (as
// produced by classify.ClassifyUser on the same outcome).
func NewRecord(o core.UserOutcome, cls *classify.Classification) (*Record, error) {
	cks := o.User.Checkins
	if cls == nil || len(cls.Kinds) != len(cks) {
		return nil, fmt.Errorf("outcome: user %d: classification does not match %d checkins", o.User.ID, len(cks))
	}
	r := &Record{
		UserID:  o.User.ID,
		Profile: o.User.Profile,
		Visits:  len(o.Visits),
		Missing: o.Match.Missing(),
		Kinds:   append([]classify.Kind(nil), cls.Kinds...),
	}
	if n := len(cks); n > 0 {
		r.Times = make([]int64, n)
		r.Truth = make([]trace.Label, n)
		for i, c := range cks {
			r.Times[i] = c.T
			r.Truth[i] = c.Truth
		}
		r.Features = make([][detect.FeatureDim]float64, n)
		for i, e := range detect.Extract(o) {
			r.Features[i] = e.X
		}
	}
	gps := levy.SampleFromVisits(o.Visits)
	// Canonical form: empty columns are nil, matching what the decoder
	// produces, so freshly built and round-tripped records compare equal.
	r.GPSFlights, r.Pauses = canonFlights(gps.Flights), canonF64(gps.Pauses)
	r.HonestFlights = canonFlights(levy.SampleFromCheckins(cks, o.Match.IsHonest).Flights)
	r.AllFlights = canonFlights(levy.SampleFromCheckins(cks, nil).Flights)
	return r, nil
}

func canonFlights(fl []levy.Flight) []levy.Flight {
	if len(fl) == 0 {
		return nil
	}
	return fl
}

func canonF64(v []float64) []float64 {
	if len(v) == 0 {
		return nil
	}
	return v
}

// Checkins returns the number of checkins in the record.
func (r *Record) Checkins() int { return len(r.Times) }

// Counts returns the per-kind checkin histogram.
func (r *Record) Counts() classify.KindCounts { return classify.CountsOf(r.Kinds) }

// Honest returns the number of matched (honest) checkins.
func (r *Record) Honest() int {
	n := 0
	for _, k := range r.Kinds {
		if k == classify.Honest {
			n++
		}
	}
	return n
}

// AddTo accumulates the record's Figure 1 contribution into a
// partition, exactly as Partition.Add would for the live outcome.
func (r *Record) AddTo(p *core.Partition) {
	honest := r.Honest()
	p.Checkins += len(r.Times)
	p.Visits += r.Visits
	p.Honest += honest
	p.Extraneous += len(r.Times) - honest
	p.Missing += r.Missing
}

// AddTruth accumulates the record's labeled checkins into a truth
// accumulator, exactly as TruthAccum.Add would for the live outcome
// (kind Honest is the matcher's verdict).
func (r *Record) AddTruth(a *core.TruthAccum) {
	for i, l := range r.Truth {
		a.AddLabel(l, r.Kinds[i] == classify.Honest)
	}
}

// AddSamples appends the record's three Levy fitting samples to the
// population samples (pauses belong to the GPS sample). Appending
// records in canonical order reproduces exactly the samples
// eval.FitModels assembles from live outcomes; every log consumer
// (outcome.Samples, the facade's levy analysis) accumulates through
// this one method.
func (r *Record) AddSamples(gpsSm, honestSm, allSm *levy.Sample) {
	gpsSm.Flights = append(gpsSm.Flights, r.GPSFlights...)
	gpsSm.Pauses = append(gpsSm.Pauses, r.Pauses...)
	honestSm.Flights = append(honestSm.Flights, r.HonestFlights...)
	allSm.Flights = append(allSm.Flights, r.AllFlights...)
}

// Examples reconstructs the detect training examples for this user,
// index-aligned and bit-identical to detect.Extract on the live
// outcome (the features were computed there in the first place).
func (r *Record) Examples() []detect.Example {
	if len(r.Times) == 0 {
		return nil
	}
	out := make([]detect.Example, len(r.Times))
	for i := range r.Times {
		out[i] = detect.Example{
			X:          r.Features[i],
			Extraneous: r.Kinds[i] != classify.Honest,
			User:       r.UserID,
		}
	}
	return out
}

// validate checks the internal invariants a decoded record must
// satisfy; the decoder calls it so corruption surfaces as an error,
// never as skewed analysis inputs.
func (r *Record) validate(kindCount int) error {
	n := len(r.Times)
	if len(r.Kinds) != n || len(r.Truth) != n || (n > 0 && len(r.Features) != n) {
		return fmt.Errorf("outcome: user %d: ragged checkin columns", r.UserID)
	}
	for i, t := range r.Times {
		if i > 0 && t < r.Times[i-1] {
			return fmt.Errorf("outcome: user %d: checkin %d out of order", r.UserID, i)
		}
	}
	for i, k := range r.Kinds {
		if k < 0 || int(k) >= kindCount {
			return fmt.Errorf("outcome: user %d: checkin %d has invalid kind %d", r.UserID, i, k)
		}
	}
	if r.Visits < 0 || r.Missing < 0 || r.Honest()+r.Missing != r.Visits {
		return fmt.Errorf("outcome: user %d: visit accounting broken (visits=%d honest=%d missing=%d)",
			r.UserID, r.Visits, r.Honest(), r.Missing)
	}
	return nil
}
