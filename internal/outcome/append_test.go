package outcome

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// recWithID clones the fuzz seed record under a new user ID.
func recWithID(id int) *Record {
	r := seedRecord()
	r.UserID = id
	return r
}

// writeLogFile writes a cold log of the given records.
func writeLogFile(t *testing.T, path string, recs ...*Record) {
	t.Helper()
	w, err := Create(path, "appendtest")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAllRecords(t *testing.T, path string) []*Record {
	t.Helper()
	var recs []*Record
	if err := Scan(path, func(r *Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendSupersedesAndCompacts(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.gso")
	writeLogFile(t, src, recWithID(1), recWithID(3), recWithID(5))

	updated := recWithID(3)
	updated.Pauses = []float64{1} // the superseding version differs
	fresh := recWithID(4)

	var seen []int
	var superseded []int
	dst := filepath.Join(dir, "dst.gso")
	err := Append(src, dst, []*Record{updated, fresh}, func(old *Record, sup bool) error {
		seen = append(seen, old.UserID)
		if sup {
			superseded = append(superseded, old.UserID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, []int{1, 3, 5}) {
		t.Fatalf("observe saw %v, want [1 3 5]", seen)
	}
	if !reflect.DeepEqual(superseded, []int{3}) {
		t.Fatalf("superseded %v, want [3]", superseded)
	}

	recs := readAllRecords(t, dst)
	ids := make([]int, len(recs))
	for i, r := range recs {
		ids[i] = r.UserID
	}
	if !reflect.DeepEqual(ids, []int{1, 3, 4, 5}) {
		t.Fatalf("users %v, want [1 3 4 5]", ids)
	}
	if !reflect.DeepEqual(recs[1], updated) {
		t.Fatal("superseded record not replaced by the update")
	}

	// The compacted log must be byte-identical to a cold log of the
	// same final records — no tombstones, no ordering residue.
	cold := filepath.Join(dir, "cold.gso")
	writeLogFile(t, cold, recWithID(1), updated, fresh, recWithID(5))
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("appended log differs from cold log of the same records")
	}
}

func TestAppendInPlace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.gso")
	writeLogFile(t, path, recWithID(1), recWithID(2))

	updated := recWithID(2)
	updated.Pauses = []float64{2}
	if err := Append(path, path, []*Record{updated}, nil); err != nil {
		t.Fatal(err)
	}
	recs := readAllRecords(t, path)
	if len(recs) != 2 || !reflect.DeepEqual(recs[1], updated) {
		t.Fatalf("in-place append produced %d records", len(recs))
	}
}

func TestAppendRejectsDuplicateUpdates(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.gso")
	writeLogFile(t, src, recWithID(1))
	err := Append(src, filepath.Join(dir, "dst.gso"),
		[]*Record{recWithID(2), recWithID(2)}, nil)
	if err == nil {
		t.Fatal("duplicate updates accepted")
	}
}
