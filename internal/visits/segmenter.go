package visits

// Segmenter is the resumable form of Detect: stay-point segmentation as
// an online fold over the GPS stream. Feed accepts any chunking of the
// trace — whole days, single fixes — and emits every visit the batch
// algorithm would have emitted from the prefix seen so far, as soon as
// it is decidable. The only state carried between feeds is the open
// tail window (the fixes since the last finalized stay decision), so
// appending a day to a user re-examines just that tail, never the whole
// history. Finish flushes the final window exactly as the batch scan
// decides it at end of trace.
//
// Detect is implemented on top of the Segmenter, which is what makes
// chunked and batch segmentation equal by construction: a window is
// only finalized when an observed fix breaks it (roam radius or time
// gap) or the trace ends, and both paths take those decisions from the
// same scan.
//
// The open-window state round-trips through EncodeState/RestoreState —
// a self-delimiting binary blob suited to a GSF1 fragment chunk — so a
// checkpointed ingest can park a user mid-stream and resume when its
// next day arrives.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/trace"
)

// segStateVersion is the EncodeState blob version.
const segStateVersion = 1

// maxStatePoints caps the fix count a RestoreState blob may claim, so a
// corrupt length prefix cannot trigger a huge allocation.
const maxStatePoints = 1 << 24

// Segmenter carries visit detection's open stay-point state between
// feeds. Create with NewSegmenter; not safe for concurrent use.
type Segmenter struct {
	cfg      Config
	db       *poi.DB
	buf      []trace.GPSPoint // open tail window: fixes not yet finalized
	lastT    int64            // time of the last fix ever fed
	have     bool             // at least one fix has been fed
	finished bool
}

// NewSegmenter validates the configuration and returns a fresh
// segmenter. The db may be nil, in which case visits are not snapped to
// POIs.
func NewSegmenter(cfg Config, db *poi.DB) (*Segmenter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Segmenter{cfg: cfg, db: db}, nil
}

// Pending returns the number of fixes held in the open tail window —
// the whole state a resumed feed re-examines.
func (s *Segmenter) Pending() int { return len(s.buf) }

// Feed appends fixes to the stream and returns the visits that became
// decidable. Fixes must continue the trace in non-decreasing time
// order, across feeds as well as within one.
func (s *Segmenter) Feed(pts []trace.GPSPoint) ([]trace.Visit, error) {
	if s.finished {
		return nil, fmt.Errorf("visits: segmenter already finished")
	}
	for _, p := range pts {
		if s.have && p.T < s.lastT {
			return nil, fmt.Errorf("visits: GPS trace not time-ordered")
		}
		s.lastT = p.T
		s.have = true
	}
	s.buf = append(s.buf, pts...)
	return s.drain(false), nil
}

// Finish flushes the open window with the batch algorithm's
// end-of-trace decision and seals the segmenter. Idempotent; a sealed
// segmenter rejects further feeds.
func (s *Segmenter) Finish() []trace.Visit {
	if s.finished {
		return nil
	}
	s.finished = true
	out := s.drain(true)
	s.buf = nil
	return out
}

// drain runs the stay-point scan over the buffered window, emitting
// every finalized visit. A window is finalized when an observed next
// fix breaks it (gap or roam) — or unconditionally when finish is set,
// mirroring the batch scan running out of trace.
func (s *Segmenter) drain(finish bool) []trace.Visit {
	var out []trace.Visit
	for {
		n := len(s.buf)
		if n == 0 {
			return out
		}
		anchor := s.buf[0].Loc
		cosAnchor := geo.CosLat(anchor)
		j := 0
		closed := false
		for j+1 < n {
			next := s.buf[j+1]
			if time.Duration(next.T-s.buf[j].T)*time.Second > s.cfg.MaxGap {
				closed = true
				break
			}
			// Decision-identical to Distance(anchor, next.Loc) >
			// RoamRadius: certified bounds decide all but borderline
			// fixes without trigonometry (see geo/fastdist.go).
			if !geo.WithinRadius(anchor, next.Loc, cosAnchor, s.cfg.RoamRadius) {
				closed = true
				break
			}
			j++
		}
		if !closed && !finish {
			return out // open window: undecidable until more fixes arrive
		}
		if dur := time.Duration(s.buf[j].T-s.buf[0].T) * time.Second; dur >= s.cfg.MinDuration {
			v := trace.Visit{
				Start: s.buf[0].T,
				End:   s.buf[j].T,
				Loc:   centroid(s.buf[:j+1]),
				POIID: -1,
			}
			if s.db != nil {
				if p, dist, ok := s.db.Nearest(v.Loc); ok && dist <= s.cfg.SnapRadius {
					v.POIID = p.ID
					v.Category = p.Category
				}
			}
			out = append(out, v)
			s.buf = s.buf[j+1:]
		} else {
			s.buf = s.buf[1:]
		}
	}
}

// EncodeState serializes the open-window state (not the configuration)
// as a self-delimiting blob, losslessly — coordinates keep their full
// float64 bits, so a restored segmenter continues bit-for-bit like the
// original.
func (s *Segmenter) EncodeState() []byte {
	buf := []byte{segStateVersion}
	var flags byte
	if s.have {
		flags |= 1
	}
	if s.finished {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, s.lastT)
	buf = binary.AppendUvarint(buf, uint64(len(s.buf)))
	for _, p := range s.buf {
		buf = binary.AppendVarint(buf, p.T)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Loc.Lat))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Loc.Lon))
		if p.Indoor {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// RestoreState replaces the segmenter's open-window state with a blob
// produced by EncodeState (under the same configuration). Any decode
// inconsistency is an error and leaves the segmenter unchanged.
func (s *Segmenter) RestoreState(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("visits: segmenter state truncated")
	}
	if data[0] != segStateVersion {
		return fmt.Errorf("visits: unsupported segmenter state version %d", data[0])
	}
	flags := data[1]
	if flags > 3 {
		return fmt.Errorf("visits: bad segmenter state flags %#x", flags)
	}
	pos := 2
	lastT, n := binary.Varint(data[pos:])
	if n <= 0 {
		return fmt.Errorf("visits: bad segmenter state time")
	}
	pos += n
	count, n := binary.Uvarint(data[pos:])
	if n <= 0 || count > maxStatePoints {
		return fmt.Errorf("visits: bad segmenter state fix count")
	}
	pos += n
	buf := make([]trace.GPSPoint, 0, count)
	prevT := int64(math.MinInt64)
	for i := uint64(0); i < count; i++ {
		t, n := binary.Varint(data[pos:])
		if n <= 0 {
			return fmt.Errorf("visits: bad segmenter state fix %d", i)
		}
		pos += n
		if pos+17 > len(data) {
			return fmt.Errorf("visits: segmenter state truncated at fix %d", i)
		}
		p := trace.GPSPoint{
			T: t,
			Loc: geo.LatLon{
				Lat: math.Float64frombits(binary.LittleEndian.Uint64(data[pos:])),
				Lon: math.Float64frombits(binary.LittleEndian.Uint64(data[pos+8:])),
			},
			Indoor: data[pos+16] != 0,
		}
		pos += 17
		if p.T < prevT {
			return fmt.Errorf("visits: segmenter state fixes out of order")
		}
		prevT = p.T
		buf = append(buf, p)
	}
	if pos != len(data) {
		return fmt.Errorf("visits: %d trailing bytes in segmenter state", len(data)-pos)
	}
	if count > 0 && (flags&1 == 0 || buf[count-1].T > lastT) {
		return fmt.Errorf("visits: inconsistent segmenter state")
	}
	s.buf = buf
	s.lastT = lastT
	s.have = flags&1 != 0
	s.finished = flags&2 != 0
	return nil
}
