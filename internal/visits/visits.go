// Package visits implements stay-point ("visit") detection over GPS
// traces, plus the movement/pause segmentation consumed by the Levy-walk
// fitting in internal/levy.
//
// The paper defines a visit as "the user staying at one location for
// longer than some period of time, e.g. 6 minutes" (§3). The detector
// below is the classic stay-point algorithm: scan forward and group
// consecutive fixes that stay within a roam radius of the window's
// anchor; when the window spans at least the minimum duration it becomes
// a visit with the centroid of its fixes as the visit location. Indoor
// fixes (the app's WiFi/accelerometer stationarity fallback) participate
// like ordinary fixes, as in the paper's collection app.
package visits

import (
	"fmt"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/trace"
)

// Config parameterizes visit detection.
type Config struct {
	// MinDuration is the minimum stay length for a visit; the paper uses
	// 6 minutes.
	MinDuration time.Duration
	// RoamRadius is the maximum distance in meters a fix may stray from
	// the stay anchor and still extend the stay.
	RoamRadius float64
	// MaxGap is the largest time gap between consecutive fixes allowed
	// inside one stay; longer gaps split the stay (a silent phone is not
	// evidence of presence).
	MaxGap time.Duration
	// SnapRadius is the maximum distance in meters from the visit
	// centroid to a POI for the visit to be attributed to that POI.
	// Visits with no POI within the radius keep POIID == -1.
	SnapRadius float64
}

// DefaultConfig returns the paper's parameters: 6-minute minimum stay,
// 100 m roam radius, 10-minute maximum intra-stay gap, 150 m POI snap.
func DefaultConfig() Config {
	return Config{
		MinDuration: 6 * time.Minute,
		RoamRadius:  100,
		MaxGap:      10 * time.Minute,
		SnapRadius:  150,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MinDuration <= 0 {
		return fmt.Errorf("visits: MinDuration must be positive, got %v", c.MinDuration)
	}
	if c.RoamRadius <= 0 {
		return fmt.Errorf("visits: RoamRadius must be positive, got %g", c.RoamRadius)
	}
	if c.MaxGap <= 0 {
		return fmt.Errorf("visits: MaxGap must be positive, got %v", c.MaxGap)
	}
	if c.SnapRadius < 0 {
		return fmt.Errorf("visits: SnapRadius must be non-negative, got %g", c.SnapRadius)
	}
	return nil
}

// Detect extracts visits from a time-ordered GPS trace. The db may be nil,
// in which case visits are not snapped to POIs. Detected visits are
// non-overlapping and time-ordered.
//
// Detect is the one-shot form of the Segmenter: it feeds the whole trace
// and flushes, so batch and incremental segmentation share a single
// implementation and cannot diverge.
func Detect(tr trace.GPSTrace, cfg Config, db *poi.DB) ([]trace.Visit, error) {
	s, err := NewSegmenter(cfg, db)
	if err != nil {
		return nil, err
	}
	out, err := s.Feed(tr)
	if err != nil {
		return nil, err
	}
	return append(out, s.Finish()...), nil
}

// centroid returns the mean coordinate of the fixes. Valid for the small
// extents of a single stay.
func centroid(pts []trace.GPSPoint) geo.LatLon {
	var lat, lon float64
	for _, p := range pts {
		lat += p.Loc.Lat
		lon += p.Loc.Lon
	}
	n := float64(len(pts))
	return geo.LatLon{Lat: lat / n, Lon: lon / n}
}

// SpeedAt estimates the user's ground speed in m/s at time t from the GPS
// trace, using the displacement between the fixes bracketing t. The
// boolean is false when the trace has no bracketing fixes within maxGap
// of t on both sides.
func SpeedAt(tr trace.GPSTrace, t int64, maxGap time.Duration) (float64, bool) {
	if len(tr) < 2 {
		return 0, false
	}
	// Binary search for the first fix at or after t.
	lo, hi := 0, len(tr)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr[mid].T < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var a, b trace.GPSPoint
	switch {
	case lo == 0:
		a, b = tr[0], tr[1]
	case lo >= len(tr):
		a, b = tr[len(tr)-2], tr[len(tr)-1]
	default:
		a, b = tr[lo-1], tr[lo]
	}
	gap := time.Duration(b.T-a.T) * time.Second
	if gap <= 0 || gap > maxGap {
		return 0, false
	}
	if abs64(a.T-t) > int64(maxGap/time.Second) || abs64(b.T-t) > int64(maxGap/time.Second) {
		return 0, false
	}
	return geo.Distance(a.Loc, b.Loc) / gap.Seconds(), true
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Segment is one movement leg between consecutive visits: the straight-
// line displacement Dist (meters) covered in Dur. It feeds the Levy-walk
// "flight" distribution.
type Segment struct {
	Dist float64       // meters
	Dur  time.Duration // movement time between stays
}

// Segments derives movement legs from a time-ordered visit list: one leg
// per consecutive visit pair, with distance between the visit centroids
// and duration from the first visit's end to the second's start. Legs
// longer than maxDur (e.g. overnight tracking gaps) or shorter than
// minDist are discarded, mirroring standard Levy-walk trace preparation.
func Segments(vs []trace.Visit, minDist float64, maxDur time.Duration) []Segment {
	var out []Segment
	for i := 1; i < len(vs); i++ {
		dur := time.Duration(vs[i].Start-vs[i-1].End) * time.Second
		if dur <= 0 || dur > maxDur {
			continue
		}
		dist := geo.Distance(vs[i-1].Loc, vs[i].Loc)
		if dist < minDist {
			continue
		}
		out = append(out, Segment{Dist: dist, Dur: dur})
	}
	return out
}

// Pauses returns the visit durations in minutes, the Levy-walk pause-time
// sample (Figure 7c).
func Pauses(vs []trace.Visit) []float64 {
	out := make([]float64, 0, len(vs))
	for _, v := range vs {
		out = append(out, v.Duration().Minutes())
	}
	return out
}
