package visits

import (
	"testing"
	"testing/quick"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/trace"
)

var base = geo.LatLon{Lat: 34.4208, Lon: -119.6982}

func at(dist float64) geo.LatLon { return geo.Destination(base, 90, dist) }

// stationary appends n per-minute fixes at the location starting at
// minute m0.
func stationary(tr trace.GPSTrace, loc geo.LatLon, m0, n int64) trace.GPSTrace {
	for i := int64(0); i < n; i++ {
		tr = append(tr, trace.GPSPoint{T: (m0 + i) * 60, Loc: loc})
	}
	return tr
}

func TestDetectSimpleStay(t *testing.T) {
	tr := stationary(nil, at(0), 0, 10) // 9 minutes stationary
	vs, err := Detect(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("visits = %d, want 1", len(vs))
	}
	if vs[0].Duration() != 9*time.Minute {
		t.Errorf("duration %v, want 9m", vs[0].Duration())
	}
	if d := geo.Distance(vs[0].Loc, at(0)); d > 1 {
		t.Errorf("centroid %.1f m off", d)
	}
}

func TestDetectBelowThreshold(t *testing.T) {
	tr := stationary(nil, at(0), 0, 5) // 4 minutes < 6
	vs, err := Detect(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("visits = %d, want 0 for a 4-minute stop", len(vs))
	}
}

func TestDetectMovementSplitsStays(t *testing.T) {
	// Stay, drive 2 km (beyond roam radius), stay again.
	tr := stationary(nil, at(0), 0, 10)
	tr = append(tr, trace.GPSPoint{T: 11 * 60, Loc: at(1000)})
	tr = stationary(tr, at(2000), 12, 10)
	vs, err := Detect(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("visits = %d, want 2", len(vs))
	}
	if geo.Distance(vs[0].Loc, at(0)) > 5 || geo.Distance(vs[1].Loc, at(2000)) > 5 {
		t.Error("visit centroids misplaced")
	}
}

func TestDetectRoamWithinRadius(t *testing.T) {
	// Fixes wobble within 60 m of the anchor: still one stay.
	s := rng.New(1)
	var tr trace.GPSTrace
	for m := int64(0); m < 15; m++ {
		tr = append(tr, trace.GPSPoint{T: m * 60, Loc: at(s.Range(0, 60))})
	}
	vs, err := Detect(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("visits = %d, want 1 for a wobbly stay", len(vs))
	}
}

func TestDetectGapSplits(t *testing.T) {
	// 25-minute silence inside a stay splits it (MaxGap 10 min).
	tr := stationary(nil, at(0), 0, 10)
	tr = stationary(tr, at(0), 35, 10)
	vs, err := Detect(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("visits = %d, want 2 after a long gap", len(vs))
	}
}

func TestDetectSnapsToPOI(t *testing.T) {
	db, err := poi.NewDB([]poi.POI{
		{ID: 0, Name: "Cafe", Category: poi.Food, Loc: at(40)},
		{ID: 1, Name: "Library", Category: poi.College, Loc: at(5000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := stationary(nil, at(0), 0, 10)
	vs, err := Detect(tr, DefaultConfig(), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].POIID != 0 {
		t.Fatalf("visit not snapped to POI 0: %+v", vs)
	}
	if vs[0].Category != poi.Food {
		t.Errorf("category %v, want Food", vs[0].Category)
	}
}

func TestDetectNoSnapBeyondRadius(t *testing.T) {
	db, err := poi.NewDB([]poi.POI{
		{ID: 0, Name: "Far", Category: poi.Shop, Loc: at(400)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := stationary(nil, at(0), 0, 10)
	vs, err := Detect(tr, DefaultConfig(), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].POIID != -1 {
		t.Fatalf("visit snapped to a POI 400 m away: %+v", vs)
	}
}

func TestDetectUnsortedRejected(t *testing.T) {
	tr := trace.GPSTrace{
		{T: 600, Loc: at(0)},
		{T: 0, Loc: at(0)},
	}
	if _, err := Detect(tr, DefaultConfig(), nil); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestDetectConfigValidation(t *testing.T) {
	bad := []Config{
		{MinDuration: 0, RoamRadius: 100, MaxGap: time.Minute},
		{MinDuration: time.Minute, RoamRadius: 0, MaxGap: time.Minute},
		{MinDuration: time.Minute, RoamRadius: 100, MaxGap: 0},
		{MinDuration: time.Minute, RoamRadius: 100, MaxGap: time.Minute, SnapRadius: -1},
	}
	for i, cfg := range bad {
		if _, err := Detect(nil, cfg, nil); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestDetectInvariants: detected visits are time-ordered, non-overlapping
// and each at least MinDuration long, for arbitrary traces.
func TestDetectInvariants(t *testing.T) {
	cfg := DefaultConfig()
	err := quick.Check(func(seed uint32) bool {
		s := rng.New(uint64(seed))
		var tr trace.GPSTrace
		tm := int64(0)
		loc := 0.0
		for i := 0; i < 200; i++ {
			tm += 30 + s.Int63n(240)
			if s.Bool(0.1) {
				loc += s.Range(-2000, 2000)
			} else {
				loc += s.Range(-20, 20)
			}
			tr = append(tr, trace.GPSPoint{T: tm, Loc: at(loc)})
		}
		vs, err := Detect(tr, cfg, nil)
		if err != nil {
			return false
		}
		for i, v := range vs {
			if v.Duration() < cfg.MinDuration {
				return false
			}
			if i > 0 && v.Start < vs[i-1].End {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpeedAt(t *testing.T) {
	// Constant 10 m/s east: fixes 600 m apart every minute.
	var tr trace.GPSTrace
	for m := int64(0); m < 10; m++ {
		tr = append(tr, trace.GPSPoint{T: m * 60, Loc: at(float64(m) * 600)})
	}
	spd, ok := SpeedAt(tr, 5*60+30, 6*time.Minute)
	if !ok {
		t.Fatal("no speed estimate")
	}
	if spd < 9.5 || spd > 10.5 {
		t.Errorf("speed %.2f m/s, want ~10", spd)
	}
}

func TestSpeedAtStationary(t *testing.T) {
	tr := stationary(nil, at(0), 0, 10)
	spd, ok := SpeedAt(tr, 300, 6*time.Minute)
	if !ok {
		t.Fatal("no estimate")
	}
	if spd > 0.1 {
		t.Errorf("stationary speed %.2f", spd)
	}
}

func TestSpeedAtGapTooLarge(t *testing.T) {
	tr := trace.GPSTrace{
		{T: 0, Loc: at(0)},
		{T: 3600, Loc: at(10000)},
	}
	if _, ok := SpeedAt(tr, 1800, 6*time.Minute); ok {
		t.Fatal("estimate across a 1-hour gap")
	}
}

func TestSpeedAtTooFewPoints(t *testing.T) {
	if _, ok := SpeedAt(trace.GPSTrace{{T: 0, Loc: at(0)}}, 0, time.Minute); ok {
		t.Fatal("estimate from one fix")
	}
}

func TestSegments(t *testing.T) {
	vs := []trace.Visit{
		{Start: 0, End: 600, Loc: at(0)},
		{Start: 1200, End: 1800, Loc: at(2000)},
		{Start: 50000, End: 50600, Loc: at(4000)}, // 13h gap: dropped
	}
	segs := Segments(vs, 10, 8*time.Hour)
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1", len(segs))
	}
	if segs[0].Dur != 10*time.Minute {
		t.Errorf("dur %v, want 10m", segs[0].Dur)
	}
	if segs[0].Dist < 1990 || segs[0].Dist > 2010 {
		t.Errorf("dist %.1f, want ~2000", segs[0].Dist)
	}
}

func TestSegmentsMinDist(t *testing.T) {
	vs := []trace.Visit{
		{Start: 0, End: 600, Loc: at(0)},
		{Start: 1200, End: 1800, Loc: at(5)}, // 5 m apart: below minDist
	}
	if segs := Segments(vs, 10, 8*time.Hour); len(segs) != 0 {
		t.Fatalf("segments = %d, want 0", len(segs))
	}
}

func TestPauses(t *testing.T) {
	vs := []trace.Visit{
		{Start: 0, End: 600},
		{Start: 1200, End: 3000},
	}
	ps := Pauses(vs)
	if len(ps) != 2 || ps[0] != 10 || ps[1] != 30 {
		t.Fatalf("pauses = %v", ps)
	}
}

func TestIndoorFixesParticipate(t *testing.T) {
	// Indoor fixes (WiFi fallback) count toward stays like regular ones.
	var tr trace.GPSTrace
	for m := int64(0); m < 10; m++ {
		tr = append(tr, trace.GPSPoint{T: m * 60, Loc: at(0), Indoor: true})
	}
	vs, err := Detect(tr, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("indoor-only stay not detected")
	}
}
