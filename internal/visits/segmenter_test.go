package visits

import (
	"bytes"
	"reflect"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/trace"
)

// randomTrace builds a mixed stay/move trace: mostly small wobbles with
// occasional multi-km jumps and the odd long silence.
func randomTrace(seed uint64, n int) trace.GPSTrace {
	s := rng.New(seed)
	var tr trace.GPSTrace
	tm := int64(0)
	loc := 0.0
	for i := 0; i < n; i++ {
		tm += 30 + s.Int63n(240)
		if s.Bool(0.05) {
			tm += 1200 // silence beyond MaxGap
		}
		if s.Bool(0.1) {
			loc += s.Range(-2000, 2000)
		} else {
			loc += s.Range(-20, 20)
		}
		tr = append(tr, trace.GPSPoint{T: tm, Loc: at(loc), Indoor: s.Bool(0.2)})
	}
	return tr
}

// feedChunked runs a trace through a fresh segmenter in chunks of the
// given size and returns the full visit list.
func feedChunked(t *testing.T, tr trace.GPSTrace, cfg Config, chunk int) []trace.Visit {
	t.Helper()
	s, err := NewSegmenter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []trace.Visit
	for i := 0; i < len(tr); i += chunk {
		end := i + chunk
		if end > len(tr) {
			end = len(tr)
		}
		vs, err := s.Feed(tr[i:end])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, vs...)
	}
	return append(out, s.Finish()...)
}

func TestSegmenterChunkedEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	for seed := uint64(1); seed <= 20; seed++ {
		tr := randomTrace(seed, 300)
		want, err := Detect(tr, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 3, 17, 97, len(tr)} {
			got := feedChunked(t, tr, cfg, chunk)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d chunk %d: %d visits, batch %d visits",
					seed, chunk, len(got), len(want))
			}
		}
	}
}

// TestSegmenterStateRoundTrip: park a segmenter mid-stream via
// EncodeState, restore into a fresh one, continue — the combined output
// must equal batch Detect, at every possible split point.
func TestSegmenterStateRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	tr := randomTrace(7, 120)
	want, err := Detect(tr, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(tr); cut++ {
		s1, err := NewSegmenter(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s1.Feed(tr[:cut])
		if err != nil {
			t.Fatal(err)
		}
		state := s1.EncodeState()
		s2, err := NewSegmenter(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.RestoreState(state); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		vs, err := s2.Feed(tr[cut:])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, vs...)
		out = append(out, s2.Finish()...)
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("cut %d: %d visits, batch %d", cut, len(out), len(want))
		}
	}
}

// TestSegmenterStateFragment: segmenter state survives the GSF1 fragment
// container used by the checkpoint machinery.
func TestSegmenterStateFragment(t *testing.T) {
	cfg := DefaultConfig()
	tr := randomTrace(11, 80)
	s1, err := NewSegmenter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	head, err := s1.Feed(tr[:50])
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	fw, err := trace.NewFragmentWriter(&buf, map[string]string{"kind": "segmenter"})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Section("state"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Chunk(s1.EncodeState()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Finish(); err != nil {
		t.Fatal(err)
	}

	fr, err := trace.NewFragmentReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.NextSection(); err != nil {
		t.Fatal(err)
	}
	blob, err := fr.NextChunk()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSegmenter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	tail, err := s2.Feed(tr[50:])
	if err != nil {
		t.Fatal(err)
	}
	got := append(append(head, tail...), s2.Finish()...)
	want, err := Detect(tr, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%d visits after fragment round trip, batch %d", len(got), len(want))
	}
}

// TestSegmenterTailOnlyState: after a window-breaking fix the segmenter
// holds only the open tail, so appending a day carries O(tail) state, not
// the user's history.
func TestSegmenterTailOnlyState(t *testing.T) {
	cfg := DefaultConfig()
	s, err := NewSegmenter(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ten days of per-minute fixes, a 2 km move every 100 fixes.
	tm := int64(0)
	loc := 0.0
	for i := 0; i < 10*1440; i++ {
		tm += 60
		if i%100 == 99 {
			loc += 2000
		}
		if _, err := s.Feed(trace.GPSTrace{{T: tm, Loc: at(loc)}}); err != nil {
			t.Fatal(err)
		}
		if p := s.Pending(); p > 101 {
			t.Fatalf("pending %d fixes after %d: open window leaking history", p, i+1)
		}
	}
	if len(s.EncodeState()) > 64*101 {
		t.Fatalf("state blob %d bytes: encodes more than the open tail", len(s.EncodeState()))
	}
}

func TestSegmenterOrderingAcrossFeeds(t *testing.T) {
	s, err := NewSegmenter(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(trace.GPSTrace{{T: 600, Loc: at(0)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(trace.GPSTrace{{T: 0, Loc: at(0)}}); err == nil {
		t.Fatal("time regression across feeds accepted")
	}
}

func TestSegmenterFeedAfterFinish(t *testing.T) {
	s, err := NewSegmenter(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if vs := s.Finish(); vs != nil {
		t.Fatalf("second Finish returned %d visits", len(vs))
	}
	if _, err := s.Feed(trace.GPSTrace{{T: 0, Loc: at(0)}}); err == nil {
		t.Fatal("feed after finish accepted")
	}
}

func TestSegmenterRestoreRejectsCorrupt(t *testing.T) {
	s, err := NewSegmenter(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Feed(stationary(nil, at(0), 0, 4)); err != nil {
		t.Fatal(err)
	}
	good := s.EncodeState()
	bad := [][]byte{
		nil,
		{segStateVersion},
		{99, 0, 0, 0},                        // wrong version
		{segStateVersion, 7, 0, 0},           // bad flags
		append(append([]byte{}, good...), 0), // trailing byte
	}
	for i := 1; i < len(good); i++ {
		bad = append(bad, good[:i]) // every strict prefix
	}
	fresh, err := NewSegmenter(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range bad {
		if err := fresh.RestoreState(data); err == nil {
			t.Errorf("corrupt state %d accepted", i)
		}
	}
	if err := fresh.RestoreState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}
