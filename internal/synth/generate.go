package synth

import (
	"fmt"

	"geosocial/internal/geo"
	"geosocial/internal/par"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/trace"
)

// Generate produces a full synthetic dataset from the configuration,
// deterministically given the stream. Users are generated on
// cfg.Parallelism workers; the output is byte-identical for any worker
// count because every user consumes only a pre-split child stream (split
// serially, in ID order, so the parent stream advances exactly as the
// serial path would) and lands in an index-addressed slot.
func Generate(cfg Config, s *rng.Stream) (*trace.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db, err := poi.GenerateCity(cfg.City, s.Split("city"))
	if err != nil {
		return nil, fmt.Errorf("synth: generate city: %w", err)
	}
	ds := &trace.Dataset{Name: cfg.Name, POIs: db.All()}
	streams := make([]*rng.Stream, cfg.Users)
	for id := 0; id < cfg.Users; id++ {
		streams[id] = s.Split(fmt.Sprintf("user-%d", id))
	}
	users, err := par.Map(cfg.Parallelism, cfg.Users, func(id int) (*trace.User, error) {
		u, err := generateUser(&cfg, db, id, streams[id])
		if err != nil {
			return nil, fmt.Errorf("synth: user %d: %w", id, err)
		}
		return u, nil
	})
	if err != nil {
		return nil, err
	}
	ds.Users = users
	return ds, nil
}

// generateUser simulates one participant over her measurement window.
func generateUser(cfg *Config, db *poi.DB, id int, s *rng.Stream) (*trace.User, error) {
	tr := sampleTraits(cfg.Incentive, s.Split("traits"))
	anch := pickAnchors(db, s.Split("anchors"))

	days := int(s.Norm(cfg.MeanDays, cfg.DaysJitter) + 0.5)
	if days < cfg.MinDays {
		days = cfg.MinDays
	}
	if days > cfg.MaxDays {
		days = cfg.MaxDays
	}
	startDay := cfg.Start.Unix() + 86400*int64(s.Intn(cfg.StaggerDays+1))

	u := &trace.User{ID: id, Days: float64(days)}
	em := &emitter{cfg: cfg, db: db, tr: tr, user: u}

	for d := 0; d < days; d++ {
		dayStart := startDay + 86400*int64(d)
		// The study epoch (Jan 14 2013) is a Monday; weekday cycling is
		// therefore exact modulo 7.
		dow := ((dayStart / 86400) + 4) % 7 // 1970-01-01 was a Thursday
		weekend := dow == 0 || dow == 6
		events := planDay(cfg, db, anch, tr, dayStart, weekend, s.Split(fmt.Sprintf("plan-%d", d)))
		if len(events) == 0 {
			continue
		}
		ds := s.Split(fmt.Sprintf("day-%d", d))
		em.emitGPS(events, ds.Split("gps"))
		em.emitCheckins(events, ds.Split("checkins"))
		em.emitRemoteSessions(events, ds.Split("remote"))
	}

	u.GPS.Sort()
	u.Checkins.Sort()
	u.Profile = tr.profile(s.Split("profile"))
	if u.Days > 0 {
		u.Profile.CheckinsPerDay = float64(len(u.Checkins)) / u.Days
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// emitter accumulates one user's traces.
type emitter struct {
	cfg  *Config
	db   *poi.DB
	tr   traits
	user *trace.User
	// popCum is the cumulative POI popularity used to sample remote
	// checkin targets: badge hunters claim visits to the hot venues, not
	// to uniformly random ones.
	popCum []float64
}

// popPick samples a POI index with probability proportional to
// popularity.
func (em *emitter) popPick(s *rng.Stream) int {
	if em.popCum == nil {
		em.popCum = make([]float64, em.db.Len())
		acc := 0.0
		for i, p := range em.db.All() {
			acc += p.Popularity
			em.popCum[i] = acc
		}
	}
	u := s.Float64() * em.popCum[len(em.popCum)-1]
	lo, hi := 0, len(em.popCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if em.popCum[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// emitGPS samples per-minute fixes over the day's timeline, with fix
// noise, random fix loss and extended signal-gap windows.
func (em *emitter) emitGPS(events []schedEvent, s *rng.Stream) {
	cfg := em.cfg
	period := int64(cfg.GPSPeriod.Seconds())
	dayStart := events[0].start
	dayEnd := events[len(events)-1].end

	// Extended outages (phone off, dead zones).
	type window struct{ from, to int64 }
	var gaps []window
	for i, n := 0, s.Poisson(cfg.GapsPerDay); i < n; i++ {
		g0 := dayStart + s.Int63n(maxI64(dayEnd-dayStart, 1))
		gaps = append(gaps, window{g0, g0 + int64(s.Range(600, 2400))})
	}
	inGap := func(t int64) bool {
		for _, g := range gaps {
			if t >= g.from && t < g.to {
				return true
			}
		}
		return false
	}

	// Per-stay indoor anchor offsets persist across the stay, mimicking a
	// WiFi-positioned location estimate.
	idx := 0
	var indoorOff [2]float64
	indoorFor := -1
	for t := alignUp(dayStart, period); t < dayEnd; t += period {
		for idx < len(events) && events[idx].end <= t {
			idx++
		}
		if idx >= len(events) {
			break
		}
		ev := events[idx]
		if t < ev.start {
			continue
		}
		if inGap(t) || s.Bool(cfg.GPSDropProb) {
			continue
		}
		var p trace.GPSPoint
		p.T = t
		switch ev.kind {
		case evStay:
			if ev.indoor {
				if indoorFor != idx {
					indoorFor = idx
					indoorOff[0] = s.Norm(0, 10)
					indoorOff[1] = s.Norm(0, 10)
				}
				base := geo.Destination(ev.loc, 0, indoorOff[0])
				base = geo.Destination(base, 90, indoorOff[1])
				p.Loc = jitter(base, 3, s)
				p.Indoor = true
			} else {
				p.Loc = jitter(ev.loc, cfg.GPSNoiseM, s)
			}
		case evMove:
			f := float64(t-ev.start) / float64(ev.dur())
			p.Loc = jitter(geo.Interpolate(ev.from, ev.to, f), cfg.GPSNoiseM*1.5, s)
		}
		em.user.GPS = append(em.user.GPS, p)
	}
}

// emitCheckins walks the day's timeline and emits honest, superfluous,
// driveby and short-stop checkins according to the incentive model.
func (em *emitter) emitCheckins(events []schedEvent, s *rng.Stream) {
	cfg := em.cfg
	tr := em.tr
	for _, ev := range events {
		switch {
		case ev.kind == evStay && ev.micro:
			// Short stop below the visit threshold: a checkin here is
			// physically truthful but will never match a visit — the
			// §5.1 "no distinctive features" residue.
			if s.Bool(cfg.Incentive.MicroStopCheckinProb * min1(tr.diligence)) {
				em.checkinAt(ev.poiID, ev.start+s.Int63n(maxI64(ev.dur(), 1)), trace.LabelOther)
			}

		case ev.kind == evStay:
			p := tr.diligence * checkinAffinity[ev.cat]
			if p > 0.9 {
				p = 0.9
			}
			if !s.Bool(p) {
				continue
			}
			maxOff := ev.dur() - 30
			if maxOff > 1500 {
				maxOff = 1500
			}
			if maxOff < 60 {
				maxOff = maxI64(ev.dur()/2, 1)
			}
			tHonest := ev.start + 60 + s.Int63n(maxOff)
			if tHonest >= ev.end {
				tHonest = ev.start + ev.dur()/2
			}
			em.checkinAt(ev.poiID, tHonest, trace.LabelHonest)

			// Superfluous burst: mayorship seekers also check in at
			// venues adjacent to the one they are actually visiting.
			if cfg.Incentive.RewardSeeking {
				pSuper := tr.mayorSeek * 1.05 * cfg.Incentive.SuperfluousProb
				if pSuper > 0.75 {
					pSuper = 0.75
				}
				if s.Bool(pSuper) {
					em.superfluousBurst(ev, tHonest, s)
				}
			}

		case ev.kind == evMove && ev.drive && cfg.Incentive.RewardSeeking:
			pDrive := tr.driveby * 0.68 * cfg.Incentive.DrivebyProb
			if !s.Bool(pDrive) {
				continue
			}
			// Heavy on-the-go users fire off several checkins in one
			// drive; everyone else at most one.
			burst := 1
			if tr.driveby > 0.45 {
				burst += s.Poisson(2.0 * tr.driveby)
			}
			emitted := 0
			// Routes cross empty space between POI clusters, so probe
			// several points along the leg for venues to claim.
			for try := 0; try < 4+2*burst && emitted < burst; try++ {
				f := s.Range(0.15, 0.85)
				tAt := ev.start + int64(f*float64(ev.dur()))
				at := geo.Interpolate(ev.from, ev.to, f)
				ids := em.db.Within(at, 460, nil)
				if len(ids) == 0 {
					continue
				}
				em.checkinAt(ids[s.Intn(len(ids))], tAt, trace.LabelDriveby)
				emitted++
			}
		}
	}
}

// superfluousBurst emits 1–3 checkins at venues near the visited POI,
// seconds to minutes after the honest checkin.
func (em *emitter) superfluousBurst(ev schedEvent, tHonest int64, s *rng.Stream) {
	ids := em.db.Within(ev.loc, 350, nil)
	var cands []int
	for _, id := range ids {
		if id != ev.poiID {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return
	}
	s.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	n := 1 + s.Intn(3)
	if n > len(cands) {
		n = len(cands)
	}
	t := tHonest
	for i := 0; i < n; i++ {
		t += int64(s.Range(15, 160))
		em.checkinAt(cands[i], t, trace.LabelSuperfluous)
	}
}

// emitRemoteSessions emits badge-hunting checkin sprees at far-away POIs:
// the user never moves, but rapid-fire checkins appear at venues across
// town (the burstiness signal of Figure 6).
func (em *emitter) emitRemoteSessions(events []schedEvent, s *rng.Stream) {
	cfg := em.cfg
	if !cfg.Incentive.RewardSeeking {
		return
	}
	tr := em.tr
	lambda := tr.badgeHunt * tr.remoteIdio * cfg.Incentive.RemoteRate * (0.7 + 1.2*tr.activity)
	nSessions := s.Poisson(lambda)
	if nSessions == 0 {
		return
	}
	dayStart := events[0].start
	dayEnd := events[len(events)-1].end
	for k := 0; k < nSessions; k++ {
		t0 := dayStart + s.Int63n(maxI64(dayEnd-dayStart-1200, 1))
		here := positionAt(events, t0)
		n := 1 + s.Poisson(1.4)
		if n > 6 {
			n = 6
		}
		t := t0
		emitted := 0
		for tries := 0; tries < 40 && emitted < n; tries++ {
			id := em.popPick(s)
			p, err := em.db.Get(id)
			if err != nil {
				continue
			}
			if geo.Distance(here, p.Loc) < 700 {
				continue
			}
			em.checkinAt(id, t, trace.LabelRemote)
			t += int64(s.Range(15, 90))
			emitted++
		}
	}
}

// checkinAt appends one checkin for the claimed POI.
func (em *emitter) checkinAt(poiID int, t int64, label trace.Label) {
	p, err := em.db.Get(poiID)
	if err != nil {
		return
	}
	em.user.Checkins = append(em.user.Checkins, trace.Checkin{
		T:        t,
		POIID:    p.ID,
		POIName:  p.Name,
		Category: p.Category,
		Loc:      p.Loc,
		Truth:    label,
	})
}

// positionAt returns the user's physical location at time t according to
// the day's timeline (clamping to the nearest event when t falls outside).
func positionAt(events []schedEvent, t int64) geo.LatLon {
	for _, ev := range events {
		if t >= ev.start && t < ev.end {
			if ev.kind == evStay {
				return ev.loc
			}
			f := float64(t-ev.start) / float64(ev.dur())
			return geo.Interpolate(ev.from, ev.to, f)
		}
	}
	last := events[len(events)-1]
	if t >= last.end {
		if last.kind == evStay {
			return last.loc
		}
		return last.to
	}
	first := events[0]
	if first.kind == evStay {
		return first.loc
	}
	return first.from
}

// jitter displaces p by independent N(0, sigma) meters east and north.
func jitter(p geo.LatLon, sigma float64, s *rng.Stream) geo.LatLon {
	q := geo.Destination(p, 0, s.Norm(0, sigma))
	return geo.Destination(q, 90, s.Norm(0, sigma))
}

func alignUp(t, period int64) int64 {
	if r := t % period; r != 0 {
		return t + period - r
	}
	return t
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min1(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}
