package synth

import (
	"math"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
)

// Movement speeds. Walking stays under the paper's 4 mph (1.79 m/s)
// driveby threshold; driving is well above it.
const (
	walkSpeed    = 1.3  // m/s
	driveSpeed   = 10.5 // m/s mean
	walkMaxDist  = 1100 // meters: trips shorter than this are walked
	microStopMin = 120  // seconds
	microStopMax = 300  // seconds (under the 6-minute visit threshold)
)

// eventKind discriminates schedule timeline entries.
type eventKind int

const (
	evStay eventKind = iota
	evMove
)

// schedEvent is one entry in a user's daily physical timeline: either a
// stay at a POI or a movement leg between two locations.
type schedEvent struct {
	kind       eventKind
	start, end int64 // Unix seconds
	// Stay fields.
	poiID  int
	cat    poi.Category
	loc    geo.LatLon
	indoor bool
	micro  bool // short stop below the visit threshold
	// Move fields.
	from, to geo.LatLon
	drive    bool
}

func (e schedEvent) dur() int64 { return e.end - e.start }

// anchors is the set of personally meaningful POIs a user's routine
// revolves around.
type anchors struct {
	home    poi.POI
	work    poi.POI
	routine []poi.POI // favorite food/shop venues near home and work
	leisure []poi.POI // the wider pool of discretionary venues
}

// unlistedHomeProb is the fraction of users whose home is not a listed
// venue: most private residences have no Foursquare entry at all, so
// their home visits snap to no POI and cannot be checked in at. This is
// why Figure 4's missing-checkin mass concentrates at Professional/Shop/
// Food rather than Residence.
const unlistedHomeProb = 0.72

// pickAnchors selects a user's anchor POIs from the city. Routine venues
// are the closest food/shop options to home and work — matching how real
// users frequent the same grocery store and lunch spot — and leisure
// venues are popularity-weighted picks across the city.
func pickAnchors(db *poi.DB, s *rng.Stream) anchors {
	var a anchors
	all := db.All()
	byCat := make(map[poi.Category][]poi.POI)
	for _, p := range all {
		byCat[p.Category] = append(byCat[p.Category], p)
	}
	pick := func(cat poi.Category) poi.POI {
		opts := byCat[cat]
		return opts[s.Intn(len(opts))]
	}
	a.home = pick(poi.Residence)
	if s.Bool(unlistedHomeProb) {
		// Unlisted private residence: 200–450 m from the nearest listed
		// Residence venue, outside the POI snap radius. ID -1 marks it
		// as absent from the venue database.
		a.home = poi.POI{
			ID:       -1,
			Name:     "unlisted home",
			Category: poi.Residence,
			Loc:      geo.Destination(a.home.Loc, s.Range(0, 360), s.Range(200, 450)),
		}
	}
	if s.Bool(0.85) {
		a.work = pick(poi.Professional)
	} else {
		a.work = pick(poi.College)
	}

	// Routine food/shops: nearest options to home and to work.
	nearest := func(cat poi.Category, from geo.LatLon, skip map[int]bool) poi.POI {
		best := poi.POI{ID: -1}
		bestD := math.Inf(1)
		for _, p := range byCat[cat] {
			if skip[p.ID] {
				continue
			}
			if d := geo.Distance(from, p.Loc); d < bestD {
				bestD = d
				best = p
			}
		}
		return best
	}
	seen := map[int]bool{}
	for _, spec := range []struct {
		cat  poi.Category
		from geo.LatLon
	}{
		{poi.Food, a.work.Loc},
		{poi.Food, a.home.Loc},
		{poi.Shop, a.home.Loc},
		{poi.Shop, a.work.Loc},
	} {
		if p := nearest(spec.cat, spec.from, seen); p.ID >= 0 {
			a.routine = append(a.routine, p)
			seen[p.ID] = true
		}
	}

	// Leisure pool: 12 popularity-weighted picks from discretionary
	// categories. Leisure concentrates in the entertainment district
	// around downtown (with a weaker pull toward home), as it does in
	// real cities — which is why consecutive *honest* checkins hop short
	// within-district distances while GPS traces also see the long
	// commutes to peripheral homes and offices (Figure 7a's ordering).
	leisureCats := []poi.Category{poi.Nightlife, poi.Arts, poi.Outdoors, poi.Food, poi.Travel, poi.Shop}
	var pool []poi.POI
	for _, c := range leisureCats {
		pool = append(pool, byCat[c]...)
	}
	if len(pool) > 0 {
		// Downtown sits at the city centroid (cluster 0 is pinned there
		// and holds a triple share of venues).
		var pts []geo.LatLon
		for _, p := range all {
			pts = append(pts, p.Loc)
		}
		downtown := geo.BoundsOf(pts).Center()
		weights := make([]float64, len(pool))
		total := 0.0
		for i, p := range pool {
			dHome := geo.Distance(a.home.Loc, p.Loc)
			dDown := geo.Distance(downtown, p.Loc)
			// Square-root popularity keeps hits attractive without
			// letting a famous venue across town outweigh the district
			// gravity (quadratic decay from downtown).
			w := math.Sqrt(p.Popularity)
			w /= 1 + (dDown/800)*(dDown/800)
			w /= 1 + dHome/10000
			weights[i] = w
			total += w
		}
		for k := 0; k < 12 && k < len(pool); k++ {
			u := s.Float64() * total
			acc := 0.0
			for i, w := range weights {
				acc += w
				if u < acc {
					a.leisure = append(a.leisure, pool[i])
					break
				}
			}
		}
	}
	if len(a.leisure) == 0 {
		a.leisure = append(a.leisure, a.home)
	}
	return a
}

// dayPlanner builds one day's physical timeline.
type dayPlanner struct {
	cfg    *Config
	db     *poi.DB
	anch   anchors
	tr     traits
	s      *rng.Stream
	events []schedEvent
	cursor int64 // current time
	curLoc geo.LatLon
	curPOI poi.POI
}

// planDay builds the timeline of stays and moves for the day starting at
// midnight Unix second dayStart. weekend toggles the weekend routine.
func planDay(cfg *Config, db *poi.DB, anch anchors, tr traits, dayStart int64, weekend bool, s *rng.Stream) []schedEvent {
	p := &dayPlanner{cfg: cfg, db: db, anch: anch, tr: tr, s: s}
	trackStart := dayStart + int64(cfg.TrackStartHour)*3600
	trackEnd := dayStart + int64(cfg.TrackEndHour)*3600
	p.cursor = trackStart
	p.curLoc = anch.home.Loc
	p.curPOI = anch.home

	if weekend {
		p.planWeekend(trackEnd)
	} else {
		p.planWeekday(trackEnd)
	}
	// Final stay at home until tracking ends.
	if p.cursor < trackEnd {
		p.stayAt(p.anch.home, trackEnd-p.cursor)
	}
	return p.events
}

func (p *dayPlanner) planWeekday(trackEnd int64) {
	s := p.s
	// Morning at home.
	leave := int64(s.Range(45*60, 105*60)) // leave 45–105 min after tracking starts
	p.stayAt(p.anch.home, leave)

	// Optional coffee stop on the way to work.
	if s.Bool(p.cfg.CoffeeProb) && len(p.anch.routine) > 0 {
		coffee := p.anch.routine[0]
		p.moveTo(coffee)
		p.stayAt(coffee, int64(s.Range(7*60, 16*60)))
	}
	p.moveTo(p.anch.work)

	// Morning work block, optional mid-morning break at a nearby venue.
	lunchTime := int64(s.Range(4.6*3600, 5.6*3600)) // ~noon
	if s.Bool(p.cfg.BreakProb) {
		half := int64(s.Range(1.2*3600, 2.2*3600))
		p.stayAt(p.anch.work, half)
		if b, ok := p.nearbyVenue(p.anch.work.Loc, 600); ok {
			p.moveTo(b)
			p.stayAt(b, int64(s.Range(8*60, 25*60)))
			p.moveTo(p.anch.work)
		}
	}
	p.stayUntilOffset(p.anch.work, lunchTime)

	// Lunch.
	if s.Bool(p.cfg.LunchProb) && len(p.anch.routine) > 0 {
		lunch := p.anch.routine[s.Intn(len(p.anch.routine))]
		p.moveTo(lunch)
		p.stayAt(lunch, int64(s.Range(25*60, 55*60)))
		p.moveTo(p.anch.work)
	}

	// Afternoon work block until ~17:00–18:00.
	p.stayUntilOffset(p.anch.work, int64(s.Range(9.6*3600, 10.8*3600)))

	// Evening errands and leisure, scaled by activity.
	n := p.s.Poisson(p.cfg.ErrandMean * math.Sqrt(p.tr.activity))
	p.outings(n, trackEnd-2400)

	// Night out: a chain of consecutive downtown stops (dinner, bar).
	// These back-to-back leisure visits are where most honest checkins
	// happen, so honest checkin-to-checkin hops are short within-district
	// distances (Figure 7a's honest-below-GPS ordering).
	if s.Bool(0.50*math.Sqrt(p.tr.activity)) && p.cursor < trackEnd-7200 {
		stops := 2
		if s.Bool(0.45) {
			stops = 3
		}
		var first poi.POI
		for i := 0; i < stops && p.cursor < trackEnd-3600; i++ {
			var v poi.POI
			var ok bool
			if i == 0 {
				v, ok = p.leisurePick()
				first = v
			} else {
				// Later stops stay within walking distance of the first
				// (bar-hopping within one district).
				v, ok = p.nearbyVenue(first.Loc, 350)
			}
			if !ok || v.ID == p.curPOI.ID {
				continue
			}
			p.moveTo(v)
			p.stayAt(v, int64(s.Range(35*60, 80*60)))
		}
	}

	// Head home.
	p.moveTo(p.anch.home)
}

func (p *dayPlanner) planWeekend(trackEnd int64) {
	s := p.s
	// Lazy morning.
	p.stayAt(p.anch.home, int64(s.Range(1.5*3600, 3.5*3600)))
	n := 1 + p.s.Poisson(p.cfg.WeekendOutMean*math.Sqrt(p.tr.activity)*0.7)
	p.outings(n, trackEnd-2400)
	p.moveTo(p.anch.home)
	// Possible evening leisure (dinner, nightlife).
	if s.Bool(0.35*math.Sqrt(p.tr.activity)) && p.cursor < trackEnd-7200 {
		p.stayAt(p.anch.home, int64(s.Range(0.5*3600, 1.5*3600)))
		if v, ok := p.leisurePick(); ok {
			p.moveTo(v)
			p.stayAt(v, int64(s.Range(0.8*3600, 2.5*3600)))
			p.moveTo(p.anch.home)
		}
	}
}

// outings appends up to n errand/leisure stops, stopping when the clock
// passes deadline.
func (p *dayPlanner) outings(n int, deadline int64) {
	for i := 0; i < n && p.cursor < deadline; i++ {
		var dest poi.POI
		var ok bool
		if p.s.Bool(0.55) && len(p.anch.routine) > 0 {
			dest = p.anch.routine[p.s.Intn(len(p.anch.routine))]
			ok = true
		} else {
			dest, ok = p.leisurePick()
		}
		if !ok || dest.ID == p.curPOI.ID {
			continue
		}
		p.moveTo(dest)
		p.stayAt(dest, int64(p.s.Range(15*60, 80*60)))
	}
}

func (p *dayPlanner) leisurePick() (poi.POI, bool) {
	if len(p.anch.leisure) == 0 {
		return poi.POI{}, false
	}
	return p.anch.leisure[p.s.Intn(len(p.anch.leisure))], true
}

// nearbyVenue picks a random non-current POI within radius meters.
func (p *dayPlanner) nearbyVenue(from geo.LatLon, radius float64) (poi.POI, bool) {
	ids := p.db.Within(from, radius, nil)
	p.s.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids {
		if id == p.curPOI.ID {
			continue
		}
		v, err := p.db.Get(id)
		if err == nil {
			return v, true
		}
	}
	return poi.POI{}, false
}

// stayAt appends a stay of the given duration at the POI.
func (p *dayPlanner) stayAt(at poi.POI, dur int64) {
	if dur <= 0 {
		return
	}
	p.events = append(p.events, schedEvent{
		kind:   evStay,
		start:  p.cursor,
		end:    p.cursor + dur,
		poiID:  at.ID,
		cat:    at.Category,
		loc:    at.Loc,
		indoor: p.s.Bool(indoorProb(at.Category)),
	})
	p.cursor += dur
	p.curLoc = at.Loc
	p.curPOI = at
}

// stayUntilOffset extends a stay at the POI until the given offset from
// the day's tracking start (no-op when already past it).
func (p *dayPlanner) stayUntilOffset(at poi.POI, offset int64) {
	dayTrackStart := p.events[0].start
	target := dayTrackStart + offset
	if target > p.cursor {
		p.stayAt(at, target-p.cursor)
	}
}

// moveTo appends a movement leg from the current location to the POI,
// with possible micro-stops during drives.
func (p *dayPlanner) moveTo(dest poi.POI) {
	dist := geo.Distance(p.curLoc, dest.Loc)
	if dist < 15 {
		p.curPOI = dest
		p.curLoc = dest.Loc
		return
	}
	drive := dist >= walkMaxDist
	speed := walkSpeed * p.s.Range(0.85, 1.2)
	if drive {
		speed = driveSpeed * p.s.Range(0.8, 1.25)
	}
	// A driving errand sometimes includes a short stop on the way
	// (gas, ATM): under the visit threshold, it produces the "other"
	// extraneous checkins of §5.1.
	if drive && p.s.Bool(p.cfg.Incentive.MicroStopProb) {
		frac := p.s.Range(0.3, 0.7)
		mid := geo.Interpolate(p.curLoc, dest.Loc, frac)
		if stop, ok := p.nearbyVenue(mid, 400); ok {
			p.appendMove(stop.Loc, dist*frac/speed+1, true)
			p.events = append(p.events, schedEvent{
				kind:  evStay,
				start: p.cursor,
				end:   p.cursor + int64(p.s.Range(microStopMin, microStopMax)),
				poiID: stop.ID,
				cat:   stop.Category,
				loc:   stop.Loc,
				micro: true,
			})
			p.cursor = p.events[len(p.events)-1].end
			p.curLoc = stop.Loc
			rest := geo.Distance(p.curLoc, dest.Loc)
			p.appendMove(dest.Loc, rest/speed+1, true)
			p.curPOI = dest
			return
		}
	}
	p.appendMove(dest.Loc, dist/speed+1, drive)
	p.curPOI = dest
}

// appendMove appends a move leg taking durSec seconds to reach to.
func (p *dayPlanner) appendMove(to geo.LatLon, durSec float64, drive bool) {
	d := int64(durSec)
	if d < 1 {
		d = 1
	}
	p.events = append(p.events, schedEvent{
		kind:  evMove,
		start: p.cursor,
		end:   p.cursor + d,
		from:  p.curLoc,
		to:    to,
		drive: drive,
	})
	p.cursor += d
	p.curLoc = to
}

// indoorProb is the chance a stay at a category happens out of GPS sight
// (the app falls back to WiFi/accelerometer stationarity, §3).
func indoorProb(c poi.Category) float64 {
	switch c {
	case poi.Outdoors:
		return 0.05
	case poi.Travel:
		return 0.35
	default:
		return 0.6
	}
}
