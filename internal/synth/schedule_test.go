package synth

import (
	"fmt"
	"testing"
	"testing/quick"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
	"geosocial/internal/rng"
)

func testWorld(t *testing.T, seed uint64) *poi.DB {
	t.Helper()
	cfg := poi.DefaultCityConfig()
	cfg.POICount = 300
	db, err := poi.GenerateCity(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPlanDayTimelineInvariants: a day plan is contiguous (no gaps, no
// overlaps), stays within the tracking window, and starts/ends at home.
func TestPlanDayTimelineInvariants(t *testing.T) {
	db := testWorld(t, 1)
	cfg := PrimaryConfig()
	err := quick.Check(func(seed uint16, weekend bool) bool {
		s := rng.New(uint64(seed))
		tr := sampleTraits(cfg.Incentive, s.Split("t"))
		anch := pickAnchors(db, s.Split("a"))
		dayStart := int64(86400 * 100)
		events := planDay(&cfg, db, anch, tr, dayStart, weekend, s.Split("p"))
		if len(events) == 0 {
			return false
		}
		trackStart := dayStart + int64(cfg.TrackStartHour)*3600
		trackEnd := dayStart + int64(cfg.TrackEndHour)*3600
		if events[0].start != trackStart {
			return false
		}
		// A late outing may overrun the nominal tracking end before the
		// user heads home, but never by hours.
		lastEnd := events[len(events)-1].end
		if lastEnd < trackEnd || lastEnd > trackEnd+3*3600 {
			return false
		}
		for i, ev := range events {
			if ev.end < ev.start {
				return false
			}
			if i > 0 && ev.start != events[i-1].end {
				return false // gap or overlap
			}
		}
		// The day starts with a stay at home and ends at home (either a
		// final home stay or the drive home that overran the window).
		first, last := events[0], events[len(events)-1]
		if first.kind != evStay || geo.Distance(first.loc, anch.home.Loc) > 1 {
			return false
		}
		switch last.kind {
		case evStay:
			if geo.Distance(last.loc, anch.home.Loc) > 1 {
				return false
			}
		case evMove:
			if geo.Distance(last.to, anch.home.Loc) > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlanDayMovesConnect: every move leg starts where the previous event
// left off.
func TestPlanDayMovesConnect(t *testing.T) {
	db := testWorld(t, 2)
	cfg := PrimaryConfig()
	s := rng.New(5)
	tr := sampleTraits(cfg.Incentive, s.Split("t"))
	anch := pickAnchors(db, s.Split("a"))
	events := planDay(&cfg, db, anch, tr, 86400*200, false, s.Split("p"))
	cur := anch.home.Loc
	for i, ev := range events {
		switch ev.kind {
		case evStay:
			if geo.Distance(ev.loc, cur) > 1 && i > 0 && events[i-1].kind != evMove {
				t.Fatalf("event %d: stay teleported %.0f m", i, geo.Distance(ev.loc, cur))
			}
			cur = ev.loc
		case evMove:
			if geo.Distance(ev.from, cur) > 1 {
				t.Fatalf("event %d: move starts %.0f m from current position", i, geo.Distance(ev.from, cur))
			}
			cur = ev.to
		}
	}
}

func TestPickAnchorsStructure(t *testing.T) {
	db := testWorld(t, 3)
	s := rng.New(7)
	listed, unlisted := 0, 0
	for i := 0; i < 60; i++ {
		a := pickAnchors(db, s.Split(fmt.Sprintf("u%d", i)))
		if a.home.Category != poi.Residence {
			t.Fatalf("home category %v", a.home.Category)
		}
		if a.home.ID < 0 {
			unlisted++
		} else {
			listed++
		}
		if a.work.Category != poi.Professional && a.work.Category != poi.College {
			t.Fatalf("work category %v", a.work.Category)
		}
		if len(a.routine) == 0 || len(a.leisure) == 0 {
			t.Fatal("empty anchor pools")
		}
		for _, p := range a.routine {
			if p.Category != poi.Food && p.Category != poi.Shop {
				t.Fatalf("routine venue category %v", p.Category)
			}
		}
	}
	// The unlisted-home fraction must be materially present on both sides.
	if unlisted == 0 || listed == 0 {
		t.Fatalf("unlisted/listed split degenerate: %d/%d", unlisted, listed)
	}
}

func TestIndoorProbRange(t *testing.T) {
	for _, c := range poi.Categories() {
		p := indoorProb(c)
		if p < 0 || p > 1 {
			t.Fatalf("indoorProb(%v) = %g", c, p)
		}
	}
	if indoorProb(poi.Outdoors) >= indoorProb(poi.Residence) {
		t.Error("outdoors venues should rarely be indoor")
	}
}

func TestSampleTraitsBounds(t *testing.T) {
	for _, rewardSeeking := range []bool{true, false} {
		ic := PrimaryConfig().Incentive
		ic.RewardSeeking = rewardSeeking
		s := rng.New(11)
		for i := 0; i < 200; i++ {
			tr := sampleTraits(ic, s.Split("x"))
			if tr.activity <= 0 {
				t.Fatalf("activity %g", tr.activity)
			}
			for name, v := range map[string]float64{
				"badgeHunt": tr.badgeHunt, "mayorSeek": tr.mayorSeek,
				"driveby": tr.driveby, "social": tr.social,
			} {
				if v < 0 || v > 1 {
					t.Fatalf("%s = %g out of [0,1]", name, v)
				}
			}
			if !rewardSeeking && (tr.badgeHunt > 0.05 || tr.mayorSeek > 0.05) {
				t.Fatal("volunteer with reward traits")
			}
		}
	}
}

func TestProfileNonNegative(t *testing.T) {
	s := rng.New(13)
	ic := PrimaryConfig().Incentive
	for i := 0; i < 200; i++ {
		tr := sampleTraits(ic, s.Split("t"))
		p := tr.profile(s.Split("p"))
		if p.Friends < 0 || p.Badges < 0 || p.Mayors < 0 {
			t.Fatalf("negative profile: %+v", p)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := PrimaryConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := PrimaryConfig()
	bad.Users = 0
	if err := bad.Validate(); err == nil {
		t.Error("Users=0 accepted")
	}
	bad = PrimaryConfig()
	bad.TrackEndHour = bad.TrackStartHour
	if err := bad.Validate(); err == nil {
		t.Error("empty tracking window accepted")
	}
	bad = PrimaryConfig()
	bad.GPSDropProb = 1
	if err := bad.Validate(); err == nil {
		t.Error("GPSDropProb=1 accepted")
	}
}

func TestScaleClampsToOneUser(t *testing.T) {
	cfg := PrimaryConfig().Scale(0.0001)
	if cfg.Users != 1 {
		t.Fatalf("Users = %d, want 1", cfg.Users)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := PrimaryConfig().Scale(0.02)
	a, err := Generate(cfg, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != len(b.Users) {
		t.Fatal("user counts differ")
	}
	for i := range a.Users {
		ua, ub := a.Users[i], b.Users[i]
		if len(ua.GPS) != len(ub.GPS) || len(ua.Checkins) != len(ub.Checkins) {
			t.Fatalf("user %d traces differ across identical seeds", i)
		}
		if ua.Profile != ub.Profile {
			t.Fatalf("user %d profiles differ", i)
		}
	}
}
