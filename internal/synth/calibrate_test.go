package synth_test

// Calibration test: generates a scaled-down Primary and Baseline dataset
// and logs/checks the headline quantities against the paper's bands.
// Run with -v to see the readout.

import (
	"testing"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

func TestCalibrationPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration generation is slow")
	}
	cfg := synth.PrimaryConfig().Scale(0.15) // ~37 users
	ds, err := synth.Generate(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}

	v := core.NewValidator()
	outs, part, err := v.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}

	var userDays float64
	for _, u := range ds.Users {
		userDays += u.Days
	}
	ckPerDay := float64(part.Checkins) / userDays
	visPerDay := float64(part.Visits) / userDays
	gps := 0
	for _, u := range ds.Users {
		gps += len(u.GPS)
	}
	gpsPerDay := float64(gps) / userDays

	t.Logf("users=%d userDays=%.0f", len(ds.Users), userDays)
	t.Logf("gps/day=%.0f (paper ~750)", gpsPerDay)
	t.Logf("visits/day=%.1f (paper ~8.9)", visPerDay)
	t.Logf("checkins/day=%.2f (paper ~4.1)", ckPerDay)
	t.Logf("partition: %v", part)
	t.Logf("extraneousRatio=%.2f (paper 0.75)", part.ExtraneousRatio())
	t.Logf("coverage=%.3f (paper ~0.11)", part.CoverageRatio())

	truth := map[string]int{}
	for _, u := range ds.Users {
		for _, c := range u.Checkins {
			truth[string(c.Truth)]++
		}
	}
	t.Logf("truth labels: %v", truth)

	cls, err := classify.ClassifyAll(outs, classify.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tot := classify.Totals(cls)
	all := float64(part.Checkins)
	t.Logf("classified: honest=%.2f superfluous=%.2f remote=%.2f driveby=%.2f other=%.2f (of all checkins)",
		float64(tot[classify.Honest])/all, float64(tot[classify.Superfluous])/all,
		float64(tot[classify.Remote])/all, float64(tot[classify.Driveby])/all,
		float64(tot[classify.Other])/all)
	t.Logf("paper:      honest=0.25 superfluous=0.15 remote=0.40 driveby=0.13 other=0.08")

	sc, err := core.ScoreAgainstTruth(outs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("matcher vs truth: acc=%.3f honestP=%.3f honestR=%.3f", sc.Accuracy, sc.HonestP, sc.HonestR)

	fc, err := classify.CorrelateFeatures(outs, cls)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []classify.Kind{classify.Superfluous, classify.Remote, classify.Driveby, classify.Honest} {
		r := fc.Rows[k]
		t.Logf("corr %-12v friends=%+.2f badges=%+.2f mayors=%+.2f ckpd=%+.2f", k, r[0], r[1], r[2], r[3])
	}

	// Loose paper-band assertions.
	if er := part.ExtraneousRatio(); er < 0.60 || er > 0.88 {
		t.Errorf("extraneous ratio %.2f outside [0.60, 0.88]", er)
	}
	if cov := part.CoverageRatio(); cov < 0.05 || cov > 0.22 {
		t.Errorf("coverage %.3f outside [0.05, 0.22]", cov)
	}
	if sc.Accuracy < 0.85 {
		t.Errorf("matcher accuracy %.3f < 0.85", sc.Accuracy)
	}
}

func TestCalibrationBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration generation is slow")
	}
	cfg := synth.BaselineConfig().Scale(0.5) // ~24 users
	ds, err := synth.Generate(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	v := core.NewValidator()
	_, part, err := v.ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	var userDays float64
	gps := 0
	for _, u := range ds.Users {
		userDays += u.Days
		gps += len(u.GPS)
	}
	t.Logf("baseline: gps/day=%.0f (paper ~571) visits/day=%.1f (paper ~6.4) checkins/day=%.2f (paper ~0.68)",
		float64(gps)/userDays, float64(part.Visits)/userDays, float64(part.Checkins)/userDays)
	t.Logf("baseline partition: %v", part)
	// Baseline checkins should be overwhelmingly honest.
	if er := part.ExtraneousRatio(); er > 0.35 {
		t.Errorf("baseline extraneous ratio %.2f > 0.35", er)
	}
}
