package synth

import (
	"math"

	"geosocial/internal/poi"
	"geosocial/internal/rng"
	"geosocial/internal/trace"
)

// traits is a user's latent behavioural state. Everything a user does —
// and the profile features Foursquare would report for her — derives from
// these five numbers, which is what produces the Table 2 correlation
// structure: remote checkins and badge counts share badgeHunt as their
// common cause, superfluous checkins and mayorship counts share mayorSeek,
// and activity couples checkin volume to reward seeking so that honest
// ratio anti-correlates with every profile feature.
type traits struct {
	activity   float64 // appetite for checkins and outings (~0.3 .. 3)
	badgeHunt  float64 // propensity for remote checkin sprees [0, 1]
	mayorSeek  float64 // propensity for superfluous checkins [0, 1]
	driveby    float64 // propensity to check in while driving [0, 1]
	social     float64 // friend-network size driver [0, 1]
	diligence  float64 // scales honest checkin probability at visits
	remoteIdio float64 // idiosyncratic remote-rate multiplier (noise)
}

// sampleTraits draws one user's latent traits.
func sampleTraits(ic IncentiveConfig, s *rng.Stream) traits {
	var t traits
	if ic.RewardSeeking {
		heavy := s.Bool(ic.HeavyFrac)
		if heavy {
			t.badgeHunt = s.Range(0.45, 1.0)
		} else {
			t.badgeHunt = s.Range(0, 0.28)
		}
		// Mayor seeking is a partially overlapping population: some
		// badge hunters also grind mayorships, plus an independent set.
		if s.Bool(0.18) || (heavy && s.Bool(0.35)) {
			t.mayorSeek = s.Range(0.4, 1.0)
		} else {
			t.mayorSeek = s.Range(0, 0.3)
		}
	} else {
		// Volunteers: negligible reward response.
		t.badgeHunt = s.Range(0, 0.03)
		t.mayorSeek = s.Range(0, 0.03)
	}
	// Activity is log-normal and *couples to reward seeking*: reward
	// hunters check in (and go out) more. This is the mechanism behind
	// the negative honest-ratio vs checkins/day correlation.
	t.activity = math.Exp(s.Norm(0, 0.5)) * (1 + 0.35*t.badgeHunt + 0.10*t.mayorSeek)
	t.activity *= ic.ActivityScale
	if t.activity < 0.15 {
		t.activity = 0.15
	}
	if ic.RewardSeeking {
		// Driveby checkins come from a small "on-the-go" subpopulation,
		// independent of reward hunting: these users check in repeatedly
		// while driving, which lifts their checkins/day without any
		// badges or mayorships — the Table 2 driveby row (negative
		// against all profile features except a positive checkins/day).
		if s.Bool(0.15) {
			t.driveby = s.Range(0.5, 0.9)
		} else {
			t.driveby = s.Range(0, 0.3)
		}
	} else {
		t.driveby = s.Range(0, 0.05)
	}
	t.social = clamp01(s.Range(0, 0.85) + 0.12*t.mayorSeek + 0.08*t.badgeHunt)
	t.diligence = ic.DiligenceMean * s.Range(0.55, 1.45)
	t.remoteIdio = math.Exp(s.Norm(0, 0.45))
	return t
}

// profile derives the Foursquare profile features from the latent traits.
// CheckinsPerDay is filled in later from the actually generated trace.
func (t traits) profile(s *rng.Stream) trace.Profile {
	actN := math.Sqrt(t.activity)
	badges := 2 + 38*t.badgeHunt*actN + 4*t.social + s.Norm(0, 6.5)
	mayors := 9.5*t.mayorSeek*actN + s.Norm(0, 1.3)
	friends := 8 + 52*t.social + 16*t.mayorSeek + 12*t.badgeHunt + s.Norm(0, 9)
	return trace.Profile{
		Friends: posInt(friends),
		Badges:  posInt(badges),
		Mayors:  posInt(mayors),
	}
}

func posInt(x float64) int {
	if x < 0 {
		return 0
	}
	return int(x + 0.5)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// checkinAffinity is the per-category probability scale that a visit
// produces an honest checkin. Routine/boring/private categories are low —
// the §4.2 survey finding that users skip "boring" and "private" places —
// which concentrates missing checkins at Professional, Shop and Food
// venues plus the home (Figure 4) and at each user's most-visited POIs
// (Figure 3).
var checkinAffinity = map[poi.Category]float64{
	poi.Professional: 0.030,
	poi.Outdoors:     0.35,
	poi.Nightlife:    0.48,
	poi.Arts:         0.48,
	poi.Shop:         0.06,
	poi.Travel:       0.50,
	poi.Residence:    0.015,
	poi.Food:         0.08,
	poi.College:      0.040,
}
