// Package synth is the user-study simulator: the substitution for the
// paper's IRB-approved data collection (244 Foursquare users + 47 student
// volunteers running a companion smartphone app, §3).
//
// It generates a synthetic city of POIs, a population of users with latent
// behavioral traits, and — per user — a per-minute GPS trace plus a
// Foursquare-style checkin trace. Checkin behaviour is driven by an
// incentive model mirroring §5.2: badge hunters submit remote checkins at
// far-away POIs, mayorship seekers submit superfluous checkins at venues
// adjacent to the one they are visiting, on-the-go users check in while
// driving past POIs, and everyone forgets to check in at boring routine
// places (home, office, gas station), producing the missing-checkin mass
// of §4.2.
//
// Every emitted checkin carries a ground-truth label (trace.Label) which
// analysis code never reads; it exists so the validator can be scored
// against the generator's intent — something the paper itself could not
// do with real users.
//
// All generation is deterministic given one rng.Stream.
package synth

import (
	"fmt"
	"time"

	"geosocial/internal/poi"
)

// Config parameterizes dataset generation.
type Config struct {
	// Name labels the dataset ("primary", "baseline").
	Name string
	// Users is the number of participants.
	Users int
	// MeanDays and DaysJitter control the per-user measurement window
	// length (normal, clamped to [MinDays, MaxDays]).
	MeanDays   float64
	DaysJitter float64
	MinDays    int
	MaxDays    int
	// Start is the first possible study day (midnight UTC); users begin
	// on a uniformly random day within StaggerDays of it.
	Start       time.Time
	StaggerDays int

	// City configures the synthetic POI world.
	City poi.CityConfig

	// GPS sampling.
	GPSPeriod   time.Duration // fix interval, per-minute in the paper
	GPSNoiseM   float64       // outdoor fix noise sigma (meters)
	GPSDropProb float64       // probability a scheduled fix is lost
	// GapsPerDay is the mean number of extended signal-loss windows per
	// day (phone off, dead zones); each lasts 10–40 minutes.
	GapsPerDay float64
	// TrackStartHour and TrackEndHour bound the daily tracking window
	// (the app does not record while the user sleeps / phone charges).
	TrackStartHour, TrackEndHour int

	// Schedule shaping.
	LunchProb      float64 // weekday probability of a lunch outing
	CoffeeProb     float64 // weekday probability of a pre-work coffee stop
	BreakProb      float64 // probability of a mid-work break outing
	ErrandMean     float64 // Poisson mean of weekday-evening errands
	WeekendOutMean float64 // Poisson mean of weekend outings

	// Incentive configures checkin behaviour.
	Incentive IncentiveConfig

	// Parallelism is the number of workers used to generate users.
	// <= 0 selects runtime.GOMAXPROCS(0); 1 runs the serial path. The
	// generated dataset is identical for any value (see Generate).
	Parallelism int
}

// IncentiveConfig controls the checkin behaviour model.
type IncentiveConfig struct {
	// RewardSeeking enables the extraneous-checkin behaviours. The
	// Baseline cohort (student volunteers indifferent to Foursquare
	// rewards, §3) sets this false.
	RewardSeeking bool
	// HeavyFrac is the fraction of users with strong reward-seeking
	// traits (the Fig 5 heavy tail: ~20 % of users have up to 80 %
	// extraneous checkins).
	HeavyFrac float64
	// DiligenceMean scales the probability of honest checkins at visits.
	DiligenceMean float64
	// ActivityScale multiplies the population's base checkin appetite.
	ActivityScale float64
	// RemoteRate scales remote-session frequency, SuperfluousProb the
	// per-honest-checkin probability of a superfluous burst, DrivebyProb
	// the per-drive probability of a driveby checkin, and
	// MicroStopCheckinProb the probability a short (<6 min) stop emits a
	// checkin (the "no distinctive features" 10 % residue of §5.1).
	RemoteRate           float64
	SuperfluousProb      float64
	DrivebyProb          float64
	MicroStopProb        float64
	MicroStopCheckinProb float64
}

// studyEpoch is the first day of the paper's collection window
// (January 2013).
var studyEpoch = time.Date(2013, time.January, 14, 0, 0, 0, 0, time.UTC)

// PrimaryConfig returns the generator configuration for the Primary
// dataset: 244 ordinary Foursquare users, ~14.2 days each, full incentive
// response (Table 1, row 1).
func PrimaryConfig() Config {
	return Config{
		Name:           "primary",
		Users:          244,
		MeanDays:       14.2,
		DaysJitter:     4.5,
		MinDays:        5,
		MaxDays:        28,
		Start:          studyEpoch,
		StaggerDays:    150,
		City:           poi.DefaultCityConfig(),
		GPSPeriod:      time.Minute,
		GPSNoiseM:      8,
		GPSDropProb:    0.10,
		GapsPerDay:     3.0,
		TrackStartHour: 7,
		TrackEndHour:   23,
		LunchProb:      0.60,
		CoffeeProb:     0.45,
		BreakProb:      0.40,
		ErrandMean:     2.2,
		WeekendOutMean: 2.6,
		Incentive: IncentiveConfig{
			RewardSeeking:        true,
			HeavyFrac:            0.25,
			DiligenceMean:        1.55,
			ActivityScale:        1.0,
			RemoteRate:           0.80,
			SuperfluousProb:      1.0,
			DrivebyProb:          1.0,
			MicroStopProb:        0.22,
			MicroStopCheckinProb: 0.60,
		},
	}
}

// BaselineConfig returns the generator configuration for the Baseline
// dataset: 47 student volunteers, ~20.8 days each, indifferent to rewards
// (Table 1, row 2). Students have lighter schedules (campus instead of a
// 9-to-5) and check in less often overall.
func BaselineConfig() Config {
	cfg := PrimaryConfig()
	cfg.Name = "baseline"
	cfg.Users = 47
	cfg.MeanDays = 20.8
	cfg.DaysJitter = 5
	cfg.MaxDays = 35
	cfg.GPSDropProb = 0.15
	cfg.GapsPerDay = 4.5
	cfg.TrackStartHour = 8
	cfg.TrackEndHour = 22
	cfg.LunchProb = 0.5
	cfg.CoffeeProb = 0.3
	cfg.BreakProb = 0.35
	cfg.ErrandMean = 1.2
	cfg.WeekendOutMean = 2.0
	cfg.Incentive = IncentiveConfig{
		RewardSeeking:        false,
		HeavyFrac:            0,
		DiligenceMean:        2.0,
		ActivityScale:        0.6,
		RemoteRate:           0,
		SuperfluousProb:      0,
		DrivebyProb:          0,
		MicroStopProb:        0.15,
		MicroStopCheckinProb: 0.05,
	}
	return cfg
}

// Scale returns a copy of cfg with the user count scaled by f (minimum 1
// user). It lets tests and examples run the same behavioural model at a
// fraction of the paper's population.
func (c Config) Scale(f float64) Config {
	out := c
	out.Users = int(float64(c.Users)*f + 0.5)
	if out.Users < 1 {
		out.Users = 1
	}
	return out
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("synth: Users must be positive, got %d", c.Users)
	}
	if c.MeanDays <= 0 {
		return fmt.Errorf("synth: MeanDays must be positive, got %g", c.MeanDays)
	}
	if c.MinDays <= 0 || c.MaxDays < c.MinDays {
		return fmt.Errorf("synth: invalid day bounds [%d, %d]", c.MinDays, c.MaxDays)
	}
	if c.GPSPeriod <= 0 {
		return fmt.Errorf("synth: GPSPeriod must be positive, got %v", c.GPSPeriod)
	}
	if c.TrackStartHour < 0 || c.TrackEndHour > 24 || c.TrackEndHour <= c.TrackStartHour {
		return fmt.Errorf("synth: invalid tracking window [%d, %d]", c.TrackStartHour, c.TrackEndHour)
	}
	if c.GPSDropProb < 0 || c.GPSDropProb >= 1 {
		return fmt.Errorf("synth: GPSDropProb must be in [0,1), got %g", c.GPSDropProb)
	}
	return nil
}
