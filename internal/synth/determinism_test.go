package synth_test

import (
	"fmt"
	"reflect"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

// TestGenerateDeterministicAcrossWorkers asserts the parallel-generation
// contract: the dataset is byte-identical whether users are generated on
// one worker or eight, for several seeds and scales.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		seed  uint64
		scale float64
	}{
		{1, 0.03},
		{42, 0.03},
		{99, 0.06},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("seed=%d/scale=%g", c.seed, c.scale), func(t *testing.T) {
			serialCfg := synth.PrimaryConfig().Scale(c.scale)
			serialCfg.Parallelism = 1
			parallelCfg := serialCfg
			parallelCfg.Parallelism = 8

			serial, err := synth.Generate(serialCfg, rng.New(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := synth.Generate(parallelCfg, rng.New(c.seed))
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Users) != len(parallel.Users) {
				t.Fatalf("user counts differ: serial %d, parallel %d",
					len(serial.Users), len(parallel.Users))
			}
			if !reflect.DeepEqual(serial.POIs, parallel.POIs) {
				t.Fatal("POIs differ between serial and parallel generation")
			}
			for i := range serial.Users {
				if !reflect.DeepEqual(serial.Users[i], parallel.Users[i]) {
					t.Fatalf("user %d differs between serial and parallel generation", i)
				}
			}
		})
	}
}

// TestGenerateSingleUser exercises the smallest possible fan-out.
func TestGenerateSingleUser(t *testing.T) {
	cfg := synth.BaselineConfig()
	cfg.Users = 1
	for _, workers := range []int{1, 8} {
		cfg.Parallelism = workers
		ds, err := synth.Generate(cfg, rng.New(5))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(ds.Users) != 1 {
			t.Fatalf("workers=%d: got %d users, want 1", workers, len(ds.Users))
		}
	}
}
