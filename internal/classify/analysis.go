package classify

import (
	"fmt"
	"sort"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/stats"
)

// FeatureCorrelations is the Table 2 matrix: for each checkin kind, the
// Pearson correlation between users' per-kind checkin ratio and each of
// the four profile features.
type FeatureCorrelations struct {
	// Rows maps a kind to its four correlations in the order
	// [friends, badges, mayors, checkins/day].
	Rows map[Kind][4]float64
	// Users is the number of users contributing to the correlations.
	Users int
}

// FeatureNames are the Table 2 column headers.
func FeatureNames() []string {
	return []string{"#Friends", "#Badges", "#Mayors", "#Checkins/Day"}
}

// CorrelateFeatures computes Table 2 over the matched and classified
// users. Users with no checkins are skipped (their ratios are undefined).
func CorrelateFeatures(outs []core.UserOutcome, cls []*Classification) (*FeatureCorrelations, error) {
	if len(outs) != len(cls) {
		return nil, fmt.Errorf("classify: outcome/classification length mismatch %d != %d", len(outs), len(cls))
	}
	var friends, badges, mayors, ckpd []float64
	ratios := make(map[Kind][]float64)
	kinds := []Kind{Superfluous, Remote, Driveby, Honest}
	for i, o := range outs {
		if len(o.User.Checkins) == 0 {
			continue
		}
		p := o.User.Profile
		friends = append(friends, float64(p.Friends))
		badges = append(badges, float64(p.Badges))
		mayors = append(mayors, float64(p.Mayors))
		ckpd = append(ckpd, p.CheckinsPerDay)
		for _, k := range kinds {
			ratios[k] = append(ratios[k], cls[i].Ratio(k))
		}
	}
	if len(friends) < 3 {
		return nil, fmt.Errorf("classify: too few users with checkins (%d)", len(friends))
	}
	fc := &FeatureCorrelations{Rows: make(map[Kind][4]float64), Users: len(friends)}
	features := [][]float64{friends, badges, mayors, ckpd}
	for _, k := range kinds {
		var row [4]float64
		for fi, feat := range features {
			r, err := stats.Pearson(ratios[k], feat)
			if err != nil {
				return nil, fmt.Errorf("classify: correlate %v vs feature %d: %w", k, fi, err)
			}
			row[fi] = r
		}
		fc.Rows[k] = row
	}
	return fc, nil
}

// PerUserRatios returns, for each user with checkins, the fraction of her
// checkins of the given kind — the Figure 5 sample. Kind < 0 requests the
// all-extraneous ratio.
func PerUserRatios(cls []*Classification, k Kind) []float64 {
	var out []float64
	for _, c := range cls {
		if len(c.Kinds) == 0 {
			continue
		}
		if k < 0 {
			out = append(out, c.ExtraneousRatio())
		} else {
			out = append(out, c.Ratio(k))
		}
	}
	return out
}

// InterArrivals returns the inter-arrival gaps in minutes between
// consecutive checkins of the given kind within each user (Figure 6).
// Kind < 0 pools all checkins regardless of kind.
func InterArrivals(outs []core.UserOutcome, cls []*Classification, k Kind) []float64 {
	var gaps []float64
	for i, o := range outs {
		var prev int64
		have := false
		for ci, c := range o.User.Checkins {
			if k >= 0 && cls[i].Kinds[ci] != k {
				continue
			}
			if have {
				gaps = append(gaps, float64(c.T-prev)/60)
			}
			prev = c.T
			have = true
		}
	}
	return gaps
}

// FilterTradeoff quantifies §5.3's user-filtering dilemma: sort users by
// extraneous ratio (worst first) and report, as the worst users are
// dropped, the cumulative fraction of extraneous checkins removed versus
// honest checkins lost.
type FilterTradeoff struct {
	// UsersDropped[i] users removed eliminates ExtraneousRemoved[i] of
	// all extraneous checkins at the cost of HonestLost[i] of all honest
	// checkins (all fractions in [0, 1]).
	UsersDropped      []int
	ExtraneousRemoved []float64
	HonestLost        []float64
}

// ComputeFilterTradeoff builds the trade-off curve over all users.
func ComputeFilterTradeoff(cls []*Classification) FilterTradeoff {
	type userCost struct {
		ratio          float64
		extran, honest int
	}
	var ucs []userCost
	totalEx, totalHon := 0, 0
	for _, c := range cls {
		if len(c.Kinds) == 0 {
			continue
		}
		ex := len(c.Kinds) - c.Count(Honest)
		hon := c.Count(Honest)
		ucs = append(ucs, userCost{c.ExtraneousRatio(), ex, hon})
		totalEx += ex
		totalHon += hon
	}
	sort.Slice(ucs, func(i, j int) bool { return ucs[i].ratio > ucs[j].ratio })
	var out FilterTradeoff
	cumEx, cumHon := 0, 0
	for i, uc := range ucs {
		cumEx += uc.extran
		cumHon += uc.honest
		out.UsersDropped = append(out.UsersDropped, i+1)
		out.ExtraneousRemoved = append(out.ExtraneousRemoved, frac(cumEx, totalEx))
		out.HonestLost = append(out.HonestLost, frac(cumHon, totalHon))
	}
	return out
}

// HonestLossAt returns the honest-checkin loss incurred at the smallest
// prefix of dropped users that removes at least the target fraction of
// extraneous checkins. The paper's example: removing the users behind
// 80 % of extraneous checkins sacrifices 53 % of honest ones.
func (ft FilterTradeoff) HonestLossAt(targetExtraneous float64) (usersDropped int, honestLost float64) {
	for i, ex := range ft.ExtraneousRemoved {
		if ex >= targetExtraneous {
			return ft.UsersDropped[i], ft.HonestLost[i]
		}
	}
	if n := len(ft.UsersDropped); n > 0 {
		return ft.UsersDropped[n-1], ft.HonestLost[n-1]
	}
	return 0, 0
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// BurstDetector is the §7 "open problem" detector: it flags checkins as
// extraneous from temporal burstiness alone — no GPS required — using the
// gap to the nearest neighbouring checkin of the same user.
type BurstDetector struct {
	// MaxGap flags a checkin whose nearest same-user checkin lies within
	// this duration.
	MaxGap time.Duration
}

// Flags returns, parallel to the user's checkins, whether each checkin is
// flagged extraneous by the burstiness rule.
func (d BurstDetector) Flags(ts []int64) []bool {
	out := make([]bool, len(ts))
	gap := int64(d.MaxGap / time.Second)
	for i := range ts {
		if i > 0 && ts[i]-ts[i-1] <= gap {
			out[i] = true
			out[i-1] = true
		}
	}
	return out
}

// DetectorScore is a precision/recall evaluation of a detector against
// the matcher's honest/extraneous partition (or ground truth).
type DetectorScore struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (s DetectorScore) Precision() float64 { return frac(s.TP, s.TP+s.FP) }

// Recall returns TP/(TP+FN), 0 when undefined.
func (s DetectorScore) Recall() float64 { return frac(s.TP, s.TP+s.FN) }

// F1 returns the harmonic mean of precision and recall.
func (s DetectorScore) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// EvaluateBurstDetector scores the detector against the classification
// (extraneous = positive class) over all users.
func EvaluateBurstDetector(outs []core.UserOutcome, cls []*Classification, d BurstDetector) DetectorScore {
	var sc DetectorScore
	for i, o := range outs {
		ts := make([]int64, len(o.User.Checkins))
		for j, c := range o.User.Checkins {
			ts[j] = c.T
		}
		flags := d.Flags(ts)
		for j, flagged := range flags {
			extraneous := cls[i].Kinds[j] != Honest
			switch {
			case flagged && extraneous:
				sc.TP++
			case flagged && !extraneous:
				sc.FP++
			case !flagged && extraneous:
				sc.FN++
			default:
				sc.TN++
			}
		}
	}
	return sc
}
