package classify

import (
	"fmt"
	"sort"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/stats"
	"geosocial/internal/trace"
)

// FeatureCorrelations is the Table 2 matrix: for each checkin kind, the
// Pearson correlation between users' per-kind checkin ratio and each of
// the four profile features.
type FeatureCorrelations struct {
	// Rows maps a kind to its four correlations in the order
	// [friends, badges, mayors, checkins/day].
	Rows map[Kind][4]float64
	// Users is the number of users contributing to the correlations.
	Users int
}

// FeatureNames are the Table 2 column headers.
func FeatureNames() []string {
	return []string{"#Friends", "#Badges", "#Mayors", "#Checkins/Day"}
}

// corrKinds are the Table 2 rows in presentation order.
var corrKinds = []Kind{Superfluous, Remote, Driveby, Honest}

// CorrAccum incrementally builds the Table 2 correlation inputs from a
// stream of per-user (profile, kind-count) summaries: Add each user as
// it arrives, then Correlations. It is the streaming core of
// CorrelateFeatures — both the in-memory and the outcome-log-backed
// paths feed it, in the same user order, so their matrices are exactly
// equal. State is four floats plus four ratios per user with checkins
// (Pearson needs the full sample, but never the traces behind it).
type CorrAccum struct {
	friends, badges, mayors, ckpd []float64
	ratios                        map[Kind][]float64
}

// Add accumulates one user. Users with no checkins are skipped (their
// ratios are undefined), exactly as CorrelateFeatures skips them.
func (a *CorrAccum) Add(p trace.Profile, counts KindCounts) {
	total := counts.Total()
	if total == 0 {
		return
	}
	if a.ratios == nil {
		a.ratios = make(map[Kind][]float64)
	}
	a.friends = append(a.friends, float64(p.Friends))
	a.badges = append(a.badges, float64(p.Badges))
	a.mayors = append(a.mayors, float64(p.Mayors))
	a.ckpd = append(a.ckpd, p.CheckinsPerDay)
	for _, k := range corrKinds {
		a.ratios[k] = append(a.ratios[k], float64(counts[k])/float64(total))
	}
}

// Users returns the number of users accumulated so far.
func (a *CorrAccum) Users() int { return len(a.friends) }

// Correlations finalizes the Table 2 matrix over the accumulated users.
func (a *CorrAccum) Correlations() (*FeatureCorrelations, error) {
	if len(a.friends) < 3 {
		return nil, fmt.Errorf("classify: too few users with checkins (%d)", len(a.friends))
	}
	fc := &FeatureCorrelations{Rows: make(map[Kind][4]float64), Users: len(a.friends)}
	features := [][]float64{a.friends, a.badges, a.mayors, a.ckpd}
	for _, k := range corrKinds {
		var row [4]float64
		for fi, feat := range features {
			r, err := stats.Pearson(a.ratios[k], feat)
			if err != nil {
				return nil, fmt.Errorf("classify: correlate %v vs feature %d: %w", k, fi, err)
			}
			row[fi] = r
		}
		fc.Rows[k] = row
	}
	return fc, nil
}

// CorrelateFeatures computes Table 2 over the matched and classified
// users. Users with no checkins are skipped (their ratios are undefined).
func CorrelateFeatures(outs []core.UserOutcome, cls []*Classification) (*FeatureCorrelations, error) {
	if len(outs) != len(cls) {
		return nil, fmt.Errorf("classify: outcome/classification length mismatch %d != %d", len(outs), len(cls))
	}
	var a CorrAccum
	for i, o := range outs {
		a.Add(o.User.Profile, cls[i].Counts())
	}
	return a.Correlations()
}

// PerUserRatios returns, for each user with checkins, the fraction of her
// checkins of the given kind — the Figure 5 sample. Kind < 0 requests the
// all-extraneous ratio.
func PerUserRatios(cls []*Classification, k Kind) []float64 {
	var out []float64
	for _, c := range cls {
		if len(c.Kinds) == 0 {
			continue
		}
		if k < 0 {
			out = append(out, c.ExtraneousRatio())
		} else {
			out = append(out, c.Ratio(k))
		}
	}
	return out
}

// AppendInterArrivals appends one user's inter-arrival gaps in minutes
// between consecutive checkins of the given kind to dst (Figure 6).
// times and kinds are the user's checkin timestamps and classifications,
// index-aligned; Kind < 0 pools all checkins regardless of kind. It is
// the per-user core of InterArrivals, shared with the outcome-log path.
func AppendInterArrivals(dst []float64, times []int64, kinds []Kind, k Kind) []float64 {
	var prev int64
	have := false
	for ci, t := range times {
		if k >= 0 && kinds[ci] != k {
			continue
		}
		if have {
			dst = append(dst, float64(t-prev)/60)
		}
		prev = t
		have = true
	}
	return dst
}

// InterArrivals returns the inter-arrival gaps in minutes between
// consecutive checkins of the given kind within each user (Figure 6).
// Kind < 0 pools all checkins regardless of kind.
func InterArrivals(outs []core.UserOutcome, cls []*Classification, k Kind) []float64 {
	var gaps []float64
	times := make([]int64, 0, 64)
	for i, o := range outs {
		times = times[:0]
		for _, c := range o.User.Checkins {
			times = append(times, c.T)
		}
		gaps = AppendInterArrivals(gaps, times, cls[i].Kinds, k)
	}
	return gaps
}

// FilterTradeoff quantifies §5.3's user-filtering dilemma: sort users by
// extraneous ratio (worst first) and report, as the worst users are
// dropped, the cumulative fraction of extraneous checkins removed versus
// honest checkins lost.
type FilterTradeoff struct {
	// UsersDropped[i] users removed eliminates ExtraneousRemoved[i] of
	// all extraneous checkins at the cost of HonestLost[i] of all honest
	// checkins (all fractions in [0, 1]).
	UsersDropped      []int
	ExtraneousRemoved []float64
	HonestLost        []float64
}

// userCost is one user's contribution to the filtering trade-off.
type userCost struct {
	ratio          float64
	extran, honest int
}

// TradeoffAccum incrementally builds the §5.3 filtering trade-off from a
// stream of per-user kind counts: Add each user, then Tradeoff. State is
// three numbers per user with checkins — the traces themselves are never
// needed, which is what lets the outcome-log path share it.
type TradeoffAccum struct {
	ucs               []userCost
	totalEx, totalHon int
}

// Add accumulates one user's kind counts (users with no checkins are
// skipped, as in ComputeFilterTradeoff).
func (a *TradeoffAccum) Add(counts KindCounts) {
	total := counts.Total()
	if total == 0 {
		return
	}
	hon := counts[Honest]
	ex := total - hon
	// The sort key must be computed exactly as Classification.
	// ExtraneousRatio computes it (1 - honest ratio), so the two paths
	// order ties identically.
	ratio := 1 - float64(hon)/float64(total)
	a.ucs = append(a.ucs, userCost{ratio, ex, hon})
	a.totalEx += ex
	a.totalHon += hon
}

// Tradeoff finalizes the curve: sort users by extraneous ratio (worst
// first) and accumulate the removal/loss fractions.
func (a *TradeoffAccum) Tradeoff() FilterTradeoff {
	sort.Slice(a.ucs, func(i, j int) bool { return a.ucs[i].ratio > a.ucs[j].ratio })
	var out FilterTradeoff
	cumEx, cumHon := 0, 0
	for i, uc := range a.ucs {
		cumEx += uc.extran
		cumHon += uc.honest
		out.UsersDropped = append(out.UsersDropped, i+1)
		out.ExtraneousRemoved = append(out.ExtraneousRemoved, frac(cumEx, a.totalEx))
		out.HonestLost = append(out.HonestLost, frac(cumHon, a.totalHon))
	}
	return out
}

// ComputeFilterTradeoff builds the trade-off curve over all users.
func ComputeFilterTradeoff(cls []*Classification) FilterTradeoff {
	var a TradeoffAccum
	for _, c := range cls {
		a.Add(c.Counts())
	}
	return a.Tradeoff()
}

// HonestLossAt returns the honest-checkin loss incurred at the smallest
// prefix of dropped users that removes at least the target fraction of
// extraneous checkins. The paper's example: removing the users behind
// 80 % of extraneous checkins sacrifices 53 % of honest ones.
func (ft FilterTradeoff) HonestLossAt(targetExtraneous float64) (usersDropped int, honestLost float64) {
	for i, ex := range ft.ExtraneousRemoved {
		if ex >= targetExtraneous {
			return ft.UsersDropped[i], ft.HonestLost[i]
		}
	}
	if n := len(ft.UsersDropped); n > 0 {
		return ft.UsersDropped[n-1], ft.HonestLost[n-1]
	}
	return 0, 0
}

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// BurstDetector is the §7 "open problem" detector: it flags checkins as
// extraneous from temporal burstiness alone — no GPS required — using the
// gap to the nearest neighbouring checkin of the same user.
type BurstDetector struct {
	// MaxGap flags a checkin whose nearest same-user checkin lies within
	// this duration.
	MaxGap time.Duration
}

// Flags returns, parallel to the user's checkins, whether each checkin is
// flagged extraneous by the burstiness rule.
func (d BurstDetector) Flags(ts []int64) []bool {
	out := make([]bool, len(ts))
	gap := int64(d.MaxGap / time.Second)
	for i := range ts {
		if i > 0 && ts[i]-ts[i-1] <= gap {
			out[i] = true
			out[i-1] = true
		}
	}
	return out
}

// DetectorScore is a precision/recall evaluation of a detector against
// the matcher's honest/extraneous partition (or ground truth).
type DetectorScore struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (s DetectorScore) Precision() float64 { return frac(s.TP, s.TP+s.FP) }

// Recall returns TP/(TP+FN), 0 when undefined.
func (s DetectorScore) Recall() float64 { return frac(s.TP, s.TP+s.FN) }

// F1 returns the harmonic mean of precision and recall.
func (s DetectorScore) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ScoreUser accumulates one user's burst-detector confusion counts into
// sc, given the user's checkin timestamps and classifications
// (extraneous = positive class). It is the per-user core of
// EvaluateBurstDetector, shared with the outcome-log path.
func (d BurstDetector) ScoreUser(sc *DetectorScore, times []int64, kinds []Kind) {
	flags := d.Flags(times)
	for j, flagged := range flags {
		extraneous := kinds[j] != Honest
		switch {
		case flagged && extraneous:
			sc.TP++
		case flagged && !extraneous:
			sc.FP++
		case !flagged && extraneous:
			sc.FN++
		default:
			sc.TN++
		}
	}
}

// EvaluateBurstDetector scores the detector against the classification
// (extraneous = positive class) over all users.
func EvaluateBurstDetector(outs []core.UserOutcome, cls []*Classification, d BurstDetector) DetectorScore {
	var sc DetectorScore
	for i, o := range outs {
		ts := make([]int64, len(o.User.Checkins))
		for j, c := range o.User.Checkins {
			ts[j] = c.T
		}
		d.ScoreUser(&sc, ts, cls[i].Kinds)
	}
	return sc
}
