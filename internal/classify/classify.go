// Package classify implements the paper's extraneous-checkin taxonomy
// (§5.1: superfluous, remote, driveby), the incentive-correlation analysis
// behind Table 2, the per-user prevalence and burstiness characterizations
// of §5.3 (Figures 5 and 6), and the burstiness-based extraneous-checkin
// detector the paper sketches as future work in §7.
package classify

import (
	"fmt"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/geo"
	"geosocial/internal/par"
	"geosocial/internal/trace"
	"geosocial/internal/visits"
)

// Kind is the classified type of a checkin.
type Kind int

// Checkin kinds. Honest is a matched checkin; the remaining kinds
// partition the extraneous (unmatched) checkins.
const (
	Honest Kind = iota
	Superfluous
	Remote
	Driveby
	Other
	numKinds
)

// NumKinds is the number of checkin kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{"honest", "superfluous", "remote", "driveby", "other"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < 0 || int(k) >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Label converts the kind to the equivalent ground-truth label namespace.
func (k Kind) Label() trace.Label {
	switch k {
	case Honest:
		return trace.LabelHonest
	case Superfluous:
		return trace.LabelSuperfluous
	case Remote:
		return trace.LabelRemote
	case Driveby:
		return trace.LabelDriveby
	default:
		return trace.LabelOther
	}
}

// Params are the classification thresholds.
type Params struct {
	// RemoteDist is the distance in meters between a checkin's POI and
	// the user's actual GPS position beyond which the checkin is remote
	// (paper: 500 m, "beyond any reasonable GPS or POI location error").
	RemoteDist float64
	// DrivebySpeed is the ground speed in m/s above which an extraneous
	// checkin is a driveby (paper: 4 mph = 1.78816 m/s).
	DrivebySpeed float64
	// SuperfluousDist is the radius in meters around a checkin within
	// which a visit matched by a different checkin marks this one
	// superfluous (the α radius).
	SuperfluousDist float64
	// SuperfluousWindow is the time window for the superfluous test
	// (the β window).
	SuperfluousWindow time.Duration
	// SpeedGap is the maximum GPS-fix spacing usable for speed
	// estimation.
	SpeedGap time.Duration
	// Parallelism is the number of workers used by ClassifyAll.
	// <= 0 selects runtime.GOMAXPROCS(0); 1 runs the serial path. The
	// classifications are identical for any value.
	Parallelism int
}

// MphToMps converts miles per hour to meters per second.
func MphToMps(mph float64) float64 { return mph * 0.44704 }

// DefaultParams returns the paper's thresholds.
func DefaultParams() Params {
	return Params{
		RemoteDist:        500,
		DrivebySpeed:      MphToMps(4),
		SuperfluousDist:   500,
		SuperfluousWindow: 30 * time.Minute,
		SpeedGap:          6 * time.Minute,
	}
}

// Classification holds the per-checkin kinds for one user, parallel to
// the user's checkin trace.
type Classification struct {
	Kinds []Kind
}

// Count returns the number of checkins of kind k.
func (c *Classification) Count(k Kind) int {
	n := 0
	for _, kk := range c.Kinds {
		if kk == k {
			n++
		}
	}
	return n
}

// Ratio returns the fraction of checkins of kind k (0 when empty).
func (c *Classification) Ratio(k Kind) float64 {
	if len(c.Kinds) == 0 {
		return 0
	}
	return float64(c.Count(k)) / float64(len(c.Kinds))
}

// KindCounts is a per-kind checkin histogram for one user — the compact
// user-level summary the streaming analysis accumulators (CorrAccum,
// TradeoffAccum) consume, and what the outcome log reconstructs without
// the traces.
type KindCounts [NumKinds]int

// Total returns the number of checkins across all kinds.
func (kc KindCounts) Total() int {
	n := 0
	for _, v := range kc {
		n += v
	}
	return n
}

// CountsOf builds a KindCounts from a raw kind sequence. Kinds outside
// the valid range are ignored (decoders reject them before this point).
func CountsOf(kinds []Kind) KindCounts {
	var kc KindCounts
	for _, k := range kinds {
		if k >= 0 && int(k) < NumKinds {
			kc[k]++
		}
	}
	return kc
}

// Counts returns the per-kind histogram of this classification.
func (c *Classification) Counts() KindCounts { return CountsOf(c.Kinds) }

// ExtraneousRatio returns the fraction of checkins that are not honest.
func (c *Classification) ExtraneousRatio() float64 {
	if len(c.Kinds) == 0 {
		return 0
	}
	return 1 - c.Ratio(Honest)
}

// ClassifyUser assigns a kind to every checkin of one matched user
// outcome, following §5.1:
//
//   - matched checkins are honest;
//   - unmatched checkins whose POI lies more than RemoteDist from the
//     user's actual (GPS) position at checkin time are remote;
//   - otherwise, if the user was moving faster than DrivebySpeed, driveby;
//   - otherwise, if a visit within SuperfluousDist/SuperfluousWindow was
//     matched by a different (geographically closer) checkin, superfluous;
//   - anything left has no distinctive feature: other.
func ClassifyUser(o core.UserOutcome, p Params) (*Classification, error) {
	if p.RemoteDist <= 0 || p.DrivebySpeed <= 0 || p.SuperfluousDist <= 0 {
		return nil, fmt.Errorf("classify: invalid params %+v", p)
	}
	u := o.User
	cl := &Classification{Kinds: make([]Kind, len(u.Checkins))}

	for ci, c := range u.Checkins {
		if o.Match.IsHonest(ci) {
			cl.Kinds[ci] = Honest
			continue
		}
		// Remote: claimed POI far from the user's true position.
		pos, ok := gpsAt(u.GPS, c.T, p.SpeedGap)
		if ok && geo.Distance(pos, c.Loc) > p.RemoteDist {
			cl.Kinds[ci] = Remote
			continue
		}
		if !ok {
			// No GPS evidence near the checkin time: the position is
			// unverifiable; treat as remote only if the nearest fix is
			// far, else leave undistinguished.
			cl.Kinds[ci] = Other
			continue
		}
		// Driveby: physically nearby but moving.
		if spd, ok := visits.SpeedAt(u.GPS, c.T, p.SpeedGap); ok && spd > p.DrivebySpeed {
			cl.Kinds[ci] = Driveby
			continue
		}
		// Superfluous: a visit here was claimed by a closer checkin.
		if hasStolenVisit(o, c, p) {
			cl.Kinds[ci] = Superfluous
			continue
		}
		cl.Kinds[ci] = Other
	}
	return cl, nil
}

// hasStolenVisit reports whether some visit within the α/β window of c
// was matched to a different checkin.
func hasStolenVisit(o core.UserOutcome, c trace.Checkin, p Params) bool {
	for vi, v := range o.Visits {
		if !o.Match.IsVisitMatched(vi) {
			continue
		}
		if geo.Distance(v.Loc, c.Loc) > p.SuperfluousDist {
			continue
		}
		if v.DeltaT(c.T) < p.SuperfluousWindow {
			return true
		}
	}
	return false
}

// gpsAt returns the user's interpolated GPS position at time t, with ok
// false when no fix lies within maxGap of t.
func gpsAt(tr trace.GPSTrace, t int64, maxGap time.Duration) (geo.LatLon, bool) {
	if len(tr) == 0 {
		return geo.LatLon{}, false
	}
	lo, hi := 0, len(tr)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr[mid].T < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	gapSec := int64(maxGap / time.Second)
	switch {
	case lo == 0:
		if tr[0].T-t > gapSec {
			return geo.LatLon{}, false
		}
		return tr[0].Loc, true
	case lo >= len(tr):
		last := tr[len(tr)-1]
		if t-last.T > gapSec {
			return geo.LatLon{}, false
		}
		return last.Loc, true
	default:
		a, b := tr[lo-1], tr[lo]
		if t-a.T > gapSec && b.T-t > gapSec {
			return geo.LatLon{}, false
		}
		if b.T == a.T {
			return a.Loc, true
		}
		f := float64(t-a.T) / float64(b.T-a.T)
		return geo.Interpolate(a.Loc, b.Loc, f), true
	}
}

// ClassifyAll classifies every user outcome and returns parallel slices.
// Users are classified on p.Parallelism workers into index-addressed
// slots, so the result is identical for any worker count.
func ClassifyAll(outs []core.UserOutcome, p Params) ([]*Classification, error) {
	return par.Map(p.Parallelism, len(outs), func(i int) (*Classification, error) {
		c, err := ClassifyUser(outs[i], p)
		if err != nil {
			return nil, fmt.Errorf("classify: user %d: %w", outs[i].User.ID, err)
		}
		return c, nil
	})
}

// Totals sums kind counts over a set of classifications.
func Totals(cls []*Classification) map[Kind]int {
	out := make(map[Kind]int, NumKinds)
	for _, c := range cls {
		for _, k := range c.Kinds {
			out[k]++
		}
	}
	return out
}
