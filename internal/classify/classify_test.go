package classify

import (
	"testing"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/geo"
	"geosocial/internal/trace"
)

var base = geo.LatLon{Lat: 34.4208, Lon: -119.6982}

func at(dist float64) geo.LatLon { return geo.Destination(base, 90, dist) }

// buildOutcome constructs a UserOutcome with a stationary user at offset
// userPos for the whole window, one detected visit there, and the given
// checkins; the matcher runs for real.
func buildOutcome(t *testing.T, userPos float64, cks trace.CheckinTrace) core.UserOutcome {
	t.Helper()
	var gps trace.GPSTrace
	for m := int64(0); m <= 60; m++ {
		gps = append(gps, trace.GPSPoint{T: m * 60, Loc: at(userPos)})
	}
	vs := []trace.Visit{{Start: 0, End: 3600, Loc: at(userPos), POIID: -1}}
	res, err := core.MatchUser(cks, vs, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	u := &trace.User{GPS: gps, Checkins: cks, Days: 1}
	return core.UserOutcome{User: u, Visits: vs, Match: res}
}

func classifyOne(t *testing.T, o core.UserOutcome) *Classification {
	t.Helper()
	cl, err := ClassifyUser(o, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestClassifyHonest(t *testing.T) {
	o := buildOutcome(t, 0, trace.CheckinTrace{{T: 1800, Loc: at(0)}})
	cl := classifyOne(t, o)
	if cl.Kinds[0] != Honest {
		t.Fatalf("kind = %v, want honest", cl.Kinds[0])
	}
}

func TestClassifyRemote(t *testing.T) {
	// Checkin 5 km from the user's actual position.
	o := buildOutcome(t, 0, trace.CheckinTrace{{T: 1800, Loc: at(5000)}})
	cl := classifyOne(t, o)
	if cl.Kinds[0] != Remote {
		t.Fatalf("kind = %v, want remote", cl.Kinds[0])
	}
}

func TestClassifySuperfluous(t *testing.T) {
	// Honest checkin at the visit plus a second checkin at a venue 300 m
	// away while physically at the visit: the second loses the dedup and
	// is superfluous.
	o := buildOutcome(t, 0, trace.CheckinTrace{
		{T: 1700, Loc: at(0)},
		{T: 1800, Loc: at(300)},
	})
	cl := classifyOne(t, o)
	if cl.Kinds[0] != Honest {
		t.Fatalf("kinds[0] = %v, want honest", cl.Kinds[0])
	}
	if cl.Kinds[1] != Superfluous {
		t.Fatalf("kinds[1] = %v, want superfluous", cl.Kinds[1])
	}
}

func TestClassifyDriveby(t *testing.T) {
	// Moving user (12 m/s east), no visits; checkin at a venue near the
	// route midpoint.
	var gps trace.GPSTrace
	for m := int64(0); m <= 20; m++ {
		gps = append(gps, trace.GPSPoint{T: m * 60, Loc: at(float64(m) * 720)})
	}
	cks := trace.CheckinTrace{{T: 600, Loc: at(7300)}}
	res, err := core.MatchUser(cks, nil, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o := core.UserOutcome{
		User:  &trace.User{GPS: gps, Checkins: cks, Days: 1},
		Match: res,
	}
	cl := classifyOne(t, o)
	if cl.Kinds[0] != Driveby {
		t.Fatalf("kind = %v, want driveby", cl.Kinds[0])
	}
}

func TestClassifyOtherShortStop(t *testing.T) {
	// Stationary checkin near the user with no qualifying visit around:
	// no distinctive feature.
	var gps trace.GPSTrace
	for m := int64(0); m <= 20; m++ {
		gps = append(gps, trace.GPSPoint{T: m * 60, Loc: at(0)})
	}
	cks := trace.CheckinTrace{{T: 600, Loc: at(100)}}
	res, err := core.MatchUser(cks, nil, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o := core.UserOutcome{
		User:  &trace.User{GPS: gps, Checkins: cks, Days: 1},
		Match: res,
	}
	cl := classifyOne(t, o)
	if cl.Kinds[0] != Other {
		t.Fatalf("kind = %v, want other", cl.Kinds[0])
	}
}

func TestClassifyNoGPSEvidence(t *testing.T) {
	// Checkin hours away from any GPS fix: position unverifiable.
	gps := trace.GPSTrace{{T: 0, Loc: at(0)}, {T: 60, Loc: at(0)}}
	cks := trace.CheckinTrace{{T: 7200, Loc: at(100)}}
	res, err := core.MatchUser(cks, nil, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o := core.UserOutcome{User: &trace.User{GPS: gps, Checkins: cks, Days: 1}, Match: res}
	cl := classifyOne(t, o)
	if cl.Kinds[0] != Other {
		t.Fatalf("kind = %v, want other (unverifiable)", cl.Kinds[0])
	}
}

func TestClassifyInvalidParams(t *testing.T) {
	o := buildOutcome(t, 0, nil)
	if _, err := ClassifyUser(o, Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestMphToMps(t *testing.T) {
	if got := MphToMps(4); got < 1.78 || got > 1.79 {
		t.Errorf("4 mph = %g m/s", got)
	}
}

func TestKindStringAndLabel(t *testing.T) {
	if Honest.String() != "honest" || Driveby.String() != "driveby" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Error("out-of-range name empty")
	}
	if Honest.Label() != trace.LabelHonest || Remote.Label() != trace.LabelRemote {
		t.Error("label mapping wrong")
	}
	if Superfluous.Label() != trace.LabelSuperfluous || Driveby.Label() != trace.LabelDriveby {
		t.Error("label mapping wrong")
	}
	if Other.Label() != trace.LabelOther {
		t.Error("other mapping wrong")
	}
}

func TestRatios(t *testing.T) {
	cl := &Classification{Kinds: []Kind{Honest, Honest, Remote, Driveby}}
	if cl.Count(Honest) != 2 || cl.Count(Remote) != 1 {
		t.Error("counts wrong")
	}
	if cl.Ratio(Honest) != 0.5 {
		t.Errorf("honest ratio %g", cl.Ratio(Honest))
	}
	if cl.ExtraneousRatio() != 0.5 {
		t.Errorf("extraneous ratio %g", cl.ExtraneousRatio())
	}
	empty := &Classification{}
	if empty.Ratio(Honest) != 0 || empty.ExtraneousRatio() != 0 {
		t.Error("empty ratios not zero")
	}
}

func TestPerUserRatios(t *testing.T) {
	cls := []*Classification{
		{Kinds: []Kind{Honest, Remote}},
		{Kinds: []Kind{Remote, Remote}},
		{}, // empty user skipped
	}
	all := PerUserRatios(cls, Kind(-1))
	if len(all) != 2 || all[0] != 0.5 || all[1] != 1 {
		t.Fatalf("extraneous ratios = %v", all)
	}
	rem := PerUserRatios(cls, Remote)
	if rem[0] != 0.5 || rem[1] != 1 {
		t.Fatalf("remote ratios = %v", rem)
	}
}

func TestInterArrivals(t *testing.T) {
	cks := trace.CheckinTrace{
		{T: 0}, {T: 120}, {T: 600},
	}
	o := core.UserOutcome{User: &trace.User{Checkins: cks}}
	cls := []*Classification{{Kinds: []Kind{Remote, Remote, Honest}}}
	gaps := InterArrivals([]core.UserOutcome{o}, cls, Remote)
	if len(gaps) != 1 || gaps[0] != 2 {
		t.Fatalf("remote gaps = %v", gaps)
	}
	all := InterArrivals([]core.UserOutcome{o}, cls, Kind(-1))
	if len(all) != 2 {
		t.Fatalf("all gaps = %v", all)
	}
}

func TestFilterTradeoff(t *testing.T) {
	cls := []*Classification{
		{Kinds: []Kind{Remote, Remote, Remote, Honest}}, // 75% extraneous
		{Kinds: []Kind{Honest, Honest, Remote, Honest}}, // 25%
		{Kinds: []Kind{Honest, Honest}},                 // 0%
	}
	ft := ComputeFilterTradeoff(cls)
	if len(ft.UsersDropped) != 3 {
		t.Fatalf("curve length %d", len(ft.UsersDropped))
	}
	// Dropping the worst user removes 3/4 extraneous at 1/6 honest cost.
	if ft.ExtraneousRemoved[0] != 0.75 {
		t.Errorf("first drop removes %.2f extraneous", ft.ExtraneousRemoved[0])
	}
	if ft.HonestLost[0] != 1.0/6 {
		t.Errorf("first drop loses %.3f honest", ft.HonestLost[0])
	}
	dropped, lost := ft.HonestLossAt(0.8)
	if dropped != 2 {
		t.Errorf("dropped %d users for 80%%, want 2", dropped)
	}
	if lost != 4.0/6 {
		t.Errorf("honest lost %.3f, want 0.667", lost)
	}
}

func TestBurstDetectorFlags(t *testing.T) {
	d := BurstDetector{MaxGap: 2 * time.Minute}
	flags := d.Flags([]int64{0, 60, 3600, 7200, 7260})
	want := []bool{true, true, false, true, true}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v, want %v", flags, want)
		}
	}
}

func TestDetectorScore(t *testing.T) {
	s := DetectorScore{TP: 8, FP: 2, TN: 5, FN: 2}
	if s.Precision() != 0.8 {
		t.Errorf("precision %g", s.Precision())
	}
	if s.Recall() != 0.8 {
		t.Errorf("recall %g", s.Recall())
	}
	if f1 := s.F1(); f1 < 0.79 || f1 > 0.81 {
		t.Errorf("f1 %g", f1)
	}
	var zero DetectorScore
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero score not zero")
	}
}

func TestEvaluateBurstDetector(t *testing.T) {
	// Two bursty remote checkins plus one isolated honest one.
	cks := trace.CheckinTrace{
		{T: 0, Loc: at(5000)},
		{T: 30, Loc: at(6000)},
		{T: 7200, Loc: at(0)},
	}
	o := buildOutcome(t, 0, cks)
	cls, err := ClassifyAll([]core.UserOutcome{o}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sc := EvaluateBurstDetector([]core.UserOutcome{o}, cls, BurstDetector{MaxGap: time.Minute})
	if sc.TP != 2 {
		t.Errorf("TP = %d, want 2 (bursty remotes)", sc.TP)
	}
	if sc.FP != 0 {
		t.Errorf("FP = %d", sc.FP)
	}
}

func TestCorrelateFeaturesErrors(t *testing.T) {
	if _, err := CorrelateFeatures(nil, []*Classification{{}}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Too few users.
	o := buildOutcome(t, 0, trace.CheckinTrace{{T: 60, Loc: at(0)}})
	cls, err := ClassifyAll([]core.UserOutcome{o}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CorrelateFeatures([]core.UserOutcome{o}, cls); err == nil {
		t.Error("single user accepted")
	}
}

func TestTotals(t *testing.T) {
	cls := []*Classification{
		{Kinds: []Kind{Honest, Remote}},
		{Kinds: []Kind{Remote, Driveby}},
	}
	tot := Totals(cls)
	if tot[Honest] != 1 || tot[Remote] != 2 || tot[Driveby] != 1 {
		t.Fatalf("totals = %v", tot)
	}
}
