package classify

import (
	"fmt"
	"reflect"
	"testing"

	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
)

// TestClassifyAllDeterministicAcrossWorkers asserts classification is
// identical at Parallelism 1 and 8 for several seeds.
func TestClassifyAllDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{2, 42, 777} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.04), rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			outs, _, err := core.NewValidator().ValidateDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			serialParams := DefaultParams()
			serialParams.Parallelism = 1
			parallelParams := DefaultParams()
			parallelParams.Parallelism = 8

			serial, err := ClassifyAll(outs, serialParams)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := ClassifyAll(outs, parallelParams)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(parallel) {
				t.Fatalf("lengths differ: serial %d, parallel %d", len(serial), len(parallel))
			}
			for i := range serial {
				if !reflect.DeepEqual(serial[i], parallel[i]) {
					t.Fatalf("classification %d differs between serial and parallel", i)
				}
			}
			if !reflect.DeepEqual(Totals(serial), Totals(parallel)) {
				t.Fatal("totals differ between serial and parallel")
			}
		})
	}
}

// TestClassifyAllEmpty covers the zero-outcome edge case on both paths.
func TestClassifyAllEmpty(t *testing.T) {
	for _, workers := range []int{1, 8} {
		p := DefaultParams()
		p.Parallelism = workers
		cls, err := ClassifyAll(nil, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(cls) != 0 {
			t.Fatalf("workers=%d: got %d classifications for no outcomes", workers, len(cls))
		}
	}
}
