package detect

import (
	"math"
	"testing"
	"time"

	"geosocial/internal/classify"
	"geosocial/internal/core"
	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

// studyOutcomes builds a small validated study shared by the tests.
func studyOutcomes(t *testing.T) []core.UserOutcome {
	t.Helper()
	cfg := synth.PrimaryConfig().Scale(0.10)
	ds, err := synth.Generate(cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := core.NewValidator().ValidateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestExtractShapes(t *testing.T) {
	outs := studyOutcomes(t)
	exs := ExtractAll(outs)
	if len(exs) == 0 {
		t.Fatal("no examples")
	}
	total := 0
	for _, o := range outs {
		total += len(o.User.Checkins)
	}
	if len(exs) != total {
		t.Fatalf("examples %d != checkins %d", len(exs), total)
	}
	pos := 0
	for _, e := range exs {
		for j, v := range e.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %d is %g", j, v)
			}
		}
		if e.Extraneous {
			pos++
		}
	}
	// The study runs at ~70-80% extraneous.
	frac := float64(pos) / float64(len(exs))
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("positive fraction %.2f implausible", frac)
	}
}

func TestExtractEmptyUser(t *testing.T) {
	o := core.UserOutcome{User: &trace.User{}, Match: &core.Result{}}
	if got := Extract(o); got != nil {
		t.Fatalf("empty user produced %d examples", len(got))
	}
}

func TestTrainSeparatesSyntheticClasses(t *testing.T) {
	// Linearly separable toy data on feature 0: the trainer must find it.
	var exs []Example
	s := rng.New(3)
	for i := 0; i < 400; i++ {
		var e Example
		if i%2 == 0 {
			e.X[0] = s.Range(2, 4)
			e.Extraneous = true
		} else {
			e.X[0] = s.Range(-4, -2)
		}
		e.User = i
		exs = append(exs, e)
	}
	m, err := Train(exs, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := m.Evaluate(exs, 0.5)
	if sc.Accuracy() < 0.99 {
		t.Fatalf("separable data accuracy %.3f", sc.Accuracy())
	}
	if m.W[0] <= 0 {
		t.Fatalf("weight on the separating feature = %g, want positive", m.W[0])
	}
}

func TestTrainTooFew(t *testing.T) {
	if _, err := Train(make([]Example, 5), DefaultTrainConfig()); err == nil {
		t.Fatal("tiny training set accepted")
	}
}

func TestDetectorBeatsBurstinessBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	outs := studyOutcomes(t)
	exs := ExtractAll(outs)
	sc, err := CrossValidate(exs, 5, DefaultTrainConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("logistic CV: precision=%.3f recall=%.3f F1=%.3f acc=%.3f",
		sc.Precision(), sc.Recall(), sc.F1(), sc.Accuracy())

	// Burstiness baseline at its best threshold over the same data.
	cls, err := classify.ClassifyAll(outs, classify.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bestBaseF1 := 0.0
	for _, gapMin := range []int{1, 2, 5, 10, 20} {
		d := classify.BurstDetector{MaxGap: time.Duration(gapMin) * time.Minute}
		bs := classify.EvaluateBurstDetector(outs, cls, d)
		if f1 := bs.F1(); f1 > bestBaseF1 {
			bestBaseF1 = f1
		}
	}
	t.Logf("burstiness baseline best F1=%.3f", bestBaseF1)
	if sc.F1() < bestBaseF1-0.02 {
		t.Errorf("learned detector F1 %.3f below burstiness baseline %.3f", sc.F1(), bestBaseF1)
	}
	if sc.F1() < 0.75 {
		t.Errorf("learned detector F1 %.3f too weak", sc.F1())
	}
}

func TestCrossValidateErrors(t *testing.T) {
	if _, err := CrossValidate(nil, 1, DefaultTrainConfig(), 0.5); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(nil, 5, DefaultTrainConfig(), 0.5); err == nil {
		t.Error("empty examples accepted")
	}
}

func TestScoreArithmetic(t *testing.T) {
	s := Score{TP: 6, FP: 2, TN: 10, FN: 2}
	if s.Precision() != 0.75 {
		t.Errorf("precision %g", s.Precision())
	}
	if s.Recall() != 0.75 {
		t.Errorf("recall %g", s.Recall())
	}
	if s.Accuracy() != 0.8 {
		t.Errorf("accuracy %g", s.Accuracy())
	}
	if f1 := s.F1(); math.Abs(f1-0.75) > 1e-12 {
		t.Errorf("f1 %g", f1)
	}
}

func TestModelString(t *testing.T) {
	m := &Model{}
	if m.String() == "" {
		t.Error("empty string")
	}
}

func TestBurstSizeFeature(t *testing.T) {
	cks := trace.CheckinTrace{
		{T: 0}, {T: 30}, {T: 60}, {T: 4000},
	}
	if got := burstSize(cks, 1, 2*time.Minute); got != 3 {
		t.Errorf("burstSize mid = %d, want 3", got)
	}
	if got := burstSize(cks, 3, 2*time.Minute); got != 1 {
		t.Errorf("burstSize isolated = %d, want 1", got)
	}
}
