// Package detect builds out the paper's §7 "Detecting Extraneous
// Checkins" open problem: "a more thorough analysis (perhaps applying
// machine learning techniques) is necessary."
//
// It extracts per-checkin features that are observable from the checkin
// trace alone — no GPS required, which is the whole point: a consumer of
// a geosocial dataset has only the checkins — and trains an L2-regularized
// logistic-regression classifier by gradient descent to separate honest
// from extraneous checkins. Ground truth for training comes from the
// matched study data (or, for synthetic data, generator labels).
//
// Features per checkin (all cheap and trace-local):
//
//	gapPrev, gapNext   log-minutes to the user's neighbouring checkins
//	                   (the §5.3 burstiness signal, both directions)
//	distPrev           log-km to the previous checkin's venue
//	speedPrev          log implied speed between consecutive checkins
//	hourOfDay          sin/cos encoding of the checkin's local hour
//	routineCat         whether the claimed venue category is routine
//	userRate           the user's checkins/day (heavy users cheat more)
//	userVenueShare     fraction of the user's checkins at this venue
package detect

import (
	"fmt"
	"math"
	"time"

	"geosocial/internal/core"
	"geosocial/internal/geo"
	"geosocial/internal/trace"
)

// FeatureDim is the length of the feature vector (excluding bias).
const FeatureDim = 10

// FeatureNames labels the feature vector entries, index-aligned.
func FeatureNames() []string {
	return []string{
		"logGapPrevMin", "logGapNextMin", "logDistPrevKm", "logSpeedPrevKmh",
		"hourSin", "hourCos", "routineCategory", "userCheckinsPerDay",
		"userVenueShare", "burstSize",
	}
}

// Example is one labeled feature vector.
type Example struct {
	X [FeatureDim]float64
	// Extraneous is the label (true = positive class).
	Extraneous bool
	// User identifies the owner, used for grouped cross-validation so a
	// user's checkins never span the train/test divide.
	User int
}

// Extract computes feature vectors for every checkin of a user's trace.
// Labels are taken from the matcher's partition (matched = honest).
func Extract(o core.UserOutcome) []Example {
	cks := o.User.Checkins
	if len(cks) == 0 {
		return nil
	}
	matched := make(map[int]bool, len(o.Match.Matches))
	for _, m := range o.Match.Matches {
		matched[m.CheckinIdx] = true
	}
	venueCount := map[int]int{}
	for _, c := range cks {
		venueCount[c.POIID]++
	}
	days := o.User.Days
	if days <= 0 {
		days = 1
	}
	rate := float64(len(cks)) / days

	out := make([]Example, len(cks))
	for i, c := range cks {
		var x [FeatureDim]float64
		// Gap to previous / next checkin (log-minutes, capped at a day).
		x[0] = logMinutes(gapBefore(cks, i))
		x[1] = logMinutes(gapAfter(cks, i))
		// Distance and implied speed from the previous checkin.
		if i > 0 {
			distKm := geo.Distance(cks[i-1].Loc, c.Loc) / 1000
			x[2] = math.Log1p(distKm)
			dtH := float64(c.T-cks[i-1].T) / 3600
			if dtH > 0 {
				x[3] = math.Log1p(distKm / dtH)
			} else {
				x[3] = math.Log1p(1000) // co-timestamped jump
			}
		}
		// Hour-of-day encoding.
		hour := float64((c.T % 86400) / 3600)
		x[4] = math.Sin(2 * math.Pi * hour / 24)
		x[5] = math.Cos(2 * math.Pi * hour / 24)
		if c.Category.Routine() {
			x[6] = 1
		}
		x[7] = math.Log1p(rate)
		x[8] = float64(venueCount[c.POIID]) / float64(len(cks))
		x[9] = math.Log1p(float64(burstSize(cks, i, 2*time.Minute)))
		out[i] = Example{X: x, Extraneous: !matched[i], User: o.User.ID}
	}
	return out
}

// ExtractAll extracts features across all outcomes.
func ExtractAll(outs []core.UserOutcome) []Example {
	var all []Example
	for _, o := range outs {
		all = append(all, Extract(o)...)
	}
	return all
}

func gapBefore(cks trace.CheckinTrace, i int) time.Duration {
	if i == 0 {
		return 24 * time.Hour
	}
	return time.Duration(cks[i].T-cks[i-1].T) * time.Second
}

func gapAfter(cks trace.CheckinTrace, i int) time.Duration {
	if i == len(cks)-1 {
		return 24 * time.Hour
	}
	return time.Duration(cks[i+1].T-cks[i].T) * time.Second
}

func logMinutes(d time.Duration) float64 {
	m := d.Minutes()
	if m > 1440 {
		m = 1440
	}
	if m < 0 {
		m = 0
	}
	return math.Log1p(m)
}

// burstSize counts the checkins in the maximal run around index i whose
// consecutive gaps stay within maxGap.
func burstSize(cks trace.CheckinTrace, i int, maxGap time.Duration) int {
	gap := int64(maxGap / time.Second)
	n := 1
	for j := i; j > 0 && cks[j].T-cks[j-1].T <= gap; j-- {
		n++
	}
	for j := i; j+1 < len(cks) && cks[j+1].T-cks[j].T <= gap; j++ {
		n++
	}
	return n
}

// Model is a trained logistic-regression classifier.
type Model struct {
	// W holds the feature weights; B is the bias.
	W [FeatureDim]float64
	B float64
	// Mean and Scale are the feature standardization parameters learned
	// from the training set.
	Mean  [FeatureDim]float64
	Scale [FeatureDim]float64
}

// TrainConfig tunes gradient-descent training.
type TrainConfig struct {
	Epochs int     // full passes over the data (default 200)
	LR     float64 // learning rate (default 0.1)
	L2     float64 // ridge penalty (default 1e-4)
}

// DefaultTrainConfig returns the defaults used throughout.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 200, LR: 0.1, L2: 1e-4}
}

// Train fits a logistic-regression model by full-batch gradient descent
// on standardized features.
func Train(examples []Example, cfg TrainConfig) (*Model, error) {
	if len(examples) < 10 {
		return nil, fmt.Errorf("detect: too few examples (%d)", len(examples))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	m := &Model{}
	// Standardize.
	n := float64(len(examples))
	for _, e := range examples {
		for j, v := range e.X {
			m.Mean[j] += v / n
		}
	}
	for _, e := range examples {
		for j, v := range e.X {
			d := v - m.Mean[j]
			m.Scale[j] += d * d / n
		}
	}
	for j := range m.Scale {
		m.Scale[j] = math.Sqrt(m.Scale[j])
		if m.Scale[j] < 1e-9 {
			m.Scale[j] = 1
		}
	}
	// Gradient descent.
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var gradW [FeatureDim]float64
		gradB := 0.0
		for _, e := range examples {
			z := m.B
			for j, v := range e.X {
				z += m.W[j] * (v - m.Mean[j]) / m.Scale[j]
			}
			p := sigmoid(z)
			y := 0.0
			if e.Extraneous {
				y = 1
			}
			err := p - y
			for j, v := range e.X {
				gradW[j] += err * (v - m.Mean[j]) / m.Scale[j]
			}
			gradB += err
		}
		for j := range gradW {
			m.W[j] -= cfg.LR * (gradW[j]/n + cfg.L2*m.W[j])
		}
		m.B -= cfg.LR * gradB / n
	}
	return m, nil
}

func sigmoid(z float64) float64 {
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// Score returns P(extraneous) for one feature vector.
func (m *Model) Score(x [FeatureDim]float64) float64 {
	z := m.B
	for j, v := range x {
		z += m.W[j] * (v - m.Mean[j]) / m.Scale[j]
	}
	return sigmoid(z)
}

// Predict classifies at the given probability threshold.
func (m *Model) Predict(x [FeatureDim]float64, threshold float64) bool {
	return m.Score(x) >= threshold
}

// Score4 aggregates binary-classification counts.
type Score struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP) (0 when undefined).
func (s Score) Precision() float64 { return safeDiv(s.TP, s.TP+s.FP) }

// Recall returns TP/(TP+FN) (0 when undefined).
func (s Score) Recall() float64 { return safeDiv(s.TP, s.TP+s.FN) }

// Accuracy returns the fraction classified correctly.
func (s Score) Accuracy() float64 { return safeDiv(s.TP+s.TN, s.TP+s.TN+s.FP+s.FN) }

// F1 returns the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Evaluate scores the model over examples at the threshold.
func (m *Model) Evaluate(examples []Example, threshold float64) Score {
	var s Score
	for _, e := range examples {
		pred := m.Predict(e.X, threshold)
		switch {
		case pred && e.Extraneous:
			s.TP++
		case pred && !e.Extraneous:
			s.FP++
		case !pred && e.Extraneous:
			s.FN++
		default:
			s.TN++
		}
	}
	return s
}

// CrossValidate performs k-fold cross-validation grouped by user (all of
// a user's checkins land in the same fold, preventing leakage through
// user-level features) and returns the pooled score at the threshold.
func CrossValidate(examples []Example, k int, cfg TrainConfig, threshold float64) (Score, error) {
	if k < 2 {
		return Score{}, fmt.Errorf("detect: k must be >= 2, got %d", k)
	}
	var pooled Score
	folds := 0
	for fold := 0; fold < k; fold++ {
		var train, test []Example
		for _, e := range examples {
			if e.User%k == fold {
				test = append(test, e)
			} else {
				train = append(train, e)
			}
		}
		if len(test) == 0 || len(train) < 10 {
			continue
		}
		m, err := Train(train, cfg)
		if err != nil {
			return Score{}, fmt.Errorf("detect: fold %d: %w", fold, err)
		}
		s := m.Evaluate(test, threshold)
		pooled.TP += s.TP
		pooled.FP += s.FP
		pooled.TN += s.TN
		pooled.FN += s.FN
		folds++
	}
	if folds == 0 {
		return Score{}, fmt.Errorf("detect: no usable folds (too few users?)")
	}
	return pooled, nil
}

// String implements fmt.Stringer with the learned weights.
func (m *Model) String() string {
	out := "detect.Model{"
	names := FeatureNames()
	for j, w := range m.W {
		if j > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%+.2f", names[j], w)
	}
	return out + fmt.Sprintf(" bias=%+.2f}", m.B)
}
