//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps an open regular file read-only and returns the mapping
// plus its unmap function. Non-regular, empty, or oversized files
// report errMmapUnsupported so callers fall back to buffered streaming.
func mmapFile(f *os.File) ([]byte, func() error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if !fi.Mode().IsRegular() || size <= 0 || int64(int(size)) != size {
		return nil, nil, errMmapUnsupported
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
