package trace

// Binary dataset codec ("GSB1"): a compact streaming on-disk format for
// trace datasets. Unlike the JSON codec, which materializes the whole
// dataset before the first user can be validated, the binary format is a
// sequence of independently decodable per-user frames behind a small
// header, so readers and writers hold O(1 user) in memory regardless of
// dataset size.
//
// Layout (all integers are varints unless noted):
//
//	magic      4 bytes "GSB1"
//	version    uvarint (currently 1)
//	name       string (uvarint length + UTF-8 bytes)
//	poi count  uvarint
//	POI table  per POI: name, category (zigzag), lat/lon (zigzag E7),
//	           popularity (8-byte LE float64)
//	frames     per user: uvarint payload length (> 0), then the payload
//	sentinel   uvarint 0
//	trailer    uvarint user count (cross-checked by the reader)
//
// User frame payload:
//
//	id         zigzag varint
//	days       8-byte LE float64
//	profile    friends/badges/mayors (zigzag), checkins-per-day (float64)
//	gps        uvarint count; first fix time as zigzag varint, then
//	           uvarint deltas (fixes are time-ordered); lat/lon as zigzag
//	           E7 deltas from the previous fix (spatial coherence keeps
//	           them small); indoor flag byte
//	checkins   uvarint count; times delta-encoded like GPS; POI ID
//	           (uvarint), claimed name, category (zigzag), lat/lon
//	           (zigzag E7, absolute), truth label (enum, or enum escape +
//	           string for unknown labels)
//
// Coordinates are stored as fixed-point E7 integers (1e-7 degrees,
// ~1.1 cm of latitude) — far below GPS noise and the paper's 500 m
// matching threshold. Encoding therefore quantizes: a dataset round-
// tripped through the binary codec once is on the E7 grid and from then
// on round-trips exactly (through both the binary and JSON codecs).
// Timestamps, counts and float64 statistics are preserved exactly.
//
// Writers validate as they encode and readers validate as they decode
// (trace invariants, duplicate user IDs, checkin POI references), so a
// successfully decoded stream satisfies the same invariants Dataset.
// Validate enforces on the JSON path.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
)

// binaryMagic identifies the binary dataset format ("GeoSocial Binary").
var binaryMagic = [4]byte{'G', 'S', 'B', '1'}

// binaryVersion is the current header version.
const binaryVersion = 1

const (
	// coordScale converts degrees to fixed-point E7 ticks.
	coordScale = 1e7
	// maxFrameBytes caps a single user frame so a corrupt length prefix
	// cannot trigger a multi-gigabyte allocation.
	maxFrameBytes = 1 << 30
	// maxStringBytes caps an encoded string for the same reason.
	maxStringBytes = 1 << 20
	// allocHint caps speculative slice preallocation from untrusted
	// counts; slices grow past it by appending.
	allocHint = 1 << 16
)

// labelTable enumerates the known ground-truth labels; the index is the
// wire encoding. Unknown labels are written as len(labelTable) + string.
var labelTable = [...]Label{
	LabelNone, LabelHonest, LabelSuperfluous, LabelRemote, LabelDriveby, LabelOther,
}

func toE7(deg float64) int64 { return int64(math.Round(deg * coordScale)) }
func fromE7(v int64) float64 { return float64(v) / coordScale }

// --- encoding helpers ---

// frameEnc accumulates one frame's payload in memory (frames are
// length-prefixed, so the size must be known before the first byte is
// written to the stream).
type frameEnc struct{ buf []byte }

func (e *frameEnc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *frameEnc) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *frameEnc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *frameEnc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *frameEnc) byte(b byte) { e.buf = append(e.buf, b) }

func (e *frameEnc) latlon(p geo.LatLon) {
	e.varint(toE7(p.Lat))
	e.varint(toE7(p.Lon))
}

func (e *frameEnc) label(l Label) {
	for i, known := range labelTable {
		if l == known {
			e.uvarint(uint64(i))
			return
		}
	}
	e.uvarint(uint64(len(labelTable)))
	e.str(string(l))
}

// --- decoding helpers ---

// frameDec decodes one frame payload with a sticky error, so call sites
// stay linear and check failure once.
type frameDec struct {
	data []byte
	pos  int
	err  error
}

func (d *frameDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *frameDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("trace: binary frame: bad uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *frameDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("trace: binary frame: bad varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *frameDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.data) {
		d.fail("trace: binary frame: truncated float at offset %d", d.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}

func (d *frameDec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringBytes {
		d.fail("trace: binary frame: string length %d exceeds limit", n)
		return ""
	}
	if d.pos+int(n) > len(d.data) {
		d.fail("trace: binary frame: truncated string at offset %d", d.pos)
		return ""
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// strIntern is str resolving the bytes through an intern table first:
// a hit returns the canonical string without allocating (the compiler
// elides the string conversion in a map lookup), a miss copies as usual.
func (d *frameDec) strIntern(names map[string]string) string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringBytes {
		d.fail("trace: binary frame: string length %d exceeds limit", n)
		return ""
	}
	if d.pos+int(n) > len(d.data) {
		d.fail("trace: binary frame: truncated string at offset %d", d.pos)
		return ""
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if s, ok := names[string(b)]; ok {
		return s
	}
	return string(b)
}

func (d *frameDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.data) {
		d.fail("trace: binary frame: truncated byte at offset %d", d.pos)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *frameDec) latlon() geo.LatLon {
	lat := d.varint()
	lon := d.varint()
	return geo.LatLon{Lat: fromE7(lat), Lon: fromE7(lon)}
}

func (d *frameDec) label() Label {
	idx := d.uvarint()
	if d.err != nil {
		return LabelNone
	}
	if idx < uint64(len(labelTable)) {
		return labelTable[idx]
	}
	if idx == uint64(len(labelTable)) {
		return Label(d.str())
	}
	d.fail("trace: binary frame: bad label code %d", idx)
	return LabelNone
}

// --- stream writer ---

// StreamWriter writes a binary dataset one user at a time, holding only
// the current user in memory. The header (name + POI table) is written
// up front; Close writes the end-of-stream sentinel and trailer. The
// writer validates each user (trace invariants, unique IDs, known
// checkin POIs) before encoding it, so a completed stream always decodes
// cleanly.
//
// The writer does not close or flush the underlying io.Writer beyond its
// own buffering; callers own gzip wrapping and file lifecycle.
type StreamWriter struct {
	w       *bufio.Writer
	scratch frameEnc
	seen    map[int]struct{}
	numPOIs int
	users   uint64
	bytes   int64
	closed  bool
}

// NewStreamWriter validates the POI table and writes the stream header.
func NewStreamWriter(w io.Writer, name string, pois []poi.POI) (*StreamWriter, error) {
	if _, err := poi.NewDB(pois); err != nil {
		return nil, fmt.Errorf("trace: write binary: %w", err)
	}
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(w, 1<<16)
	}
	sw := &StreamWriter{
		w:       bw,
		seen:    make(map[int]struct{}),
		numPOIs: len(pois),
	}
	if _, err := sw.w.Write(binaryMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write binary header: %w", err)
	}
	var hdr frameEnc
	hdr.uvarint(binaryVersion)
	hdr.str(name)
	hdr.uvarint(uint64(len(pois)))
	for _, p := range pois {
		hdr.str(p.Name)
		hdr.varint(int64(p.Category))
		hdr.latlon(p.Loc)
		hdr.f64(p.Popularity)
	}
	if _, err := sw.w.Write(hdr.buf); err != nil {
		return nil, fmt.Errorf("trace: write binary header: %w", err)
	}
	sw.bytes = int64(len(binaryMagic) + len(hdr.buf))
	return sw, nil
}

// Users returns the number of user frames written so far.
func (sw *StreamWriter) Users() int { return int(sw.users) }

// Bytes returns the number of uncompressed stream bytes produced so far
// (header plus frames; the trailer is not yet counted before Close).
// ShardWriter uses it to keep shards size-balanced.
func (sw *StreamWriter) Bytes() int64 { return sw.bytes }

// WriteUser validates and appends one user frame.
func (sw *StreamWriter) WriteUser(u *User) error {
	if sw.closed {
		return fmt.Errorf("trace: write binary: writer closed")
	}
	if err := u.Validate(); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	if _, dup := sw.seen[u.ID]; dup {
		return fmt.Errorf("trace: write binary: duplicate user ID %d", u.ID)
	}
	if err := u.validateRefs(sw.numPOIs); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}

	e := &sw.scratch
	e.buf = e.buf[:0]
	e.varint(int64(u.ID))
	e.f64(u.Days)
	e.varint(int64(u.Profile.Friends))
	e.varint(int64(u.Profile.Badges))
	e.varint(int64(u.Profile.Mayors))
	e.f64(u.Profile.CheckinsPerDay)

	e.uvarint(uint64(len(u.GPS)))
	var prevT int64
	var prevLat, prevLon int64
	for i, p := range u.GPS {
		if i == 0 {
			e.varint(p.T)
		} else {
			e.uvarint(uint64(p.T - prevT)) // Validate guarantees non-decreasing
		}
		prevT = p.T
		lat, lon := toE7(p.Loc.Lat), toE7(p.Loc.Lon)
		e.varint(lat - prevLat)
		e.varint(lon - prevLon)
		prevLat, prevLon = lat, lon
		if p.Indoor {
			e.byte(1)
		} else {
			e.byte(0)
		}
	}

	e.uvarint(uint64(len(u.Checkins)))
	prevT = 0
	for i, c := range u.Checkins {
		if i == 0 {
			e.varint(c.T)
		} else {
			e.uvarint(uint64(c.T - prevT))
		}
		prevT = c.T
		e.uvarint(uint64(c.POIID))
		e.str(c.POIName)
		e.varint(int64(c.Category))
		e.latlon(c.Loc)
		e.label(c.Truth)
	}

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(e.buf)))
	if _, err := sw.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("trace: write binary frame: %w", err)
	}
	if _, err := sw.w.Write(e.buf); err != nil {
		return fmt.Errorf("trace: write binary frame: %w", err)
	}
	sw.seen[u.ID] = struct{}{}
	sw.users++
	sw.bytes += int64(n + len(e.buf))
	return nil
}

// Close writes the end-of-stream sentinel and user-count trailer and
// flushes the writer's buffer. It does not close the underlying writer.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	var tail frameEnc
	tail.uvarint(0) // sentinel: no more frames
	tail.uvarint(sw.users)
	if _, err := sw.w.Write(tail.buf); err != nil {
		return fmt.Errorf("trace: write binary trailer: %w", err)
	}
	sw.bytes += int64(len(tail.buf))
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("trace: write binary trailer: %w", err)
	}
	return nil
}

// --- stream reader ---

// StreamReader reads a binary dataset one user at a time, holding only
// the current frame in memory. The header (name + POI table) is decoded
// and validated by NewStreamReader; Next yields validated users and
// io.EOF after the trailer has been verified.
//
// Ingest is split into two stages so decode can run off the reading
// goroutine: NextFrame fetches the next raw frame (cheap, sequential
// I/O) and DecodeFrame decodes and validates it (CPU-bound, safe for
// concurrent calls on distinct frames). Next composes the two for the
// serial path. Frame buffers are recycled through an internal pool —
// DecodeFrame returns its frame's buffer when done — so steady-state
// reading allocates no per-user scratch.
//
// The reader tracks seen user IDs to reject duplicates — an O(users)
// integer set, the only per-user state it keeps. The check lives in
// Next, not DecodeFrame: callers of the two-stage API that interleave
// frames from several readers own the (inherently serial) duplicate
// check across their merged stream.
type StreamReader struct {
	r     *bufio.Reader
	name  string
	pois  []poi.POI
	names map[string]string // POI-name intern table, read-only after header
	seen  map[int]struct{}
	bufs  sync.Pool // *[]byte, recycled by DecodeFrame
	upool sync.Pool // *User, recycled by RecycleUser
	users uint64
	done  bool

	// In-memory mode (NewStreamReaderBytes): frames are sliced straight
	// out of mm — no copy, no buffer pool. Nil for io.Reader streams.
	mm    []byte
	mmPos int
}

// UserRecycler is implemented by frame sources whose DecodeFrame can
// reuse consumed user records. A consumer that is provably done with a
// decoded user — nothing retains the User or its GPS/checkin slices —
// hands it back so the next decode fills it in place instead of
// allocating. Recycling is strictly opt-in: sources whose consumers
// retain users simply never call it and decode behaves as before.
type UserRecycler interface {
	RecycleUser(*User)
}

// Frame is one undecoded unit of a user stream: a raw binary frame
// fetched by StreamReader.NextFrame, or an already-decoded user wrapped
// by SourceFrames. Frames are consumed by DecodeFrame and must not be
// reused afterwards (the backing buffer returns to the reader's pool).
type Frame struct {
	data []byte
	buf  *[]byte // pool box for data, nil when not pooled
	user *User   // pre-decoded user for SourceFrames adapters
}

// UserID peeks the frame's user ID without decoding the frame: the ID
// is the payload's leading zigzag varint. For a pre-decoded frame it
// returns the wrapped user's ID. Peeking does not consume the frame —
// it must still be decoded or recycled.
func (f Frame) UserID() (int, error) {
	if f.user != nil {
		return f.user.ID, nil
	}
	id, n := binary.Varint(f.data)
	if n <= 0 {
		return 0, fmt.Errorf("trace: binary frame: bad user ID varint")
	}
	return int(id), nil
}

// Recycle returns an undecoded frame's buffer to the reader's pool
// without decoding it — the counterpart of DecodeFrame for callers that
// peek (Frame.UserID) and skip frames. The frame must not be used
// afterwards.
func (sr *StreamReader) Recycle(f Frame) {
	if f.buf != nil {
		sr.bufs.Put(f.buf)
	}
}

// FrameSource is the two-stage ingest interface behind parallel decode.
// NextFrame returns the next undecoded frame, or io.EOF at a verified
// end of stream; it must be called from one goroutine at a time.
// DecodeFrame decodes and validates a frame from this source; it is
// safe for concurrent calls on distinct frames, which is what lets
// decode run as the first stage of a worker pool. Implementations do
// not check for duplicate user IDs across frames — that check is
// serial by nature and belongs to whoever consumes the decoded stream.
type FrameSource interface {
	NextFrame() (Frame, error)
	DecodeFrame(Frame) (*User, error)
}

// NewStreamReader decodes and validates the stream header. The reader
// expects uncompressed bytes; callers own gzip unwrapping (OpenStream
// does both).
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", noEOF(err))
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: not a binary dataset (magic %q)", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", noEOF(err))
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported binary version %d (have %d)", version, binaryVersion)
	}
	sr := &StreamReader{r: br, seen: make(map[int]struct{})}
	if sr.name, err = readString(br); err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", err)
	}
	nPOIs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read binary header: %w", noEOF(err))
	}
	sr.pois = make([]poi.POI, 0, min(nPOIs, allocHint))
	for i := uint64(0); i < nPOIs; i++ {
		p := poi.POI{ID: int(i)}
		if p.Name, err = readString(br); err != nil {
			return nil, fmt.Errorf("trace: read POI %d: %w", i, err)
		}
		cat, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: read POI %d: %w", i, noEOF(err))
		}
		p.Category = poi.Category(cat)
		lat, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: read POI %d: %w", i, noEOF(err))
		}
		lon, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: read POI %d: %w", i, noEOF(err))
		}
		p.Loc = geo.LatLon{Lat: fromE7(lat), Lon: fromE7(lon)}
		var popBits [8]byte
		if _, err := io.ReadFull(br, popBits[:]); err != nil {
			return nil, fmt.Errorf("trace: read POI %d: %w", i, noEOF(err))
		}
		p.Popularity = math.Float64frombits(binary.LittleEndian.Uint64(popBits[:]))
		sr.pois = append(sr.pois, p)
	}
	if _, err := poi.NewDB(sr.pois); err != nil {
		return nil, fmt.Errorf("trace: invalid POI table: %w", err)
	}
	// Intern table for checkin POI names: claimed names overwhelmingly
	// repeat venue-table names, and a map[string]string lookup keyed by
	// string(bytes) does not allocate on a hit, so steady-state decode
	// reuses one canonical string per venue. Read-only after the header,
	// hence safe under concurrent DecodeFrame calls.
	sr.names = make(map[string]string, len(sr.pois))
	for _, p := range sr.pois {
		sr.names[p.Name] = p.Name
	}
	return sr, nil
}

// NewStreamReaderBytes opens a binary dataset held entirely in memory —
// typically an mmap'ed uncompressed shard. Frames are sliced directly
// from data with no copying and no buffer pool; data must remain valid
// and unmodified for the lifetime of the reader and of every frame it
// yields. Decoded users never alias data (strings are interned or
// copied), so they outlive an unmap.
func NewStreamReaderBytes(data []byte) (*StreamReader, error) {
	r := bytes.NewReader(data)
	br := bufio.NewReaderSize(r, 1<<16)
	sr, err := NewStreamReader(br)
	if err != nil {
		return nil, err
	}
	sr.mm = data
	sr.mmPos = len(data) - r.Len() - br.Buffered()
	return sr, nil
}

// Name returns the dataset name from the header.
func (sr *StreamReader) Name() string { return sr.name }

// POIs returns the decoded POI table. The slice is owned by the reader;
// callers must not mutate it.
func (sr *StreamReader) POIs() []poi.POI { return sr.pois }

// Next decodes, validates and returns the next user, or io.EOF once the
// end-of-stream trailer has been read and verified. A truncated or
// corrupt stream yields a non-EOF error, never a silently short dataset.
func (sr *StreamReader) Next() (*User, error) {
	f, err := sr.NextFrame()
	if err != nil {
		return nil, err // io.EOF passes through untouched
	}
	u, err := sr.DecodeFrame(f)
	if err != nil {
		return nil, err
	}
	if _, dup := sr.seen[u.ID]; dup {
		return nil, fmt.Errorf("trace: invalid dataset: duplicate user ID %d", u.ID)
	}
	sr.seen[u.ID] = struct{}{}
	return u, nil
}

// NextFrame fetches the next raw user frame without decoding it, or
// io.EOF once the end-of-stream trailer has been read and verified. The
// frame's buffer comes from the reader's pool and is reclaimed by
// DecodeFrame, so each frame must be decoded exactly once.
func (sr *StreamReader) NextFrame() (Frame, error) {
	if sr.done {
		return Frame{}, io.EOF
	}
	if sr.mm != nil {
		return sr.nextFrameBytes()
	}
	frameLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return Frame{}, fmt.Errorf("trace: read binary frame: %w", noEOF(err))
	}
	if frameLen == 0 {
		// Sentinel: verify the trailer then report a clean end.
		count, err := binary.ReadUvarint(sr.r)
		if err != nil {
			return Frame{}, fmt.Errorf("trace: read binary trailer: %w", noEOF(err))
		}
		if count != sr.users {
			return Frame{}, fmt.Errorf("trace: binary trailer user count %d, decoded %d", count, sr.users)
		}
		sr.done = true
		return Frame{}, io.EOF
	}
	if frameLen > maxFrameBytes {
		return Frame{}, fmt.Errorf("trace: binary frame length %d exceeds limit", frameLen)
	}
	bp, _ := sr.bufs.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	if uint64(cap(*bp)) < frameLen {
		*bp = make([]byte, frameLen)
	}
	buf := (*bp)[:frameLen]
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		sr.bufs.Put(bp)
		return Frame{}, fmt.Errorf("trace: read binary frame: %w", noEOF(err))
	}
	sr.users++
	return Frame{data: buf, buf: bp}, nil
}

// nextFrameBytes is NextFrame for the in-memory (mmap) mode: frames are
// subslices of the mapping, so fetching copies nothing and recycles
// nothing.
func (sr *StreamReader) nextFrameBytes() (Frame, error) {
	frameLen, n := binary.Uvarint(sr.mm[sr.mmPos:])
	if n <= 0 {
		return Frame{}, fmt.Errorf("trace: read binary frame: %w", io.ErrUnexpectedEOF)
	}
	sr.mmPos += n
	if frameLen == 0 {
		// Sentinel: verify the trailer then report a clean end.
		count, n := binary.Uvarint(sr.mm[sr.mmPos:])
		if n <= 0 {
			return Frame{}, fmt.Errorf("trace: read binary trailer: %w", io.ErrUnexpectedEOF)
		}
		sr.mmPos += n
		if count != sr.users {
			return Frame{}, fmt.Errorf("trace: binary trailer user count %d, decoded %d", count, sr.users)
		}
		sr.done = true
		return Frame{}, io.EOF
	}
	if frameLen > maxFrameBytes {
		return Frame{}, fmt.Errorf("trace: binary frame length %d exceeds limit", frameLen)
	}
	if uint64(len(sr.mm)-sr.mmPos) < frameLen {
		return Frame{}, fmt.Errorf("trace: read binary frame: %w", io.ErrUnexpectedEOF)
	}
	data := sr.mm[sr.mmPos : sr.mmPos+int(frameLen)]
	sr.mmPos += int(frameLen)
	sr.users++
	return Frame{data: data}, nil
}

// RecycleUser returns a decoded user to the reader's record pool so a
// later DecodeFrame can fill it in place (see UserRecycler). The caller
// must be done with the user and every slice it owns.
func (sr *StreamReader) RecycleUser(u *User) {
	if u == nil {
		return
	}
	u.GPS = u.GPS[:0]
	u.Checkins = u.Checkins[:0]
	sr.upool.Put(u)
}

// Users returns the number of user frames fetched so far.
func (sr *StreamReader) Users() int { return int(sr.users) }

// DecodeFrame decodes and validates one frame fetched from this reader
// (trace invariants and checkin POI references, but not cross-frame
// duplicate user IDs; see the type comment). It is safe for concurrent
// calls on distinct frames. The frame's buffer is returned to the
// reader's pool, so the frame must not be used again.
func (sr *StreamReader) DecodeFrame(f Frame) (*User, error) {
	if f.user != nil {
		return f.user, nil
	}
	u, err := sr.decodeFrame(f.data)
	if f.buf != nil {
		sr.bufs.Put(f.buf)
	}
	return u, err
}

// decodeFrame decodes one raw frame payload into a validated user. The
// record comes from the reader's pool when consumers recycle (every
// field is overwritten below, so a reused record carries nothing over);
// otherwise the pool misses and this allocates exactly as before.
func (sr *StreamReader) decodeFrame(data []byte) (u *User, err error) {
	d := frameDec{data: data}
	u, _ = sr.upool.Get().(*User)
	if u == nil {
		u = &User{}
	}
	defer func() {
		if err != nil {
			// The partially filled record is clean for reuse — every
			// decode starts by truncating the slices and overwriting
			// the scalars — so an error keeps it pooled, not leaked.
			sr.RecycleUser(u)
			u = nil
		}
	}()
	u.ID = int(d.varint())
	u.Days = d.f64()
	u.Profile.Friends = int(d.varint())
	u.Profile.Badges = int(d.varint())
	u.Profile.Mayors = int(d.varint())
	u.Profile.CheckinsPerDay = d.f64()

	nGPS := d.uvarint()
	if d.err == nil {
		if hint := int(min(nGPS, allocHint)); cap(u.GPS) < hint {
			u.GPS = make(GPSTrace, 0, hint)
		} else {
			u.GPS = u.GPS[:0]
		}
	}
	var t int64
	var lat, lon int64
	for i := uint64(0); i < nGPS && d.err == nil; i++ {
		if i == 0 {
			t = d.varint()
		} else {
			t += int64(d.uvarint())
		}
		lat += d.varint()
		lon += d.varint()
		indoor := d.byte()
		u.GPS = append(u.GPS, GPSPoint{
			T:      t,
			Loc:    geo.LatLon{Lat: fromE7(lat), Lon: fromE7(lon)},
			Indoor: indoor != 0,
		})
	}

	nCk := d.uvarint()
	if d.err == nil {
		if hint := int(min(nCk, allocHint)); cap(u.Checkins) < hint {
			u.Checkins = make(CheckinTrace, 0, hint)
		} else {
			u.Checkins = u.Checkins[:0]
		}
	}
	t = 0
	for i := uint64(0); i < nCk && d.err == nil; i++ {
		if i == 0 {
			t = d.varint()
		} else {
			t += int64(d.uvarint())
		}
		c := Checkin{T: t}
		c.POIID = int(d.uvarint())
		c.POIName = d.strIntern(sr.names)
		c.Category = poi.Category(d.varint())
		c.Loc = d.latlon()
		c.Truth = d.label()
		u.Checkins = append(u.Checkins, c)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("trace: binary frame for user %d has %d trailing bytes", u.ID, len(d.data)-d.pos)
	}

	if err := u.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid dataset: %w", err)
	}
	if err := u.validateRefs(len(sr.pois)); err != nil {
		return nil, fmt.Errorf("trace: invalid dataset: %w", err)
	}
	return u, nil
}

// SourceFrames adapts an already-decoded user stream to FrameSource, so
// in-memory and JSON-backed datasets can join a merged multi-source
// validation alongside binary shards. NextFrame wraps each user in a
// frame; DecodeFrame unwraps it (there is nothing left to decode).
func SourceFrames(src UserSource) FrameSource { return userFrames{src} }

type userFrames struct{ src UserSource }

// NextFrame wraps the source's next user in a pre-decoded frame.
func (s userFrames) NextFrame() (Frame, error) {
	u, err := s.src.Next()
	if err != nil {
		return Frame{}, err
	}
	return Frame{user: u}, nil
}

// DecodeFrame unwraps a pre-decoded frame (there is nothing to decode).
func (s userFrames) DecodeFrame(f Frame) (*User, error) { return f.user, nil }

// readString reads a uvarint-prefixed string from a header stream.
func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", noEOF(err)
	}
	if n > maxStringBytes {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", noEOF(err)
	}
	return string(buf), nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a header
// or frame, running out of bytes is truncation, not a clean end, and must
// never be mistaken for the iterator's end-of-stream signal.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- whole-dataset convenience ---

// WriteBinary encodes the dataset in the binary format. The dataset is
// validated as a side effect (the writer checks every user); coordinates
// are quantized to the E7 grid (see the package comment above).
func (d *Dataset) WriteBinary(w io.Writer) error {
	sw, err := NewStreamWriter(w, d.Name, d.POIs)
	if err != nil {
		return err
	}
	for _, u := range d.Users {
		if err := sw.WriteUser(u); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ReadBinary decodes a complete binary dataset into memory. Prefer
// NewStreamReader (or OpenStream) when per-user streaming suffices.
func ReadBinary(r io.Reader) (*Dataset, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: sr.Name(), POIs: sr.POIs()}
	for {
		u, err := sr.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		d.Users = append(d.Users, u)
	}
}
