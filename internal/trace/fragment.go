package trace

// GSF1 fragment container: the generic on-disk envelope for per-shard
// result fragments (checkpoints today; the multi-node result exchange
// tomorrow). A fragment is a small keyed document — a sorted key/value
// header identifying what the fragment belongs to — followed by named
// sections, each a stream of length-prefixed chunks, closed by a
// truncation-proof trailer carrying the total chunk count. The payload
// semantics (what the chunks mean) belong to the layer above
// (internal/checkpoint); this file owns only the byte-level envelope,
// documented in docs/FORMAT.md.
//
// Layout:
//
//	magic "GSF1"
//	uvarint version (currently 1)
//	uvarint nkeys, then nkeys × (string key, string value), keys sorted
//	sections, repeated:
//	    string name (non-empty)
//	    chunks, repeated: uvarint len(chunk)+1, chunk bytes
//	    uvarint 0  (end of section)
//	string "" (empty name: end of sections)
//	uvarint total chunk count across all sections
//
// Strings are uvarint-length-prefixed UTF-8. Chunk lengths are stored
// off by one so the zero value stays free as the section terminator
// (empty chunks are legal). Because keys are written sorted and the
// writer adds nothing nondeterministic, two fragments built from the
// same keys, sections and chunks are byte-identical — which is what
// lets fragments be content-addressed.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// fragmentMagic identifies the fragment container format.
var fragmentMagic = [4]byte{'G', 'S', 'F', '1'}

// fragmentVersion is the current container version.
const fragmentVersion = 1

const (
	// maxFragmentChunk caps one chunk so a corrupt length prefix cannot
	// trigger a multi-gigabyte allocation.
	maxFragmentChunk = 1 << 28
	// maxFragmentString caps an encoded key, value or section name.
	maxFragmentString = 1 << 20
	// maxFragmentKeys bounds the header key count.
	maxFragmentKeys = 1 << 10
)

// FragmentWriter emits a GSF1 fragment to an io.Writer. Sections are
// opened with Section and filled with Chunk; Finish writes the
// terminator and trailer. The writer performs no buffering or file
// management of its own — callers own the destination (and its
// atomic-publish discipline).
type FragmentWriter struct {
	w       *bufio.Writer
	scratch []byte
	chunks  uint64
	inSect  bool
	done    bool
	err     error
}

// NewFragmentWriter writes the fragment magic, version and sorted key
// header and returns a writer positioned before the first section.
func NewFragmentWriter(w io.Writer, keys map[string]string) (*FragmentWriter, error) {
	fw := &FragmentWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := fw.w.Write(fragmentMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: write fragment: %w", err)
	}
	fw.uvarint(fragmentVersion)
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	fw.uvarint(uint64(len(names)))
	for _, k := range names {
		fw.str(k)
		fw.str(keys[k])
	}
	if fw.err != nil {
		return nil, fw.err
	}
	return fw, nil
}

// uvarint appends one uvarint to the stream.
func (fw *FragmentWriter) uvarint(v uint64) {
	if fw.err != nil {
		return
	}
	fw.scratch = binary.AppendUvarint(fw.scratch[:0], v)
	if _, err := fw.w.Write(fw.scratch); err != nil {
		fw.err = fmt.Errorf("trace: write fragment: %w", err)
	}
}

// str appends one length-prefixed string to the stream.
func (fw *FragmentWriter) str(s string) {
	fw.uvarint(uint64(len(s)))
	if fw.err != nil {
		return
	}
	if _, err := fw.w.WriteString(s); err != nil {
		fw.err = fmt.Errorf("trace: write fragment: %w", err)
	}
}

// Section closes any open section and starts a new one. The name must
// be non-empty (the empty name terminates the section list).
func (fw *FragmentWriter) Section(name string) error {
	if fw.done {
		return fmt.Errorf("trace: fragment writer finished")
	}
	if name == "" {
		return fmt.Errorf("trace: empty fragment section name")
	}
	if fw.inSect {
		fw.uvarint(0) // end the previous section
	}
	fw.str(name)
	fw.inSect = true
	return fw.err
}

// Chunk appends one chunk to the open section.
func (fw *FragmentWriter) Chunk(b []byte) error {
	if fw.done {
		return fmt.Errorf("trace: fragment writer finished")
	}
	if !fw.inSect {
		return fmt.Errorf("trace: fragment chunk outside a section")
	}
	if len(b) > maxFragmentChunk {
		return fmt.Errorf("trace: fragment chunk of %d bytes exceeds limit", len(b))
	}
	fw.uvarint(uint64(len(b)) + 1)
	if fw.err != nil {
		return fw.err
	}
	if _, err := fw.w.Write(b); err != nil {
		fw.err = fmt.Errorf("trace: write fragment: %w", err)
		return fw.err
	}
	fw.chunks++
	return nil
}

// Finish terminates the section list, writes the chunk-count trailer
// and flushes. The fragment is complete and verifiable only after
// Finish returns nil.
func (fw *FragmentWriter) Finish() error {
	if fw.done {
		return fw.err
	}
	fw.done = true
	if fw.inSect {
		fw.uvarint(0)
		fw.inSect = false
	}
	fw.str("") // end of sections
	fw.uvarint(fw.chunks)
	if fw.err != nil {
		return fw.err
	}
	if err := fw.w.Flush(); err != nil {
		fw.err = fmt.Errorf("trace: write fragment: %w", err)
	}
	return fw.err
}

// FragmentReader decodes a GSF1 fragment sequentially: header keys at
// open, then NextSection / NextChunk in document order. The trailer is
// verified when NextSection reports io.EOF, so a truncated fragment is
// always a decode error, never a silently short read.
type FragmentReader struct {
	r      *bufio.Reader
	keys   map[string]string
	chunks uint64
	buf    []byte
	inSect bool
	done   bool
}

// NewFragmentReader parses the fragment magic, version and key header.
func NewFragmentReader(r io.Reader) (*FragmentReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read fragment: %w", noEOF(err))
	}
	if magic != fragmentMagic {
		return nil, fmt.Errorf("trace: not a fragment (magic %q)", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read fragment: %w", noEOF(err))
	}
	if version != fragmentVersion {
		return nil, fmt.Errorf("trace: unsupported fragment version %d (have %d)", version, fragmentVersion)
	}
	nkeys, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read fragment: %w", noEOF(err))
	}
	if nkeys > maxFragmentKeys {
		return nil, fmt.Errorf("trace: fragment key count %d exceeds limit", nkeys)
	}
	fr := &FragmentReader{r: br, keys: make(map[string]string, nkeys)}
	for i := uint64(0); i < nkeys; i++ {
		k, err := fr.readStr()
		if err != nil {
			return nil, fmt.Errorf("trace: read fragment header: %w", err)
		}
		v, err := fr.readStr()
		if err != nil {
			return nil, fmt.Errorf("trace: read fragment header: %w", err)
		}
		fr.keys[k] = v
	}
	return fr, nil
}

// Keys returns the fragment's identifying key/value header.
func (fr *FragmentReader) Keys() map[string]string { return fr.keys }

// scratch returns fr.buf resized to size, growing geometrically so a
// fragment with many similar-sized chunks settles on one allocation
// instead of reallocating whenever a chunk is a byte larger than its
// predecessor. The returned slice is invalidated by the next scratch
// call (NextChunk documents the same reuse to its callers).
func (fr *FragmentReader) scratch(size uint64) []byte {
	if uint64(cap(fr.buf)) < size {
		newCap := 2 * uint64(cap(fr.buf))
		if newCap < size {
			newCap = size
		}
		fr.buf = make([]byte, newCap)
	}
	return fr.buf[:size]
}

// readStr reads one length-prefixed string.
func (fr *FragmentReader) readStr() (string, error) {
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return "", noEOF(err)
	}
	if n > maxFragmentString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := fr.scratch(n)
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return "", noEOF(err)
	}
	return string(buf), nil
}

// NextSection advances to the next section and returns its name, or
// io.EOF after the final section once the trailer has been verified.
// Any chunks left unread in the current section are skipped.
func (fr *FragmentReader) NextSection() (string, error) {
	if fr.done {
		return "", io.EOF
	}
	if fr.inSect {
		// Drain the remainder of the open section.
		for {
			if _, err := fr.NextChunk(); err == io.EOF {
				break
			} else if err != nil {
				return "", err
			}
		}
	}
	name, err := fr.readStr()
	if err != nil {
		return "", fmt.Errorf("trace: read fragment section: %w", err)
	}
	if name == "" {
		count, err := binary.ReadUvarint(fr.r)
		if err != nil {
			return "", fmt.Errorf("trace: read fragment trailer: %w", noEOF(err))
		}
		if count != fr.chunks {
			return "", fmt.Errorf("trace: fragment trailer says %d chunks, read %d", count, fr.chunks)
		}
		fr.done = true
		return "", io.EOF
	}
	fr.inSect = true
	return name, nil
}

// NextChunk returns the next chunk of the current section, or io.EOF at
// the section's end. The returned slice is reused by the next call;
// callers that retain it must copy.
func (fr *FragmentReader) NextChunk() ([]byte, error) {
	if !fr.inSect {
		return nil, fmt.Errorf("trace: fragment chunk read outside a section")
	}
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, fmt.Errorf("trace: read fragment chunk: %w", noEOF(err))
	}
	if n == 0 {
		fr.inSect = false
		return nil, io.EOF
	}
	size := n - 1
	if size > maxFragmentChunk {
		return nil, fmt.Errorf("trace: fragment chunk of %d bytes exceeds limit", size)
	}
	buf := fr.scratch(size)
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return nil, fmt.Errorf("trace: read fragment chunk: %w", noEOF(err))
	}
	fr.chunks++
	return buf, nil
}
