package trace_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"geosocial/internal/geo"
	"geosocial/internal/trace"
)

// splitUser cuts one user into a base prefix and a delta suffix at the
// midpoint of each trace, the shape of a per-user append. The delta is
// nil when there is nothing to move.
func splitUser(u *trace.User) (*trace.User, *trace.User) {
	mg, mc := len(u.GPS)/2, len(u.Checkins)/2
	if mg == len(u.GPS) && mc == len(u.Checkins) {
		return u, nil
	}
	base := &trace.User{
		ID: u.ID, Profile: u.Profile, Days: u.Days,
		GPS: u.GPS[:mg], Checkins: u.Checkins[:mc],
	}
	delta := &trace.User{
		ID: u.ID, Profile: u.Profile, Days: u.Days,
		GPS: u.GPS[mg:], Checkins: u.Checkins[mc:],
	}
	return base, delta
}

// splitDataset splits every user, returning the base dataset and the
// delta users.
func splitDataset(ds *trace.Dataset) (*trace.Dataset, []*trace.User) {
	base := &trace.Dataset{Name: ds.Name, POIs: ds.POIs}
	var deltas []*trace.User
	for _, u := range ds.Users {
		b, d := splitUser(u)
		base.Users = append(base.Users, b)
		if d != nil {
			deltas = append(deltas, d)
		}
	}
	return base, deltas
}

// newUserAfter builds a brand-new user whose trace starts after t0.
func newUserAfter(id int, t0 int64) *trace.User {
	loc := geo.LatLon{Lat: 34.42, Lon: -119.69}
	u := &trace.User{ID: id, Days: 1, Profile: trace.Profile{Friends: 2}}
	for i := int64(0); i < 12; i++ {
		u.GPS = append(u.GPS, trace.GPSPoint{T: t0 + i*60, Loc: loc})
	}
	return u
}

// onGridUser round-trips a hand-built user through the binary codec so
// its coordinates sit on the E7 grid and compare exactly with decoded
// shard content.
func onGridUser(t *testing.T, full *trace.Dataset, u *trace.User) *trace.User {
	t.Helper()
	ds := &trace.Dataset{Name: full.Name, POIs: full.POIs, Users: []*trace.User{u}}
	var buf bytes.Buffer
	if err := ds.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return rt.Users[0]
}

// maxTime returns the latest timestamp in the dataset, so appended
// users can start after everything else.
func maxTime(ds *trace.Dataset) int64 {
	var t int64
	for _, u := range ds.Users {
		if n := len(u.GPS); n > 0 && u.GPS[n-1].T > t {
			t = u.GPS[n-1].T
		}
		if n := len(u.Checkins); n > 0 && u.Checkins[n-1].T > t {
			t = u.Checkins[n-1].T
		}
	}
	return t
}

// appendDeltas runs one AppendWriter session over the manifest.
func appendDeltas(t *testing.T, manifest string, deltas []*trace.User) {
	t.Helper()
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if err := aw.WriteUser(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendFoldRoundTrip: split a corpus into base + per-user deltas,
// append the deltas plus a brand-new user, and verify the folded set
// decodes to exactly the original users.
func TestAppendFoldRoundTrip(t *testing.T) {
	full := genShardDS(t, 0.05, 23)
	base, deltas := splitDataset(full)
	newID := maxUserID(full) + 1
	fresh := onGridUser(t, full, newUserAfter(newID, maxTime(full)+3600))

	dir := t.TempDir()
	manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	prevRaw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	appendDeltas(t, manifest, append(append([]*trace.User(nil), deltas...), fresh))

	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	m := ss.Manifest
	if m.Generation != 1 {
		t.Fatalf("generation %d, want 1", m.Generation)
	}
	if m.Users != len(full.Users)+1 {
		t.Fatalf("manifest users %d, want %d", m.Users, len(full.Users)+1)
	}
	if m.Supersedes == "" {
		t.Fatal("manifest does not record the superseded manifest checksum")
	}
	last := m.Shards[len(m.Shards)-1]
	if !last.Delta || last.Generation != 1 || last.NewUsers != 1 {
		t.Fatalf("delta shard info %+v", last)
	}
	if last.Users != len(deltas)+1 {
		t.Fatalf("delta shard frames %d, want %d", last.Users, len(deltas)+1)
	}

	ds2, err := trace.MergeSets(ss)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Len() != len(deltas)+1 {
		t.Fatalf("delta set has %d users, want %d", ds2.Len(), len(deltas)+1)
	}

	want := make(map[int]*trace.User, len(full.Users))
	for _, u := range full.Users {
		want[u.ID] = u
	}
	folded := 0
	for i, info := range m.Shards {
		if info.Delta {
			continue
		}
		r, err := ss.OpenShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for {
			u, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got, err := ds2.Fold(u)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want[u.ID]) {
				t.Fatalf("user %d differs after folding", u.ID)
			}
			folded++
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if folded != len(full.Users) {
		t.Fatalf("folded %d users, want %d", folded, len(full.Users))
	}
	gotNew, err := ds2.FoldNew(newID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotNew, fresh) {
		t.Fatal("new user differs after folding")
	}
	if h := ds2.Home(newID); h != len(m.Shards)-1 {
		t.Fatalf("new user home shard %d, want the delta shard", h)
	}

	// The superseded checksum is the hash of the previous manifest's
	// exact bytes — the audit chain back to generation 0.
	if want := fmt.Sprintf("sha256:%x", sha256.Sum256(prevRaw)); m.Supersedes != want {
		t.Fatalf("supersedes %s, want %s", m.Supersedes, want)
	}
}

// TestAppendSecondGeneration: a second append stacks cleanly and folds
// both deltas in order.
func TestAppendSecondGeneration(t *testing.T) {
	full := genShardDS(t, 0.03, 31)
	base, deltas := splitDataset(full)
	// Split each delta again: half goes in generation 1, half in 2.
	var gen1, gen2 []*trace.User
	for _, d := range deltas {
		a, b := splitUser(d)
		gen1 = append(gen1, a)
		if b != nil {
			gen2 = append(gen2, b)
		}
	}
	if len(gen2) == 0 {
		t.Skip("no second-generation deltas at this scale")
	}

	dir := t.TempDir()
	manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	appendDeltas(t, manifest, gen1)
	appendDeltas(t, manifest, gen2)

	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Manifest.Generation != 2 {
		t.Fatalf("generation %d, want 2", ss.Manifest.Generation)
	}
	ds2, err := trace.MergeSets(ss)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]*trace.User, len(full.Users))
	for _, u := range full.Users {
		want[u.ID] = u
	}
	for i, info := range ss.Manifest.Shards {
		if info.Delta {
			continue
		}
		r, err := ss.OpenShard(i)
		if err != nil {
			t.Fatal(err)
		}
		for {
			u, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got, err := ds2.Fold(u)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want[u.ID]) {
				t.Fatalf("user %d differs after two-generation fold", u.ID)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendDeterministic: the same append produces byte-identical
// delta shards and manifests.
func TestAppendDeterministic(t *testing.T) {
	full := genShardDS(t, 0.03, 41)
	base, deltas := splitDataset(full)
	var files [2][2][]byte // run -> {delta shard, manifest}
	for run := 0; run < 2; run++ {
		dir := t.TempDir()
		manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		appendDeltas(t, manifest, deltas)
		ss, err := trace.OpenShardSet(manifest)
		if err != nil {
			t.Fatal(err)
		}
		delta := ss.Manifest.Shards[len(ss.Manifest.Shards)-1]
		if files[run][0], err = os.ReadFile(filepath.Join(dir, delta.File)); err != nil {
			t.Fatal(err)
		}
		if files[run][1], err = os.ReadFile(manifest); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(files[0][0], files[1][0]) {
		t.Fatal("delta shard bytes differ between identical appends")
	}
	if !bytes.Equal(files[0][1], files[1][1]) {
		t.Fatal("manifest bytes differ between identical appends")
	}
}

// TestAppendRejectsSeamViolation: a delta that starts before the user's
// existing trace end fails Close and leaves the set untouched.
func TestAppendRejectsSeamViolation(t *testing.T) {
	full := genShardDS(t, 0.03, 43)
	dir := t.TempDir()
	manifest, err := full.SaveShards(dir, trace.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}

	victim := full.Users[0]
	if len(victim.GPS) < 2 {
		t.Skip("victim too small")
	}
	bad := &trace.User{
		ID: victim.ID, Profile: victim.Profile, Days: victim.Days,
		GPS: victim.GPS[:1], // starts at the trace start, before its end
	}
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteUser(bad); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err == nil {
		t.Fatal("seam-violating append accepted")
	}
	after, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed append mutated the manifest")
	}
}

func TestAppendRejectsDuplicateAndEmpty(t *testing.T) {
	full := genShardDS(t, 0.03, 47)
	dir := t.TempDir()
	manifest, err := full.SaveShards(dir, trace.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err == nil {
		t.Fatal("empty append accepted")
	}

	aw, err = trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	u := newUserAfter(maxUserID(full)+1, maxTime(full)+3600)
	if err := aw.WriteUser(u); err != nil {
		t.Fatal(err)
	}
	if err := aw.WriteUser(u); err == nil {
		t.Fatal("duplicate user in one generation accepted")
	}
}

// TestConcurrentAppendSessionsExactlyOneWins: two AppendWriter sessions
// opened at the same generation race their Close. Both target the same
// delta shard name, so exactly one may publish; the loser must fail —
// the shard is linked into place, never renamed over — and the winner's
// published data must survive intact.
func TestConcurrentAppendSessionsExactlyOneWins(t *testing.T) {
	full := genShardDS(t, 0.03, 61)
	dir := t.TempDir()
	manifest, err := full.SaveShards(dir, trace.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t0 := maxTime(full) + 3600
	newID := maxUserID(full) + 1

	writers := make([]*trace.AppendWriter, 2)
	for i := range writers {
		aw, err := trace.OpenAppend(manifest)
		if err != nil {
			t.Fatal(err)
		}
		if err := aw.WriteUser(onGridUser(t, full, newUserAfter(newID+i, t0))); err != nil {
			t.Fatal(err)
		}
		writers[i] = aw
	}

	errs := make([]error, len(writers))
	var wg sync.WaitGroup
	for i, aw := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = aw.Close()
		}()
	}
	wg.Wait()

	winner := -1
	for i, err := range errs {
		if err == nil {
			if winner >= 0 {
				t.Fatalf("both racing sessions published generation 1")
			}
			winner = i
		}
	}
	if winner < 0 {
		t.Fatalf("both racing sessions failed: %v", errs)
	}

	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Manifest.Generation != 1 {
		t.Fatalf("generation %d, want 1", ss.Manifest.Generation)
	}
	if ss.Manifest.Users != len(full.Users)+1 {
		t.Fatalf("manifest users %d, want %d", ss.Manifest.Users, len(full.Users)+1)
	}
	ds2, err := trace.MergeSets(ss)
	if err != nil {
		t.Fatalf("winner's delta shard does not decode: %v", err)
	}
	if ds2.Len() != 1 || ds2.IDs()[0] != newID+winner {
		t.Fatalf("delta users %v, want exactly [%d]", ds2.IDs(), newID+winner)
	}
}

func maxUserID(ds *trace.Dataset) int {
	id := 0
	for _, u := range ds.Users {
		if u.ID > id {
			id = u.ID
		}
	}
	return id
}

// TestAppendStreamRejectsMismatch: the wire form refuses a stream whose
// header names another dataset.
func TestAppendStreamRejectsMismatch(t *testing.T) {
	full := genShardDS(t, 0.03, 53)
	dir := t.TempDir()
	manifest, err := full.SaveShards(dir, trace.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	aw, err := trace.OpenAppend(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := trace.NewStreamWriter(&buf, "some-other-dataset", full.POIs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteUser(newUserAfter(maxUserID(full)+1, maxTime(full)+3600)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := aw.AppendStream(&buf); err == nil {
		t.Fatal("stream for another dataset accepted")
	}
}

// TestDeltaShardTruncation: every strict byte prefix of a delta shard
// must fail to decode — the GSB1 sentinel/trailer discipline makes
// truncation detectable at any byte.
func TestDeltaShardTruncation(t *testing.T) {
	full := genShardDS(t, 0.02, 59)
	base, deltas := splitDataset(full)
	if len(deltas) == 0 {
		t.Skip("no deltas at this scale")
	}
	dir := t.TempDir()
	manifest, err := base.SaveShards(dir, trace.ShardOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendDeltas(t, manifest, deltas[:2])

	ss, err := trace.OpenShardSet(manifest)
	if err != nil {
		t.Fatal(err)
	}
	delta := ss.Manifest.Shards[len(ss.Manifest.Shards)-1]
	raw, err := os.ReadFile(filepath.Join(dir, delta.File))
	if err != nil {
		t.Fatal(err)
	}

	decode := func(b []byte) error {
		sr, err := trace.NewStreamReader(bytes.NewReader(b))
		if err != nil {
			return err
		}
		for {
			if _, err := sr.Next(); err == io.EOF {
				return nil
			} else if err != nil {
				return err
			}
		}
	}
	if err := decode(raw); err != nil {
		t.Fatalf("full delta shard failed to decode: %v", err)
	}
	for n := 0; n < len(raw); n++ {
		if decode(raw[:n]) == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(raw))
		}
	}
}
