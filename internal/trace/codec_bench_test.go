package trace_test

// Codec benchmarks: the binary format must beat JSON on both encoded
// size and decode throughput on the same dataset. Run with
//
//	go test -bench Codec -benchtime 3x ./internal/trace
//
// and compare the encoded-bytes metric across the Encode pair and MB/s
// across the Decode pair.

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"geosocial/internal/rng"
	"geosocial/internal/synth"
	"geosocial/internal/trace"
)

var (
	codecOnce sync.Once
	codecDS   *trace.Dataset
	codecJSON []byte
	codecBin  []byte
	codecErr  error
)

// codecFixture generates one shared dataset and its two encodings.
func codecFixture(b *testing.B) (*trace.Dataset, []byte, []byte) {
	b.Helper()
	codecOnce.Do(func() {
		ds, err := synth.Generate(synth.PrimaryConfig().Scale(0.1), rng.New(42))
		if err != nil {
			codecErr = err
			return
		}
		var jbuf, bbuf bytes.Buffer
		if codecErr = ds.WriteJSON(&jbuf); codecErr != nil {
			return
		}
		if codecErr = ds.WriteBinary(&bbuf); codecErr != nil {
			return
		}
		codecDS, codecJSON, codecBin = ds, jbuf.Bytes(), bbuf.Bytes()
	})
	if codecErr != nil {
		b.Fatal(codecErr)
	}
	return codecDS, codecJSON, codecBin
}

// BenchmarkCodecEncodeJSON measures JSON encoding; the encoded-bytes
// metric is the size baseline.
func BenchmarkCodecEncodeJSON(b *testing.B) {
	ds, raw, _ := codecFixture(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(raw)), "encoded-bytes")
}

// BenchmarkCodecEncodeBinary measures binary encoding; compare its
// encoded-bytes against the JSON bench (expect several times smaller).
// allocs/op stays flat in the dataset size because the StreamWriter
// reuses one frameEnc scratch buffer across users.
func BenchmarkCodecEncodeBinary(b *testing.B) {
	ds, rawJSON, raw := codecFixture(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.WriteBinary(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(raw)), "encoded-bytes")
	b.ReportMetric(float64(len(rawJSON))/float64(len(raw)), "json-size-ratio")
}

// BenchmarkCodecDecodeJSON measures full-dataset JSON decoding (MB/s of
// encoded input).
func BenchmarkCodecDecodeJSON(b *testing.B) {
	_, raw, _ := codecFixture(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadJSON(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecodeBinary measures full-dataset binary decoding; the
// MB/s is not directly comparable to the JSON bench (the input is
// smaller), so it also reports decoded users per second via b.N scaling —
// compare ns/op for the whole-dataset decode cost.
func BenchmarkCodecDecodeBinary(b *testing.B) {
	_, _, raw := codecFixture(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecodeBinaryStream measures the pure streaming path (no
// dataset materialization): one user in memory at a time. allocs/op is
// part of the contract being measured — the reader recycles its frame
// scratch buffer through a pool instead of allocating per user, so the
// per-user overhead is only the decoded User itself.
func BenchmarkCodecDecodeBinaryStream(b *testing.B) {
	_, _, raw := codecFixture(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := trace.NewStreamReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := sr.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecDecodeFrames measures the two-stage ingest split
// (NextFrame + DecodeFrame) that parallel validation is built on.
// Compare against BenchmarkCodecDecodeBinaryStream: the split must cost
// nothing — same throughput, same allocs/op — since Next is now exactly
// this composition plus the duplicate-ID check.
func BenchmarkCodecDecodeFrames(b *testing.B) {
	_, _, raw := codecFixture(b)
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := trace.NewStreamReader(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		for {
			f, err := sr.NextFrame()
			if err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			if _, err := sr.DecodeFrame(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}
