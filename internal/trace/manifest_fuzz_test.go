package trace

// Native fuzz target for the shard-manifest decoder, covering the
// generation/supersedes fields the append container added: arbitrary
// bytes must parse cleanly or fail with an error — never panic — and an
// accepted manifest must re-marshal and re-parse to an identical
// document (the decoder's fixed point, the GSO1 record fuzz idiom).

import (
	"encoding/json"
	"reflect"
	"testing"
)

func marshalManifest(t testing.TB, m *Manifest) []byte {
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func FuzzManifestDecode(f *testing.F) {
	gen0 := &Manifest{
		Format:      manifestFormat,
		Version:     manifestVersion,
		Name:        "corpus",
		POIChecksum: "sha256:abc",
		Users:       5,
		Shards: []ShardInfo{
			{File: "corpus-0000.gsb", Users: 3, Bytes: 100},
			{File: "corpus-0001.gsb", Users: 2, Bytes: 90},
		},
	}
	f.Add(marshalManifest(f, gen0))

	gen2 := &Manifest{
		Format:      manifestFormat,
		Version:     manifestVersion,
		Name:        "corpus",
		POIChecksum: "sha256:abc",
		Users:       6,
		Generation:  2,
		Supersedes:  "sha256:def",
		Shards: []ShardInfo{
			{File: "corpus-0000.gsb", Users: 5, Bytes: 100},
			{File: "corpus-delta-0001.gsb", Users: 2, Bytes: 40, Delta: true, Generation: 1, NewUsers: 1},
			{File: "corpus-delta-0002.gsb", Users: 1, Bytes: 20, Delta: true, Generation: 2, NewUsers: 0},
		},
	}
	f.Add(marshalManifest(f, gen2))

	// Structurally broken documents the validator must reject.
	bad := *gen2
	bad.Generation = 7 // shard generations don't reach it
	f.Add(marshalManifest(f, &bad))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":"gsb1-shards","version":1,"shards":[{"file":"../x","users":1}],"users":1}`))
	f.Add([]byte(`not json`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data, "fuzz")
		if err != nil {
			return // rejected, fine
		}
		// An accepted manifest must re-marshal and re-parse to an
		// identical document.
		again, err := parseManifest(marshalManifest(t, m), "fuzz")
		if err != nil {
			t.Fatalf("accepted manifest failed to re-parse: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("parse/marshal/parse not a fixed point:\n first %+v\nsecond %+v", m, again)
		}
	})
}

// TestParseManifestGenerationalRejections pins the generational
// validation rules with direct cases (the fuzz seeds only guarantee
// "rejected", not why).
func TestParseManifestGenerationalRejections(t *testing.T) {
	valid := func() *Manifest {
		return &Manifest{
			Format:      manifestFormat,
			Version:     manifestVersion,
			Name:        "c",
			POIChecksum: "sha256:x",
			Users:       3,
			Generation:  1,
			Shards: []ShardInfo{
				{File: "c-0000.gsb", Users: 2, Bytes: 10},
				{File: "c-delta-0001.gsb", Users: 2, Bytes: 10, Delta: true, Generation: 1, NewUsers: 1},
			},
		}
	}
	cases := map[string]func(m *Manifest){
		"base after delta": func(m *Manifest) {
			m.Shards = append(m.Shards, ShardInfo{File: "c-0001.gsb", Users: 0})
		},
		"delta generation zero": func(m *Manifest) {
			m.Shards[1].Generation = 0
			m.Generation = 0
		},
		"generation regression": func(m *Manifest) {
			m.Shards = append(m.Shards, ShardInfo{File: "d2.gsb", Users: 1, Delta: true, Generation: 2, NewUsers: 0},
				ShardInfo{File: "d1.gsb", Users: 1, Delta: true, Generation: 1, NewUsers: 0})
			m.Generation = 2
		},
		"manifest generation mismatch": func(m *Manifest) { m.Generation = 3 },
		"new users exceed frames":      func(m *Manifest) { m.Shards[1].NewUsers = 5 },
		"base shard with delta fields": func(m *Manifest) { m.Shards[0].NewUsers = 1 },
		"user arithmetic":              func(m *Manifest) { m.Users = 9 },
		"negative generation": func(m *Manifest) {
			m.Generation = -1
			m.Shards = m.Shards[:1]
			m.Users = 2
		},
	}
	if _, err := parseManifest(marshalManifest(t, valid()), "t"); err != nil {
		t.Fatalf("valid generational manifest rejected: %v", err)
	}
	for name, mutate := range cases {
		m := valid()
		mutate(m)
		if _, err := parseManifest(marshalManifest(t, m), "t"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
