package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geosocial/internal/geo"
	"geosocial/internal/poi"
)

var base = geo.LatLon{Lat: 34.4208, Lon: -119.6982}

func TestGPSTraceSortAndValidate(t *testing.T) {
	tr := GPSTrace{
		{T: 100, Loc: base},
		{T: 50, Loc: base},
	}
	if tr.Sorted() {
		t.Error("unsorted trace reported sorted")
	}
	tr.Sort()
	if !tr.Sorted() {
		t.Error("sorted trace reported unsorted")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestGPSTraceValidateRejects(t *testing.T) {
	bad := GPSTrace{{T: 0, Loc: geo.LatLon{Lat: 91, Lon: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid coordinate accepted")
	}
	outOfOrder := GPSTrace{{T: 100, Loc: base}, {T: 50, Loc: base}}
	if err := outOfOrder.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

func TestGPSTraceSpan(t *testing.T) {
	var empty GPSTrace
	if f, l := empty.Span(); f != 0 || l != 0 {
		t.Error("empty span not zero")
	}
	tr := GPSTrace{{T: 10, Loc: base}, {T: 99, Loc: base}}
	if f, l := tr.Span(); f != 10 || l != 99 {
		t.Errorf("span = %d..%d", f, l)
	}
}

func TestVisitDurationAndDeltaT(t *testing.T) {
	v := Visit{Start: 600, End: 1800}
	if v.Duration() != 20*time.Minute {
		t.Errorf("duration %v", v.Duration())
	}
	if v.DeltaT(700) != 0 {
		t.Error("in-interval DeltaT not zero")
	}
	if v.DeltaT(0) != 10*time.Minute {
		t.Errorf("before-start DeltaT = %v", v.DeltaT(0))
	}
	if v.DeltaT(2400) != 10*time.Minute {
		t.Errorf("after-end DeltaT = %v", v.DeltaT(2400))
	}
}

func TestLabelExtraneous(t *testing.T) {
	tests := []struct {
		l    Label
		want bool
	}{
		{LabelHonest, false},
		{LabelNone, false},
		{LabelSuperfluous, true},
		{LabelRemote, true},
		{LabelDriveby, true},
		{LabelOther, true},
	}
	for _, tc := range tests {
		if got := tc.l.Extraneous(); got != tc.want {
			t.Errorf("Extraneous(%q) = %v", tc.l, got)
		}
	}
}

func TestCheckinTraceValidate(t *testing.T) {
	tr := CheckinTrace{
		{T: 100, Loc: base},
		{T: 100, Loc: base}, // equal timestamps allowed
		{T: 200, Loc: base},
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("valid checkin trace rejected: %v", err)
	}
	bad := CheckinTrace{{T: 100, Loc: base}, {T: 50, Loc: base}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order checkins accepted")
	}
}

func testDataset() *Dataset {
	return &Dataset{
		Name: "test",
		POIs: []poi.POI{
			{ID: 0, Name: "A", Category: poi.Food, Loc: base},
			{ID: 1, Name: "B", Category: poi.Shop, Loc: geo.Destination(base, 90, 500)},
		},
		Users: []*User{
			{
				ID:      0,
				Days:    2,
				Profile: Profile{Friends: 10, Badges: 3, Mayors: 1, CheckinsPerDay: 1.5},
				GPS: GPSTrace{
					{T: 0, Loc: base},
					{T: 60, Loc: base, Indoor: true},
				},
				Checkins: CheckinTrace{
					{T: 30, POIID: 0, POIName: "A", Category: poi.Food, Loc: base, Truth: LabelHonest},
				},
			},
			{ID: 1, Days: 3},
		},
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := testDataset().Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := testDataset()
	bad.POIs[1].ID = 7 // IDs must equal indices
	if err := bad.Validate(); err == nil {
		t.Error("bad POI numbering accepted")
	}
}

func TestDatasetValidateRejectsDuplicateUserIDs(t *testing.T) {
	// Duplicate IDs would silently merge Summarize's per-ID visit counts.
	bad := testDataset()
	bad.Users[1].ID = bad.Users[0].ID
	err := bad.Validate()
	if err == nil {
		t.Fatal("duplicate user IDs accepted")
	}
	if !strings.Contains(err.Error(), "duplicate user ID") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestDatasetValidateRejectsUnknownPOI(t *testing.T) {
	for _, poiID := range []int{-1, 2, 99} {
		bad := testDataset()
		bad.Users[0].Checkins[0].POIID = poiID
		err := bad.Validate()
		if err == nil {
			t.Fatalf("checkin claiming POI %d accepted (table has 2)", poiID)
		}
		if !strings.Contains(err.Error(), "unknown POI") {
			t.Errorf("unhelpful error for POI %d: %v", poiID, err)
		}
	}
}

func TestDatasetSummarize(t *testing.T) {
	ds := testDataset()
	sum := ds.Summarize(map[int]int{0: 4, 1: 2})
	if sum.Users != 2 || sum.Checkins != 1 || sum.GPSPoints != 2 {
		t.Errorf("summary %+v", sum)
	}
	if sum.AvgDays != 2.5 {
		t.Errorf("avg days %g", sum.AvgDays)
	}
	if sum.Visits != 6 {
		t.Errorf("visits %d", sum.Visits)
	}
	if s := sum.String(); s == "" {
		t.Error("empty summary string")
	}
	// Nil visit counts leave the column zero.
	if got := ds.Summarize(nil).Visits; got != 0 {
		t.Errorf("visits with nil counts = %d", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds := testDataset()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || len(got.Users) != len(ds.Users) || len(got.POIs) != len(ds.POIs) {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	u := got.Users[0]
	if len(u.GPS) != 2 || !u.GPS[1].Indoor {
		t.Error("GPS points lost")
	}
	if u.Checkins[0].Truth != LabelHonest {
		t.Error("truth label lost")
	}
	if u.Profile.CheckinsPerDay != 1.5 {
		t.Error("profile lost")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	// Structurally valid JSON with an invalid coordinate.
	bad := `{"name":"x","pois":[],"users":[{"id":0,"profile":{"friends":0,"badges":0,"mayors":0,"checkins_per_day":0},"gps":[{"t":0,"loc":{"lat":99,"lon":0}}],"checkins":null,"days":1}]}`
	if _, err := ReadJSON(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("invalid coordinate accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"ds.json", "ds.json.gz"} {
		path := filepath.Join(dir, name)
		ds := testDataset()
		if err := ds.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != "test" || len(got.Users) != 2 {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file load succeeded")
	}
}

// TestSaveFileAtomic pins the crash-safety contract: a save that fails
// mid-encode must leave the previous file at the destination untouched
// and no temporary files behind.
func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json")
	if err := testDataset().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// NaN is unencodable in JSON, so this save fails after the temp file
	// has been created and partially written.
	bad := testDataset()
	bad.Users[0].Days = math.NaN()
	if err := bad.SaveFile(path); err == nil {
		t.Fatal("NaN dataset saved without error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination gone after failed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save corrupted the destination file")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ds.json" {
			t.Errorf("leftover file %q after saves", e.Name())
		}
	}

	// A failed binary save behaves the same: unknown POI reference.
	badBin := testDataset()
	badBin.Users[0].Checkins[0].POIID = 99
	binPath := filepath.Join(dir, "ds.bin")
	if err := testDataset().SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	beforeBin, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := badBin.SaveFile(binPath); err == nil {
		t.Fatal("invalid dataset saved as binary without error")
	}
	afterBin, err := os.ReadFile(binPath)
	if err != nil || !bytes.Equal(beforeBin, afterBin) {
		t.Error("failed binary save corrupted the destination file")
	}
}

func TestCheckinTime(t *testing.T) {
	c := Checkin{T: 1358121600} // 2013-01-14 00:00 UTC
	if got := c.Time().UTC().Format("2006-01-02"); got != "2013-01-14" {
		t.Errorf("time = %s", got)
	}
	p := GPSPoint{T: 1358121600}
	if !p.Time().Equal(c.Time()) {
		t.Error("GPSPoint time mismatch")
	}
}
