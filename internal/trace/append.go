package trace

// Append container: the generation-aware side of sharded corpora.
//
// A shard set grows by whole generations. Each AppendWriter session
// writes exactly one delta shard — an ordinary GSB1 stream whose frames
// are interpreted against the earlier shards: a frame for an existing
// user carries only that user's newly appended GPS fixes and checkins
// (plus its updated Days/Profile), a frame for an unseen ID introduces
// a complete new user. The base shards are never rewritten; the
// manifest is atomically replaced with one that lists the delta shard,
// bumps Generation, and records the superseded manifest's checksum.
//
// Folding is deterministic: a user's effective trace is the
// concatenation of its frames in shard-list order (base first, then
// delta shards in generation order), with Days and Profile taken from
// the last frame. FoldUser enforces the chronological seams, so a
// folded set decodes to exactly the users a from-scratch corpus of the
// concatenated data would contain.

import (
	"compress/gzip"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"geosocial/internal/poi"
)

// FoldUser merges a user's base frame with the delta frames appended
// for it, in generation order. Each delta's GPS fixes and checkins are
// concatenated after the accumulated trace (the chronological seam is
// enforced: a delta may not begin before the previous frame ended), and
// Days/Profile come from the last delta. The inputs are not mutated;
// with no deltas the base is returned as-is.
func FoldUser(base *User, deltas []*User) (*User, error) {
	if len(deltas) == 0 {
		return base, nil
	}
	nGPS, nCk := len(base.GPS), len(base.Checkins)
	for _, d := range deltas {
		if d.ID != base.ID {
			return nil, fmt.Errorf("trace: fold user %d: delta frame for user %d", base.ID, d.ID)
		}
		nGPS += len(d.GPS)
		nCk += len(d.Checkins)
	}
	out := &User{
		ID:       base.ID,
		Profile:  deltas[len(deltas)-1].Profile,
		Days:     deltas[len(deltas)-1].Days,
		GPS:      make(GPSTrace, 0, nGPS),
		Checkins: make(CheckinTrace, 0, nCk),
	}
	out.GPS = append(out.GPS, base.GPS...)
	out.Checkins = append(out.Checkins, base.Checkins...)
	for _, d := range deltas {
		if len(d.GPS) > 0 && len(out.GPS) > 0 && d.GPS[0].T < out.GPS[len(out.GPS)-1].T {
			return nil, fmt.Errorf("trace: fold user %d: delta GPS starts at %d, before trace end %d",
				base.ID, d.GPS[0].T, out.GPS[len(out.GPS)-1].T)
		}
		if len(d.Checkins) > 0 && len(out.Checkins) > 0 && d.Checkins[0].T < out.Checkins[len(out.Checkins)-1].T {
			return nil, fmt.Errorf("trace: fold user %d: delta checkins start at %d, before trace end %d",
				base.ID, d.Checkins[0].T, out.Checkins[len(out.Checkins)-1].T)
		}
		out.GPS = append(out.GPS, d.GPS...)
		out.Checkins = append(out.Checkins, d.Checkins...)
	}
	return out, nil
}

// DeltaSet is a generational shard set's delta content, fully decoded
// and indexed by user ID — the in-memory side of folding. It is
// read-only after MergeSets builds it, so Fold and FoldSource are safe
// from concurrent decode workers. Memory is O(appended data), never
// O(corpus).
type DeltaSet struct {
	users map[int][]*User // delta frames per user, in shard-list order
	home  map[int]int     // manifest shard index of each ID's first delta frame
}

// MergeSets loads every delta shard of a generational shard set and
// returns the fold index. For a generation-0 set it returns an empty
// DeltaSet.
func MergeSets(ss *ShardSet) (*DeltaSet, error) {
	ds := &DeltaSet{users: make(map[int][]*User), home: make(map[int]int)}
	for i, info := range ss.Manifest.Shards {
		if !info.Delta {
			continue
		}
		r, err := ss.OpenShard(i)
		if err != nil {
			return nil, err
		}
		for {
			u, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return nil, err
			}
			if _, ok := ds.home[u.ID]; !ok {
				ds.home[u.ID] = i
			}
			ds.users[u.ID] = append(ds.users[u.ID], u)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("trace: close delta shard %s: %w", info.File, err)
		}
	}
	return ds, nil
}

// Len returns the number of distinct users with delta frames.
func (ds *DeltaSet) Len() int { return len(ds.users) }

// IDs returns the delta user IDs in ascending order.
func (ds *DeltaSet) IDs() []int {
	ids := make([]int, 0, len(ds.users))
	for id := range ds.users {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Home returns the manifest shard index of the ID's first delta frame
// (-1 when the ID has none) — the shard a brand-new user is attributed
// to in per-shard statistics.
func (ds *DeltaSet) Home(id int) int {
	if i, ok := ds.home[id]; ok {
		return i
	}
	return -1
}

// Fold returns the base user with its delta frames folded in, or the
// base unchanged when it has none.
func (ds *DeltaSet) Fold(base *User) (*User, error) {
	return FoldUser(base, ds.users[base.ID])
}

// FoldNew folds a user that exists only in delta shards: its first
// delta frame acts as the base.
func (ds *DeltaSet) FoldNew(id int) (*User, error) {
	frames := ds.users[id]
	if len(frames) == 0 {
		return nil, fmt.Errorf("trace: fold user %d: no delta frames", id)
	}
	return FoldUser(frames[0], frames[1:])
}

// FoldSource wraps a base-shard FrameSource so every decoded user comes
// out with its delta frames folded in. NextFrame passes through;
// DecodeFrame stays safe for concurrent calls on distinct frames
// because the DeltaSet is read-only.
func (ds *DeltaSet) FoldSource(src FrameSource) FrameSource {
	return foldSource{src: src, ds: ds}
}

type foldSource struct {
	src FrameSource
	ds  *DeltaSet
}

func (fs foldSource) NextFrame() (Frame, error) { return fs.src.NextFrame() }

func (fs foldSource) DecodeFrame(f Frame) (*User, error) {
	u, err := fs.src.DecodeFrame(f)
	if err != nil {
		return nil, err
	}
	return fs.ds.Fold(u)
}

// AppendWriter appends one generation to an existing shard set. Users
// are buffered in memory (an append is O(new data), never O(corpus))
// and Close performs the whole mutation: it verifies every fold seam
// against the existing shards, writes the delta shard, and atomically
// replaces the manifest. Nothing on disk changes before Close, and a
// failed Close leaves the set exactly as it was.
type AppendWriter struct {
	ss           *ShardSet
	manifestPath string
	pois         []poi.POI
	compress     bool
	users        []*User
	byID         map[int]*User
	closed       bool
}

// OpenAppend opens a shard set (manifest path or directory) for
// appending one generation. The POI table is read from the first shard;
// appended checkins must reference it (the table itself is immutable
// across generations, as the manifest's POI checksum enforces).
func OpenAppend(path string) (*AppendWriter, error) {
	ss, err := OpenShardSet(path)
	if err != nil {
		return nil, err
	}
	manifestPath := path
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		if manifestPath, err = findManifest(path); err != nil {
			return nil, err
		}
	}
	r, err := ss.OpenShard(0)
	if err != nil {
		return nil, err
	}
	pois := append([]poi.POI(nil), r.POIs()...)
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("trace: append: %w", err)
	}
	return &AppendWriter{
		ss:           ss,
		manifestPath: manifestPath,
		pois:         pois,
		compress:     strings.HasSuffix(ss.Manifest.Shards[0].File, ".gz"),
		byID:         make(map[int]*User),
	}, nil
}

// Name returns the dataset name of the set being appended to.
func (aw *AppendWriter) Name() string { return aw.ss.Manifest.Name }

// POIs returns the set's shared POI table.
func (aw *AppendWriter) POIs() []poi.POI { return aw.pois }

// Generation returns the generation this append will produce.
func (aw *AppendWriter) Generation() int { return aw.ss.Manifest.Generation + 1 }

// ManifestPath returns the manifest path Close rewrites.
func (aw *AppendWriter) ManifestPath() string { return aw.manifestPath }

// WriteUser buffers one delta user: for an ID that exists in the set,
// only the newly appended GPS fixes and checkins (with the user's
// updated Days/Profile); for an unseen ID, the complete new user. At
// most one frame per user per generation.
func (aw *AppendWriter) WriteUser(u *User) error {
	if aw.closed {
		return fmt.Errorf("trace: append: writer closed")
	}
	if err := u.Validate(); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	if err := u.validateRefs(len(aw.pois)); err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	if _, dup := aw.byID[u.ID]; dup {
		return fmt.Errorf("trace: append: duplicate user ID %d in one generation", u.ID)
	}
	aw.byID[u.ID] = u
	aw.users = append(aw.users, u)
	return nil
}

// AppendStream feeds a whole GSB1 delta stream into the writer after
// verifying its header matches the set (dataset name and POI-table
// checksum) — the wire form of an append, as accepted by the serve
// layer's append endpoint.
func (aw *AppendWriter) AppendStream(r io.Reader) error {
	sr, err := NewStreamReader(r)
	if err != nil {
		return err
	}
	if sr.Name() != aw.ss.Manifest.Name {
		return fmt.Errorf("trace: append: stream is for dataset %q, set is %q", sr.Name(), aw.ss.Manifest.Name)
	}
	if sum := POIChecksum(sr.POIs()); sum != aw.ss.Manifest.POIChecksum {
		return fmt.Errorf("trace: append: stream POI checksum %s, set has %s", sum, aw.ss.Manifest.POIChecksum)
	}
	for {
		u, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := aw.WriteUser(u); err != nil {
			return err
		}
	}
}

// scanExisting walks every existing shard once, collecting the decoded
// frames of the buffered users (cheap ID peek per frame; only matching
// frames are decoded) in shard-list order.
func (aw *AppendWriter) scanExisting() (map[int][]*User, error) {
	parts := make(map[int][]*User, len(aw.byID))
	for i := range aw.ss.Manifest.Shards {
		r, err := aw.ss.OpenShard(i)
		if err != nil {
			return nil, err
		}
		for {
			f, err := r.NextFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return nil, err
			}
			id, err := f.UserID()
			if err != nil {
				r.Recycle(f)
				r.Close()
				return nil, err
			}
			if _, touched := aw.byID[id]; !touched {
				r.Recycle(f)
				continue
			}
			u, err := r.DecodeFrame(f)
			if err != nil {
				r.Close()
				return nil, err
			}
			parts[id] = append(parts[id], u)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("trace: append: close shard: %w", err)
		}
	}
	return parts, nil
}

// Close applies the append: every buffered user's fold chain is
// verified against the existing shards (chronological seams), the delta
// shard is written next to the others, and the manifest is atomically
// replaced with the next generation. On any error the set on disk is
// left untouched.
func (aw *AppendWriter) Close() error {
	if aw.closed {
		return nil
	}
	aw.closed = true
	if len(aw.users) == 0 {
		return fmt.Errorf("trace: append: no users to append")
	}

	parts, err := aw.scanExisting()
	if err != nil {
		return err
	}
	newUsers := 0
	for _, u := range aw.users {
		chain := parts[u.ID]
		if len(chain) == 0 {
			newUsers++
			continue
		}
		if _, err := FoldUser(chain[0], append(chain[1:], u)); err != nil {
			return fmt.Errorf("trace: append: %w", err)
		}
	}

	gen := aw.ss.Manifest.Generation + 1
	name := aw.ss.Manifest.Name
	final := fmt.Sprintf("%s-delta-%04d%s", name, gen, FormatBinary.Ext())
	if aw.compress {
		final += ".gz"
	}
	finalPath := filepath.Join(aw.ss.Dir, final)
	if _, err := os.Stat(finalPath); err == nil {
		return fmt.Errorf("trace: append: delta shard %s already exists", final)
	}

	f, err := createTemp(finalPath)
	if err != nil {
		return fmt.Errorf("trace: append: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	var sink io.Writer = f
	var gz *gzip.Writer
	if aw.compress {
		gz = gzip.NewWriter(f)
		sink = gz
	}
	sw, err := NewStreamWriter(sink, name, aw.pois)
	if err != nil {
		return fail(err)
	}
	for _, u := range aw.users {
		if err := sw.WriteUser(u); err != nil {
			return fail(err)
		}
	}
	if err := sw.Close(); err != nil {
		return fail(err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fail(fmt.Errorf("trace: append: %w", err))
		}
	}
	// The delta's bytes must be durable before any manifest can
	// reference them: a crash after a durable manifest write but before
	// the shard data reached disk would corrupt a previously valid set
	// in place.
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("trace: append: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: append: %w", err)
	}

	// The superseded manifest's checksum goes into the audit chain
	// before the file is replaced.
	prevRaw, err := os.ReadFile(aw.manifestPath)
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: append: %w", err)
	}

	m := aw.ss.Manifest
	m.Shards = append(append([]ShardInfo(nil), m.Shards...), ShardInfo{
		File:       final,
		Users:      sw.Users(),
		Bytes:      sw.Bytes(),
		Delta:      true,
		Generation: gen,
		NewUsers:   newUsers,
	})
	m.Users += newUsers
	m.Generation = gen
	m.Supersedes = fmt.Sprintf("sha256:%x", sha256.Sum256(prevRaw))

	// Publish: delta shard first, manifest last, so a manifest on disk
	// always describes complete shards (the ShardWriter discipline).
	// The shard is hard-linked — not renamed — into its final name:
	// link fails with EEXIST instead of replacing, so a concurrent
	// append that raced past the existence check above fails here
	// rather than silently overwriting the other session's published
	// delta shard.
	if err := os.Link(tmp, finalPath); err != nil {
		os.Remove(tmp)
		if os.IsExist(err) {
			return fmt.Errorf("trace: append: delta shard %s already exists", final)
		}
		return fmt.Errorf("trace: append: %w", err)
	}
	os.Remove(tmp)
	if err := writeManifest(aw.manifestPath, &m); err != nil {
		os.Remove(finalPath)
		return err
	}
	// Both directory entries (the new shard's link, the manifest's
	// rename) must survive a crash together with the manifest content:
	// writeManifest synced the file, this syncs the names.
	if err := syncDir(aw.ss.Dir); err != nil {
		return fmt.Errorf("trace: append: sync dir: %w", err)
	}
	return nil
}
