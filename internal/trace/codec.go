package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteJSON encodes the dataset as JSON to w.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("trace: encode dataset %q: %w", d.Name, err)
	}
	return nil
}

// ReadJSON decodes a dataset from JSON and validates it.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decode dataset: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid dataset: %w", err)
	}
	return &d, nil
}

// SaveFile writes the dataset to path as JSON, gzip-compressed when the
// path ends in ".gz".
func (d *Dataset) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save dataset: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: save dataset: %w", cerr)
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("trace: save dataset: %w", cerr)
			}
		}()
		w = gz
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := d.WriteJSON(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFile reads a dataset from a JSON file (gzip-compressed when the path
// ends in ".gz") and validates it.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load dataset: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: load dataset: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadJSON(r)
}
